//! Domain scenario 4 — a heterogeneous data lake: tables from all six
//! corpora mixed in one store, persisted as JSONL (the CORD-19-style
//! interchange format), re-loaded, and classified by a single pipeline —
//! the structural-search use case the related-work section motivates
//! (metadata-aware search instead of blind keyword matching over all
//! cells).
//!
//! ```sh
//! cargo run --release --example data_lake
//! ```

use tabmeta::contrastive::{Pipeline, PipelineConfig};
use tabmeta::corpora::{CorpusKind, GeneratorConfig};
use tabmeta::search::{MetadataIndex, Role};
use tabmeta::tabular::Corpus;

fn main() -> std::io::Result<()> {
    // Assemble the lake: a slice of every corpus (ids re-keyed to stay
    // unique across sources).
    let mut lake = Corpus::new("data-lake");
    for (i, kind) in CorpusKind::ALL.iter().enumerate() {
        let corpus = kind.generate(&GeneratorConfig { n_tables: 80, seed: 9 + i as u64 });
        for mut t in corpus.tables {
            t.id += (i as u64) << 32;
            lake.tables.push(t);
        }
    }
    println!("lake: {} tables from {} corpora", lake.len(), CorpusKind::ALL.len());

    // Persist and re-load through the JSONL store.
    let mut buffer = Vec::new();
    lake.write_jsonl(&mut buffer)?;
    println!("persisted: {} bytes of JSONL", buffer.len());
    let reloaded = Corpus::read_jsonl("data-lake", buffer.as_slice())?;
    assert_eq!(reloaded.len(), lake.len());

    // One pipeline over the whole heterogeneous lake.
    let pipeline = Pipeline::train(&reloaded.tables, &PipelineConfig::fast_seeded(9))
        .expect("training succeeds");
    let verdicts = pipeline.classify_corpus(&reloaded.tables);

    // Structural search through the metadata-aware index: find tables
    // whose *metadata* mentions a term — the precision win over keyword
    // search that treats every cell as data.
    let index = MetadataIndex::build(&reloaded.tables, &verdicts, pipeline.tokenizer());
    let query = "headache";
    let metadata_hits = index.tables_with_metadata_term(query, pipeline.tokenizer()).len();
    let anywhere_hits = index.search(query, None, pipeline.tokenizer()).len();
    let header_hits = index.search(query, Some(Role::Hmd), pipeline.tokenizer()).len();
    println!(
        "\nstructural search for \"{query}\": {metadata_hits} tables match in metadata \
({header_hits} as column headers) vs {anywhere_hits} by blind keyword search"
    );

    // Lake-wide structure census from the predictions.
    let mut relational = 0usize;
    let mut hierarchical = 0usize;
    for v in &verdicts {
        if v.hmd_depth <= 1 && v.vmd_depth == 0 {
            relational += 1;
        } else if v.hmd_depth >= 2 || v.vmd_depth >= 2 {
            hierarchical += 1;
        }
    }
    println!(
        "structure census: {relational} flat relational, {hierarchical} hierarchical, \
{} other",
        reloaded.len() - relational - hierarchical
    );
    Ok(())
}
