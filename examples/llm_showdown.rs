//! Domain scenario 3 — the LLM comparison (§IV-H/I, Table VI): the full
//! prompt → response → parse harness against simulated GPT-3.5, GPT-4 and
//! RAG+GPT-4 on the CKG corpus, including a look at one actual prompt and
//! one actual response.
//!
//! The models are *simulated* (closed APIs cannot be called offline); the
//! protocol, parsing, RAG store and scoring are the real code paths. See
//! DESIGN.md §2 for the substitution argument.
//!
//! ```sh
//! cargo run --release --example llm_showdown
//! ```

use tabmeta::baselines::{LlmKind, RagStore, SimulatedLlm};
use tabmeta::corpora::{CorpusKind, GeneratorConfig};
use tabmeta::eval::experiments::llm;
use tabmeta::eval::ExperimentConfig;

fn main() {
    // One concrete round-trip, so the protocol is visible.
    let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 50, seed: 3 });
    let table = corpus.tables.iter().find(|t| t.truth.as_ref().unwrap().hmd_depth() >= 2).unwrap();
    let model = SimulatedLlm::new(LlmKind::Gpt4, 3);
    let prompt = model.prompt_for(table);
    println!("=== system message ===\n{}\n", prompt.system);
    let preview: String = prompt.user.chars().take(400).collect();
    println!("=== user message (first 400 chars) ===\n{preview}…\n");
    println!("=== simulated response ===\n{}", model.respond(table));

    let rag = SimulatedLlm::with_rag(LlmKind::Gpt4, 3, RagStore::build(&corpus.tables));
    println!("=== same table, RAG-augmented ===\n{}", rag.respond(table));

    // The full Table VI experiment.
    let comparison = llm::run(&ExperimentConfig { tables_per_corpus: 500, seed: 3 });
    println!("{}", llm::render_table6(&comparison));
}
