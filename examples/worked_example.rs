//! Figure 5 reproduction: one table walked level by level, with each
//! angle, the centroid range it fell into, and the resulting label — the
//! paper's worked example ("37° ∈ (25°–45°) → Δ_MDE,MDE ∈ C_MDE").
//!
//! ```sh
//! cargo run --release --example worked_example
//! ```

use tabmeta::contrastive::classifier::RangeKind;
use tabmeta::contrastive::{Pipeline, PipelineConfig};
use tabmeta::corpora::{CorpusKind, GeneratorConfig};
use tabmeta::tabular::Axis;

fn main() {
    let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 300, seed: 5 });
    let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(5))
        .expect("training succeeds");

    // Fig. 5 uses a 3-level-HMD table; find one that also carries VMD.
    let table = corpus
        .tables
        .iter()
        .find(|t| {
            let truth = t.truth.as_ref().unwrap();
            truth.hmd_depth() == 3 && truth.vmd_depth() >= 1
        })
        .expect("CKG has 3-level-HMD tables");

    println!("=== table {} ({} rows × {} cols) ===\n", table.id, table.n_rows(), table.n_cols());
    for i in 0..table.n_rows().min(8) {
        let texts = table.level_texts(Axis::Row, i);
        let preview: Vec<&str> = texts.into_iter().take(5).collect();
        println!("  row {i}: {}", preview.join(" | "));
    }
    if table.n_rows() > 8 {
        println!("  … ({} more rows)", table.n_rows() - 8);
    }

    let (verdict, trace) = pipeline.classify_with_trace(table);
    let ranges = pipeline.centroids();

    println!("\n=== the angle walk (Fig. 5) ===\n");
    for axis in [Axis::Row, Axis::Column] {
        let ax = ranges.axis(axis);
        println!(
            "{} axis — C_MDE=({:.0}°–{:.0}°)  C_DE=({:.0}°–{:.0}°)  C_MDE-DE=({:.0}°–{:.0}°)",
            if axis == Axis::Row { "row" } else { "column" },
            ax.c_mde.lo,
            ax.c_mde.hi,
            ax.c_de.lo,
            ax.c_de.hi,
            ax.c_mde_de.lo,
            ax.c_mde_de.hi
        );
        for step in trace.iter().filter(|s| s.axis == axis) {
            let matched = match step.matched {
                RangeKind::Mde => "Δ ∈ C_MDE      ",
                RangeKind::MdeDe => "Δ ∈ C_MDE-DE   ",
                RangeKind::De => "Δ ∈ C_DE       ",
                RangeKind::Nearest => "nearest range  ",
                RangeKind::Reference => "reference test ",
                RangeKind::Degraded => "degraded       ",
            };
            let angle =
                step.angle.map(|a| format!("{a:5.1}°")).unwrap_or_else(|| "  (blank)".to_string());
            println!("  level {:>2}: {} {} → {}", step.index, angle, matched, step.decision);
        }
        println!();
    }
    println!(
        "verdict: HMD depth {} / VMD depth {} (truth: {} / {})",
        verdict.hmd_depth,
        verdict.vmd_depth,
        table.truth.as_ref().unwrap().hmd_depth(),
        table.truth.as_ref().unwrap().vmd_depth()
    );
}
