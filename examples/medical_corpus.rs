//! Domain scenario 1 — medical literature (the paper's motivating case):
//! train on a CKG-style biomedical corpus with partial HTML markup, hold
//! out the later sources, and report per-level accuracy plus what the
//! hierarchical labels buy downstream (reconstructing the full semantic
//! path of a data cell, the §I "Stony Brook ⊂ SUNY ⊂ New York" argument).
//!
//! ```sh
//! cargo run --release --example medical_corpus
//! ```

use tabmeta::contrastive::{Pipeline, PipelineConfig};
use tabmeta::corpora::{CorpusKind, GeneratorConfig};
use tabmeta::eval::{standard_keys, LevelKey, LevelScores};
use tabmeta::tabular::{Axis, LevelLabel, Table};

/// The full semantic context of one data cell, assembled from the
/// predicted hierarchical metadata — the downstream task misclassification
/// destroys (§I).
fn cell_context(
    table: &Table,
    rows: &[LevelLabel],
    cols: &[LevelLabel],
    r: usize,
    c: usize,
) -> String {
    let mut path: Vec<String> = Vec::new();
    // HMD path: the header cells above this column, outermost first.
    for (i, label) in rows.iter().enumerate() {
        if matches!(label, LevelLabel::Hmd(_)) {
            // Spanning headers leave blanks; walk left for the owner.
            let mut col = c;
            loop {
                let cell = table.cell(i, col);
                if !cell.is_blank() {
                    path.push(cell.text.clone());
                    break;
                }
                if col == 0 {
                    break;
                }
                col -= 1;
            }
        }
    }
    // VMD path: the row-header cells to the left, walking up blank runs.
    for (j, label) in cols.iter().enumerate() {
        if matches!(label, LevelLabel::Vmd(_)) {
            let mut row = r;
            loop {
                let cell = table.cell(row, j);
                if !cell.is_blank() {
                    path.push(cell.text.clone());
                    break;
                }
                if row == 0 {
                    break;
                }
                row -= 1;
            }
        }
    }
    path.join(" → ")
}

fn main() {
    let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 500, seed: 77 });
    let cut = corpus.len() * 7 / 10;
    let (train, test) = corpus.tables.split_at(cut);

    let stats = corpus.stats();
    println!(
        "CKG-style corpus: {} tables | HMD≥3: {} | HMD5: {} | VMD≥2: {} | VMD3: {}",
        corpus.len(),
        stats.hmd_at_least(3),
        stats.hmd_at_least(5),
        stats.vmd_at_least(2),
        stats.vmd_at_least(3)
    );

    let pipeline =
        Pipeline::train(train, &PipelineConfig::fast_seeded(77)).expect("training succeeds");
    println!(
        "trained unsupervised on {} tables ({} bootstrapped from markup)\n",
        train.len(),
        pipeline.summary().markup_bootstrapped
    );

    let scores = LevelScores::evaluate(test, standard_keys(), |t| pipeline.classify(t).into());
    println!("held-out accuracy (unseen sources):");
    for k in 1..=5u8 {
        if let (Some(acc), Some(n)) =
            (scores.level_accuracy(LevelKey::Hmd(k)), scores.support(LevelKey::Hmd(k)))
        {
            if n >= 5 {
                println!("  HMD{k}: {:5.1}%  (n={n})", acc * 100.0);
            }
        }
    }
    for k in 1..=3u8 {
        if let (Some(acc), Some(n)) =
            (scores.level_accuracy(LevelKey::Vmd(k)), scores.support(LevelKey::Vmd(k)))
        {
            if n >= 5 {
                println!("  VMD{k}: {:5.1}%  (n={n})", acc * 100.0);
            }
        }
    }

    // The downstream payoff: full semantic paths for data cells.
    let table = test
        .iter()
        .find(|t| {
            let truth = t.truth.as_ref().unwrap();
            truth.vmd_depth() >= 2 && truth.hmd_depth() >= 2
        })
        .expect("deep tables exist");
    let v = pipeline.classify(table);
    println!("\nsemantic paths recovered for table {} data cells:", table.id);
    let first_data_row = v.rows.iter().position(|l| *l == LevelLabel::Data).unwrap_or(1);
    let first_data_col = v.columns.iter().position(|l| *l == LevelLabel::Data).unwrap_or(1);
    for r in first_data_row..(first_data_row + 2).min(table.n_rows()) {
        for c in first_data_col..(first_data_col + 2).min(table.n_cols()) {
            let value = &table.cell(r, c).text;
            if value.trim().is_empty() {
                continue;
            }
            println!("  \"{}\" ⟵ {}", value, cell_context(table, &v.rows, &v.columns, r, c));
        }
    }
    // Without VMD/HMD recognition every one of those cells would be an
    // orphaned number (Axis::Row kept for symmetry with the paper's text).
    let _ = Axis::Row;
}
