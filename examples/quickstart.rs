//! Quickstart: train the unsupervised pipeline on a small corpus and
//! classify a table with hierarchical metadata.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tabmeta::contrastive::{Pipeline, PipelineConfig};
use tabmeta::corpora::{CorpusKind, GeneratorConfig};

fn main() {
    // 1. A corpus. Here: the synthetic stand-in for CKG (PubMed tables,
    //    the paper's deepest-structured corpus). Swap in your own
    //    `Vec<Table>` — no labels required.
    let corpus = CorpusKind::Ckg.generate(&GeneratorConfig::small(42));
    println!("corpus: {} tables from {}", corpus.len(), corpus.name);

    // 2. Train. Fully unsupervised: term embeddings + bootstrap weak
    //    labels from markup (or positional fallback) + contrastive
    //    fine-tuning + centroid angle ranges.
    let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(42))
        .expect("training succeeds on a non-empty corpus");
    let s = pipeline.summary();
    println!(
        "trained: {} sentences, {} SGNS pairs, {} tables bootstrapped from markup",
        s.sentences, s.sgns_pairs, s.markup_bootstrapped
    );

    // 3. Classify. Each row and column gets an HMD/VMD/CMD/Data label and
    //    the hierarchical metadata depth falls out of the angle walk.
    let table = corpus
        .tables
        .iter()
        .find(|t| {
            let truth = t.truth.as_ref().unwrap();
            truth.hmd_depth() >= 2 && truth.vmd_depth() >= 2
        })
        .expect("CKG contains deep tables");
    let verdict = pipeline.classify(table);
    println!(
        "\ntable {}: predicted HMD depth {} / VMD depth {}",
        table.id, verdict.hmd_depth, verdict.vmd_depth
    );
    for (i, label) in verdict.rows.iter().enumerate().take(6) {
        let texts = table.level_texts(tabmeta::tabular::Axis::Row, i);
        let preview: Vec<&str> = texts.into_iter().take(4).collect();
        println!("  row {i}: {label:<5} | {}", preview.join(" · "));
    }
    for (j, label) in verdict.columns.iter().enumerate().take(5) {
        println!("  col {j}: {label}");
    }

    // 4. The trained geometry (paper Tables I-IV are views of this).
    let c = pipeline.centroids();
    println!(
        "\ncentroid ranges (rows): C_MDE={:.0}-{:.0}°  C_DE={:.0}-{:.0}°  C_MDE-DE={:.0}-{:.0}°",
        c.rows.c_mde.lo,
        c.rows.c_mde.hi,
        c.rows.c_de.lo,
        c.rows.c_de.hi,
        c.rows.c_mde_de.lo,
        c.rows.c_mde_de.hi
    );
}
