//! Regenerate every table and figure of the paper in one run — the data
//! source behind EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example reproduce_all            # full scale
//! cargo run --release --example reproduce_all -- quick   # smaller corpora
//! cargo run --release --example reproduce_all -- quick --telemetry /tmp/telemetry.json
//! ```
//!
//! `--telemetry <path>` dumps the run's full observability snapshot
//! (stage span timings, counters, gauges, histograms, the span open/close
//! timeline) plus a sample classification trace as JSON, prints the
//! human-readable report, and writes a Chrome `trace_event` file next to
//! it (`<path with .trace.json extension>`, loadable in chrome://tracing
//! or Perfetto).

use tabmeta::contrastive::TraceStep;
use tabmeta::corpora::CorpusKind;
use tabmeta::eval::experiments::{
    ablation, accuracy, centroids, cmd, embeddings, llm, runtime, scaling, similarity, transfer,
};
use tabmeta::eval::Anatomy;
use tabmeta::eval::ExperimentConfig;

/// Everything `--telemetry` exports: one obs snapshot, the span open/close
/// timeline, plus the angle-walk trace of one test table, under a single
/// JSON roof.
#[derive(serde::Serialize)]
struct Telemetry {
    snapshot: tabmeta::obs::Snapshot,
    timeline: tabmeta::obs::TimelineSnapshot,
    trace_sample: Vec<TraceStep>,
}

// Heap accounting: lets the telemetry snapshot report real
// mem.current_bytes / mem.peak_bytes gauges.
#[cfg(feature = "mem-track")]
#[global_allocator]
static ALLOC: tabmeta::obs::mem::CountingAlloc = tabmeta::obs::mem::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "quick");
    let telemetry_path = args
        .iter()
        .position(|a| a == "--telemetry")
        .map(|i| args.get(i + 1).expect("--telemetry requires a path").clone());
    let config = if quick { ExperimentConfig::quick(2025) } else { ExperimentConfig::full(2025) };
    println!(
        "reproduce_all: {} tables per corpus, seed {}\n",
        config.tables_per_corpus, config.seed
    );

    // Tables I–IV — centroid ranges and transition angles. Corpus lists
    // per table follow the paper: Table I uses the four deep-HMD corpora,
    // Table III the five VMD corpora, Table IV the four deep-VMD corpora.
    let deep_hmd = [CorpusKind::Ckg, CorpusKind::Cord19, CorpusKind::Cius, CorpusKind::Saus];
    let cent_deep = centroids::run(&deep_hmd, &config);
    let cent = centroids::run(&CorpusKind::ALL, &config);
    println!(
        "{}",
        centroids::render(
            "TABLE I: Centroid and Angles for Identifying Levels 2-5 of HMD",
            &cent_deep.table1,
            true
        )
    );
    println!(
        "{}",
        centroids::render(
            "TABLE II: Centroid and Angles for Identifying Level 1 HMD",
            &cent.table2,
            false
        )
    );
    println!(
        "{}",
        centroids::render(
            "TABLE III: Centroid and Angles for Identifying Level 1 VMD",
            &cent.table3,
            false
        )
    );
    println!(
        "{}",
        centroids::render(
            "TABLE IV: Centroid and Angle Calculations for Identifying Levels 2-3 of VMD",
            &cent_deep.table4,
            true
        )
    );

    // Table V + Figures 6 and 7 — accuracy against SOTA.
    let acc = accuracy::run(&CorpusKind::ALL, &config);
    println!("{}", accuracy::render_table5(&acc));
    println!(
        "\n{}",
        accuracy::render_figure(
            "Fig. 6: Accuracy of HMD Detection, Levels 1-5",
            &accuracy::fig6(&acc)
        )
    );
    println!(
        "{}",
        accuracy::render_figure(
            "Fig. 7: Accuracy of VMD Identification, Levels 1-3",
            &accuracy::fig7(&acc)
        )
    );

    // Table VI — simulated LLMs on CKG.
    let llm_cmp = llm::run(&config);
    println!("{}", llm::render_table6(&llm_cmp));

    // §IV-G — runtime.
    let cost = runtime::training_cost(CorpusKind::Ckg, &config);
    let scaling = runtime::inference_scaling(&config);
    println!("\n{}", runtime::render(&cost, &scaling));
    let (hybrid, ours, frac) = runtime::hybrid_routing(&config);
    println!(
        "Hybrid routing: {:.3}ms/table vs ours-only {:.3}ms/table ({:.0}% routed cheap)\n",
        hybrid * 1e3,
        ours * 1e3,
        frac * 100.0
    );
    let sweep = runtime::training_threads_sweep(CorpusKind::Ckg, &[1, 2, 4, 8], &config);
    println!("{}", runtime::render_threads(&sweep));

    // CMD detection (Def. 4 capability) and the embedding-model pairing.
    let cmd_scores = cmd::run(CorpusKind::Ckg, &config);
    println!("{}", cmd::render(CorpusKind::Ckg, &cmd_scores));
    println!("\n{}", embeddings::render(&embeddings::run(&config)));
    println!("{}", similarity::render(CorpusKind::Ckg, &similarity::run(CorpusKind::Ckg, &config)));

    // Cross-corpus transfer + training-size scaling + error anatomy.
    println!(
        "{}",
        transfer::render(&transfer::run(
            &[CorpusKind::Ckg, CorpusKind::Cius, CorpusKind::Wdc],
            &config
        ))
    );
    println!("\n{}", scaling::render(&scaling::run(&[150, 300, 600], &config)));
    let trace_sample = {
        let split = tabmeta::eval::split_corpus(CorpusKind::Ckg, &config);
        let methods = tabmeta::eval::train_all(&split, &config);
        let anatomy = Anatomy::diagnose(&split.test, |t| methods.ours.classify(t).into());
        println!("\n{}", anatomy.render("Our method (CKG)"));
        // Exercise the parallel corpus path (the "classify" span) and keep
        // one angle-walk trace for the telemetry export.
        let _ = methods.ours.classify_corpus(&split.test);
        methods.ours.classify_with_trace(&split.test[0]).1
    };

    // Ablations (DESIGN.md §4).
    println!(
        "{}",
        ablation::render(
            "Ablation: contrastive fine-tuning (low-echo corpus)",
            &ablation::finetune_ablation(&config)
        )
    );
    println!(
        "{}",
        ablation::render(
            "Ablation: embedding dimensionality",
            &ablation::dimension_ablation(&config, &[16, 48, 96])
        )
    );
    println!(
        "{}",
        ablation::render("Ablation: markup availability", &ablation::markup_ablation(&config))
    );
    println!("{}", ablation::render("Ablation: hierarchy echo", &ablation::echo_ablation(&config)));
    println!(
        "{}",
        ablation::render(
            "Ablation: Algorithm-1 angle walk vs naive reference-only labeling",
            &ablation::strategy_ablation(&config)
        )
    );

    if let Some(path) = telemetry_path {
        // Mirror allocator accounting into the mem.* gauges (zeros when
        // the build carries no allocator).
        #[cfg(feature = "mem-track")]
        tabmeta::obs::mem::publish(tabmeta::obs::global());
        let snapshot = tabmeta::obs::global().snapshot();
        println!("\nTelemetry:\n{}", snapshot.render_text());
        let timeline = tabmeta::obs::global().timeline_snapshot();
        if let Err(e) = timeline.validate() {
            eprintln!("warning: trace timeline is not well-formed: {e}");
        }
        let chrome = serde_json::to_string_pretty(&timeline.to_chrome_trace())
            .expect("chrome trace serializes");
        let report = Telemetry { snapshot, timeline, trace_sample };
        let json = serde_json::to_string_pretty(&report).expect("telemetry serializes");
        // Atomic replace: a crash mid-write must never leave a truncated
        // telemetry file where a previous good one stood.
        tabmeta::contrastive::atomic_write(std::path::Path::new(&path), json.as_bytes())
            .expect("telemetry path is writable");
        println!("telemetry written to {path}");
        let trace_path = std::path::Path::new(&path).with_extension("trace.json");
        tabmeta::contrastive::atomic_write(&trace_path, chrome.as_bytes())
            .expect("trace path is writable");
        println!("chrome trace written to {}", trace_path.display());
    }
}
