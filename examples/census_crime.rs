//! Domain scenario 2 — government statistics (SAUS & CIUS): these corpora
//! ship **no HTML markup at all**, so the bootstrap phase must fall back
//! to the first-row/first-column positional heuristic (§III-B). This
//! example shows the weak labels that fallback produces, then the final
//! classification accuracy it still achieves — plus a comparison against
//! the Pytheas baseline trained on annotated tables.
//!
//! ```sh
//! cargo run --release --example census_crime
//! ```

use tabmeta::baselines::{Pytheas, PytheasConfig, TableClassifier};
use tabmeta::contrastive::{BootstrapLabeler, Pipeline, PipelineConfig};
use tabmeta::corpora::{CorpusKind, GeneratorConfig};
use tabmeta::eval::{standard_keys, LevelKey, LevelScores};
use tabmeta::tabular::Axis;

fn main() {
    for kind in [CorpusKind::Saus, CorpusKind::Cius] {
        let corpus = kind.generate(&GeneratorConfig { n_tables: 400, seed: 11 });
        assert!(corpus.tables.iter().all(|t| !t.has_markup), "government corpora carry no markup");
        let cut = corpus.len() * 7 / 10;
        let (train, test) = corpus.tables.split_at(cut);
        println!("=== {} ({} tables, zero markup) ===", kind.name(), corpus.len());

        // What the positional fallback sees on one table.
        let labeler = BootstrapLabeler::default();
        let sample = &train[0];
        let weak = labeler.label(sample);
        assert!(!weak.from_markup);
        println!(
            "  fallback weak labels on table {}: {} metadata rows, {} metadata columns",
            sample.id,
            weak.metadata_indices(Axis::Row).len(),
            weak.metadata_indices(Axis::Column).len()
        );

        // Unsupervised training on those weak labels alone.
        let pipeline = Pipeline::train(train, &PipelineConfig::fast_seeded(11)).expect("trains");
        let ours = LevelScores::evaluate(test, standard_keys(), |t| pipeline.classify(t).into());

        // Pytheas needs the annotations the paper charges it for.
        let pytheas = Pytheas::train(train, PytheasConfig::default());
        let base =
            LevelScores::evaluate(test, standard_keys(), |t| pytheas.classify_table(t).into());

        println!("  held-out accuracy (ours | Pytheas):");
        for k in 1..=3u8 {
            let key = LevelKey::Hmd(k);
            if ours.support(key).unwrap_or(0) < 5 {
                continue;
            }
            let o = ours.level_accuracy(key).unwrap() * 100.0;
            let p = base
                .level_accuracy(key)
                .map(|a| format!("{:5.1}%", a * 100.0))
                .unwrap_or_else(|| "    -".into());
            println!("    HMD{k}: {o:5.1}% | {p}   (Pytheas reports one level only)");
        }
        for k in 1..=3u8 {
            let key = LevelKey::Vmd(k);
            if ours.support(key).unwrap_or(0) < 5 {
                continue;
            }
            let o = ours.level_accuracy(key).unwrap() * 100.0;
            println!("    VMD{k}: {o:5.1}% |     -   (Pytheas has no VMD support)");
        }
        println!();
    }
}
