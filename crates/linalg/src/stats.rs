//! Online summary statistics (Welford's algorithm).
//!
//! The evaluation harness streams per-table angles and latencies through
//! these accumulators instead of buffering entire corpora; the paper's
//! runtime section (§IV-G) reports means over hundreds of thousands of
//! tables, which is exactly the regime Welford exists for.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean / variance / extrema accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (n−1 denominator); `None` with fewer than 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation; `None` with fewer than 2 samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Ordinary least-squares slope/intercept fit of `y` on `x`.
///
/// The runtime experiment checks §IV-G's claim that inference time scales
/// **linearly** with table size by fitting latency against cell count and
/// reporting the fit's R².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

/// Fit a least-squares line through `(x, y)` pairs.
///
/// Returns `None` with fewer than two points or when all `x` coincide.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(LinearFit { slope, intercept, r_squared })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_none() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.variance().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.min().unwrap(), 2.0);
        assert_eq!(s.max().unwrap(), 9.0);
    }

    #[test]
    fn non_finite_inputs_are_ignored() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean().unwrap(), 3.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean().unwrap() - all.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - all.variance().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(2.0);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
    }

    #[test]
    fn perfect_line_has_unit_r_squared() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_fits_return_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r_squared() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                (x, 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!(fit.r_squared > 0.99 && fit.r_squared < 1.0);
    }
}
