//! Centroids (Def. 6) and aggregated level vectors (Def. 8).
//!
//! The paper aggregates the term embeddings of one table level (a metadata
//! row, a data row, a metadata column, …) by **summation**, and builds
//! corpus-wide reference points as arithmetic-mean **centroids** over many
//! such aggregates. §III-C motivates summation over concatenation
//! (dimensionality preserved, cheap, empirically as good); the aggregation
//! ablation in `tabmeta-eval` exercises the alternatives, so mean
//! aggregation lives here too.

/// Sum a set of equal-length vectors into a fresh vector (Def. 8).
///
/// Returns `None` when `vectors` yields nothing — a level whose terms all
/// fell out of the vocabulary has no aggregate.
pub fn aggregate_sum<'a, I>(vectors: I) -> Option<Vec<f32>>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut iter = vectors.into_iter();
    let first = iter.next()?;
    let mut acc = first.to_vec();
    for v in iter {
        assert_eq!(acc.len(), v.len(), "aggregate_sum: dimension mismatch");
        crate::vector::add_assign(&mut acc, v);
    }
    Some(acc)
}

/// Arithmetic-mean aggregate, the ablation alternative to [`aggregate_sum`].
///
/// Note that mean and sum aggregates point in the **same direction**, so the
/// angle-based classifier is invariant between them; the ablation exists to
/// demonstrate exactly that.
pub fn aggregate_mean<'a, I>(vectors: I) -> Option<Vec<f32>>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut iter = vectors.into_iter();
    let first = iter.next()?;
    let mut acc = first.to_vec();
    let mut n = 1usize;
    for v in iter {
        assert_eq!(acc.len(), v.len(), "aggregate_mean: dimension mismatch");
        crate::vector::add_assign(&mut acc, v);
        n += 1;
    }
    crate::vector::scale(&mut acc, 1.0 / n as f32);
    Some(acc)
}

/// Centroid (arithmetic mean) of a set of vectors (Def. 6).
///
/// Functionally identical to [`aggregate_mean`]; kept as a separate name
/// because the paper distinguishes corpus-level *centroids* from per-table
/// *aggregated level vectors* and the call sites read better this way.
pub fn centroid<'a, I>(vectors: I) -> Option<Vec<f32>>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    aggregate_mean(vectors)
}

/// Concatenation aggregate for the ablation of §III-C: preserves every
/// feature at the cost of `n × dim` dimensionality. Only comparable between
/// levels with the same cell count, which is precisely the practical
/// objection the paper raises against it.
pub fn aggregate_concat<'a, I>(vectors: I) -> Option<Vec<f32>>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut out: Vec<f32> = Vec::new();
    let mut any = false;
    for v in vectors {
        out.extend_from_slice(v);
        any = true;
    }
    any.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::angle_degrees;

    #[test]
    fn sum_of_two() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, -1.0];
        let s = aggregate_sum([a.as_slice(), b.as_slice()]).unwrap();
        assert_eq!(s, vec![4.0, 1.0]);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(aggregate_sum(std::iter::empty::<&[f32]>()).is_none());
        assert!(aggregate_mean(std::iter::empty::<&[f32]>()).is_none());
        assert!(aggregate_concat(std::iter::empty::<&[f32]>()).is_none());
    }

    #[test]
    fn centroid_of_symmetric_points_is_origin() {
        let a = [1.0f32, 0.0];
        let b = [-1.0f32, 0.0];
        let c = centroid([a.as_slice(), b.as_slice()]).unwrap();
        assert_eq!(c, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_and_sum_share_direction() {
        let vs = [[1.0f32, 2.0, 0.5], [0.0, 1.0, 1.0], [2.0, 0.0, 0.0]];
        let sum = aggregate_sum(vs.iter().map(|v| v.as_slice())).unwrap();
        let mean = aggregate_mean(vs.iter().map(|v| v.as_slice())).unwrap();
        assert!(angle_degrees(&sum, &mean) < 1e-3);
    }

    #[test]
    fn concat_preserves_all_features() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let c = aggregate_concat([a.as_slice(), b.as_slice()]).unwrap();
        assert_eq!(c, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn single_vector_aggregates_to_itself() {
        let a = [1.5f32, -2.5];
        assert_eq!(aggregate_sum([a.as_slice()]).unwrap(), a.to_vec());
        assert_eq!(aggregate_mean([a.as_slice()]).unwrap(), a.to_vec());
    }
}
