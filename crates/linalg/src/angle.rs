//! Cosine similarity (paper Eq. 5) and angular distance in degrees
//! (Eqs. 6–8).
//!
//! The paper reports every centroid range and transition threshold in
//! degrees (e.g. `C_MDE-DE = 60° to 75°` for CORD-19), so degrees are the
//! canonical unit throughout tabmeta. Floating-point noise can push a raw
//! cosine fractionally outside `[-1, 1]`; we clamp before `acos` so angles
//! are always finite.

use crate::vector::{dot, norm};

/// Cosine similarity between two vectors (paper Eq. 5).
///
/// Returns `0.0` when either vector has zero norm: a level with no embedded
/// terms carries no directional information, and treating it as orthogonal
/// to everything keeps it out of every centroid range. Non-finite inputs
/// (NaN/∞ components, norm overflow) are treated the same way — a poisoned
/// vector must not leak NaN into every downstream range test.
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if !na.is_finite() || !nb.is_finite() || na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    cosine_from_parts(dot(a, b), na, nb)
}

/// [`cosine_similarity`] assembled from precomputed parts: the dot product
/// `d = a·b` and the two norms. Callers that already hold the parts (fused
/// kernels, per-level norm caches) get a result bit-identical to
/// [`cosine_similarity`] without re-traversing either slice, because the
/// guard order, the division, and the clamp are the same code path.
#[inline]
pub fn cosine_from_parts(d: f32, na: f32, nb: f32) -> f32 {
    if !na.is_finite() || !nb.is_finite() || na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let cos = d / (na * nb);
    if !cos.is_finite() {
        return 0.0;
    }
    cos.clamp(-1.0, 1.0)
}

/// [`angle_degrees`] assembled from precomputed parts; see
/// [`cosine_from_parts`] for the bit-identity argument.
#[inline]
pub fn angle_from_parts(d: f32, na: f32, nb: f32) -> f32 {
    cosine_from_parts(d, na, nb).acos().to_degrees()
}

/// Angle between two vectors in **degrees**, in `[0, 180]`.
///
/// This is the `Δ` of Definitions 14–16: `Δ = arccos(cos θ)` converted to
/// degrees. Zero-norm vectors yield 90° (orthogonal), consistent with
/// [`cosine_similarity`] returning zero.
#[inline]
pub fn angle_degrees(a: &[f32], b: &[f32]) -> f32 {
    cosine_similarity(a, b).acos().to_degrees()
}

/// Convert a cosine value to degrees, clamping into the valid domain.
/// Non-finite input reads as orthogonal (90°).
#[inline]
pub fn cosine_to_degrees(cos: f32) -> f32 {
    if !cos.is_finite() {
        return 90.0;
    }
    cos.clamp(-1.0, 1.0).acos().to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_angle() {
        let v = vec![0.2, 0.4, 0.4];
        assert!(angle_degrees(&v, &v) < 1e-3);
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn orthogonal_vectors_are_ninety_degrees() {
        assert!((angle_degrees(&[1.0, 0.0], &[0.0, 1.0]) - 90.0).abs() < 1e-4);
    }

    #[test]
    fn opposite_vectors_are_one_eighty() {
        assert!((angle_degrees(&[1.0, 0.0], &[-1.0, 0.0]) - 180.0).abs() < 1e-3);
    }

    #[test]
    fn non_finite_vectors_are_treated_as_orthogonal() {
        assert_eq!(cosine_similarity(&[f32::NAN, 1.0], &[1.0, 0.0]), 0.0);
        assert_eq!(cosine_similarity(&[f32::INFINITY, 1.0], &[1.0, 0.0]), 0.0);
        assert!((angle_degrees(&[f32::NAN, 1.0], &[1.0, 0.0]) - 90.0).abs() < 1e-4);
        assert!((cosine_to_degrees(f32::NAN) - 90.0).abs() < 1e-4);
        assert!(angle_degrees(&[f32::MAX, f32::MAX], &[1.0, 1.0]).is_finite());
    }

    #[test]
    fn zero_vector_is_treated_as_orthogonal() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert!((angle_degrees(&[0.0, 0.0], &[1.0, 2.0]) - 90.0).abs() < 1e-4);
    }

    #[test]
    fn scaling_does_not_change_angle() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -1.0, 2.0];
        let a10: Vec<f32> = a.iter().map(|x| x * 10.0).collect();
        assert!((angle_degrees(&a, &b) - angle_degrees(&a10, &b)).abs() < 1e-3);
    }

    #[test]
    fn forty_five_degrees() {
        let a = vec![1.0, 0.0];
        let b = vec![1.0, 1.0];
        assert!((angle_degrees(&a, &b) - 45.0).abs() < 1e-3);
    }

    #[test]
    fn parts_forms_are_bit_identical_to_slice_forms() {
        let a = vec![0.3, -1.2, 4.7, 0.01, -9.9];
        let b = vec![1.1, 2.2, -0.4, 3.0, 0.5];
        let d = dot(&a, &b);
        let (na, nb) = (norm(&a), norm(&b));
        assert_eq!(cosine_from_parts(d, na, nb).to_bits(), cosine_similarity(&a, &b).to_bits());
        assert_eq!(angle_from_parts(d, na, nb).to_bits(), angle_degrees(&a, &b).to_bits());
        // Degenerate norms short-circuit before touching the dot.
        assert_eq!(cosine_from_parts(f32::NAN, 0.0, 1.0), 0.0);
        assert_eq!(cosine_from_parts(f32::NAN, f32::INFINITY, 1.0), 0.0);
        assert!((angle_from_parts(1.0, 0.0, 0.0) - 90.0).abs() < 1e-4);
    }

    #[test]
    fn cosine_to_degrees_clamps_out_of_domain() {
        assert!((cosine_to_degrees(1.0000001) - 0.0).abs() < 1e-4);
        assert!((cosine_to_degrees(-1.0000001) - 180.0).abs() < 1e-3);
    }
}
