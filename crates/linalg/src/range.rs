//! Angle ranges — the `[min, max]` intervals of Definitions 11–13.
//!
//! A centroid in this paper is not a point but an **interval of observed
//! angles**: `C_MDE = [min ∠(mᵢ,mⱼ), max ∠(mᵢ,mⱼ)]` over aggregated
//! metadata level vectors, and likewise `C_DE` and `C_MDE-DE`. At corpus
//! scale the raw min/max are hostage to a single degenerate table, so the
//! estimator also supports percentile-trimmed ranges; the defaults
//! (5th–95th) reproduce the tidy intervals of paper Tables I–IV.

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A closed angle interval `[lo, hi]` in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngleRange {
    /// Lower bound in degrees.
    pub lo: f32,
    /// Upper bound in degrees.
    pub hi: f32,
}

/// The empty range is the `[+∞, −∞]` sentinel, which JSON cannot carry as
/// numbers — encode as `None`, every non-empty range as `Some((lo, hi))`.
impl Serialize for AngleRange {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        if self.is_empty() {
            serializer.serialize_none()
        } else {
            serializer.serialize_some(&(self.lo, self.hi))
        }
    }
}

impl<'de> Deserialize<'de> for AngleRange {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pair: Option<(f32, f32)> = Option::deserialize(deserializer)?;
        Ok(match pair {
            Some((lo, hi)) => AngleRange { lo, hi },
            None => AngleRange::empty(),
        })
    }
}

impl AngleRange {
    /// Construct a range; `lo` and `hi` are reordered if reversed.
    pub fn new(lo: f32, hi: f32) -> Self {
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self { lo: hi, hi: lo }
        }
    }

    /// An empty sentinel range that contains nothing.
    pub fn empty() -> Self {
        Self { lo: f32::INFINITY, hi: f32::NEG_INFINITY }
    }

    /// Whether the range holds no angles.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether `angle` (degrees) falls inside the closed interval.
    #[inline]
    pub fn contains(&self, angle: f32) -> bool {
        angle >= self.lo && angle <= self.hi
    }

    /// Grow the range to include `angle`.
    pub fn widen(&mut self, angle: f32) {
        self.lo = self.lo.min(angle);
        self.hi = self.hi.max(angle);
    }

    /// Smallest range covering both `self` and `other`.
    pub fn union(&self, other: &AngleRange) -> AngleRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        AngleRange { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Expand both ends by `margin` degrees, clamped into `[0, 180]`.
    ///
    /// The classifier uses a small slack margin so a previously unseen table
    /// whose angles sit a fraction outside the training range still
    /// classifies; the margin is a tuning knob of `ClassifierConfig`.
    pub fn expanded(&self, margin: f32) -> AngleRange {
        if self.is_empty() {
            return *self;
        }
        AngleRange { lo: (self.lo - margin).max(0.0), hi: (self.hi + margin).min(180.0) }
    }

    /// Midpoint of the interval; used when reporting a single representative
    /// `Δ` per paper table cell.
    pub fn midpoint(&self) -> f32 {
        (self.lo + self.hi) / 2.0
    }

    /// Distance from `angle` to the closest edge of the range
    /// (zero when inside). Used to break ties when an angle falls in the gap
    /// between two ranges.
    pub fn distance_to(&self, angle: f32) -> f32 {
        if self.is_empty() {
            return f32::INFINITY;
        }
        if angle < self.lo {
            self.lo - angle
        } else if angle > self.hi {
            angle - self.hi
        } else {
            0.0
        }
    }
}

/// Collects observed angles and estimates an [`AngleRange`].
///
/// The raw `[min, max]` estimate is available via [`RangeEstimator::raw`];
/// the trimmed estimate drops the configured tail mass on both sides before
/// taking the extremes, which is what the training phase records as the
/// corpus centroid range.
/// Serializes as its raw sample list so a partially-built estimator can
/// ride a checkpoint (the streaming trainer persists per-shard
/// accumulators) and resume with bit-identical state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RangeEstimator {
    samples: Vec<f32>,
}

impl RangeEstimator {
    /// New empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed angle in degrees.
    pub fn push(&mut self, angle: f32) {
        if angle.is_finite() {
            self.samples.push(angle);
        }
    }

    /// Bulk-record observed angles.
    pub fn extend(&mut self, angles: impl IntoIterator<Item = f32>) {
        for a in angles {
            self.push(a);
        }
    }

    /// Merge another estimator's samples into this one (the reduce step of
    /// map-reduce centroid estimation). Sample order does not affect any
    /// estimate — `trimmed` sorts and `mean`/`raw` are order-free — so
    /// merging per-shard estimators in any order matches the sequential
    /// stream exactly.
    pub fn merge(&mut self, other: &RangeEstimator) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Untrimmed `[min, max]` over all samples; [`AngleRange::empty`] when
    /// no samples were recorded.
    pub fn raw(&self) -> AngleRange {
        let mut r = AngleRange::empty();
        for &a in &self.samples {
            r.widen(a);
        }
        r
    }

    /// Percentile-trimmed range `[p_lo, p_hi]` (fractions in `[0,1]`).
    ///
    /// Uses nearest-rank percentiles on a sorted copy. With fewer than three
    /// samples trimming is meaningless and the raw range is returned.
    ///
    /// # Panics
    /// Panics if `p_lo > p_hi` or either is outside `[0, 1]`.
    pub fn trimmed(&self, p_lo: f64, p_hi: f64) -> AngleRange {
        assert!(
            (0.0..=1.0).contains(&p_lo) && (0.0..=1.0).contains(&p_hi) && p_lo <= p_hi,
            "trimmed: invalid percentile bounds ({p_lo}, {p_hi})"
        );
        if self.samples.len() < 3 {
            return self.raw();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite angle slipped in"));
        let n = sorted.len();
        let idx = |p: f64| -> usize {
            let i = (p * (n - 1) as f64).round() as usize;
            i.min(n - 1)
        };
        AngleRange::new(sorted[idx(p_lo)], sorted[idx(p_hi)])
    }

    /// The default corpus estimate: 5th–95th percentile trim.
    pub fn robust(&self) -> AngleRange {
        self.trimmed(0.05, 0.95)
    }

    /// Arithmetic mean of recorded angles (`None` when empty); the single
    /// representative `Δ` the paper quotes per table cell.
    pub fn mean(&self) -> Option<f32> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f32>() / self.samples.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_reorders_bounds() {
        let r = AngleRange::new(70.0, 30.0);
        assert_eq!(r.lo, 30.0);
        assert_eq!(r.hi, 70.0);
    }

    #[test]
    fn contains_is_closed() {
        let r = AngleRange::new(25.0, 45.0);
        assert!(r.contains(25.0));
        assert!(r.contains(45.0));
        assert!(r.contains(30.0));
        assert!(!r.contains(24.999));
        assert!(!r.contains(45.001));
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = AngleRange::empty();
        assert!(r.is_empty());
        assert!(!r.contains(0.0));
        assert!(!r.contains(90.0));
    }

    #[test]
    fn widen_and_union() {
        let mut r = AngleRange::empty();
        r.widen(40.0);
        r.widen(20.0);
        assert_eq!(r, AngleRange::new(20.0, 40.0));
        let u = r.union(&AngleRange::new(35.0, 60.0));
        assert_eq!(u, AngleRange::new(20.0, 60.0));
        assert_eq!(r.union(&AngleRange::empty()), r);
    }

    #[test]
    fn expanded_clamps_to_valid_degrees() {
        let r = AngleRange::new(2.0, 179.0).expanded(5.0);
        assert_eq!(r.lo, 0.0);
        assert_eq!(r.hi, 180.0);
    }

    #[test]
    fn distance_to_edges() {
        let r = AngleRange::new(30.0, 50.0);
        assert_eq!(r.distance_to(40.0), 0.0);
        assert_eq!(r.distance_to(25.0), 5.0);
        assert_eq!(r.distance_to(60.0), 10.0);
        assert_eq!(AngleRange::empty().distance_to(10.0), f32::INFINITY);
    }

    #[test]
    fn estimator_raw_range() {
        let mut e = RangeEstimator::new();
        e.extend([33.0, 61.0, 45.0]);
        assert_eq!(e.raw(), AngleRange::new(33.0, 61.0));
    }

    #[test]
    fn estimator_ignores_non_finite() {
        let mut e = RangeEstimator::new();
        e.push(f32::NAN);
        e.push(f32::INFINITY);
        e.push(42.0);
        assert_eq!(e.len(), 1);
        assert_eq!(e.raw(), AngleRange::new(42.0, 42.0));
    }

    #[test]
    fn trimming_drops_outliers() {
        let mut e = RangeEstimator::new();
        // 98 samples at 30..40, two wild outliers.
        e.extend((0..98).map(|i| 30.0 + (i as f32) / 9.8));
        e.push(5.0);
        e.push(170.0);
        let robust = e.robust();
        assert!(robust.lo >= 29.0 && robust.lo <= 32.0, "lo={}", robust.lo);
        assert!(robust.hi <= 41.0, "hi={}", robust.hi);
        let raw = e.raw();
        assert_eq!(raw.lo, 5.0);
        assert_eq!(raw.hi, 170.0);
    }

    #[test]
    fn trimming_small_sample_falls_back_to_raw() {
        let mut e = RangeEstimator::new();
        e.extend([10.0, 80.0]);
        assert_eq!(e.robust(), e.raw());
    }

    #[test]
    fn merged_estimators_match_sequential_stream() {
        let angles: Vec<f32> = (0..50).map(|i| 20.0 + i as f32).collect();
        let mut all = RangeEstimator::new();
        all.extend(angles.iter().copied());
        let mut left = RangeEstimator::new();
        left.extend(angles[..20].iter().copied());
        let mut right = RangeEstimator::new();
        right.extend(angles[20..].iter().copied());
        left.merge(&right);
        assert_eq!(left.len(), all.len());
        assert_eq!(left.raw(), all.raw());
        assert_eq!(left.robust(), all.robust());
        assert_eq!(left.mean(), all.mean());
    }

    #[test]
    fn mean_of_samples() {
        let mut e = RangeEstimator::new();
        assert!(e.mean().is_none());
        e.extend([10.0, 20.0, 30.0]);
        assert!((e.mean().unwrap() - 20.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "invalid percentile")]
    fn invalid_percentiles_panic() {
        let mut e = RangeEstimator::new();
        e.extend([1.0, 2.0, 3.0]);
        let _ = e.trimmed(0.9, 0.1);
    }
}
