//! Primitive slice operations.
//!
//! All functions operate on `&[f32]` / `&mut [f32]` so callers can keep
//! their vectors wherever they like (flat matrices, `Vec`s, arena slices)
//! without copies. Lengths must match; mismatches are programming errors and
//! panic with a clear message rather than silently truncating.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch {} vs {}", a.len(), b.len());
    // Chunked accumulation: 4 independent partial sums let LLVM vectorize
    // without `-ffast-math`-style reassociation assumptions.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        sum += a[j] * b[j];
    }
    sum
}

/// Euclidean (L2) norm of a vector.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Fused dot of one probe against two references: `(v·a, v·b)` in a single
/// pass over `v`.
///
/// Each output keeps its own 4-lane accumulator array walked in the exact
/// chunk order of [`dot`], so both results are bit-identical to two separate
/// `dot` calls — fusing only saves the second traversal of `v`, it never
/// reassociates a sum.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot2(v: &[f32], a: &[f32], b: &[f32]) -> (f32, f32) {
    assert_eq!(v.len(), a.len(), "dot2: dimension mismatch {} vs {}", v.len(), a.len());
    assert_eq!(v.len(), b.len(), "dot2: dimension mismatch {} vs {}", v.len(), b.len());
    let mut acc_a = [0.0f32; 4];
    let mut acc_b = [0.0f32; 4];
    let chunks = v.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc_a[0] += v[j] * a[j];
        acc_a[1] += v[j + 1] * a[j + 1];
        acc_a[2] += v[j + 2] * a[j + 2];
        acc_a[3] += v[j + 3] * a[j + 3];
        acc_b[0] += v[j] * b[j];
        acc_b[1] += v[j + 1] * b[j + 1];
        acc_b[2] += v[j + 2] * b[j + 2];
        acc_b[3] += v[j + 3] * b[j + 3];
    }
    let mut sum_a = acc_a[0] + acc_a[1] + acc_a[2] + acc_a[3];
    let mut sum_b = acc_b[0] + acc_b[1] + acc_b[2] + acc_b[3];
    for j in chunks * 4..v.len() {
        sum_a += v[j] * a[j];
        sum_b += v[j] * b[j];
    }
    (sum_a, sum_b)
}

/// Fused dot-plus-norm: `(v·a, ‖v‖)` in a single pass over `v`.
///
/// The self-product lane mirrors [`dot`]'s chunked accumulation exactly, so
/// the returned norm is bit-identical to [`norm`]`(v)` and the dot to
/// [`dot`]`(v, a)`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_norms(v: &[f32], a: &[f32]) -> (f32, f32) {
    assert_eq!(v.len(), a.len(), "dot_norms: dimension mismatch {} vs {}", v.len(), a.len());
    let mut acc_a = [0.0f32; 4];
    let mut acc_v = [0.0f32; 4];
    let chunks = v.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc_a[0] += v[j] * a[j];
        acc_a[1] += v[j + 1] * a[j + 1];
        acc_a[2] += v[j + 2] * a[j + 2];
        acc_a[3] += v[j + 3] * a[j + 3];
        acc_v[0] += v[j] * v[j];
        acc_v[1] += v[j + 1] * v[j + 1];
        acc_v[2] += v[j + 2] * v[j + 2];
        acc_v[3] += v[j + 3] * v[j + 3];
    }
    let mut sum_a = acc_a[0] + acc_a[1] + acc_a[2] + acc_a[3];
    let mut sum_v = acc_v[0] + acc_v[1] + acc_v[2] + acc_v[3];
    for j in chunks * 4..v.len() {
        sum_a += v[j] * a[j];
        sum_v += v[j] * v[j];
    }
    (sum_a, sum_v.sqrt())
}

/// Fused two-reference dot-plus-norm: `(v·a, v·b, ‖v‖)` in one pass.
///
/// This is the classifier's reference test (probe against both the metadata
/// and data centroids) collapsed from five slice traversals into one, with
/// every output bit-identical to its unfused counterpart for the same reason
/// as [`dot2`] and [`dot_norms`].
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot2_norms(v: &[f32], a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    assert_eq!(v.len(), a.len(), "dot2_norms: dimension mismatch {} vs {}", v.len(), a.len());
    assert_eq!(v.len(), b.len(), "dot2_norms: dimension mismatch {} vs {}", v.len(), b.len());
    let mut acc_a = [0.0f32; 4];
    let mut acc_b = [0.0f32; 4];
    let mut acc_v = [0.0f32; 4];
    let chunks = v.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc_a[0] += v[j] * a[j];
        acc_a[1] += v[j + 1] * a[j + 1];
        acc_a[2] += v[j + 2] * a[j + 2];
        acc_a[3] += v[j + 3] * a[j + 3];
        acc_b[0] += v[j] * b[j];
        acc_b[1] += v[j + 1] * b[j + 1];
        acc_b[2] += v[j + 2] * b[j + 2];
        acc_b[3] += v[j + 3] * b[j + 3];
        acc_v[0] += v[j] * v[j];
        acc_v[1] += v[j + 1] * v[j + 1];
        acc_v[2] += v[j + 2] * v[j + 2];
        acc_v[3] += v[j + 3] * v[j + 3];
    }
    let mut sum_a = acc_a[0] + acc_a[1] + acc_a[2] + acc_a[3];
    let mut sum_b = acc_b[0] + acc_b[1] + acc_b[2] + acc_b[3];
    let mut sum_v = acc_v[0] + acc_v[1] + acc_v[2] + acc_v[3];
    for j in chunks * 4..v.len() {
        sum_a += v[j] * a[j];
        sum_b += v[j] * b[j];
        sum_v += v[j] * v[j];
    }
    (sum_a, sum_b, sum_v.sqrt())
}

/// `a += b` element-wise.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "add_assign: dimension mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a -= b` element-wise.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn sub_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "sub_assign: dimension mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x -= y;
    }
}

/// `a += alpha * b` (the BLAS `axpy` kernel); the workhorse of SGNS updates.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f32, b: &[f32], a: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "axpy: dimension mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// `a *= alpha` element-wise.
#[inline]
pub fn scale(a: &mut [f32], alpha: f32) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

/// Normalize `a` to unit length in place.
///
/// A zero vector is left untouched (there is no direction to normalize to);
/// callers that care distinguish this via [`norm`] being zero.
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
}

/// Squared Euclidean distance, used by the ablation comparing angular
/// classification against raw Euclidean distance (paper §III-C discussion).
#[inline]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean_sq: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two vectors.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    euclidean_sq(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| (36 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn fused_kernels_are_bit_identical_to_separate_calls() {
        // Awkward length (not a multiple of 4) exercises the tail loop.
        let v: Vec<f32> = (0..37).map(|i| (i as f32 - 11.0) * 0.37).collect();
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.11 - 2.0).collect();
        let b: Vec<f32> = (0..37).map(|i| (17 - i) as f32 * 0.29).collect();
        let (da, db) = dot2(&v, &a, &b);
        assert_eq!(da.to_bits(), dot(&v, &a).to_bits());
        assert_eq!(db.to_bits(), dot(&v, &b).to_bits());
        let (da2, nv) = dot_norms(&v, &a);
        assert_eq!(da2.to_bits(), dot(&v, &a).to_bits());
        assert_eq!(nv.to_bits(), norm(&v).to_bits());
        let (da3, db3, nv3) = dot2_norms(&v, &a, &b);
        assert_eq!(da3.to_bits(), dot(&v, &a).to_bits());
        assert_eq!(db3.to_bits(), dot(&v, &b).to_bits());
        assert_eq!(nv3.to_bits(), norm(&v).to_bits());
    }

    #[test]
    fn fused_kernels_on_empty_slices() {
        assert_eq!(dot2(&[], &[], &[]), (0.0, 0.0));
        assert_eq!(dot_norms(&[], &[]), (0.0, 0.0));
        assert_eq!(dot2_norms(&[], &[], &[]), (0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot2_mismatch_panics() {
        dot2(&[1.0], &[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_norms_mismatch_panics() {
        dot_norms(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert!((norm(&[1.0, 0.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -1.0, 2.0];
        add_assign(&mut a, &b);
        assert_eq!(a, vec![1.5, 1.0, 5.0]);
        sub_assign(&mut a, &b);
        assert_eq!(a, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut a);
        assert_eq!(a, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_unit_length() {
        let mut a = vec![3.0, 4.0];
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut a = vec![0.0, 0.0, 0.0];
        normalize(&mut a);
        assert_eq!(a, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn euclidean_basics() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(euclidean_sq(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut a = vec![5.0, -2.0];
        scale(&mut a, 0.0);
        assert_eq!(a, vec![0.0, 0.0]);
    }
}
