//! Row-major flat `f32` matrix used as embedding storage.
//!
//! Both embedding models hold two of these (input/"term" vectors and
//! output/"context" vectors). Keeping all rows in one contiguous allocation
//! is the standard SGNS layout: row access is a bounds-checked slice, cache
//! behaviour is predictable, and the whole table serializes in one shot.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};

/// A dense `rows × dim` matrix stored row-major in one `Vec<f32>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self { rows, dim, data: vec![0.0; rows * dim] }
    }

    /// Matrix initialized uniformly in `[-0.5/dim, 0.5/dim]` — the classic
    /// word2vec input-matrix initialization, which keeps initial aggregated
    /// vectors near the origin so early training dominates geometry.
    pub fn uniform_init<R: Rng + ?Sized>(rows: usize, dim: usize, rng: &mut R) -> Self {
        assert!(dim > 0, "uniform_init: zero dimension");
        let half = 0.5 / dim as f32;
        let data = (0..rows * dim).map(|_| rng.random_range(-half..half)).collect();
        Self { rows, dim, data }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * dim`.
    pub fn from_flat(rows: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * dim, "from_flat: buffer length mismatch");
        Self { rows, dim, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Disjoint mutable views of two distinct rows, for the SGNS update
    /// which touches a center row and a context row simultaneously.
    ///
    /// # Panics
    /// Panics if `i == j` or either index is out of bounds.
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(i, j, "two_rows_mut: identical rows");
        let dim = self.dim;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * dim);
            (&mut a[i * dim..(i + 1) * dim], &mut b[..dim])
        } else {
            let (a, b) = self.data.split_at_mut(i * dim);
            let (bj, bi) = (&mut a[j * dim..(j + 1) * dim], &mut b[..dim]);
            (bi, bj)
        }
    }

    /// Iterate over rows in order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// The raw flat buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// L2-normalize every row in place (used before nearest-neighbour
    /// queries so dot product equals cosine).
    pub fn normalize_rows(&mut self) {
        for r in self.data.chunks_exact_mut(self.dim) {
            crate::vector::normalize(r);
        }
    }

    /// Reinterpret the storage as a [`HogwildView`] of relaxed atomic
    /// cells, enabling lock-free data-parallel (Hogwild-style) updates
    /// from multiple threads.
    ///
    /// The exclusive borrow guarantees no plain `&[f32]` access can alias
    /// the view for its lifetime, and every element access through the
    /// view is a relaxed atomic load/store on the `f32` bit pattern — so
    /// concurrent updates are free of data races in the language sense.
    /// Lost updates between racing read-modify-write cycles are accepted,
    /// exactly as in word2vec.c / Hogwild! SGD.
    pub fn hogwild(&mut self) -> HogwildView<'_> {
        let len = self.data.len();
        let ptr = self.data.as_mut_ptr().cast::<AtomicU32>();
        // SAFETY: `AtomicU32` has the same size and alignment as `f32`,
        // and the `&mut self` borrow makes this the only access path to
        // the buffer for the view's lifetime.
        let cells = unsafe { std::slice::from_raw_parts(ptr, len) };
        HogwildView { cells, dim: self.dim }
    }
}

/// A `Sync` view over a [`Matrix`] whose elements are accessed as relaxed
/// atomics — the storage layer of Hogwild SGNS training.
///
/// All operations use `Ordering::Relaxed`: per-element atomicity without
/// cross-element consistency, which is the Hogwild contract (sparse,
/// mostly-disjoint updates tolerate occasional lost writes).
pub struct HogwildView<'a> {
    cells: &'a [AtomicU32],
    dim: usize,
}

impl HogwildView<'_> {
    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.cells.len() / self.dim
    }

    #[inline]
    fn row_cells(&self, i: usize) -> &[AtomicU32] {
        &self.cells[i * self.dim..(i + 1) * self.dim]
    }

    /// Copy row `i` into `out`.
    #[inline]
    pub fn read_row(&self, i: usize, out: &mut [f32]) {
        for (o, c) in out.iter_mut().zip(self.row_cells(i)) {
            *o = f32::from_bits(c.load(Ordering::Relaxed));
        }
    }

    /// `out += row_i` (element-wise, relaxed loads).
    #[inline]
    pub fn accumulate_row(&self, i: usize, out: &mut [f32]) {
        for (o, c) in out.iter_mut().zip(self.row_cells(i)) {
            *o += f32::from_bits(c.load(Ordering::Relaxed));
        }
    }

    /// Dot product of row `i` with a thread-local vector.
    #[inline]
    pub fn dot_row(&self, i: usize, x: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (xv, c) in x.iter().zip(self.row_cells(i)) {
            acc += xv * f32::from_bits(c.load(Ordering::Relaxed));
        }
        acc
    }

    /// `row_i += scale · x` — the Hogwild axpy. Each element is an
    /// independent relaxed load-add-store; racing writers may lose
    /// updates, never corrupt them.
    #[inline]
    pub fn update_row(&self, i: usize, scale: f32, x: &[f32]) {
        for (xv, c) in x.iter().zip(self.row_cells(i)) {
            let cur = f32::from_bits(c.load(Ordering::Relaxed));
            c.store((cur + scale * xv).to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 4);
        assert!(m.as_flat().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn uniform_init_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::uniform_init(10, 20, &mut rng);
        let half = 0.5 / 20.0;
        assert!(m.as_flat().iter().all(|&x| x >= -half && x < half));
        let mut rng2 = StdRng::seed_from_u64(7);
        let m2 = Matrix::uniform_init(10, 20, &mut rng2);
        assert_eq!(m, m2, "same seed must reproduce the same matrix");
    }

    #[test]
    fn row_views_are_disjoint_and_correct() {
        let mut m = Matrix::zeros(3, 2);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = Matrix::from_flat(3, 2, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        {
            let (a, b) = m.two_rows_mut(0, 2);
            assert_eq!(a, &[0.0, 1.0]);
            assert_eq!(b, &[20.0, 21.0]);
            a[0] = 99.0;
            b[1] = -1.0;
        }
        {
            let (a, b) = m.two_rows_mut(2, 0);
            assert_eq!(a, &[20.0, -1.0]);
            assert_eq!(b, &[99.0, 1.0]);
        }
    }

    #[test]
    #[should_panic(expected = "identical rows")]
    fn two_rows_mut_same_index_panics() {
        let mut m = Matrix::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }

    #[test]
    fn normalize_rows_leaves_unit_rows() {
        let mut m = Matrix::from_flat(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        m.normalize_rows();
        assert!((crate::vector::norm(m.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0], "zero rows stay zero");
    }

    #[test]
    fn iter_rows_yields_all() {
        let m = Matrix::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[1., 2., 3.][..], &[4., 5., 6.][..]]);
    }

    #[test]
    #[should_panic]
    fn from_flat_length_mismatch_panics() {
        let _ = Matrix::from_flat(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn hogwild_view_reads_and_updates_rows() {
        let mut m = Matrix::from_flat(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        {
            let view = m.hogwild();
            assert_eq!(view.rows(), 2);
            assert_eq!(view.dim(), 3);
            let mut buf = vec![0.0; 3];
            view.read_row(1, &mut buf);
            assert_eq!(buf, vec![4.0, 5.0, 6.0]);
            assert_eq!(view.dot_row(0, &[1.0, 1.0, 1.0]), 6.0);
            view.update_row(0, 2.0, &[1.0, 0.0, 1.0]);
            view.accumulate_row(0, &mut buf);
        }
        assert_eq!(m.row(0), &[3.0, 2.0, 5.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn hogwild_view_is_safe_across_threads() {
        // 4 threads × 1000 disjoint-row updates must all land (no races on
        // distinct rows); same-row totals stay plausible under Hogwild.
        let mut m = Matrix::zeros(4, 8);
        {
            let view = m.hogwild();
            std::thread::scope(|s| {
                for t in 0..4usize {
                    let view = &view;
                    s.spawn(move || {
                        for _ in 0..1000 {
                            view.update_row(t, 1.0, &[1.0; 8]);
                        }
                    });
                }
            });
        }
        for t in 0..4 {
            assert!(m.row(t).iter().all(|&x| x == 1000.0), "row {t}: {:?}", m.row(t));
        }
    }
}
