//! Dense vector math underlying the tabmeta pipeline.
//!
//! Everything in the paper's methodology reduces to a small set of geometric
//! primitives over `f32` vectors:
//!
//! * dot products, Euclidean norms and **cosine similarity** (paper Eq. 5),
//! * **angles in degrees** between aggregated level vectors (Eqs. 6–8),
//! * **centroids** (arithmetic means, Def. 6) and **aggregated level
//!   vectors** (summations, Def. 8),
//! * **angle ranges** `[min, max]` — the centroid ranges `C_MDE`, `C_DE`
//!   and `C_MDE-DE` of Defs. 11–13 — with percentile trimming so a handful
//!   of outlier tables cannot blow the range open,
//! * online summary statistics used by the evaluation harness.
//!
//! The crate is deliberately free of any table- or embedding-specific types
//! so it can be property-tested in isolation.

pub mod angle;
pub mod centroid;
pub mod matrix;
pub mod range;
pub mod stats;
pub mod vector;

pub use angle::{
    angle_degrees, angle_from_parts, cosine_from_parts, cosine_similarity, cosine_to_degrees,
};
pub use centroid::{aggregate_concat, aggregate_mean, aggregate_sum, centroid};
pub use matrix::{HogwildView, Matrix};
pub use range::{AngleRange, RangeEstimator};
pub use stats::{linear_fit, LinearFit, OnlineStats};
pub use vector::{
    add_assign, axpy, dot, dot2, dot2_norms, dot_norms, euclidean, euclidean_sq, norm, normalize,
    scale, sub_assign,
};
