//! Property-based tests for the geometric primitives: the classifier's
//! correctness rests on these invariants holding for *any* input, not just
//! the handful of fixtures in unit tests.

use proptest::prelude::*;
use tabmeta_linalg::{
    aggregate_mean, aggregate_sum, angle_degrees, angle_from_parts, cosine_from_parts,
    cosine_similarity, dot, dot2, dot2_norms, dot_norms, norm, AngleRange, Matrix, OnlineStats,
    RangeEstimator,
};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len..=len)
}

/// Three equal-length vectors of an arbitrary (possibly tail-heavy) length,
/// with components wide enough to hit subnormals-adjacent and large values.
fn vec_triple() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<f32>)> {
    (0usize..33).prop_flat_map(|len| {
        (
            proptest::collection::vec(-1e6f32..1e6, len..=len),
            proptest::collection::vec(-1e6f32..1e6, len..=len),
            proptest::collection::vec(-1e6f32..1e6, len..=len),
        )
    })
}

proptest! {
    #[test]
    fn cosine_is_bounded(a in finite_vec(16), b in finite_vec(16)) {
        let c = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c), "cosine out of range: {c}");
    }

    #[test]
    fn cosine_is_symmetric(a in finite_vec(12), b in finite_vec(12)) {
        let ab = cosine_similarity(&a, &b);
        let ba = cosine_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-5);
    }

    #[test]
    fn angle_is_finite_and_in_degrees(a in finite_vec(8), b in finite_vec(8)) {
        let d = angle_degrees(&a, &b);
        prop_assert!(d.is_finite());
        prop_assert!((0.0..=180.0).contains(&d), "angle out of range: {d}");
    }

    #[test]
    fn angle_is_scale_invariant(a in finite_vec(8), b in finite_vec(8), s in 0.01f32..50.0) {
        prop_assume!(tabmeta_linalg::norm(&a) > 1e-3 && tabmeta_linalg::norm(&b) > 1e-3);
        let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
        let d1 = angle_degrees(&a, &b);
        let d2 = angle_degrees(&scaled, &b);
        prop_assert!((d1 - d2).abs() < 0.1, "{d1} vs {d2}");
    }

    #[test]
    fn self_angle_is_zero(a in finite_vec(10)) {
        prop_assume!(tabmeta_linalg::norm(&a) > 1e-3);
        prop_assert!(angle_degrees(&a, &a) < 0.5);
    }

    #[test]
    fn sum_and_mean_aggregates_are_parallel(
        vs in proptest::collection::vec(finite_vec(6), 1..8)
    ) {
        let slices: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let sum = aggregate_sum(slices.iter().copied()).unwrap();
        let mean = aggregate_mean(slices.iter().copied()).unwrap();
        prop_assume!(tabmeta_linalg::norm(&sum) > 1e-3);
        prop_assert!(angle_degrees(&sum, &mean) < 0.5);
    }

    #[test]
    fn estimator_trimmed_is_within_raw(angles in proptest::collection::vec(0.0f32..180.0, 3..200)) {
        let mut e = RangeEstimator::new();
        e.extend(angles.iter().copied());
        let raw = e.raw();
        let robust = e.robust();
        prop_assert!(robust.lo >= raw.lo - 1e-6);
        prop_assert!(robust.hi <= raw.hi + 1e-6);
        prop_assert!(robust.lo <= robust.hi);
    }

    #[test]
    fn estimator_mean_is_within_raw_range(angles in proptest::collection::vec(0.0f32..180.0, 1..100)) {
        let mut e = RangeEstimator::new();
        e.extend(angles.iter().copied());
        let raw = e.raw();
        let m = e.mean().unwrap();
        prop_assert!(m >= raw.lo - 1e-3 && m <= raw.hi + 1e-3);
    }

    #[test]
    fn range_union_contains_both(lo1 in 0.0f32..90.0, w1 in 0.0f32..90.0,
                                 lo2 in 0.0f32..90.0, w2 in 0.0f32..90.0,
                                 probe in 0.0f32..180.0) {
        let r1 = AngleRange::new(lo1, lo1 + w1);
        let r2 = AngleRange::new(lo2, lo2 + w2);
        let u = r1.union(&r2);
        if r1.contains(probe) || r2.contains(probe) {
            prop_assert!(u.contains(probe));
        }
    }

    #[test]
    fn range_expanded_is_superset(lo in 0.0f32..90.0, w in 0.0f32..60.0,
                                  margin in 0.0f32..30.0, probe in 0.0f32..180.0) {
        let r = AngleRange::new(lo, lo + w);
        if r.contains(probe) {
            prop_assert!(r.expanded(margin).contains(probe));
        }
    }

    #[test]
    fn online_stats_mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs { s.push(x); }
        let m = s.mean().unwrap();
        prop_assert!(m >= s.min().unwrap() - 1e-6);
        prop_assert!(m <= s.max().unwrap() + 1e-6);
    }

    #[test]
    fn online_stats_merge_is_order_independent(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split in 1usize..99
    ) {
        let split = split.min(xs.len() - 1);
        let (l, r) = xs.split_at(split);
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in l { a.push(x); }
        for &x in r { b.push(x); }
        let mut ab = a; ab.merge(&b);
        let mut ba = b; ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean().unwrap() - ba.mean().unwrap()).abs() < 1e-9);
    }

    // The classifier's fused kernels must be EXACTLY equal to the separate
    // calls they replace — bit equality, not tolerance — because verdict
    // parity between the cached and uncached classify paths depends on it.
    #[test]
    fn dot2_is_bit_identical_to_two_dots((v, a, b) in vec_triple()) {
        let (da, db) = dot2(&v, &a, &b);
        prop_assert_eq!(da.to_bits(), dot(&v, &a).to_bits());
        prop_assert_eq!(db.to_bits(), dot(&v, &b).to_bits());
    }

    #[test]
    fn dot_norms_is_bit_identical_to_dot_plus_norm((v, a, _b) in vec_triple()) {
        let (d, n) = dot_norms(&v, &a);
        prop_assert_eq!(d.to_bits(), dot(&v, &a).to_bits());
        prop_assert_eq!(n.to_bits(), norm(&v).to_bits());
    }

    #[test]
    fn dot2_norms_is_bit_identical_to_three_calls((v, a, b) in vec_triple()) {
        let (da, db, n) = dot2_norms(&v, &a, &b);
        prop_assert_eq!(da.to_bits(), dot(&v, &a).to_bits());
        prop_assert_eq!(db.to_bits(), dot(&v, &b).to_bits());
        prop_assert_eq!(n.to_bits(), norm(&v).to_bits());
    }

    #[test]
    fn parts_angle_is_bit_identical_to_slice_angle((v, a, _b) in vec_triple()) {
        let c = cosine_from_parts(dot(&v, &a), norm(&v), norm(&a));
        prop_assert_eq!(c.to_bits(), cosine_similarity(&v, &a).to_bits());
        let d = angle_from_parts(dot(&v, &a), norm(&v), norm(&a));
        prop_assert_eq!(d.to_bits(), angle_degrees(&v, &a).to_bits());
    }

    #[test]
    fn matrix_rows_roundtrip(rows in 1usize..10, dim in 1usize..16, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::uniform_init(rows, dim, &mut rng);
        let collected: Vec<f32> = m.iter_rows().flatten().copied().collect();
        prop_assert_eq!(collected.as_slice(), m.as_flat());
    }
}
