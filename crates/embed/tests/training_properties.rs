//! Training-level properties of the embedding models: determinism,
//! vector sanity, OOV behaviour, persistence, neighbourhood structure.

use tabmeta_embed::{
    sentences_from_tables, CharGram, CharGramConfig, SentenceConfig, SgnsConfig, TermEmbedder,
    Word2Vec,
};
use tabmeta_text::Tokenizer;

fn sentences() -> Vec<Vec<String>> {
    // A tiny corpus with a clear co-occurrence structure: headers with
    // headers, data-class tokens with data-class tokens.
    let mut out = Vec::new();
    for _ in 0..60 {
        out.push(vec!["age".into(), "sex".into(), "count".into(), "rate".into()]);
        out.push(vec!["<int>".into(), "<pct>".into(), "<bigint>".into(), "<dec>".into()]);
        out.push(vec!["male".into(), "female".into(), "total".into()]);
    }
    out
}

fn cfg(seed: u64) -> SgnsConfig {
    SgnsConfig { dim: 24, epochs: 6, seed, ..Default::default() }
}

#[test]
fn training_is_deterministic() {
    let s = sentences();
    let (a, ra) = Word2Vec::train(&s, cfg(3));
    let (b, rb) = Word2Vec::train(&s, cfg(3));
    assert_eq!(ra.pairs, rb.pairs);
    let mut va = vec![0.0; a.dim()];
    let mut vb = vec![0.0; b.dim()];
    assert!(a.accumulate("age", &mut va));
    assert!(b.accumulate("age", &mut vb));
    assert_eq!(va, vb);
}

#[test]
fn different_seeds_differ() {
    let s = sentences();
    let (a, _) = Word2Vec::train(&s, cfg(3));
    let (b, _) = Word2Vec::train(&s, cfg(4));
    let mut va = vec![0.0; a.dim()];
    let mut vb = vec![0.0; b.dim()];
    a.accumulate("age", &mut va);
    b.accumulate("age", &mut vb);
    assert_ne!(va, vb);
}

#[test]
fn vectors_are_finite_and_nonzero() {
    let s = sentences();
    let (m, _) = Word2Vec::train(&s, cfg(9));
    for term in ["age", "sex", "<int>", "male"] {
        let mut v = vec![0.0; m.dim()];
        assert!(m.accumulate(term, &mut v), "{term} must be in vocab");
        assert!(v.iter().all(|x| x.is_finite()), "{term} has non-finite components");
        assert!(v.iter().any(|x| *x != 0.0), "{term} is the zero vector");
    }
}

#[test]
fn cooccurrence_shapes_neighbourhoods() {
    let s = sentences();
    let (m, _) = Word2Vec::train(&s, cfg(11));
    // "age" co-occurs with "sex"; its top neighbours should rank a fellow
    // header above a numeric-class token.
    let neighbours = m.most_similar("age", 5);
    assert!(!neighbours.is_empty());
    let rank = |t: &str| neighbours.iter().position(|(n, _)| n == t);
    if let (Some(header), Some(numeric)) = (rank("sex"), rank("<int>")) {
        assert!(header < numeric, "header should be nearer than numeric: {neighbours:?}");
    } else {
        assert!(rank("sex").is_some(), "co-occurring header must be a neighbour");
    }
}

#[test]
fn word2vec_oov_is_silent_but_chargram_covers_it() {
    let s = sentences();
    let (w2v, _) = Word2Vec::train(&s, cfg(5));
    let (cg, _) = CharGram::train(&s, CharGramConfig { sgns: cfg(5), ..CharGramConfig::tiny(5) });
    let mut v = vec![0.0; w2v.dim()];
    assert!(!w2v.accumulate("unseenword", &mut v), "word model cannot embed OOV");
    assert!(v.iter().all(|x| *x == 0.0));
    let mut v = vec![0.0; cg.dim()];
    assert!(cg.accumulate("unseenword", &mut v), "subword model embeds OOV");
    assert!(v.iter().any(|x| *x != 0.0));
}

#[test]
fn persistence_roundtrips_both_models() {
    let s = sentences();
    let (w2v, _) = Word2Vec::train(&s, cfg(6));
    let back = Word2Vec::from_json(&w2v.to_json()).unwrap();
    let mut a = vec![0.0; w2v.dim()];
    let mut b = vec![0.0; back.dim()];
    w2v.accumulate("count", &mut a);
    back.accumulate("count", &mut b);
    assert_eq!(a, b);

    let (cg, _) = CharGram::train(&s, CharGramConfig { sgns: cfg(6), ..CharGramConfig::tiny(6) });
    let back = CharGram::from_json(&cg.to_json()).unwrap();
    let mut a = vec![0.0; cg.dim()];
    let mut b = vec![0.0; back.dim()];
    cg.accumulate("novelterm", &mut a);
    back.accumulate("novelterm", &mut b);
    assert_eq!(a, b, "subword hashing must survive persistence");
}

#[test]
fn sentences_extract_rows_and_columns() {
    use tabmeta_tabular::Table;
    let t = Table::from_strings(1, &[&["age", "sex"], &["61", "male"]]);
    let sents = sentences_from_tables(
        std::slice::from_ref(&t),
        &Tokenizer::default(),
        &SentenceConfig::default(),
    );
    // Row sentences and column sentences both appear.
    assert!(sents.iter().any(|s| s.contains(&"age".to_string()) && s.contains(&"sex".to_string())));
    assert!(sents
        .iter()
        .any(|s| s.contains(&"age".to_string()) && s.contains(&"<int>".to_string())));
}

#[test]
fn empty_sentence_set_trains_empty_model() {
    let (m, report) = Word2Vec::train(&[], cfg(1));
    assert_eq!(report.pairs, 0);
    let mut v = vec![0.0; m.dim()];
    assert!(!m.accumulate("anything", &mut v));
}
