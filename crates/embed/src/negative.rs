//! Negative-sampling distribution for SGNS.
//!
//! Standard word2vec construction: terms are drawn with probability
//! proportional to `count^0.75`, flattening the head of the Zipf curve so
//! frequent terms do not monopolize the negative samples. Implemented as
//! the classic precomputed index table (O(1) draws).

use rand::Rng;
use tabmeta_text::Vocabulary;

/// Precomputed unigram^0.75 sampling table.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    table: Vec<u32>,
}

impl NegativeTable {
    /// Default table size — large enough that tail terms still appear.
    pub const DEFAULT_SIZE: usize = 1 << 20;

    /// Build from vocabulary counts with the 3/4 power distortion.
    ///
    /// Terms with zero count (interned but never observed) are excluded.
    ///
    /// # Panics
    /// Panics if the vocabulary has no counted terms.
    pub fn build(vocab: &Vocabulary, size: usize) -> Self {
        let weights: Vec<f64> = vocab.counts().iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "NegativeTable::build: vocabulary has no counted terms");
        let mut table = Vec::with_capacity(size);
        let mut cum = 0.0f64;
        let mut idx = 0usize;
        // March a cursor through the cumulative distribution.
        cum += weights[0] / total;
        for i in 0..size {
            let target = (i as f64 + 0.5) / size as f64;
            while target > cum && idx + 1 < weights.len() {
                idx += 1;
                cum += weights[idx] / total;
            }
            table.push(idx as u32);
        }
        Self { table }
    }

    /// Draw one negative term id.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.table[rng.random_range(0..self.table.len())]
    }

    /// Table length (for tests).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true after a successful build).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vocab_with_counts(counts: &[(&str, u64)]) -> Vocabulary {
        let mut v = Vocabulary::new();
        for (term, n) in counts {
            for _ in 0..*n {
                v.add(term);
            }
        }
        v
    }

    #[test]
    fn frequent_terms_sample_more_often() {
        let v = vocab_with_counts(&[("common", 900), ("rare", 10)]);
        let table = NegativeTable::build(&v, 10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1] * 3, "common={} rare={}", counts[0], counts[1]);
        // But distortion keeps the rare term alive.
        assert!(counts[1] > 50, "rare term starved: {}", counts[1]);
    }

    #[test]
    fn distortion_flattens_relative_to_raw_frequency() {
        let v = vocab_with_counts(&[("head", 10_000), ("tail", 100)]);
        let table = NegativeTable::build(&v, 100_000);
        let tail_share =
            table.table.iter().filter(|&&id| id == 1).count() as f64 / table.len() as f64;
        let raw_share = 100.0 / 10_100.0; // ≈ 0.0099
        assert!(tail_share > raw_share * 2.0, "tail share {tail_share} not flattened");
    }

    #[test]
    fn all_counted_terms_appear() {
        let v = vocab_with_counts(&[("a", 5), ("b", 5), ("c", 5)]);
        let table = NegativeTable::build(&v, 3_000);
        for id in 0..3u32 {
            assert!(table.table.contains(&id), "term {id} missing from table");
        }
    }

    #[test]
    fn zero_count_interned_terms_are_skipped() {
        let mut v = vocab_with_counts(&[("real", 10)]);
        v.intern("<pct>"); // zero count
        let table = NegativeTable::build(&v, 1_000);
        assert!(table.table.iter().all(|&id| id == 0));
    }

    #[test]
    #[should_panic(expected = "no counted terms")]
    fn empty_vocab_panics() {
        let _ = NegativeTable::build(&Vocabulary::new(), 100);
    }
}
