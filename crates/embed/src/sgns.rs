//! Skip-gram-with-negative-sampling training core, shared by both
//! embedding models.
//!
//! Given sentences of term ids, one training step takes a `(center,
//! context)` pair plus `k` negatives and performs the classic SGD update
//! on the input/output matrices:
//!
//! ```text
//!   g = (label − σ(v_in · v_out)) · lr
//!   v_out += g · v_in;   accumulated_grad += g · v_out_old
//! ```
//!
//! The sigmoid is looked up from a precomputed table (word2vec's standard
//! trick); the learning rate decays linearly over the full training run.
//!
//! Training parallelism is governed by [`SgnsConfig::threads`]:
//!
//! * `threads = 1` (the default) runs the fully deterministic sequential
//!   path — one RNG stream, bit-identical embeddings for a given seed,
//!   which is what every determinism test pins.
//! * `threads > 1` runs lock-free **Hogwild** SGD (Recht et al.; the
//!   word2vec.c threading model): sentences are sharded across workers,
//!   each worker draws from its own RNG stream (`seed ⊕ worker_id`) and
//!   decays its learning rate over its own shard, and all workers update
//!   the shared input/output matrices through relaxed-atomic rows
//!   ([`tabmeta_linalg::HogwildView`]). Updates may race and occasionally
//!   lose a write — the Hogwild trade-off that buys near-linear scaling
//!   at a small, bounded accuracy cost (see DESIGN.md).
// Grid construction walks coordinates; index loops are the clear form here.
#![allow(clippy::needless_range_loop)]

use crate::negative::NegativeTable;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tabmeta_linalg::Matrix;

/// Hyper-parameters of SGNS training.
///
/// Defaults follow §IV-C: window 3, `min_count` 1. The paper uses
/// dimensionality 300 for Word2Vec; tests and small corpora use less (the
/// paper itself reports no gain beyond 300, and below ~64 the angle ranges
/// merely widen).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius (paper: 3 before and after the target).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub learning_rate: f32,
    /// Training epochs over the sentence set.
    pub epochs: usize,
    /// Minimum term count for vocabulary inclusion (paper: 1).
    pub min_count: u64,
    /// RNG seed — all sampling derives from it.
    pub seed: u64,
    /// Worker threads for training. `1` (default) is the sequential,
    /// bit-deterministic path; `>1` enables Hogwild sharding, where the
    /// result depends on update interleaving and is only statistically
    /// reproducible.
    pub threads: usize,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 300,
            window: 3,
            negative: 5,
            learning_rate: 0.025,
            epochs: 5,
            min_count: 1,
            seed: 0x7ab_3e7a,
            threads: 1,
        }
    }
}

impl SgnsConfig {
    /// A small, fast configuration for tests and examples.
    pub fn tiny(seed: u64) -> Self {
        Self { dim: 32, epochs: 3, seed, ..Self::default() }
    }
}

/// Precomputed logistic sigmoid over `[-MAX_EXP, MAX_EXP]`.
#[derive(Debug, Clone)]
pub struct SigmoidTable {
    table: Vec<f32>,
}

impl SigmoidTable {
    const MAX_EXP: f32 = 6.0;
    const SIZE: usize = 1024;

    /// Build the lookup table.
    pub fn new() -> Self {
        let table = (0..Self::SIZE)
            .map(|i| {
                let x = (i as f32 / Self::SIZE as f32 * 2.0 - 1.0) * Self::MAX_EXP;
                1.0 / (1.0 + (-x).exp())
            })
            .collect();
        Self { table }
    }

    /// σ(x), saturating outside ±6.
    #[inline]
    pub fn get(&self, x: f32) -> f32 {
        if x >= Self::MAX_EXP {
            1.0
        } else if x <= -Self::MAX_EXP {
            0.0
        } else {
            let idx = ((x + Self::MAX_EXP) / (2.0 * Self::MAX_EXP) * Self::SIZE as f32) as usize;
            self.table[idx.min(Self::SIZE - 1)]
        }
    }
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Loop state of an SGNS run at an epoch boundary: everything the
/// sequential path needs (besides the matrices themselves) to continue a
/// run exactly where it stopped. Serialized into training checkpoints;
/// restoring it via [`SgnsTrainer::resume`] continues the identical RNG
/// stream and learning-rate schedule, so a resumed `threads = 1` run is
/// bit-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgnsResume {
    /// Epochs fully completed.
    pub epochs_done: usize,
    /// xoshiro256++ state of the training RNG at the boundary.
    pub rng: [u64; 4],
    /// Tokens processed so far (drives the linear lr decay).
    pub processed: u64,
    /// (center, context) pairs processed so far.
    pub pairs: u64,
    /// Learning rate after the last completed epoch.
    pub lr: f32,
}

impl SgnsResume {
    /// The loop state of a run that has not started yet: the seed-derived
    /// RNG at its origin, zero work done, undecayed learning rate.
    pub fn fresh(config: &SgnsConfig) -> Self {
        Self {
            epochs_done: 0,
            rng: StdRng::seed_from_u64(config.seed).state(),
            processed: 0,
            pairs: 0,
            lr: config.learning_rate,
        }
    }
}

/// Per-epoch observer for resumable training: called with the model and
/// its loop state after every completed epoch. Returning
/// [`std::ops::ControlFlow::Break`] stops training at that boundary
/// (cooperative cancellation; the crash-injection harness uses it to
/// simulate dying right after a checkpoint write).
pub type EpochSink<'s, M> = &'s mut dyn FnMut(&M, &SgnsResume) -> std::ops::ControlFlow<()>;

/// The mutable state of one SGNS run over id-encoded sentences.
pub struct SgnsTrainer<'a> {
    config: &'a SgnsConfig,
    sigmoid: SigmoidTable,
    rng: StdRng,
    epochs_done: usize,
    processed: u64,
    pairs: u64,
    lr: f32,
}

/// Progress statistics reported by [`SgnsTrainer::train`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrainReport {
    /// Total (center, context) pairs processed.
    pub pairs: u64,
    /// Final learning rate after decay.
    pub final_lr: f32,
}

impl<'a> SgnsTrainer<'a> {
    /// New trainer with the config's seed.
    pub fn new(config: &'a SgnsConfig) -> Self {
        Self {
            config,
            sigmoid: SigmoidTable::new(),
            rng: StdRng::seed_from_u64(config.seed),
            epochs_done: 0,
            processed: 0,
            pairs: 0,
            lr: config.learning_rate,
        }
    }

    /// Rebuild a trainer mid-run from a checkpointed [`SgnsResume`]. The
    /// caller must supply the same matrices the snapshot was taken against
    /// for the continuation to be meaningful.
    pub fn resume(config: &'a SgnsConfig, state: &SgnsResume) -> Self {
        Self {
            config,
            sigmoid: SigmoidTable::new(),
            rng: StdRng::from_state(state.rng),
            epochs_done: state.epochs_done,
            processed: state.processed,
            pairs: state.pairs,
            lr: state.lr,
        }
    }

    /// Snapshot the loop state (valid at epoch boundaries).
    pub fn state(&self) -> SgnsResume {
        SgnsResume {
            epochs_done: self.epochs_done,
            rng: self.rng.state(),
            processed: self.processed,
            pairs: self.pairs,
            lr: self.lr,
        }
    }

    /// Whether all configured epochs have run.
    pub fn is_complete(&self) -> bool {
        self.epochs_done >= self.config.epochs
    }

    /// Progress report for the epochs run so far.
    pub fn report(&self) -> TrainReport {
        TrainReport { pairs: self.pairs, final_lr: self.lr }
    }

    /// Run SGNS over `sentences` (term-id sequences), updating `input` and
    /// `output` matrices in place. `negatives` must be built over the same
    /// id space.
    pub fn train(
        &mut self,
        sentences: &[Vec<u32>],
        negatives: &NegativeTable,
        input: &mut Matrix,
        output: &mut Matrix,
    ) -> TrainReport {
        assert_eq!(input.dim(), output.dim(), "SGNS matrices must share dimensionality");
        use tabmeta_obs::names;
        tabmeta_obs::span!(names::SPAN_SGNS);
        let obs = tabmeta_obs::global();
        if self.config.threads > 1 {
            let report = self.train_hogwild(sentences, negatives, input, output);
            // Metrics are aggregated across workers and recorded once.
            obs.counter(names::SGNS_PAIRS).add(report.pairs);
            obs.gauge(names::SGNS_LR).set(report.final_lr as f64);
            return report;
        }
        while !self.is_complete() {
            self.run_epoch(sentences, negatives, input, output);
        }
        self.report()
    }

    /// Run exactly one epoch of the sequential deterministic path,
    /// advancing the trainer's RNG, decay, and counters. Callers that need
    /// per-epoch checkpoints drive this directly ([`SgnsTrainer::state`]
    /// between calls); [`SgnsTrainer::train`] loops it to completion.
    /// No-op once [`SgnsTrainer::is_complete`] — except that an empty
    /// sentence set still advances the epoch counter so zero-work runs
    /// terminate.
    pub fn run_epoch(
        &mut self,
        sentences: &[Vec<u32>],
        negatives: &NegativeTable,
        input: &mut Matrix,
        output: &mut Matrix,
    ) {
        assert_eq!(input.dim(), output.dim(), "SGNS matrices must share dimensionality");
        if self.is_complete() {
            return;
        }
        let obs = tabmeta_obs::global();
        let pair_counter = obs.counter(tabmeta_obs::names::SGNS_PAIRS);
        let lr_gauge = obs.gauge(tabmeta_obs::names::SGNS_LR);
        let _epoch_span = obs.span(tabmeta_obs::names::SPAN_EPOCH);
        let dim = input.dim();
        let total_tokens: u64 = sentences.iter().map(|s| s.len() as u64).sum();
        let total_work = (total_tokens * self.config.epochs as u64).max(1);
        let mut grad = vec![0.0f32; dim];
        let pairs_at_epoch_start = self.pairs;
        for sentence in sentences {
            for (pos, &center) in sentence.iter().enumerate() {
                self.processed += 1;
                // Linear decay with the standard floor.
                self.lr = self.config.learning_rate
                    * (1.0 - self.processed as f32 / total_work as f32).max(1e-4);
                // Dynamic window shrink, as in word2vec.
                let reduced = self.rng.random_range(1..=self.config.window);
                let lo = pos.saturating_sub(reduced);
                let hi = (pos + reduced).min(sentence.len() - 1);
                for ctx_pos in lo..=hi {
                    if ctx_pos == pos {
                        continue;
                    }
                    let context = sentence[ctx_pos];
                    self.pairs += 1;
                    let lr = self.lr;
                    self.step(center, context, negatives, input, output, lr, &mut grad);
                }
            }
        }
        self.epochs_done += 1;
        pair_counter.add(self.pairs - pairs_at_epoch_start);
        lr_gauge.set(self.lr as f64);
    }

    /// One positive pair plus `k` negative updates.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        center: u32,
        context: u32,
        negatives: &NegativeTable,
        input: &mut Matrix,
        output: &mut Matrix,
        lr: f32,
        grad: &mut [f32],
    ) {
        grad.fill(0.0);
        let v_in = input.row(center as usize).to_vec();
        // Positive sample: label 1.
        {
            let v_out = output.row_mut(context as usize);
            let score = self.sigmoid.get(tabmeta_linalg::dot(&v_in, v_out));
            let g = (1.0 - score) * lr;
            tabmeta_linalg::axpy(g, v_out, grad);
            tabmeta_linalg::axpy(g, &v_in, v_out);
        }
        // Negative samples: label 0.
        for _ in 0..self.config.negative {
            let neg = negatives.sample(&mut self.rng);
            if neg == context {
                continue;
            }
            let v_out = output.row_mut(neg as usize);
            let score = self.sigmoid.get(tabmeta_linalg::dot(&v_in, v_out));
            let g = (0.0 - score) * lr;
            tabmeta_linalg::axpy(g, v_out, grad);
            tabmeta_linalg::axpy(g, &v_in, v_out);
        }
        tabmeta_linalg::add_assign(input.row_mut(center as usize), grad);
    }

    /// Hogwild data-parallel training: sentences are split into one
    /// contiguous shard per worker; each worker runs the same SGD loop as
    /// the sequential path with its own RNG stream (`seed ⊕ worker_id`,
    /// so worker 0 of a one-shard run reproduces the sequential stream)
    /// and its own linear learning-rate decay over shard-local work,
    /// while all workers write to the shared matrices through relaxed
    /// atomics ([`tabmeta_linalg::HogwildView`]).
    fn train_hogwild(
        &self,
        sentences: &[Vec<u32>],
        negatives: &NegativeTable,
        input: &mut Matrix,
        output: &mut Matrix,
    ) -> TrainReport {
        let config = self.config;
        let sigmoid = &self.sigmoid;
        let dim = input.dim();
        let chunk = sentences.len().div_ceil(config.threads).max(1);
        let shards: Vec<(u64, &[Vec<u32>])> =
            sentences.chunks(chunk).enumerate().map(|(w, s)| (w as u64, s)).collect();
        let in_view = input.hogwild();
        let out_view = output.hogwild();
        let reports: Vec<TrainReport> = shards
            .par_iter()
            .map(|&(worker, shard)| {
                let mut rng = StdRng::seed_from_u64(config.seed ^ worker);
                let shard_tokens: u64 = shard.iter().map(|s| s.len() as u64).sum();
                let total_work = (shard_tokens * config.epochs as u64).max(1);
                let mut processed: u64 = 0;
                let mut pairs: u64 = 0;
                let mut lr = config.learning_rate;
                let mut v_in = vec![0.0f32; dim];
                let mut v_out = vec![0.0f32; dim];
                let mut grad = vec![0.0f32; dim];
                for _epoch in 0..config.epochs {
                    for sentence in shard {
                        for (pos, &center) in sentence.iter().enumerate() {
                            processed += 1;
                            lr = config.learning_rate
                                * (1.0 - processed as f32 / total_work as f32).max(1e-4);
                            let reduced = rng.random_range(1..=config.window);
                            let lo = pos.saturating_sub(reduced);
                            let hi = (pos + reduced).min(sentence.len() - 1);
                            for ctx_pos in lo..=hi {
                                if ctx_pos == pos {
                                    continue;
                                }
                                let context = sentence[ctx_pos] as usize;
                                pairs += 1;
                                grad.fill(0.0);
                                in_view.read_row(center as usize, &mut v_in);
                                // Positive sample: label 1.
                                out_view.read_row(context, &mut v_out);
                                let score = sigmoid.get(tabmeta_linalg::dot(&v_in, &v_out));
                                let g = (1.0 - score) * lr;
                                tabmeta_linalg::axpy(g, &v_out, &mut grad);
                                out_view.update_row(context, g, &v_in);
                                // Negative samples: label 0.
                                for _ in 0..config.negative {
                                    let neg = negatives.sample(&mut rng) as usize;
                                    if neg == context {
                                        continue;
                                    }
                                    out_view.read_row(neg, &mut v_out);
                                    let score = sigmoid.get(tabmeta_linalg::dot(&v_in, &v_out));
                                    let g = (0.0 - score) * lr;
                                    tabmeta_linalg::axpy(g, &v_out, &mut grad);
                                    out_view.update_row(neg, g, &v_in);
                                }
                                in_view.update_row(center as usize, 1.0, &grad);
                            }
                        }
                    }
                }
                TrainReport { pairs, final_lr: lr }
            })
            .collect();
        let pairs = reports.iter().map(|r| r.pairs).sum();
        // Workers decay independently; report the deepest decay reached.
        let final_lr = reports.iter().map(|r| r.final_lr).fold(config.learning_rate, f32::min);
        TrainReport { pairs, final_lr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabmeta_text::Vocabulary;

    #[test]
    fn sigmoid_table_matches_exact() {
        let s = SigmoidTable::new();
        for &x in &[-5.9f32, -2.0, -0.5, 0.0, 0.5, 2.0, 5.9] {
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!((s.get(x) - exact).abs() < 0.01, "x={x}");
        }
        assert_eq!(s.get(100.0), 1.0);
        assert_eq!(s.get(-100.0), 0.0);
    }

    fn toy_setup() -> (Vec<Vec<u32>>, NegativeTable, Matrix, Matrix, SgnsConfig) {
        // Two "topics": {0,1} co-occur, {2,3} co-occur.
        let mut vocab = Vocabulary::new();
        for t in ["a", "b", "c", "d"] {
            vocab.add(t);
        }
        let mut sentences = Vec::new();
        for _ in 0..200 {
            sentences.push(vec![0u32, 1, 0, 1]);
            sentences.push(vec![2u32, 3, 2, 3]);
        }
        let negatives = NegativeTable::build(&vocab, 4096);
        let config = SgnsConfig { dim: 16, epochs: 3, window: 2, ..SgnsConfig::tiny(11) };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let input = Matrix::uniform_init(4, config.dim, &mut rng);
        let output = Matrix::zeros(4, config.dim);
        (sentences, negatives, input, output, config)
    }

    #[test]
    fn training_separates_topics() {
        let (sentences, negatives, mut input, mut output, config) = toy_setup();
        let mut trainer = SgnsTrainer::new(&config);
        let report = trainer.train(&sentences, &negatives, &mut input, &mut output);
        assert!(report.pairs > 1_000, "too few pairs: {}", report.pairs);

        let sim =
            |i: usize, j: usize| tabmeta_linalg::cosine_similarity(input.row(i), input.row(j));
        // Within-topic similarity must dominate cross-topic.
        assert!(sim(0, 1) > sim(0, 2), "a~b {} vs a~c {}", sim(0, 1), sim(0, 2));
        assert!(sim(2, 3) > sim(1, 3), "c~d {} vs b~d {}", sim(2, 3), sim(1, 3));
    }

    #[test]
    fn training_is_deterministic() {
        let (sentences, negatives, input0, output0, config) = toy_setup();
        let run = || {
            let mut input = input0.clone();
            let mut output = output0.clone();
            SgnsTrainer::new(&config).train(&sentences, &negatives, &mut input, &mut output);
            input
        };
        assert_eq!(run(), run(), "same seed must give identical embeddings");
    }

    #[test]
    fn hogwild_training_separates_topics() {
        let (sentences, negatives, mut input, mut output, config) = toy_setup();
        let config = SgnsConfig { threads: 4, ..config };
        let mut trainer = SgnsTrainer::new(&config);
        let report = trainer.train(&sentences, &negatives, &mut input, &mut output);
        assert!(report.pairs > 1_000, "too few pairs: {}", report.pairs);
        assert!(report.final_lr < config.learning_rate);

        let sim =
            |i: usize, j: usize| tabmeta_linalg::cosine_similarity(input.row(i), input.row(j));
        assert!(sim(0, 1) > sim(0, 2), "a~b {} vs a~c {}", sim(0, 1), sim(0, 2));
        assert!(sim(2, 3) > sim(1, 3), "c~d {} vs b~d {}", sim(2, 3), sim(1, 3));
    }

    #[test]
    fn explicit_single_thread_matches_default_stream() {
        let (sentences, negatives, input0, output0, config) = toy_setup();
        let run = |cfg: &SgnsConfig| {
            let mut input = input0.clone();
            let mut output = output0.clone();
            SgnsTrainer::new(cfg).train(&sentences, &negatives, &mut input, &mut output);
            input
        };
        let explicit = SgnsConfig { threads: 1, ..config.clone() };
        assert_eq!(run(&config), run(&explicit), "threads=1 must stay the sequential stream");
    }

    #[test]
    fn epoch_resume_matches_uninterrupted() {
        let (sentences, negatives, input0, output0, config) = toy_setup();
        // Uninterrupted run.
        let mut input_a = input0.clone();
        let mut output_a = output0.clone();
        let report_a =
            SgnsTrainer::new(&config).train(&sentences, &negatives, &mut input_a, &mut output_a);
        // Run one epoch, snapshot, drop the trainer, rebuild from the
        // snapshot alone, finish.
        let mut input_b = input0.clone();
        let mut output_b = output0.clone();
        let snap = {
            let mut t = SgnsTrainer::new(&config);
            t.run_epoch(&sentences, &negatives, &mut input_b, &mut output_b);
            assert!(!t.is_complete());
            t.state()
        };
        let report_b = SgnsTrainer::resume(&config, &snap).train(
            &sentences,
            &negatives,
            &mut input_b,
            &mut output_b,
        );
        assert_eq!(input_a, input_b, "resumed run must be bit-identical");
        assert_eq!(output_a, output_b);
        assert_eq!(report_a, report_b);
    }

    #[test]
    fn run_epoch_terminates_on_empty_sentences() {
        let config = SgnsConfig::tiny(5);
        let negatives = {
            let mut v = Vocabulary::new();
            v.add("x");
            NegativeTable::build(&v, 64)
        };
        let mut input = Matrix::zeros(1, config.dim);
        let mut output = Matrix::zeros(1, config.dim);
        let mut t = SgnsTrainer::new(&config);
        let mut spins = 0;
        while !t.is_complete() {
            t.run_epoch(&[], &negatives, &mut input, &mut output);
            spins += 1;
            assert!(spins <= config.epochs, "empty input must still advance epochs");
        }
        assert_eq!(t.report().pairs, 0);
    }

    #[test]
    fn learning_rate_decays() {
        let (sentences, negatives, mut input, mut output, config) = toy_setup();
        let report =
            SgnsTrainer::new(&config).train(&sentences, &negatives, &mut input, &mut output);
        assert!(report.final_lr < config.learning_rate);
        assert!(report.final_lr > 0.0);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn mismatched_matrices_panic() {
        let config = SgnsConfig::tiny(0);
        let negatives = {
            let mut v = Vocabulary::new();
            v.add("x");
            NegativeTable::build(&v, 64)
        };
        let mut input = Matrix::zeros(1, 8);
        let mut output = Matrix::zeros(1, 16);
        SgnsTrainer::new(&config).train(&[vec![0]], &negatives, &mut input, &mut output);
    }
}
