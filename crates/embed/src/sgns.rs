//! Skip-gram-with-negative-sampling training core, shared by both
//! embedding models.
//!
//! Given sentences of term ids, one training step takes a `(center,
//! context)` pair plus `k` negatives and performs the classic SGD update
//! on the input/output matrices:
//!
//! ```text
//!   g = (label − σ(v_in · v_out)) · lr
//!   v_out += g · v_in;   accumulated_grad += g · v_out_old
//! ```
//!
//! The sigmoid is looked up from a precomputed table (word2vec's standard
//! trick); the learning rate decays linearly over the full training run.
//! Training is single-threaded and fully deterministic given the seed —
//! reproducibility matters more than hogwild throughput at our corpus
//! sizes, and the Criterion benches measure the same code path the paper's
//! runtime section describes.
// Grid construction walks coordinates; index loops are the clear form here.
#![allow(clippy::needless_range_loop)]

use crate::negative::NegativeTable;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use tabmeta_linalg::Matrix;

/// Hyper-parameters of SGNS training.
///
/// Defaults follow §IV-C: window 3, `min_count` 1. The paper uses
/// dimensionality 300 for Word2Vec; tests and small corpora use less (the
/// paper itself reports no gain beyond 300, and below ~64 the angle ranges
/// merely widen).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius (paper: 3 before and after the target).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub learning_rate: f32,
    /// Training epochs over the sentence set.
    pub epochs: usize,
    /// Minimum term count for vocabulary inclusion (paper: 1).
    pub min_count: u64,
    /// RNG seed — all sampling derives from it.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 300,
            window: 3,
            negative: 5,
            learning_rate: 0.025,
            epochs: 5,
            min_count: 1,
            seed: 0x7ab_3e7a,
        }
    }
}

impl SgnsConfig {
    /// A small, fast configuration for tests and examples.
    pub fn tiny(seed: u64) -> Self {
        Self { dim: 32, epochs: 3, seed, ..Self::default() }
    }
}

/// Precomputed logistic sigmoid over `[-MAX_EXP, MAX_EXP]`.
#[derive(Debug, Clone)]
pub struct SigmoidTable {
    table: Vec<f32>,
}

impl SigmoidTable {
    const MAX_EXP: f32 = 6.0;
    const SIZE: usize = 1024;

    /// Build the lookup table.
    pub fn new() -> Self {
        let table = (0..Self::SIZE)
            .map(|i| {
                let x = (i as f32 / Self::SIZE as f32 * 2.0 - 1.0) * Self::MAX_EXP;
                1.0 / (1.0 + (-x).exp())
            })
            .collect();
        Self { table }
    }

    /// σ(x), saturating outside ±6.
    #[inline]
    pub fn get(&self, x: f32) -> f32 {
        if x >= Self::MAX_EXP {
            1.0
        } else if x <= -Self::MAX_EXP {
            0.0
        } else {
            let idx = ((x + Self::MAX_EXP) / (2.0 * Self::MAX_EXP) * Self::SIZE as f32) as usize;
            self.table[idx.min(Self::SIZE - 1)]
        }
    }
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new()
    }
}

/// The mutable state of one SGNS run over id-encoded sentences.
pub struct SgnsTrainer<'a> {
    config: &'a SgnsConfig,
    sigmoid: SigmoidTable,
    rng: StdRng,
}

/// Progress statistics reported by [`SgnsTrainer::train`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrainReport {
    /// Total (center, context) pairs processed.
    pub pairs: u64,
    /// Final learning rate after decay.
    pub final_lr: f32,
}

impl<'a> SgnsTrainer<'a> {
    /// New trainer with the config's seed.
    pub fn new(config: &'a SgnsConfig) -> Self {
        Self { config, sigmoid: SigmoidTable::new(), rng: StdRng::seed_from_u64(config.seed) }
    }

    /// Run SGNS over `sentences` (term-id sequences), updating `input` and
    /// `output` matrices in place. `negatives` must be built over the same
    /// id space.
    pub fn train(
        &mut self,
        sentences: &[Vec<u32>],
        negatives: &NegativeTable,
        input: &mut Matrix,
        output: &mut Matrix,
    ) -> TrainReport {
        assert_eq!(input.dim(), output.dim(), "SGNS matrices must share dimensionality");
        tabmeta_obs::span!("sgns");
        let obs = tabmeta_obs::global();
        let pair_counter = obs.counter("sgns.pairs");
        let lr_gauge = obs.gauge("sgns.lr");
        let dim = input.dim();
        let total_tokens: u64 = sentences.iter().map(|s| s.len() as u64).sum();
        let total_work = (total_tokens * self.config.epochs as u64).max(1);
        let mut processed: u64 = 0;
        let mut pairs: u64 = 0;
        let mut grad = vec![0.0f32; dim];
        let mut lr = self.config.learning_rate;

        for _epoch in 0..self.config.epochs {
            let _epoch_span = obs.span("epoch");
            let pairs_at_epoch_start = pairs;
            for sentence in sentences {
                for (pos, &center) in sentence.iter().enumerate() {
                    processed += 1;
                    // Linear decay with the standard floor.
                    lr = self.config.learning_rate
                        * (1.0 - processed as f32 / total_work as f32).max(1e-4);
                    // Dynamic window shrink, as in word2vec.
                    let reduced = self.rng.random_range(1..=self.config.window);
                    let lo = pos.saturating_sub(reduced);
                    let hi = (pos + reduced).min(sentence.len() - 1);
                    for ctx_pos in lo..=hi {
                        if ctx_pos == pos {
                            continue;
                        }
                        let context = sentence[ctx_pos];
                        pairs += 1;
                        self.step(center, context, negatives, input, output, lr, &mut grad);
                    }
                }
            }
            pair_counter.add(pairs - pairs_at_epoch_start);
            lr_gauge.set(lr as f64);
        }
        TrainReport { pairs, final_lr: lr }
    }

    /// One positive pair plus `k` negative updates.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        center: u32,
        context: u32,
        negatives: &NegativeTable,
        input: &mut Matrix,
        output: &mut Matrix,
        lr: f32,
        grad: &mut [f32],
    ) {
        grad.fill(0.0);
        let v_in = input.row(center as usize).to_vec();
        // Positive sample: label 1.
        {
            let v_out = output.row_mut(context as usize);
            let score = self.sigmoid.get(tabmeta_linalg::dot(&v_in, v_out));
            let g = (1.0 - score) * lr;
            tabmeta_linalg::axpy(g, v_out, grad);
            tabmeta_linalg::axpy(g, &v_in, v_out);
        }
        // Negative samples: label 0.
        for _ in 0..self.config.negative {
            let neg = negatives.sample(&mut self.rng);
            if neg == context {
                continue;
            }
            let v_out = output.row_mut(neg as usize);
            let score = self.sigmoid.get(tabmeta_linalg::dot(&v_in, v_out));
            let g = (0.0 - score) * lr;
            tabmeta_linalg::axpy(g, v_out, grad);
            tabmeta_linalg::axpy(g, &v_in, v_out);
        }
        tabmeta_linalg::add_assign(input.row_mut(center as usize), grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabmeta_text::Vocabulary;

    #[test]
    fn sigmoid_table_matches_exact() {
        let s = SigmoidTable::new();
        for &x in &[-5.9f32, -2.0, -0.5, 0.0, 0.5, 2.0, 5.9] {
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!((s.get(x) - exact).abs() < 0.01, "x={x}");
        }
        assert_eq!(s.get(100.0), 1.0);
        assert_eq!(s.get(-100.0), 0.0);
    }

    fn toy_setup() -> (Vec<Vec<u32>>, NegativeTable, Matrix, Matrix, SgnsConfig) {
        // Two "topics": {0,1} co-occur, {2,3} co-occur.
        let mut vocab = Vocabulary::new();
        for t in ["a", "b", "c", "d"] {
            vocab.add(t);
        }
        let mut sentences = Vec::new();
        for _ in 0..200 {
            sentences.push(vec![0u32, 1, 0, 1]);
            sentences.push(vec![2u32, 3, 2, 3]);
        }
        let negatives = NegativeTable::build(&vocab, 4096);
        let config = SgnsConfig { dim: 16, epochs: 3, window: 2, ..SgnsConfig::tiny(11) };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let input = Matrix::uniform_init(4, config.dim, &mut rng);
        let output = Matrix::zeros(4, config.dim);
        (sentences, negatives, input, output, config)
    }

    #[test]
    fn training_separates_topics() {
        let (sentences, negatives, mut input, mut output, config) = toy_setup();
        let mut trainer = SgnsTrainer::new(&config);
        let report = trainer.train(&sentences, &negatives, &mut input, &mut output);
        assert!(report.pairs > 1_000, "too few pairs: {}", report.pairs);

        let sim =
            |i: usize, j: usize| tabmeta_linalg::cosine_similarity(input.row(i), input.row(j));
        // Within-topic similarity must dominate cross-topic.
        assert!(sim(0, 1) > sim(0, 2), "a~b {} vs a~c {}", sim(0, 1), sim(0, 2));
        assert!(sim(2, 3) > sim(1, 3), "c~d {} vs b~d {}", sim(2, 3), sim(1, 3));
    }

    #[test]
    fn training_is_deterministic() {
        let (sentences, negatives, input0, output0, config) = toy_setup();
        let run = || {
            let mut input = input0.clone();
            let mut output = output0.clone();
            SgnsTrainer::new(&config).train(&sentences, &negatives, &mut input, &mut output);
            input
        };
        assert_eq!(run(), run(), "same seed must give identical embeddings");
    }

    #[test]
    fn learning_rate_decays() {
        let (sentences, negatives, mut input, mut output, config) = toy_setup();
        let report =
            SgnsTrainer::new(&config).train(&sentences, &negatives, &mut input, &mut output);
        assert!(report.final_lr < config.learning_rate);
        assert!(report.final_lr > 0.0);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn mismatched_matrices_panic() {
        let config = SgnsConfig::tiny(0);
        let negatives = {
            let mut v = Vocabulary::new();
            v.add("x");
            NegativeTable::build(&v, 64)
        };
        let mut input = Matrix::zeros(1, 8);
        let mut output = Matrix::zeros(1, 16);
        SgnsTrainer::new(&config).train(&[vec![0]], &negatives, &mut input, &mut output);
    }
}
