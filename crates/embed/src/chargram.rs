//! CharGram: the subword embedding model standing in for BioBERT.
//!
//! The paper fine-tunes BioBERT because biomedical corpora are full of
//! rare, morphologically regular terminology that word-level models handle
//! poorly. What the downstream method actually consumes is a term→vector
//! map that stays meaningful for rare/OOV domain terms. CharGram provides
//! that property the fastText way: a term's vector is the **mean of its
//! word vector and its hashed character n-gram vectors**, trained with the
//! same SGNS objective as [`crate::word2vec::Word2Vec`]. Out-of-vocabulary
//! terms compose from grams alone, so `"thrombocytopenia"` lands near its
//! morphological relatives even if unseen. See DESIGN.md §2 for the full
//! substitution argument.
// Grid construction walks coordinates; index loops are the clear form here.
#![allow(clippy::needless_range_loop)]

use crate::embedder::{check_matrix_finite, IntegrityFault, TermEmbedder, TunableEmbedder};
use crate::negative::NegativeTable;
use crate::sgns::{EpochSink, SgnsConfig, SgnsResume, SigmoidTable, TrainReport};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tabmeta_linalg::Matrix;
use tabmeta_text::{ngram_ids, NgramConfig, NumericClass, Vocabulary};

/// CharGram hyper-parameters: SGNS knobs plus the n-gram space.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct CharGramConfig {
    /// Shared SGNS hyper-parameters.
    pub sgns: SgnsConfig,
    /// Character n-gram extraction / hashing configuration.
    pub ngrams: NgramConfig,
}

impl CharGramConfig {
    /// Small, fast configuration for tests and examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            sgns: SgnsConfig::tiny(seed),
            ngrams: NgramConfig { min_n: 3, max_n: 4, buckets: 1 << 12 },
        }
    }
}

/// A trained (or in-training) CharGram model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CharGram {
    config: CharGramConfig,
    vocab: Vocabulary,
    /// Per-word input vectors.
    words: Matrix,
    /// Hashed n-gram bucket vectors.
    grams: Matrix,
    /// Word-level output (context) vectors.
    output: Matrix,
    /// Cached gram ids per vocabulary word (parallel to `vocab`).
    word_grams: Vec<Vec<u32>>,
}

impl CharGram {
    /// Train from term-string sentences.
    pub fn train(sentences: &[Vec<String>], config: CharGramConfig) -> (Self, TrainReport) {
        let (model, report, _) = Self::train_resumable(sentences, config, None, None);
        (model, report)
    }

    /// [`CharGram::train`] with checkpoint/resume plumbing; same contract
    /// as [`crate::word2vec::Word2Vec::train_resumable`]: vocabulary,
    /// encoding, and gram cache are recomputed, `resume` restores weights
    /// plus loop state from an epoch boundary, `sink` observes every
    /// sequential epoch (stage end only under Hogwild) and may break out.
    pub fn train_resumable(
        sentences: &[Vec<String>],
        config: CharGramConfig,
        resume: Option<(Self, SgnsResume)>,
        mut sink: Option<EpochSink<'_, Self>>,
    ) -> (Self, TrainReport, bool) {
        let mut counting = Vocabulary::new();
        for s in sentences {
            for t in s {
                counting.add(t);
            }
        }
        let (mut vocab, remap) = counting.filter_min_count(config.sgns.min_count.max(1));
        for tok in NumericClass::all_tokens() {
            vocab.intern(tok);
        }
        let encoded: Vec<Vec<u32>> = sentences
            .iter()
            .map(|s| {
                s.iter()
                    .filter_map(|t| counting.id(t).and_then(|old| remap[old as usize]))
                    .collect()
            })
            .filter(|s: &Vec<u32>| s.len() >= 2)
            .collect();

        let (mut model, mut state) = match resume {
            Some((model, state)) => (model, state),
            None => {
                let word_grams: Vec<Vec<u32>> = (0..vocab.len())
                    .map(|id| {
                        ngram_ids(vocab.term(id as u32), &config.ngrams)
                            .into_iter()
                            .map(|g| g as u32)
                            .collect()
                    })
                    .collect();
                let mut rng = StdRng::seed_from_u64(config.sgns.seed ^ 0xcafe);
                let dim = config.sgns.dim;
                let state = SgnsResume::fresh(&config.sgns);
                let model = CharGram {
                    words: Matrix::uniform_init(vocab.len(), dim, &mut rng),
                    grams: Matrix::uniform_init(config.ngrams.buckets, dim, &mut rng),
                    output: Matrix::zeros(vocab.len(), dim),
                    word_grams,
                    vocab,
                    config,
                };
                (model, state)
            }
        };

        if encoded.is_empty() || model.vocab.total_count() == 0 {
            return (model, TrainReport { pairs: state.pairs, final_lr: state.lr }, false);
        }
        let negatives =
            NegativeTable::build(&model.vocab, NegativeTable::DEFAULT_SIZE.min(1 << 18));

        if model.config.sgns.threads > 1 && state.epochs_done == 0 {
            // Hogwild runs the stage whole; the sink sees only the end.
            let report = model.run_sgns_hogwild(&encoded, &negatives);
            let mut interrupted = false;
            if let Some(sink) = sink.as_mut() {
                let end = SgnsResume {
                    epochs_done: model.config.sgns.epochs,
                    pairs: report.pairs,
                    lr: report.final_lr,
                    ..SgnsResume::fresh(&model.config.sgns)
                };
                interrupted = sink(&model, &end).is_break();
            }
            return (model, report, interrupted);
        }

        let epochs = model.config.sgns.epochs;
        let mut interrupted = false;
        while state.epochs_done < epochs {
            model.run_sgns_epoch(&encoded, &negatives, &mut state);
            if let Some(sink) = sink.as_mut() {
                if sink(&model, &state).is_break() {
                    interrupted = true;
                    break;
                }
            }
        }
        let report = TrainReport { pairs: state.pairs, final_lr: state.lr };
        (model, report, interrupted)
    }

    /// One sequential epoch of SGNS over composed (word + grams) input
    /// vectors, advancing `st` (RNG stream, decay, counters) in place.
    /// An empty sentence set still advances the epoch counter so
    /// zero-work runs terminate.
    fn run_sgns_epoch(
        &mut self,
        sentences: &[Vec<u32>],
        negatives: &NegativeTable,
        st: &mut SgnsResume,
    ) {
        let config = self.config.sgns.clone();
        let dim = config.dim;
        let sigmoid = SigmoidTable::new();
        let mut rng = StdRng::from_state(st.rng);
        let total_tokens: u64 = sentences.iter().map(|s| s.len() as u64).sum();
        let total_work = (total_tokens * config.epochs as u64).max(1);
        let mut v_in = vec![0.0f32; dim];
        let mut grad = vec![0.0f32; dim];

        for sentence in sentences {
            for (pos, &center) in sentence.iter().enumerate() {
                st.processed += 1;
                st.lr = config.learning_rate
                    * (1.0 - st.processed as f32 / total_work as f32).max(1e-4);
                let reduced = rng.random_range(1..=config.window);
                let lo = pos.saturating_sub(reduced);
                let hi = (pos + reduced).min(sentence.len() - 1);
                for ctx_pos in lo..=hi {
                    if ctx_pos == pos {
                        continue;
                    }
                    st.pairs += 1;
                    let context = sentence[ctx_pos];
                    self.compose_into(center, &mut v_in);
                    grad.fill(0.0);
                    // Positive.
                    {
                        let v_out = self.output.row_mut(context as usize);
                        let g = (1.0 - sigmoid.get(tabmeta_linalg::dot(&v_in, v_out))) * st.lr;
                        tabmeta_linalg::axpy(g, v_out, &mut grad);
                        tabmeta_linalg::axpy(g, &v_in, v_out);
                    }
                    // Negatives.
                    for _ in 0..config.negative {
                        let neg = negatives.sample(&mut rng);
                        if neg == context {
                            continue;
                        }
                        let v_out = self.output.row_mut(neg as usize);
                        let g = (0.0 - sigmoid.get(tabmeta_linalg::dot(&v_in, v_out))) * st.lr;
                        tabmeta_linalg::axpy(g, v_out, &mut grad);
                        tabmeta_linalg::axpy(g, &v_in, v_out);
                    }
                    self.spread_gradient(center, &grad);
                }
            }
        }
        st.rng = rng.state();
        st.epochs_done += 1;
    }

    /// Deep validation for deserialized models: matrix shapes must agree
    /// with the vocabulary, gram-bucket count, and config; the cached gram
    /// ids must stay inside the bucket space; every weight must be finite.
    pub fn validate_integrity(&self) -> Result<(), IntegrityFault> {
        let dim = self.config.sgns.dim;
        if self.words.rows() != self.vocab.len() || self.output.rows() != self.vocab.len() {
            return Err(IntegrityFault::Shape {
                detail: format!(
                    "chargram word/output matrices hold {}x{} rows but the vocabulary has {} terms",
                    self.words.rows(),
                    self.output.rows(),
                    self.vocab.len()
                ),
            });
        }
        if self.grams.rows() != self.config.ngrams.buckets {
            return Err(IntegrityFault::Shape {
                detail: format!(
                    "chargram gram matrix holds {} rows but config declares {} buckets",
                    self.grams.rows(),
                    self.config.ngrams.buckets
                ),
            });
        }
        if self.words.dim() != dim || self.grams.dim() != dim || self.output.dim() != dim {
            return Err(IntegrityFault::Shape {
                detail: format!(
                    "chargram matrix dims {}/{}/{} disagree with config dim {dim}",
                    self.words.dim(),
                    self.grams.dim(),
                    self.output.dim()
                ),
            });
        }
        if self.word_grams.len() != self.vocab.len() {
            return Err(IntegrityFault::Shape {
                detail: format!(
                    "gram cache covers {} words but the vocabulary has {} terms",
                    self.word_grams.len(),
                    self.vocab.len()
                ),
            });
        }
        if let Some((word, &g)) = self.word_grams.iter().enumerate().find_map(|(w, gs)| {
            gs.iter().find(|&&g| g as usize >= self.grams.rows()).map(|g| (w, g))
        }) {
            return Err(IntegrityFault::Shape {
                detail: format!(
                    "word {word} references gram bucket {g} outside 0..{}",
                    self.grams.rows()
                ),
            });
        }
        check_matrix_finite(&self.words, "chargram.words")?;
        check_matrix_finite(&self.grams, "chargram.grams")?;
        check_matrix_finite(&self.output, "chargram.output")
    }

    /// Hogwild variant of [`Self::run_sgns`]: sentence shards train
    /// concurrently, sharing the word / gram / output matrices through
    /// relaxed-atomic views. Composition (`compose_into`) and gradient
    /// spreading (`spread_gradient`) are inlined against the views since
    /// both need only shared access. Same trade-off as the word-level
    /// Hogwild path: racing updates may drop a write, never corrupt one.
    fn run_sgns_hogwild(
        &mut self,
        sentences: &[Vec<u32>],
        negatives: &NegativeTable,
    ) -> TrainReport {
        let config = self.config.sgns.clone();
        let dim = config.dim;
        let sigmoid = SigmoidTable::new();
        let chunk = sentences.len().div_ceil(config.threads).max(1);
        let shards: Vec<(u64, &[Vec<u32>])> =
            sentences.chunks(chunk).enumerate().map(|(w, s)| (w as u64, s)).collect();
        let Self { words, grams, output, word_grams, .. } = self;
        let words_view = words.hogwild();
        let grams_view = grams.hogwild();
        let out_view = output.hogwild();
        let word_grams: &[Vec<u32>] = word_grams;
        let reports: Vec<TrainReport> = shards
            .par_iter()
            .map(|&(worker, shard)| {
                let mut rng = StdRng::seed_from_u64(config.seed ^ worker);
                let shard_tokens: u64 = shard.iter().map(|s| s.len() as u64).sum();
                let total_work = (shard_tokens * config.epochs as u64).max(1);
                let mut processed = 0u64;
                let mut pairs = 0u64;
                let mut lr = config.learning_rate;
                let mut v_in = vec![0.0f32; dim];
                let mut v_out = vec![0.0f32; dim];
                let mut grad = vec![0.0f32; dim];
                for _epoch in 0..config.epochs {
                    for sentence in shard {
                        for (pos, &center) in sentence.iter().enumerate() {
                            processed += 1;
                            lr = config.learning_rate
                                * (1.0 - processed as f32 / total_work as f32).max(1e-4);
                            let reduced = rng.random_range(1..=config.window);
                            let lo = pos.saturating_sub(reduced);
                            let hi = (pos + reduced).min(sentence.len() - 1);
                            for ctx_pos in lo..=hi {
                                if ctx_pos == pos {
                                    continue;
                                }
                                pairs += 1;
                                let context = sentence[ctx_pos] as usize;
                                // Compose: mean of word vector and grams.
                                let cg = &word_grams[center as usize];
                                words_view.read_row(center as usize, &mut v_in);
                                for &g in cg {
                                    grams_view.accumulate_row(g as usize, &mut v_in);
                                }
                                let share = 1.0 / (1 + cg.len()) as f32;
                                tabmeta_linalg::scale(&mut v_in, share);
                                grad.fill(0.0);
                                // Positive.
                                out_view.read_row(context, &mut v_out);
                                let g =
                                    (1.0 - sigmoid.get(tabmeta_linalg::dot(&v_in, &v_out))) * lr;
                                tabmeta_linalg::axpy(g, &v_out, &mut grad);
                                out_view.update_row(context, g, &v_in);
                                // Negatives.
                                for _ in 0..config.negative {
                                    let neg = negatives.sample(&mut rng) as usize;
                                    if neg == context {
                                        continue;
                                    }
                                    out_view.read_row(neg, &mut v_out);
                                    let g = (0.0 - sigmoid.get(tabmeta_linalg::dot(&v_in, &v_out)))
                                        * lr;
                                    tabmeta_linalg::axpy(g, &v_out, &mut grad);
                                    out_view.update_row(neg, g, &v_in);
                                }
                                // Spread: each constituent gets grad/(1+n).
                                tabmeta_linalg::scale(&mut grad, share);
                                words_view.update_row(center as usize, 1.0, &grad);
                                for &g in cg {
                                    grams_view.update_row(g as usize, 1.0, &grad);
                                }
                            }
                        }
                    }
                }
                TrainReport { pairs, final_lr: lr }
            })
            .collect();
        let pairs = reports.iter().map(|r| r.pairs).sum();
        let final_lr = reports.iter().map(|r| r.final_lr).fold(config.learning_rate, f32::min);
        TrainReport { pairs, final_lr }
    }

    /// Compose the input vector of a vocabulary word: mean of word vector
    /// and its gram vectors.
    fn compose_into(&self, word: u32, out: &mut [f32]) {
        out.copy_from_slice(self.words.row(word as usize));
        let grams = &self.word_grams[word as usize];
        for &g in grams {
            tabmeta_linalg::add_assign(out, self.grams.row(g as usize));
        }
        tabmeta_linalg::scale(out, 1.0 / (1 + grams.len()) as f32);
    }

    /// Distribute a gradient across a word's constituents (mean composition
    /// ⇒ each constituent receives `grad / (1+n)`).
    fn spread_gradient(&mut self, word: u32, grad: &[f32]) {
        let grams = std::mem::take(&mut self.word_grams[word as usize]);
        let share = 1.0 / (1 + grams.len()) as f32;
        let mut scaled = grad.to_vec();
        tabmeta_linalg::scale(&mut scaled, share);
        tabmeta_linalg::add_assign(self.words.row_mut(word as usize), &scaled);
        for &g in &grams {
            tabmeta_linalg::add_assign(self.grams.row_mut(g as usize), &scaled);
        }
        self.word_grams[word as usize] = grams;
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The training configuration used.
    pub fn config(&self) -> &CharGramConfig {
        &self.config
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("CharGram serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl TermEmbedder for CharGram {
    fn dim(&self) -> usize {
        self.config.sgns.dim
    }

    fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
        if let Some(id) = self.vocab.id(term) {
            let mut v = vec![0.0; self.dim()];
            self.compose_into(id, &mut v);
            tabmeta_linalg::add_assign(out, &v);
            return true;
        }
        // OOV: compose from grams alone — the property BioBERT buys the
        // paper on rare biomedical terms.
        let grams = ngram_ids(term, &self.config.ngrams);
        if grams.is_empty() {
            return false;
        }
        let mut v = vec![0.0; self.dim()];
        for g in &grams {
            tabmeta_linalg::add_assign(&mut v, self.grams.row(*g));
        }
        tabmeta_linalg::scale(&mut v, 1.0 / grams.len() as f32);
        tabmeta_linalg::add_assign(out, &v);
        true
    }

    fn term_id(&self, term: &str) -> Option<tabmeta_text::TermId> {
        // Only in-vocabulary terms get an id; OOV terms embed via grams but
        // have no stable slot, so memoizing callers fall back to the string.
        self.vocab.id(term)
    }

    fn embeds(&self, term: &str) -> bool {
        self.vocab.id(term).is_some() || !ngram_ids(term, &self.config.ngrams).is_empty()
    }
}

impl TunableEmbedder for CharGram {
    fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
        if let Some(id) = self.vocab.id(term) {
            self.spread_gradient(id, grad);
        }
        // OOV terms have no trainable word slot; grams alone could be
        // nudged, but tuning unseen terms risks corrupting shared buckets,
        // so fine-tuning is restricted to vocabulary terms.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic_sentences() -> Vec<Vec<String>> {
        let mk = |words: &[&str]| words.iter().map(|w| w.to_string()).collect::<Vec<_>>();
        let mut out = Vec::new();
        for _ in 0..100 {
            out.push(mk(&["headache", "migraine", "nausea", "symptom"]));
            out.push(mk(&["enrollment", "tuition", "campus", "faculty"]));
            out.push(mk(&["migraine", "headache", "symptom"]));
            out.push(mk(&["campus", "tuition", "enrollment"]));
        }
        out
    }

    #[test]
    fn training_separates_topics() {
        let (model, report) = CharGram::train(&topic_sentences(), CharGramConfig::tiny(9));
        assert!(report.pairs > 0);
        let sim = |a: &str, b: &str| {
            tabmeta_linalg::cosine_similarity(&model.embed(a).unwrap(), &model.embed(b).unwrap())
        };
        assert!(sim("headache", "migraine") > sim("headache", "tuition"));
    }

    #[test]
    fn hogwild_training_separates_topics() {
        let mut config = CharGramConfig::tiny(9);
        config.sgns.threads = 4;
        let (model, report) = CharGram::train(&topic_sentences(), config);
        assert!(report.pairs > 0);
        let sim = |a: &str, b: &str| {
            tabmeta_linalg::cosine_similarity(&model.embed(a).unwrap(), &model.embed(b).unwrap())
        };
        assert!(sim("headache", "migraine") > sim("headache", "tuition"));
    }

    #[test]
    fn oov_terms_still_embed_via_grams() {
        let (model, _) = CharGram::train(&topic_sentences(), CharGramConfig::tiny(9));
        // Unseen morphological relative of "headache"/"migraine".
        let v = model.embed("headaches");
        assert!(v.is_some(), "OOV term must compose from grams");
        let sim_in = tabmeta_linalg::cosine_similarity(
            &v.clone().unwrap(),
            &model.embed("headache").unwrap(),
        );
        let sim_out =
            tabmeta_linalg::cosine_similarity(&v.unwrap(), &model.embed("enrollment").unwrap());
        assert!(sim_in > sim_out, "morphological relative should be closer: {sim_in} vs {sim_out}");
    }

    #[test]
    fn class_tokens_are_atomic_and_embeddable() {
        let (model, _) = CharGram::train(&topic_sentences(), CharGramConfig::tiny(9));
        assert!(model.embed("<pct>").is_some());
    }

    #[test]
    fn training_is_deterministic() {
        let a = CharGram::train(&topic_sentences(), CharGramConfig::tiny(10)).0;
        let b = CharGram::train(&topic_sentences(), CharGramConfig::tiny(10)).0;
        assert_eq!(a.embed("headache"), b.embed("headache"));
    }

    #[test]
    fn gradient_tuning_moves_vocabulary_terms_only() {
        let (mut model, _) = CharGram::train(&topic_sentences(), CharGramConfig::tiny(11));
        let before = model.embed("headache").unwrap();
        model.apply_gradient("headache", &vec![0.05; model.dim()]);
        let after = model.embed("headache").unwrap();
        assert!(before.iter().zip(&after).any(|(b, a)| (b - a).abs() > 1e-7));

        let oov_before = model.embed("zzzxqj").unwrap();
        model.apply_gradient("zzzxqj", &vec![0.5; model.dim()]);
        let oov_after = model.embed("zzzxqj").unwrap();
        assert_eq!(oov_before, oov_after, "OOV tuning must be a no-op");
    }

    #[test]
    fn json_roundtrip() {
        let (model, _) = CharGram::train(&topic_sentences(), CharGramConfig::tiny(12));
        let back = CharGram::from_json(&model.to_json()).unwrap();
        assert_eq!(back.embed("campus"), model.embed("campus"));
    }

    #[test]
    fn resumable_run_is_bit_identical() {
        use std::ops::ControlFlow;
        let sentences = topic_sentences();
        let config = CharGramConfig::tiny(14);
        let (baseline, base_report) = CharGram::train(&sentences, config.clone());

        let mut snap: Option<(CharGram, SgnsResume)> = None;
        let mut sink = |m: &CharGram, s: &SgnsResume| {
            if s.epochs_done == 2 {
                snap = Some((m.clone(), s.clone()));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        };
        let (_, _, interrupted) =
            CharGram::train_resumable(&sentences, config.clone(), None, Some(&mut sink));
        assert!(interrupted);
        let (resumed, report, interrupted) =
            CharGram::train_resumable(&sentences, config, snap, None);
        assert!(!interrupted);
        assert_eq!(report, base_report);
        assert_eq!(resumed.to_json(), baseline.to_json(), "resume must be bit-identical");
    }

    #[test]
    fn integrity_validation_flags_corruption() {
        let (model, _) = CharGram::train(&topic_sentences(), CharGramConfig::tiny(15));
        assert_eq!(model.validate_integrity(), Ok(()));

        let mut bad = model.clone();
        bad.grams.row_mut(1)[0] = f32::INFINITY;
        assert!(matches!(
            bad.validate_integrity(),
            Err(IntegrityFault::NonFinite { location }) if location.contains("chargram.grams")
        ));

        let mut bad = model.clone();
        bad.word_grams[0] = vec![u32::MAX];
        assert!(matches!(bad.validate_integrity(), Err(IntegrityFault::Shape { .. })));
    }

    #[test]
    fn empty_training_is_graceful() {
        let (model, report) = CharGram::train(&[], CharGramConfig::tiny(13));
        assert_eq!(report.pairs, 0);
        // Even with no data, gram composition yields *some* vector.
        assert!(model.embed("anything").is_some());
    }
}
