//! The embedding interface the classifier consumes.
//!
//! The contrastive pipeline is embedding-model-agnostic: it needs to (a)
//! accumulate a term's vector into a level aggregate and (b) nudge a term's
//! vector during contrastive fine-tuning. Both Word2Vec and CharGram
//! implement this pair of traits, so the whole downstream stack — centroid
//! computation, fine-tuning, Algorithm 1 — is written once.

/// Read access to term vectors.
pub trait TermEmbedder {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// Add `term`'s vector into `out` (which must have length [`dim`]).
    /// Returns `false` when the term has no representation (fully OOV),
    /// leaving `out` untouched.
    ///
    /// [`dim`]: TermEmbedder::dim
    fn accumulate(&self, term: &str, out: &mut [f32]) -> bool;

    /// Convenience: the term's vector as an owned `Vec`, or `None` if OOV.
    fn embed(&self, term: &str) -> Option<Vec<f32>> {
        let mut out = vec![0.0; self.dim()];
        self.accumulate(term, &mut out).then_some(out)
    }

    /// Stable vocabulary id for `term` when the model has a dense,
    /// id-addressable vocabulary entry for it; `None` otherwise.
    ///
    /// Callers may use the id only as a memoization key: `None` does **not**
    /// imply OOV (CharGram composes out-of-vocabulary terms from grams and
    /// still accumulates them) — use [`embeds`] for that question.
    ///
    /// [`embeds`]: TermEmbedder::embeds
    fn term_id(&self, _term: &str) -> Option<tabmeta_text::TermId> {
        None
    }

    /// Whether `term` has any representation — i.e. whether [`accumulate`]
    /// would return `true` — ideally without allocating. The default probes
    /// via [`embed`] and therefore allocates a scratch vector; real models
    /// override it with a vocabulary test.
    ///
    /// [`accumulate`]: TermEmbedder::accumulate
    /// [`embed`]: TermEmbedder::embed
    fn embeds(&self, term: &str) -> bool {
        self.embed(term).is_some()
    }

    /// Aggregate a sequence of terms by summation (Def. 8). Returns `None`
    /// when no term embedded.
    fn aggregate<'t>(&self, terms: impl IntoIterator<Item = &'t str>) -> Option<Vec<f32>> {
        let mut out = vec![0.0; self.dim()];
        let mut any = false;
        for term in terms {
            any |= self.accumulate(term, &mut out);
        }
        any.then_some(out)
    }
}

/// Write access used by contrastive fine-tuning.
pub trait TunableEmbedder: TermEmbedder {
    /// Apply `grad` (already scaled by the learning rate) to `term`'s
    /// underlying parameters. No-op for OOV terms.
    fn apply_gradient(&mut self, term: &str, grad: &[f32]);
}

/// A structural or numeric defect found in an embedding model — the deep
/// half of artifact validation: a file can have a valid checksum and parse
/// cleanly yet still carry weights that would poison every downstream
/// angle computation. Produced by the models' `validate_integrity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityFault {
    /// A weight matrix's shape disagrees with the vocabulary or config.
    Shape {
        /// What disagrees with what, with the numbers involved.
        detail: String,
    },
    /// A NaN or infinite weight.
    NonFinite {
        /// Which matrix and row holds the bad value.
        location: String,
    },
}

impl std::fmt::Display for IntegrityFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityFault::Shape { detail } => write!(f, "shape mismatch: {detail}"),
            IntegrityFault::NonFinite { location } => {
                write!(f, "non-finite weight in {location}")
            }
        }
    }
}

impl std::error::Error for IntegrityFault {}

/// Scan a matrix for NaN/Inf; `name` labels the fault location.
pub(crate) fn check_matrix_finite(
    m: &tabmeta_linalg::Matrix,
    name: &str,
) -> Result<(), IntegrityFault> {
    if let Some(idx) = m.as_flat().iter().position(|v| !v.is_finite()) {
        let dim = m.dim().max(1);
        return Err(IntegrityFault::NonFinite {
            location: format!("{name} row {} col {}", idx / dim, idx % dim),
        });
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::collections::HashMap;

    /// A fixed-dictionary embedder for unit tests of downstream crates.
    #[derive(Debug, Clone, Default)]
    pub struct FixedEmbedder {
        pub dim: usize,
        pub vectors: HashMap<String, Vec<f32>>,
    }

    impl TermEmbedder for FixedEmbedder {
        fn dim(&self) -> usize {
            self.dim
        }

        fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
            match self.vectors.get(term) {
                Some(v) => {
                    tabmeta_linalg::add_assign(out, v);
                    true
                }
                None => false,
            }
        }

        fn embeds(&self, term: &str) -> bool {
            self.vectors.contains_key(term)
        }
    }

    impl TunableEmbedder for FixedEmbedder {
        fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
            if let Some(v) = self.vectors.get_mut(term) {
                tabmeta_linalg::add_assign(v, grad);
            }
        }
    }

    #[test]
    fn aggregate_sums_known_terms() {
        let mut e = FixedEmbedder { dim: 2, ..Default::default() };
        e.vectors.insert("a".into(), vec![1.0, 0.0]);
        e.vectors.insert("b".into(), vec![0.0, 2.0]);
        let agg = e.aggregate(["a", "b", "zzz"]).unwrap();
        assert_eq!(agg, vec![1.0, 2.0]);
    }

    #[test]
    fn aggregate_of_all_oov_is_none() {
        let e = FixedEmbedder { dim: 3, ..Default::default() };
        assert!(e.aggregate(["x", "y"]).is_none());
    }

    #[test]
    fn embed_returns_owned_copy() {
        let mut e = FixedEmbedder { dim: 2, ..Default::default() };
        e.vectors.insert("a".into(), vec![0.5, 0.5]);
        assert_eq!(e.embed("a"), Some(vec![0.5, 0.5]));
        assert_eq!(e.embed("q"), None);
    }

    #[test]
    fn embeds_and_term_id_defaults() {
        let mut e = FixedEmbedder { dim: 2, ..Default::default() };
        e.vectors.insert("a".into(), vec![0.5, 0.5]);
        assert!(e.embeds("a"));
        assert!(!e.embeds("q"));
        // FixedEmbedder keeps the trait default: no id-addressable vocab.
        assert_eq!(e.term_id("a"), None);
    }

    #[test]
    fn gradient_applies() {
        let mut e = FixedEmbedder { dim: 2, ..Default::default() };
        e.vectors.insert("a".into(), vec![1.0, 1.0]);
        e.apply_gradient("a", &[0.5, -0.5]);
        assert_eq!(e.embed("a"), Some(vec![1.5, 0.5]));
        e.apply_gradient("missing", &[9.0, 9.0]); // no-op, no panic
    }
}
