//! The Word2Vec model: vocabulary + input/output matrices + SGNS training.
//!
//! Mirrors the paper's Gensim configuration (§IV-C): skip-gram with
//! negative sampling, dimensionality 300, window 3, `min_count` 1. Term
//! vectors are the **input** matrix rows, as is conventional.

use crate::embedder::{TermEmbedder, TunableEmbedder};
use crate::negative::NegativeTable;
use crate::sgns::{SgnsConfig, SgnsTrainer, TrainReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tabmeta_linalg::Matrix;
use tabmeta_text::{NumericClass, TermId, Vocabulary};

/// A trained (or in-training) Word2Vec model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Word2Vec {
    config: SgnsConfig,
    vocab: Vocabulary,
    input: Matrix,
    output: Matrix,
}

impl Word2Vec {
    /// Train a model from term-string sentences.
    ///
    /// Builds the vocabulary (applying `config.min_count`), encodes the
    /// sentences, and runs [`SgnsTrainer`]. Numeric class tokens are
    /// pre-interned so they always exist even in corpora without numerics.
    pub fn train(sentences: &[Vec<String>], config: SgnsConfig) -> (Self, TrainReport) {
        let mut counting = Vocabulary::new();
        for s in sentences {
            for t in s {
                counting.add(t);
            }
        }
        let (mut vocab, remap) = counting.filter_min_count(config.min_count.max(1));
        for tok in NumericClass::all_tokens() {
            vocab.intern(tok);
        }
        let encoded: Vec<Vec<u32>> = sentences
            .iter()
            .map(|s| {
                s.iter()
                    .filter_map(|t| counting.id(t).and_then(|old| remap[old as usize]))
                    .collect()
            })
            .filter(|s: &Vec<u32>| s.len() >= 2)
            .collect();

        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
        let mut input = Matrix::uniform_init(vocab.len(), config.dim, &mut rng);
        let mut output = Matrix::zeros(vocab.len(), config.dim);
        let report = if encoded.is_empty() || vocab.total_count() == 0 {
            TrainReport::default()
        } else {
            let negatives = NegativeTable::build(&vocab, NegativeTable::DEFAULT_SIZE.min(1 << 18));
            let mut trainer = SgnsTrainer::new(&config);
            trainer.train(&encoded, &negatives, &mut input, &mut output)
        };
        (Self { config, vocab, input, output }, report)
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The training configuration used.
    pub fn config(&self) -> &SgnsConfig {
        &self.config
    }

    /// Term id lookup.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.vocab.id(term)
    }

    /// Raw vector of a term id.
    pub fn vector(&self, id: TermId) -> &[f32] {
        self.input.row(id as usize)
    }

    /// The `k` most-similar terms to `term` by cosine, excluding itself.
    pub fn most_similar(&self, term: &str, k: usize) -> Vec<(String, f32)> {
        let Some(id) = self.term_id(term) else {
            return Vec::new();
        };
        let query = self.input.row(id as usize);
        let mut scored: Vec<(String, f32)> = self
            .vocab
            .iter()
            .filter(|(other, _, _)| *other != id)
            .map(|(other, text, _)| {
                (
                    text.to_string(),
                    tabmeta_linalg::cosine_similarity(query, self.input.row(other as usize)),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("cosine is finite"));
        scored.truncate(k);
        scored
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Word2Vec serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl TermEmbedder for Word2Vec {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
        match self.vocab.id(term) {
            Some(id) => {
                tabmeta_linalg::add_assign(out, self.input.row(id as usize));
                true
            }
            None => false,
        }
    }
}

impl TunableEmbedder for Word2Vec {
    fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
        if let Some(id) = self.vocab.id(term) {
            tabmeta_linalg::add_assign(self.input.row_mut(id as usize), grad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sentences with two disjoint topics plus shared filler.
    fn topic_sentences() -> Vec<Vec<String>> {
        let mk = |words: &[&str]| words.iter().map(|w| w.to_string()).collect::<Vec<_>>();
        let mut out = Vec::new();
        for _ in 0..120 {
            out.push(mk(&["age", "sex", "gender", "cohort"]));
            out.push(mk(&["cornell", "ithaca", "albany", "buffalo"]));
            out.push(mk(&["age", "cohort", "gender"]));
            out.push(mk(&["albany", "buffalo", "cornell"]));
        }
        out
    }

    #[test]
    fn train_separates_topics_and_is_queryable() {
        let (model, report) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(3));
        assert!(report.pairs > 0);
        let sim = |a: &str, b: &str| {
            let va = model.embed(a).unwrap();
            let vb = model.embed(b).unwrap();
            tabmeta_linalg::cosine_similarity(&va, &vb)
        };
        assert!(sim("age", "gender") > sim("age", "cornell"));
        let neighbours = model.most_similar("albany", 2);
        assert_eq!(neighbours.len(), 2);
        assert!(
            neighbours.iter().any(|(t, _)| t == "buffalo" || t == "cornell" || t == "ithaca"),
            "neighbours of albany: {neighbours:?}"
        );
    }

    #[test]
    fn oov_terms_are_none() {
        let (model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(3));
        assert!(model.embed("zzzunknown").is_none());
        assert!(model.most_similar("zzzunknown", 3).is_empty());
    }

    #[test]
    fn min_count_prunes_rare_terms() {
        let mut sentences = topic_sentences();
        sentences.push(vec!["hapax".to_string(), "age".to_string()]);
        let config = SgnsConfig { min_count: 2, ..SgnsConfig::tiny(4) };
        let (model, _) = Word2Vec::train(&sentences, config);
        assert!(model.term_id("hapax").is_none());
        assert!(model.term_id("age").is_some());
    }

    #[test]
    fn numeric_class_tokens_always_interned() {
        let (model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(5));
        for tok in NumericClass::all_tokens() {
            assert!(model.term_id(tok).is_some(), "{tok} missing");
        }
    }

    #[test]
    fn gradient_tuning_moves_vector() {
        let (mut model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(6));
        let before = model.embed("age").unwrap();
        let grad = vec![0.1; model.dim()];
        model.apply_gradient("age", &grad);
        let after = model.embed("age").unwrap();
        assert!(before.iter().zip(&after).any(|(b, a)| (b - a).abs() > 1e-6));
    }

    #[test]
    fn json_roundtrip_preserves_vectors() {
        let (model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(7));
        let back = Word2Vec::from_json(&model.to_json()).unwrap();
        assert_eq!(back.embed("age"), model.embed("age"));
        assert_eq!(back.vocab().len(), model.vocab().len());
    }

    #[test]
    fn empty_training_set_yields_usable_empty_model() {
        let (model, report) = Word2Vec::train(&[], SgnsConfig::tiny(8));
        assert_eq!(report.pairs, 0);
        assert!(model.embed("anything").is_none());
        // Class tokens exist but carry zero-count vectors.
        assert!(model.term_id("<pct>").is_some());
    }
}
