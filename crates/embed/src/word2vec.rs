//! The Word2Vec model: vocabulary + input/output matrices + SGNS training.
//!
//! Mirrors the paper's Gensim configuration (§IV-C): skip-gram with
//! negative sampling, dimensionality 300, window 3, `min_count` 1. Term
//! vectors are the **input** matrix rows, as is conventional.

use crate::embedder::{check_matrix_finite, IntegrityFault, TermEmbedder, TunableEmbedder};
use crate::negative::NegativeTable;
use crate::sgns::{EpochSink, SgnsConfig, SgnsResume, SgnsTrainer, TrainReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tabmeta_linalg::Matrix;
use tabmeta_text::{NumericClass, TermId, Vocabulary};

/// A trained (or in-training) Word2Vec model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Word2Vec {
    config: SgnsConfig,
    vocab: Vocabulary,
    input: Matrix,
    output: Matrix,
}

/// Pass-A half of the two-pass streaming vocabulary build: feed every
/// sentence through [`VocabBuilder::observe`] (shard by shard, dropping
/// each shard's sentences afterwards), then [`VocabBuilder::finish`] to
/// apply `min_count` and obtain the final [`Vocabulary`] plus the
/// [`SentenceEncoder`] pass B uses to turn sentences into compact id
/// lists. Observing the same sentences in the same order as the
/// in-memory path yields an identical vocabulary — term ids are
/// insertion-ordered, so the split into shards is invisible.
#[derive(Debug, Default)]
pub struct VocabBuilder {
    counting: Vocabulary,
}

impl VocabBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count every term of one sentence.
    pub fn observe(&mut self, sentence: &[String]) {
        for t in sentence {
            self.counting.add(t);
        }
    }

    /// Number of distinct terms observed so far (pre-filter).
    pub fn distinct_terms(&self) -> usize {
        self.counting.len()
    }

    /// Apply `min_count` (clamped to ≥ 1), intern the numeric-class
    /// tokens, and return the final vocabulary with its encoder.
    pub fn finish(self, min_count: u64) -> (Vocabulary, SentenceEncoder) {
        let (mut vocab, remap) = self.counting.filter_min_count(min_count.max(1));
        for tok in NumericClass::all_tokens() {
            vocab.intern(tok);
        }
        (vocab, SentenceEncoder { counting: self.counting, remap })
    }
}

/// Pass-B encoder: maps term-string sentences to final vocabulary ids,
/// dropping out-of-vocabulary terms and sentences too short to yield a
/// skip-gram pair — exactly the encoding [`Word2Vec::train_resumable`]
/// performs in memory.
#[derive(Debug)]
pub struct SentenceEncoder {
    counting: Vocabulary,
    remap: Vec<Option<TermId>>,
}

impl SentenceEncoder {
    /// Encode one sentence; `None` when fewer than two terms survive
    /// (such sentences contribute no pairs and no learning-rate decay).
    pub fn encode(&self, sentence: &[String]) -> Option<Vec<u32>> {
        let ids: Vec<u32> = sentence
            .iter()
            .filter_map(|t| self.counting.id(t).and_then(|old| self.remap[old as usize]))
            .collect();
        if ids.len() >= 2 {
            Some(ids)
        } else {
            None
        }
    }
}

impl Word2Vec {
    /// Train a model from term-string sentences.
    ///
    /// Builds the vocabulary (applying `config.min_count`), encodes the
    /// sentences, and runs [`SgnsTrainer`]. Numeric class tokens are
    /// pre-interned so they always exist even in corpora without numerics.
    pub fn train(sentences: &[Vec<String>], config: SgnsConfig) -> (Self, TrainReport) {
        let (model, report, _) = Self::train_resumable(sentences, config, None, None);
        (model, report)
    }

    /// [`Word2Vec::train`] with checkpoint/resume plumbing.
    ///
    /// The vocabulary and sentence encoding are always recomputed (they are
    /// pure functions of `sentences` + `config`); `resume` restores a model
    /// and its SGNS loop state captured at an epoch boundary, and `sink` is
    /// invoked after every completed epoch on the sequential path (once,
    /// after the whole stage, on the Hogwild path — per-epoch interleaving
    /// state cannot be snapshotted there). Returns `true` in the last tuple
    /// slot when the sink broke out of training early; the returned model
    /// then holds the state at the last completed epoch.
    ///
    /// At `threads = 1` a resumed run continues the exact RNG stream and
    /// learning-rate schedule, so the final model is bit-identical to an
    /// uninterrupted run. A partially-complete resume under `threads > 1`
    /// finishes the remaining epochs on the deterministic sequential path
    /// (mid-stage Hogwild state is never checkpointed in the first place).
    pub fn train_resumable(
        sentences: &[Vec<String>],
        config: SgnsConfig,
        resume: Option<(Self, SgnsResume)>,
        sink: Option<EpochSink<'_, Self>>,
    ) -> (Self, TrainReport, bool) {
        let mut builder = VocabBuilder::new();
        for s in sentences {
            builder.observe(s);
        }
        let (vocab, encoder) = builder.finish(config.min_count);
        let encoded: Vec<Vec<u32>> = sentences.iter().filter_map(|s| encoder.encode(s)).collect();
        Self::train_encoded_resumable(vocab, &encoded, config, resume, sink)
    }

    /// [`Word2Vec::train_resumable`] over pre-encoded sentences — the seam
    /// the out-of-core path uses: pass A builds `vocab` via
    /// [`VocabBuilder`], pass B encodes each shard with the returned
    /// [`SentenceEncoder`] and accumulates only the compact id lists, then
    /// hands them here. `vocab` is only consulted on a fresh start (a
    /// resumed model carries its own); `encoded` must already exclude
    /// sentences shorter than two ids, as [`SentenceEncoder::encode`]
    /// guarantees, or the learning-rate schedule diverges from the
    /// in-memory path.
    pub fn train_encoded_resumable(
        vocab: Vocabulary,
        encoded: &[Vec<u32>],
        config: SgnsConfig,
        resume: Option<(Self, SgnsResume)>,
        mut sink: Option<EpochSink<'_, Self>>,
    ) -> (Self, TrainReport, bool) {
        let (mut model, state) = match resume {
            Some((model, state)) => (model, state),
            None => {
                let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
                let input = Matrix::uniform_init(vocab.len(), config.dim, &mut rng);
                let output = Matrix::zeros(vocab.len(), config.dim);
                let state = SgnsResume::fresh(&config);
                (Self { config, vocab, input, output }, state)
            }
        };
        let config = model.config.clone();

        if encoded.is_empty() || model.vocab.total_count() == 0 {
            return (model, TrainReport { pairs: state.pairs, final_lr: state.lr }, false);
        }
        let negatives =
            NegativeTable::build(&model.vocab, NegativeTable::DEFAULT_SIZE.min(1 << 18));

        if config.threads > 1 && state.epochs_done == 0 {
            // Hogwild runs the stage in one shot; per-epoch snapshots are
            // meaningless mid-flight, so the sink sees only the stage end.
            let report = SgnsTrainer::new(&config).train(
                encoded,
                &negatives,
                &mut model.input,
                &mut model.output,
            );
            let mut interrupted = false;
            if let Some(sink) = sink.as_mut() {
                let end = SgnsResume {
                    epochs_done: config.epochs,
                    pairs: report.pairs,
                    lr: report.final_lr,
                    ..SgnsResume::fresh(&config)
                };
                interrupted = sink(&model, &end).is_break();
            }
            return (model, report, interrupted);
        }

        tabmeta_obs::span!(tabmeta_obs::names::SPAN_SGNS);
        let mut trainer = if state.epochs_done == 0 && state.processed == 0 {
            SgnsTrainer::new(&config)
        } else {
            SgnsTrainer::resume(&config, &state)
        };
        let mut interrupted = false;
        while !trainer.is_complete() {
            trainer.run_epoch(encoded, &negatives, &mut model.input, &mut model.output);
            if let Some(sink) = sink.as_mut() {
                if sink(&model, &trainer.state()).is_break() {
                    interrupted = true;
                    break;
                }
            }
        }
        let report = trainer.report();
        (model, report, interrupted)
    }

    /// Deep validation for deserialized models: matrix shapes must agree
    /// with the vocabulary and config, and every weight must be finite.
    pub fn validate_integrity(&self) -> Result<(), IntegrityFault> {
        if self.input.rows() != self.vocab.len() || self.output.rows() != self.vocab.len() {
            return Err(IntegrityFault::Shape {
                detail: format!(
                    "word2vec matrices hold {}x{} rows but the vocabulary has {} terms",
                    self.input.rows(),
                    self.output.rows(),
                    self.vocab.len()
                ),
            });
        }
        if self.input.dim() != self.config.dim || self.output.dim() != self.config.dim {
            return Err(IntegrityFault::Shape {
                detail: format!(
                    "word2vec matrix dims {}/{} disagree with config dim {}",
                    self.input.dim(),
                    self.output.dim(),
                    self.config.dim
                ),
            });
        }
        check_matrix_finite(&self.input, "word2vec.input")?;
        check_matrix_finite(&self.output, "word2vec.output")
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The training configuration used.
    pub fn config(&self) -> &SgnsConfig {
        &self.config
    }

    /// Term id lookup.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.vocab.id(term)
    }

    /// Raw vector of a term id.
    pub fn vector(&self, id: TermId) -> &[f32] {
        self.input.row(id as usize)
    }

    /// The `k` most-similar terms to `term` by cosine, excluding itself.
    pub fn most_similar(&self, term: &str, k: usize) -> Vec<(String, f32)> {
        let Some(id) = self.term_id(term) else {
            return Vec::new();
        };
        let query = self.input.row(id as usize);
        let mut scored: Vec<(String, f32)> = self
            .vocab
            .iter()
            .filter(|(other, _, _)| *other != id)
            .map(|(other, text, _)| {
                (
                    text.to_string(),
                    tabmeta_linalg::cosine_similarity(query, self.input.row(other as usize)),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("cosine is finite"));
        scored.truncate(k);
        scored
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Word2Vec serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl TermEmbedder for Word2Vec {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
        match self.vocab.id(term) {
            Some(id) => {
                tabmeta_linalg::add_assign(out, self.input.row(id as usize));
                true
            }
            None => false,
        }
    }

    fn term_id(&self, term: &str) -> Option<TermId> {
        self.vocab.id(term)
    }

    fn embeds(&self, term: &str) -> bool {
        self.vocab.id(term).is_some()
    }
}

impl TunableEmbedder for Word2Vec {
    fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
        if let Some(id) = self.vocab.id(term) {
            tabmeta_linalg::add_assign(self.input.row_mut(id as usize), grad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sentences with two disjoint topics plus shared filler.
    fn topic_sentences() -> Vec<Vec<String>> {
        let mk = |words: &[&str]| words.iter().map(|w| w.to_string()).collect::<Vec<_>>();
        let mut out = Vec::new();
        for _ in 0..120 {
            out.push(mk(&["age", "sex", "gender", "cohort"]));
            out.push(mk(&["cornell", "ithaca", "albany", "buffalo"]));
            out.push(mk(&["age", "cohort", "gender"]));
            out.push(mk(&["albany", "buffalo", "cornell"]));
        }
        out
    }

    #[test]
    fn train_separates_topics_and_is_queryable() {
        let (model, report) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(3));
        assert!(report.pairs > 0);
        let sim = |a: &str, b: &str| {
            let va = model.embed(a).unwrap();
            let vb = model.embed(b).unwrap();
            tabmeta_linalg::cosine_similarity(&va, &vb)
        };
        assert!(sim("age", "gender") > sim("age", "cornell"));
        let neighbours = model.most_similar("albany", 2);
        assert_eq!(neighbours.len(), 2);
        assert!(
            neighbours.iter().any(|(t, _)| t == "buffalo" || t == "cornell" || t == "ithaca"),
            "neighbours of albany: {neighbours:?}"
        );
    }

    #[test]
    fn oov_terms_are_none() {
        let (model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(3));
        assert!(model.embed("zzzunknown").is_none());
        assert!(model.most_similar("zzzunknown", 3).is_empty());
    }

    #[test]
    fn min_count_prunes_rare_terms() {
        let mut sentences = topic_sentences();
        sentences.push(vec!["hapax".to_string(), "age".to_string()]);
        let config = SgnsConfig { min_count: 2, ..SgnsConfig::tiny(4) };
        let (model, _) = Word2Vec::train(&sentences, config);
        assert!(model.term_id("hapax").is_none());
        assert!(model.term_id("age").is_some());
    }

    #[test]
    fn numeric_class_tokens_always_interned() {
        let (model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(5));
        for tok in NumericClass::all_tokens() {
            assert!(model.term_id(tok).is_some(), "{tok} missing");
        }
    }

    #[test]
    fn gradient_tuning_moves_vector() {
        let (mut model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(6));
        let before = model.embed("age").unwrap();
        let grad = vec![0.1; model.dim()];
        model.apply_gradient("age", &grad);
        let after = model.embed("age").unwrap();
        assert!(before.iter().zip(&after).any(|(b, a)| (b - a).abs() > 1e-6));
    }

    #[test]
    fn json_roundtrip_preserves_vectors() {
        let (model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(7));
        let back = Word2Vec::from_json(&model.to_json()).unwrap();
        assert_eq!(back.embed("age"), model.embed("age"));
        assert_eq!(back.vocab().len(), model.vocab().len());
    }

    #[test]
    fn resumable_run_is_bit_identical() {
        use std::ops::ControlFlow;
        let sentences = topic_sentences();
        let config = SgnsConfig::tiny(21);
        let (baseline, base_report) = Word2Vec::train(&sentences, config.clone());

        // Interrupt after epoch 1, then resume from the captured snapshot.
        let mut snap: Option<(Word2Vec, SgnsResume)> = None;
        let mut sink = |m: &Word2Vec, s: &SgnsResume| {
            if s.epochs_done == 1 {
                snap = Some((m.clone(), s.clone()));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        };
        let (_, _, interrupted) =
            Word2Vec::train_resumable(&sentences, config.clone(), None, Some(&mut sink));
        assert!(interrupted);
        let (resumed, report, interrupted) =
            Word2Vec::train_resumable(&sentences, config, snap, None);
        assert!(!interrupted);
        assert_eq!(report, base_report);
        assert_eq!(resumed.to_json(), baseline.to_json(), "resume must be bit-identical");
    }

    #[test]
    fn integrity_validation_flags_nan_and_shape() {
        let (model, _) = Word2Vec::train(&topic_sentences(), SgnsConfig::tiny(22));
        assert_eq!(model.validate_integrity(), Ok(()));

        let mut bad = model.clone();
        bad.input.row_mut(0)[0] = f32::NAN;
        assert!(matches!(
            bad.validate_integrity(),
            Err(IntegrityFault::NonFinite { location }) if location.contains("word2vec.input")
        ));

        let mut bad = model.clone();
        bad.config.dim += 1;
        assert!(matches!(bad.validate_integrity(), Err(IntegrityFault::Shape { .. })));
    }

    #[test]
    fn empty_training_set_yields_usable_empty_model() {
        let (model, report) = Word2Vec::train(&[], SgnsConfig::tiny(8));
        assert_eq!(report.pairs, 0);
        assert!(model.embed("anything").is_none());
        // Class tokens exist but carry zero-count vectors.
        assert!(model.term_id("<pct>").is_some());
    }
}
