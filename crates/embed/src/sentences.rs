//! Turning tables into training sentences.
//!
//! §IV-C: *"The training set is comprised of table tuples/rows. We
//! tokenize, embed, encode each tuple … We add [CLS] at the start of each
//! row and [SEP] between the cells."* We reproduce the row serialization
//! (with the `[SEP]` cell boundary token) and additionally emit column
//! sentences, since VMD classification consumes columnar co-occurrence.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tabmeta_tabular::{Axis, Table};
use tabmeta_text::Tokenizer;

/// Cell-boundary token, in the spirit of BERT's `[SEP]`.
pub const SEP: &str = "[sep]";

/// Sentence extraction knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SentenceConfig {
    /// Emit one sentence per row.
    pub rows: bool,
    /// Emit one sentence per column.
    pub columns: bool,
    /// Insert [`SEP`] between cells within a sentence.
    pub cell_separators: bool,
    /// Include the table caption as its own sentence.
    pub captions: bool,
}

impl Default for SentenceConfig {
    fn default() -> Self {
        Self { rows: true, columns: true, cell_separators: true, captions: true }
    }
}

/// Extract training sentences (term-string sequences) from tables.
pub fn sentences_from_tables(
    tables: &[Table],
    tokenizer: &Tokenizer,
    config: &SentenceConfig,
) -> Vec<Vec<String>> {
    sentences_from_tables_par(tables, tokenizer, config, 1)
}

/// [`sentences_from_tables`] with explicit parallelism: `threads > 1`
/// extracts per-table sentence blocks on rayon workers and flattens them
/// in table order, so the output is identical to the sequential path —
/// extraction is pure per table, making this the easy half of the
/// parallel training pipeline.
pub fn sentences_from_tables_par(
    tables: &[Table],
    tokenizer: &Tokenizer,
    config: &SentenceConfig,
    threads: usize,
) -> Vec<Vec<String>> {
    tabmeta_obs::span!(tabmeta_obs::names::SPAN_SENTENCES);
    let out: Vec<Vec<String>> = if threads > 1 {
        let blocks: Vec<Vec<Vec<String>>> = tables
            .par_iter()
            .map(|t| {
                let mut block = Vec::new();
                sentences_from_table(t, tokenizer, config, &mut block);
                block
            })
            .collect();
        blocks.into_iter().flatten().collect()
    } else {
        let mut out = Vec::new();
        for table in tables {
            sentences_from_table(table, tokenizer, config, &mut out);
        }
        out
    };
    use tabmeta_obs::names;
    let obs = tabmeta_obs::global();
    obs.counter(names::EMBED_SENTENCES).add(out.len() as u64);
    let lens = obs.histogram_with(names::EMBED_SENTENCE_LEN, 1, 256);
    for sentence in &out {
        lens.record(sentence.len() as u64);
    }
    out
}

/// Append one table's sentences to `out`.
fn sentences_from_table(
    table: &Table,
    tokenizer: &Tokenizer,
    config: &SentenceConfig,
    out: &mut Vec<Vec<String>>,
) {
    let mut buf = Vec::new();
    if config.captions && !table.caption.is_empty() {
        let terms = tokenizer.terms(&table.caption);
        if !terms.is_empty() {
            out.push(terms);
        }
    }
    let mut push_level = |axis: Axis, index: usize, out: &mut Vec<Vec<String>>| {
        let mut sentence: Vec<String> = Vec::new();
        for cell in table.level_cells(axis, index) {
            if cell.is_blank() {
                continue;
            }
            buf.clear();
            tokenizer.tokenize_into(&cell.text, &mut buf);
            if buf.is_empty() {
                continue;
            }
            if config.cell_separators && !sentence.is_empty() {
                sentence.push(SEP.to_string());
            }
            sentence.extend(buf.drain(..).map(|t| t.text));
        }
        if sentence.len() > 1 || (sentence.len() == 1 && sentence[0] != SEP) {
            out.push(sentence);
        }
    };
    if config.rows {
        for i in 0..table.n_rows() {
            push_level(Axis::Row, i, out);
        }
    }
    if config.columns {
        for j in 0..table.n_cols() {
            push_level(Axis::Column, j, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::from_strings(
            1,
            &[&["age group", "count"], &["12 to 15 years", "61"], &["", "27"]],
        );
        t.caption = "Vaccine outcomes".to_string();
        t
    }

    #[test]
    fn rows_and_columns_and_caption() {
        let t = sample();
        let sents = sentences_from_tables(&[t], &Tokenizer::default(), &SentenceConfig::default());
        // caption + 3 rows (one is single-cell) + 2 columns.
        assert!(sents.iter().any(|s| s == &["vaccine", "outcomes"]));
        assert!(sents.iter().any(|s| s.contains(&SEP.to_string())));
        // Column 0 sentence skips the blank cell.
        assert!(sents
            .iter()
            .any(|s| s.first().map(String::as_str) == Some("age")
                && s.contains(&"years".to_string())));
    }

    #[test]
    fn separators_can_be_disabled() {
        let cfg = SentenceConfig { cell_separators: false, ..SentenceConfig::default() };
        let sents = sentences_from_tables(&[sample()], &Tokenizer::default(), &cfg);
        assert!(sents.iter().all(|s| !s.contains(&SEP.to_string())));
    }

    #[test]
    fn rows_only() {
        let cfg = SentenceConfig { columns: false, captions: false, ..SentenceConfig::default() };
        let sents = sentences_from_tables(&[sample()], &Tokenizer::default(), &cfg);
        // 3 rows; the last row has one numeric token only -> kept (single real token).
        assert_eq!(sents.len(), 3);
    }

    #[test]
    fn parallel_extraction_matches_sequential() {
        let tables: Vec<Table> = (0..8).map(|_| sample()).collect();
        let seq = sentences_from_tables(&tables, &Tokenizer::default(), &SentenceConfig::default());
        let par = sentences_from_tables_par(
            &tables,
            &Tokenizer::default(),
            &SentenceConfig::default(),
            4,
        );
        assert_eq!(seq, par, "per-table extraction is pure; order must match");
    }

    #[test]
    fn empty_tables_produce_nothing() {
        let t = Table::from_strings(9, &[&["", ""], &["", ""]]);
        let sents = sentences_from_tables(&[t], &Tokenizer::default(), &SentenceConfig::default());
        assert!(sents.is_empty());
    }
}
