//! Term-embedding training for tabmeta.
//!
//! The paper trains two embedding models over its corpora (§III-A, §IV-C):
//!
//! * **Word2Vec** — dimensionality 300, context window 3, `min_count` 1,
//!   trained with skip-gram + negative sampling. Reproduced faithfully in
//!   [`word2vec::Word2Vec`].
//! * **BioBERT** — a transformer fine-tuned on biomedical text. Out of
//!   scope for a CPU-only Rust reproduction; its *role* in the method
//!   (robust vectors for rare domain terms) is filled by
//!   [`chargram::CharGram`], a fastText-style subword model trained with
//!   the same SGNS objective (see DESIGN.md §2 for the substitution
//!   argument).
//!
//! Training sentences come from table levels: every row and every column of
//! every table becomes one token sequence (the paper trains on "table
//! tuples/rows" with `[CLS]`/`[SEP]` boundary tokens; we mark cell
//! boundaries with a `[SEP]` token in the same spirit). Because header
//! terms co-occur with header terms along their row *and* with their
//! column's data terms, the learned geometry separates metadata-heavy
//! directions from data-heavy directions — which is exactly the gap the
//! classifier's angle ranges measure.
//!
//! Both models implement [`TermEmbedder`] (read access) and
//! [`TunableEmbedder`] (gradient nudges used by contrastive fine-tuning).

#![forbid(unsafe_code)]

pub mod chargram;
pub mod embedder;
pub mod negative;
pub mod sentences;
pub mod sgns;
pub mod word2vec;

pub use chargram::{CharGram, CharGramConfig};
pub use embedder::{IntegrityFault, TermEmbedder, TunableEmbedder};
pub use sentences::{sentences_from_tables, sentences_from_tables_par, SentenceConfig};
pub use sgns::{EpochSink, SgnsConfig, SgnsResume};
pub use word2vec::{SentenceEncoder, VocabBuilder, Word2Vec};
