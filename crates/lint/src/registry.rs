//! Parser for the checked-in metric-name registry
//! (`crates/obs/src/names.rs`).
//!
//! The registry module declares one `pub const IDENT: &str = "value";`
//! per instrument name. A value ending in `.` declares a *prefix*: a
//! documented family of dynamically-suffixed names
//! (`classifier.degraded.<reason>`). TM-L004 cross-checks every metric
//! call site in the workspace against this set.

use crate::scanner;

/// One registered name (or prefix) from `tabmeta_obs::names`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameDef {
    /// The `pub const` identifier (`INGEST_ACCEPTED`).
    pub ident: String,
    /// The declared string value (`"ingest.accepted"`).
    pub value: String,
    /// 1-based declaration line in the registry file.
    pub line: u32,
    /// Whether the value declares a dynamic-name prefix (trailing `.`).
    pub prefix: bool,
    /// Concatenated `///` doc-comment text immediately above the
    /// declaration, markers stripped. TM-L010 checks that every typed
    /// error reason is spelled (backticked) in its prefix's doc.
    pub doc: String,
}

/// The parsed registry: every declared name, in declaration order.
#[derive(Debug, Clone, Default)]
pub struct Names {
    /// All declared names and prefixes.
    pub entries: Vec<NameDef>,
    /// Workspace-relative path the registry was parsed from.
    pub file: String,
}

impl Names {
    /// Parse the registry from the source of `names.rs`. Only
    /// `pub const IDENT: &str = "…";` items declare names; everything
    /// else in the file (the `MetricDef` table, helper fns) is ignored.
    pub fn parse(file: &str, source: &str) -> Names {
        let scan = scanner::scan(source);
        // Doc lines: `///` comment text by ending line, markers stripped.
        let mut doc_lines: std::collections::BTreeMap<u32, String> =
            std::collections::BTreeMap::new();
        for c in &scan.comments {
            if let Some(body) = c.text.strip_prefix("///") {
                doc_lines.insert(c.end_line, body.trim().to_string());
            }
        }
        let mut entries = Vec::new();
        for lit in &scan.literals {
            let text = scan.line_text(source, lit.line).trim_start();
            let Some(rest) = text.strip_prefix("pub const ") else { continue };
            let Some((ident, tail)) = rest.split_once(':') else { continue };
            if !tail.contains("&str") || !tail.contains('=') {
                continue;
            }
            let ident = ident.trim().to_string();
            if ident.is_empty() || !ident.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                continue;
            }
            let prefix = lit.value.ends_with('.');
            // Walk contiguous `///` lines directly above the declaration.
            let mut first = lit.line;
            while first > 1 && doc_lines.contains_key(&(first - 1)) {
                first -= 1;
            }
            let doc = (first..lit.line)
                .filter_map(|l| doc_lines.get(&l).map(String::as_str))
                .collect::<Vec<_>>()
                .join("\n");
            entries.push(NameDef { ident, value: lit.value.clone(), line: lit.line, prefix, doc });
        }
        Names { entries, file: file.to_string() }
    }

    /// The exact (non-prefix) entry matching `value`, if any.
    pub fn exact(&self, value: &str) -> Option<&NameDef> {
        self.entries.iter().find(|e| !e.prefix && e.value == value)
    }

    /// The prefix entry whose value `name` starts with, if any.
    pub fn matching_prefix(&self, name: &str) -> Option<&NameDef> {
        self.entries.iter().find(|e| e.prefix && name.starts_with(&e.value))
    }

    /// The prefix entry declared exactly as `value`, if any.
    pub fn prefix_exact(&self, value: &str) -> Option<&NameDef> {
        self.entries.iter().find(|e| e.prefix && e.value == value)
    }

    /// The registered exact name closest to `value` within edit distance
    /// 1, if any (typo detection).
    pub fn near_duplicate(&self, value: &str) -> Option<&NameDef> {
        self.entries.iter().filter(|e| !e.prefix).find(|e| edit_distance_le_1(&e.value, value))
    }
}

// ---------------------------------------------------------------------
// Concurrency registries (TM-L006, TM-L007, TM-L010).
// ---------------------------------------------------------------------

/// Which sync primitive a registered lock is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex` / `TrackedMutex` — acquired via `.lock()`.
    Mutex,
    /// `RwLock` / `TrackedRwLock` — acquired via `.read()`/`.write()`.
    RwLock,
}

/// One declared lock in the workspace-wide acquisition order.
#[derive(Debug, Clone, Copy)]
pub struct LockDef {
    /// Stable id, identical to `tabmeta_obs::lockorder::REGISTRY`
    /// (a sync test pins the two tables equal).
    pub id: &'static str,
    /// Declared order: holding rank R permits acquiring only > R.
    pub rank: u32,
    /// Workspace-relative file declaring the lock field.
    pub file: &'static str,
    /// Struct field name holding the lock.
    pub field: &'static str,
    /// Primitive kind (decides which acquisition methods to track).
    pub kind: LockKind,
}

/// Every `Mutex`/`RwLock` declared in the workspace, ascending by rank.
/// TM-L006 flags any lock declaration missing from this table and any
/// nested acquisition that does not strictly ascend in rank.
pub const LOCK_ORDER: [LockDef; 9] = [
    LockDef {
        id: "serve.model",
        rank: 10,
        file: "crates/serve/src/server.rs",
        field: "model",
        kind: LockKind::RwLock,
    },
    LockDef {
        id: "serve.queue_rx",
        rank: 20,
        file: "crates/serve/src/server.rs",
        field: "queue_rx",
        kind: LockKind::Mutex,
    },
    LockDef {
        id: "serve.reload_error",
        rank: 30,
        file: "crates/serve/src/server.rs",
        field: "last_reload_error",
        kind: LockKind::Mutex,
    },
    LockDef {
        id: "core.scratch",
        rank: 40,
        file: "crates/core/src/pipeline.rs",
        field: "slots",
        kind: LockKind::Mutex,
    },
    LockDef {
        id: "obs.counters",
        rank: 50,
        file: "crates/obs/src/lib.rs",
        field: "counters",
        kind: LockKind::RwLock,
    },
    LockDef {
        id: "obs.gauges",
        rank: 51,
        file: "crates/obs/src/lib.rs",
        field: "gauges",
        kind: LockKind::RwLock,
    },
    LockDef {
        id: "obs.histograms",
        rank: 52,
        file: "crates/obs/src/lib.rs",
        field: "histograms",
        kind: LockKind::RwLock,
    },
    LockDef {
        id: "obs.span_stats",
        rank: 60,
        file: "crates/obs/src/span.rs",
        field: "stats",
        kind: LockKind::Mutex,
    },
    LockDef {
        id: "obs.timeline",
        rank: 70,
        file: "crates/obs/src/timeline.rs",
        field: "buffer",
        kind: LockKind::Mutex,
    },
];

/// The registered lock declared as `field` in `file`, if any.
pub fn lock_for(file: &str, field: &str) -> Option<&'static LockDef> {
    LOCK_ORDER.iter().find(|l| l.file == file && l.field == field)
}

/// Every registered lock declared in `file`.
pub fn locks_in(file: &str) -> impl Iterator<Item = &'static LockDef> + '_ {
    LOCK_ORDER.iter().filter(move |l| l.file == file)
}

/// A path region where `Ordering::Relaxed` is an audited design choice.
#[derive(Debug, Clone, Copy)]
pub struct RelaxedZone {
    /// Workspace-relative path prefix the zone covers.
    pub path_prefix: &'static str,
    /// Why relaxed ordering is sound there.
    pub reason: &'static str,
}

/// Registered Hogwild/metrics sites where TM-L007 permits `Relaxed`.
/// Anywhere else, a relaxed atomic is a violation: the default for
/// cross-thread signalling is acquire/release.
pub const RELAXED_ZONES: [RelaxedZone; 4] = [
    RelaxedZone {
        path_prefix: "crates/linalg/",
        reason: "Hogwild SGD: racy embedding updates are the algorithm",
    },
    RelaxedZone {
        path_prefix: "crates/obs/",
        reason: "monotonic metric counters; readers tolerate staleness",
    },
    RelaxedZone {
        path_prefix: "crates/serve/",
        reason: "stats counters and shutdown flag re-checked under sync",
    },
    RelaxedZone { path_prefix: "tests/", reason: "test-local flags joined before assertion" },
];

/// Whether `file` sits inside a registered relaxed-ordering zone.
pub fn relaxed_allowed(file: &str) -> bool {
    RELAXED_ZONES.iter().any(|z| file.starts_with(z.path_prefix))
}

/// One typed-error family whose reason strings TM-L010 cross-checks
/// against the metric registry's prefix docs.
#[derive(Debug, Clone, Copy)]
pub struct ReasonFamily {
    /// Type the reason method is implemented on (`impl` target name).
    pub imp: &'static str,
    /// Method returning the reason string (`as_str` / `reason`).
    pub method: &'static str,
    /// Registry const whose doc must list every reason backticked.
    pub prefix_ident: &'static str,
    /// Return values that are not rejection reasons (e.g. `"ok"`).
    pub exempt: &'static [&'static str],
}

/// Every typed-error reason family. Keyed by (type, method) rather than
/// file so the rule follows the type if it moves.
pub const REASON_FAMILIES: [ReasonFamily; 6] = [
    ReasonFamily {
        imp: "RejectReason",
        method: "as_str",
        prefix_ident: "INGEST_REJECTED_PREFIX",
        exempt: &[],
    },
    ReasonFamily {
        imp: "ShardFault",
        method: "as_str",
        prefix_ident: "SHARD_QUARANTINED_PREFIX",
        exempt: &[],
    },
    ReasonFamily {
        imp: "ArtifactError",
        method: "reason",
        prefix_ident: "ARTIFACT_REJECTED_PREFIX",
        exempt: &[],
    },
    ReasonFamily {
        imp: "DegradeReason",
        method: "as_str",
        prefix_ident: "CLASSIFIER_DEGRADED_PREFIX",
        exempt: &[],
    },
    ReasonFamily {
        imp: "Status",
        method: "as_str",
        prefix_ident: "SERVE_REJECTED_PREFIX",
        exempt: &["ok"],
    },
    ReasonFamily {
        imp: "WireError",
        method: "reason",
        prefix_ident: "SERVE_REJECTED_PREFIX",
        // `closed`/`timed_out` are transport outcomes surfaced by name
        // in the serve stats, not rejection metrics.
        exempt: &["closed", "timed_out"],
    },
];

/// Whether two strings are within Levenshtein distance 1 (but not equal).
pub fn edit_distance_le_1(a: &str, b: &str) -> bool {
    if a == b {
        return false;
    }
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    match long.len() - short.len() {
        0 => short.iter().zip(long.iter()).filter(|(x, y)| x != y).count() == 1,
        1 => {
            // One insertion: skip the first mismatch in the longer string
            // and require the tails to align exactly.
            let mut i = 0;
            while i < short.len() && short[i] == long[i] {
                i += 1;
            }
            short[i..] == long[i + 1..]
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_consts_and_prefixes() {
        let src = r#"
/// counter - accepted records.
pub const INGEST_ACCEPTED: &str = "ingest.accepted";
/// counter family.
pub const INGEST_REJECTED_PREFIX: &str = "ingest.rejected.";
pub static TABLE: &[&str] = &["not.a.decl"];
"#;
        let names = Names::parse("crates/obs/src/names.rs", src);
        assert_eq!(names.entries.len(), 2);
        assert!(names.exact("ingest.accepted").is_some());
        assert!(names.entries[1].prefix);
        assert!(names.matching_prefix("ingest.rejected.io").is_some());
    }

    #[test]
    fn edit_distance() {
        assert!(edit_distance_le_1("sgns.pairs", "sgns.pair"));
        assert!(edit_distance_le_1("sgns.pairs", "sgns.pairz"));
        assert!(!edit_distance_le_1("sgns.pairs", "sgns.pairs"), "equal is not a near-dup");
        assert!(!edit_distance_le_1("sgns.pairs", "finetune.pairs"));
    }
}
