//! Parser for the checked-in metric-name registry
//! (`crates/obs/src/names.rs`).
//!
//! The registry module declares one `pub const IDENT: &str = "value";`
//! per instrument name. A value ending in `.` declares a *prefix*: a
//! documented family of dynamically-suffixed names
//! (`classifier.degraded.<reason>`). TM-L004 cross-checks every metric
//! call site in the workspace against this set.

use crate::scanner;

/// One registered name (or prefix) from `tabmeta_obs::names`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameDef {
    /// The `pub const` identifier (`INGEST_ACCEPTED`).
    pub ident: String,
    /// The declared string value (`"ingest.accepted"`).
    pub value: String,
    /// 1-based declaration line in the registry file.
    pub line: u32,
    /// Whether the value declares a dynamic-name prefix (trailing `.`).
    pub prefix: bool,
}

/// The parsed registry: every declared name, in declaration order.
#[derive(Debug, Clone, Default)]
pub struct Names {
    /// All declared names and prefixes.
    pub entries: Vec<NameDef>,
    /// Workspace-relative path the registry was parsed from.
    pub file: String,
}

impl Names {
    /// Parse the registry from the source of `names.rs`. Only
    /// `pub const IDENT: &str = "…";` items declare names; everything
    /// else in the file (the `MetricDef` table, helper fns) is ignored.
    pub fn parse(file: &str, source: &str) -> Names {
        let scan = scanner::scan(source);
        let mut entries = Vec::new();
        for lit in &scan.literals {
            let text = scan.line_text(source, lit.line).trim_start();
            let Some(rest) = text.strip_prefix("pub const ") else { continue };
            let Some((ident, tail)) = rest.split_once(':') else { continue };
            if !tail.contains("&str") || !tail.contains('=') {
                continue;
            }
            let ident = ident.trim().to_string();
            if ident.is_empty() || !ident.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                continue;
            }
            let prefix = lit.value.ends_with('.');
            entries.push(NameDef { ident, value: lit.value.clone(), line: lit.line, prefix });
        }
        Names { entries, file: file.to_string() }
    }

    /// The exact (non-prefix) entry matching `value`, if any.
    pub fn exact(&self, value: &str) -> Option<&NameDef> {
        self.entries.iter().find(|e| !e.prefix && e.value == value)
    }

    /// The prefix entry whose value `name` starts with, if any.
    pub fn matching_prefix(&self, name: &str) -> Option<&NameDef> {
        self.entries.iter().find(|e| e.prefix && name.starts_with(&e.value))
    }

    /// The prefix entry declared exactly as `value`, if any.
    pub fn prefix_exact(&self, value: &str) -> Option<&NameDef> {
        self.entries.iter().find(|e| e.prefix && e.value == value)
    }

    /// The registered exact name closest to `value` within edit distance
    /// 1, if any (typo detection).
    pub fn near_duplicate(&self, value: &str) -> Option<&NameDef> {
        self.entries.iter().filter(|e| !e.prefix).find(|e| edit_distance_le_1(&e.value, value))
    }
}

/// Whether two strings are within Levenshtein distance 1 (but not equal).
pub fn edit_distance_le_1(a: &str, b: &str) -> bool {
    if a == b {
        return false;
    }
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    match long.len() - short.len() {
        0 => short.iter().zip(long.iter()).filter(|(x, y)| x != y).count() == 1,
        1 => {
            // One insertion: skip the first mismatch in the longer string
            // and require the tails to align exactly.
            let mut i = 0;
            while i < short.len() && short[i] == long[i] {
                i += 1;
            }
            short[i..] == long[i + 1..]
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_consts_and_prefixes() {
        let src = r#"
/// counter - accepted records.
pub const INGEST_ACCEPTED: &str = "ingest.accepted";
/// counter family.
pub const INGEST_REJECTED_PREFIX: &str = "ingest.rejected.";
pub static TABLE: &[&str] = &["not.a.decl"];
"#;
        let names = Names::parse("crates/obs/src/names.rs", src);
        assert_eq!(names.entries.len(), 2);
        assert!(names.exact("ingest.accepted").is_some());
        assert!(names.entries[1].prefix);
        assert!(names.matching_prefix("ingest.rejected.io").is_some());
    }

    #[test]
    fn edit_distance() {
        assert!(edit_distance_le_1("sgns.pairs", "sgns.pair"));
        assert!(edit_distance_le_1("sgns.pairs", "sgns.pairz"));
        assert!(!edit_distance_le_1("sgns.pairs", "sgns.pairs"), "equal is not a near-dup");
        assert!(!edit_distance_le_1("sgns.pairs", "finetune.pairs"));
    }
}
