//! The rule catalog: one entry per lint rule, rendered into `LINTS.md`.
//!
//! Mirrors the `names::REGISTRY` → `METRICS.md` pattern in
//! `crates/obs`: the catalog is the single source of truth, a renderer
//! produces the markdown, and a sync test pins the checked-in file to
//! the code so prose and implementation cannot drift.

use crate::registry::{LockKind, LOCK_ORDER, REASON_FAMILIES, RELAXED_ZONES};

/// One documented lint rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleDef {
    /// Rule id (`TM-L006`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Why the invariant exists.
    pub rationale: &'static str,
    /// Suppression syntax, or a note when the rule cannot be suppressed.
    pub allow: &'static str,
    /// A minimal violating snippet.
    pub example: &'static str,
}

/// Every rule the analyzer enforces, in id order.
pub const CATALOG: [RuleDef; 11] = [
    RuleDef {
        id: "TM-L000",
        name: "suppression-hygiene",
        rationale: "every `lint:allow` must name a known rule and carry a reason, so each \
                    surviving exception documents why it is sound",
        allow: "not suppressible — fix the directive instead",
        example: "// lint:allow(TM-L001)",
    },
    RuleDef {
        id: "TM-L001",
        name: "no-unseeded-rng",
        rationale: "all randomness flows from explicit seeds; OS entropy breaks \
                    bit-reproducibility of training runs",
        allow: "// lint:allow(TM-L001): <why this entropy is sound>",
        example: "let mut rng = rand::thread_rng();",
    },
    RuleDef {
        id: "TM-L002",
        name: "obs-routed-timing",
        rationale: "wall-clock timing goes through `tabmeta_obs` so it lands in the \
                    telemetry snapshot instead of vanishing into locals",
        allow: "// lint:allow(TM-L002): <why raw timing is needed>",
        example: "let t0 = std::time::Instant::now();",
    },
    RuleDef {
        id: "TM-L003",
        name: "safety-comment",
        rationale: "every `unsafe` carries an adjacent `// SAFETY:` comment pinning the \
                    invariant that makes it sound",
        allow: "// lint:allow(TM-L003): <why the block needs no SAFETY note>",
        example: "pub unsafe fn no_safety() {}",
    },
    RuleDef {
        id: "TM-L004",
        name: "metric-name-registry",
        rationale: "metric/span names resolve via `tabmeta_obs::names`: undeclared names, \
                    unused declarations, and edit-distance-1 near-duplicates all fail",
        allow: "// lint:allow(TM-L004): <why the dynamic name is safe>",
        example: "reg.counter(\"ingest.acepted\").inc();",
    },
    RuleDef {
        id: "TM-L005",
        name: "no-stdout-in-libs",
        rationale: "library crates never print; output belongs to binaries, tests, and \
                    the reporting crates",
        allow: "// lint:allow(TM-L005): <why the print belongs here>",
        example: "println!(\"done\");",
    },
    RuleDef {
        id: "TM-L006",
        name: "lock-ordering",
        rationale: "every Mutex/RwLock is declared in LOCK_ORDER with a rank, and nested \
                    acquisitions must strictly ascend — the classic deadlock (A then B on \
                    one thread, B then A on another) becomes a lint failure instead of a \
                    production hang; the runtime witness in `tabmeta_obs::lockorder` \
                    enforces the same table dynamically under the chaos gates",
        allow: "// lint:allow(TM-L006): <why this acquisition order is safe>",
        example:
            "let q = self.queue_rx.lock();\nlet m = self.model.read(); // rank 10 under rank 20",
    },
    RuleDef {
        id: "TM-L007",
        name: "atomic-ordering",
        rationale: "`SeqCst` is banned (it hides the protocol), `Relaxed` is confined to \
                    registered Hogwild/metrics zones, and every Acquire needs a Release \
                    on the same atomic in the same file — one-sided barriers synchronize \
                    nothing",
        allow: "// lint:allow(TM-L007): <why this ordering is correct>",
        example: "flag.store(true, Ordering::SeqCst);",
    },
    RuleDef {
        id: "TM-L008",
        name: "channel-discipline",
        rationale: "unbounded `mpsc::channel()` turns overload into memory growth; \
                    request paths use `sync_channel`, and `try_send` errors are handled \
                    (shed or counted), never unwrapped",
        allow: "// lint:allow(TM-L008): <why unbounded/unwrap is safe here>",
        example: "let (tx, rx) = std::sync::mpsc::channel();",
    },
    RuleDef {
        id: "TM-L009",
        name: "thread-lifecycle",
        rationale: "every `std::thread::spawn` handle is joined or intentionally detached \
                    with a reasoned allow; a silently dropped handle leaks the thread on \
                    every exit path",
        allow: "// lint:allow(TM-L009): <why this thread is intentionally detached>",
        example: "std::thread::spawn(|| work());",
    },
    RuleDef {
        id: "TM-L010",
        name: "reason-exhaustive",
        rationale: "every typed error reason string is documented (backticked) on its \
                    `<family>.rejected.` prefix in `tabmeta_obs::names`, closing the loop \
                    between the error taxonomy and the metric registry",
        allow: "// lint:allow(TM-L010): <why the reason stays undocumented>",
        example: "RejectReason::BadHeader => \"bad_header\", // not in the prefix doc",
    },
];

/// Render the catalog (rules, lock order, relaxed zones, reason
/// families) as the markdown embedded in `LINTS.md` between the
/// `catalog:begin`/`catalog:end` markers.
pub fn render_markdown() -> String {
    let mut out = String::new();
    out.push_str("| id | name | rationale | allow syntax | example |\n");
    out.push_str("|----|------|-----------|--------------|---------|\n");
    for rule in &CATALOG {
        out.push_str(&format!(
            "| {} | {} | {} | `{}` | `{}` |\n",
            rule.id,
            rule.name,
            rule.rationale,
            rule.allow,
            rule.example.replace('\n', " … ").replace('|', "\\|"),
        ));
    }

    out.push_str("\n### Declared lock order (TM-L006)\n\n");
    out.push_str("| rank | id | kind | declared at |\n");
    out.push_str("|------|----|------|-------------|\n");
    for lock in &LOCK_ORDER {
        let kind = match lock.kind {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
        };
        out.push_str(&format!(
            "| {} | `{}` | {} | `{}` (`{}`) |\n",
            lock.rank, lock.id, kind, lock.file, lock.field
        ));
    }

    out.push_str("\n### Registered Relaxed zones (TM-L007)\n\n");
    out.push_str("| path prefix | why Relaxed is sound there |\n");
    out.push_str("|-------------|----------------------------|\n");
    for zone in &RELAXED_ZONES {
        out.push_str(&format!("| `{}` | {} |\n", zone.path_prefix, zone.reason));
    }

    out.push_str("\n### Error-reason families (TM-L010)\n\n");
    out.push_str("| type::method | registry prefix | exempt return values |\n");
    out.push_str("|--------------|-----------------|----------------------|\n");
    for fam in &REASON_FAMILIES {
        let exempt = if fam.exempt.is_empty() {
            "—".to_string()
        } else {
            fam.exempt.iter().map(|e| format!("`\"{e}\"`")).collect::<Vec<_>>().join(", ")
        };
        out.push_str(&format!(
            "| `{}::{}` | `{}` | {} |\n",
            fam.imp, fam.method, fam.prefix_ident, exempt
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_well_formed() {
        for (i, rule) in CATALOG.iter().enumerate() {
            assert_eq!(rule.id, format!("TM-L{i:03}"), "catalog out of id order");
            assert!(!rule.name.is_empty() && !rule.rationale.is_empty());
            assert!(!rule.allow.is_empty() && !rule.example.is_empty());
        }
        // Every suppressible rule is documented with allow syntax that
        // names it; TM-L000 alone is marked unsuppressible.
        for rule in &CATALOG[1..] {
            assert!(
                crate::rules::SUPPRESSIBLE_RULES.contains(&rule.id),
                "{} missing from SUPPRESSIBLE_RULES",
                rule.id
            );
            assert!(rule.allow.contains(rule.id), "{} allow syntax mismatch", rule.id);
        }
        assert!(CATALOG[0].allow.contains("not suppressible"));
    }

    #[test]
    fn markdown_lists_every_rule_lock_zone_and_family() {
        let md = render_markdown();
        for rule in &CATALOG {
            assert!(md.contains(rule.id), "{} missing from markdown", rule.id);
        }
        for lock in &LOCK_ORDER {
            assert!(md.contains(lock.id), "{} missing from markdown", lock.id);
        }
        for zone in &RELAXED_ZONES {
            assert!(md.contains(zone.path_prefix), "{} missing", zone.path_prefix);
        }
        for fam in &REASON_FAMILIES {
            assert!(md.contains(fam.prefix_ident), "{} missing", fam.prefix_ident);
        }
    }

    #[test]
    fn lints_md_matches_catalog() {
        // LINTS.md embeds the rendered catalog between markers; the
        // checked-in copy must match the code exactly.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../LINTS.md");
        let doc = std::fs::read_to_string(path).expect("LINTS.md at workspace root");
        let begin = "<!-- catalog:begin -->\n";
        let end = "<!-- catalog:end -->";
        let start = doc.find(begin).expect("catalog:begin marker") + begin.len();
        let stop = doc[start..].find(end).expect("catalog:end marker") + start;
        assert_eq!(
            &doc[start..stop],
            render_markdown(),
            "LINTS.md catalog is stale; run `cargo run --offline -p tabmeta-lint \
             --example regen_lints`"
        );
    }
}
