//! Concurrency rules TM-L006..TM-L010: the scope-aware half of the
//! analyzer.
//!
//! These rules consume both analyzer phases — the masked token stream
//! from the scanner and the block tree / `use`-alias tables from
//! [`crate::scope`] — to check invariants a token scan alone cannot see:
//! lock nesting, atomic-ordering pairing, channel boundedness, thread
//! lifecycles, and error-reason/metric-registry agreement.
//!
//! The static lock-order rule (TM-L006) shares its registry with the
//! runtime witness in `tabmeta_obs::lockorder`; a sync test pins the two
//! tables equal, so the lint and the chaos gates enforce one declared
//! order, statically and dynamically.

use crate::registry::{self, LockDef, LockKind, Names};
use crate::rules::{find_word, is_ident_byte, match_paren, push_at, Violation};
use crate::scanner::Scan;
use crate::scope::{statement_end, statement_start, ScopeTree, UseAliases};

/// The runtime-witness implementation file: its generic `Mutex<T>` /
/// `RwLock<T>` wrapper fields are the instrumentation layer itself, not
/// workspace locks, so TM-L006 does not apply there.
const WITNESS_FILE: &str = "crates/obs/src/lockorder.rs";

/// Run every concurrency rule over one scanned file.
pub(crate) fn check_concurrency(
    rel: &str,
    source: &str,
    scan: &Scan,
    names: &Names,
    metrics_checked: bool,
    out: &mut Vec<Violation>,
) {
    let tree = ScopeTree::build(&scan.masked);
    let aliases = UseAliases::parse(&scan.masked);
    if rel != WITNESS_FILE {
        check_l006(rel, source, scan, &tree, &aliases, out);
    }
    check_l007(rel, source, scan, out);
    check_l008(rel, source, scan, &aliases, out);
    check_l009(rel, source, scan, &aliases, out);
    if metrics_checked {
        check_l010(rel, source, scan, &tree, names, out);
    }
}

// ---------------------------------------------------------------------
// TM-L006: lock ordering.
// ---------------------------------------------------------------------

/// One lock acquisition site in the masked source.
struct Acquisition {
    /// Offset of the field name in `field.lock(` / `field.read(`.
    at: usize,
    /// Offset of the acquisition call's closing `)`.
    close: usize,
    /// The registered lock acquired.
    lock: &'static LockDef,
}

fn check_l006(
    rel: &str,
    source: &str,
    scan: &Scan,
    tree: &ScopeTree,
    aliases: &UseAliases,
    out: &mut Vec<Violation>,
) {
    let masked = &scan.masked;

    // Declarations: every `Mutex<`/`RwLock<` type ascription must name a
    // field registered in LOCK_ORDER. Aliased imports are resolved so a
    // rename cannot hide a lock.
    let mut needles: Vec<String> = ["Mutex", "RwLock", "TrackedMutex", "TrackedRwLock"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for base in ["Mutex", "RwLock", "TrackedMutex", "TrackedRwLock"] {
        for alias in aliases.names_for_suffix(base) {
            if !needles.iter().any(|n| n == alias) {
                needles.push(alias.to_string());
            }
        }
    }
    for needle in &needles {
        let typed = format!("{needle}<");
        for at in find_word(masked, &typed) {
            let Some(field) = declared_field(masked, at) else { continue };
            if registry::lock_for(rel, &field).is_none() {
                push_at(
                    rel,
                    source,
                    scan,
                    at,
                    "TM-L006",
                    format!(
                        "undeclared lock `{field}`: every Mutex/RwLock must be registered in \
                         LOCK_ORDER (crates/lint/src/registry.rs) with a rank"
                    ),
                    out,
                );
            }
        }
    }

    // Acquisition order: nested acquisitions of this file's registered
    // locks must strictly ascend in rank.
    let mut acqs: Vec<Acquisition> = Vec::new();
    for lock in registry::locks_in(rel) {
        let methods: &[&str] = match lock.kind {
            LockKind::Mutex => &["lock"],
            LockKind::RwLock => &["read", "write"],
        };
        for method in methods {
            let needle = format!("{}.{}(", lock.field, method);
            for at in find_word(masked, &needle) {
                let open = at + needle.len() - 1;
                acqs.push(Acquisition { at, close: match_paren(masked, open), lock });
            }
        }
    }
    acqs.sort_by_key(|a| a.at);

    let mut reported: Vec<usize> = Vec::new();
    for outer in &acqs {
        let end = hold_end(masked, tree, outer);
        for inner in &acqs {
            if inner.at <= outer.at || inner.at >= end || reported.contains(&inner.at) {
                continue;
            }
            if inner.lock.rank > outer.lock.rank {
                continue;
            }
            let message = if inner.lock.rank == outer.lock.rank {
                format!(
                    "lock `{}` (rank {}) reacquired while already held — self-deadlock",
                    inner.lock.id, inner.lock.rank
                )
            } else {
                format!(
                    "lock-order inversion: `{}` (rank {}) acquired while `{}` (rank {}) is \
                     held; the declared order requires strictly ascending ranks",
                    inner.lock.id, inner.lock.rank, outer.lock.id, outer.lock.rank
                )
            };
            push_at(rel, source, scan, inner.at, "TM-L006", message, out);
            reported.push(inner.at);
        }
    }
}

/// Field (or binding) name a `Mutex<`-style type ascription declares:
/// walk back over the type path, expect a single `:`, and read the
/// identifier before it. Returns None for non-declaration uses
/// (references in signatures, turbofish, generic bounds).
fn declared_field(masked: &str, type_at: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut i = type_at;
    // Skip the leading path (`std::sync::`), consumed as ident bytes and
    // `::` pairs.
    loop {
        if i > 0 && is_ident_byte(bytes[i - 1]) {
            i -= 1;
        } else if i >= 2 && &masked[i - 2..i] == "::" {
            i -= 2;
        } else {
            break;
        }
    }
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b':' || (i >= 2 && bytes[i - 2] == b':') {
        return None;
    }
    i -= 1;
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(masked[i..end].to_string())
}

/// How far a guard obtained at `acq` is held, approximating edition-2021
/// temporary scopes:
/// - `let guard = <acq>();` → to the end of the enclosing block;
/// - `while let` / `if let` / `match` with the acquisition in the
///   scrutinee → through the body block (scrutinee temporaries live for
///   the whole expression);
/// - anything else → a temporary dropped at the end of its statement.
fn hold_end(masked: &str, tree: &ScopeTree, acq: &Acquisition) -> usize {
    let stmt_start = statement_start(masked, acq.at);
    let head = masked[stmt_start..acq.at].trim_start();
    let bytes = masked.as_bytes();
    let mut after = acq.close + 1;
    while after < bytes.len() && (bytes[after] as char).is_whitespace() {
        after += 1;
    }
    let is_guard_let = head.starts_with("let ")
        && !head.starts_with("let _ ")
        && !head.starts_with("let _=")
        && after < bytes.len()
        && bytes[after] == b';';
    if is_guard_let {
        return tree.innermost(acq.at).map(|i| tree.blocks[i].close).unwrap_or(masked.len());
    }
    let scrutinee = ["while", "if", "match"].iter().any(|kw| {
        head.strip_prefix(kw).is_some_and(|rest| rest.starts_with(|c: char| c.is_whitespace()))
    });
    if scrutinee {
        // Held through the body: find the block opened by the first `{`
        // after the acquisition at paren depth 0.
        let mut depth = 0usize;
        let mut i = acq.close + 1;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'{' if depth == 0 => {
                    if let Some(b) = tree.blocks.iter().find(|b| b.open == i) {
                        return b.close;
                    }
                    return masked.len();
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
    }
    statement_end(masked, acq.close)
}

// ---------------------------------------------------------------------
// TM-L007: atomic-ordering audit.
// ---------------------------------------------------------------------

fn check_l007(rel: &str, source: &str, scan: &Scan, out: &mut Vec<Violation>) {
    let masked = &scan.masked;
    for at in find_word(masked, "SeqCst") {
        push_at(
            rel,
            source,
            scan,
            at,
            "TM-L007",
            "Ordering::SeqCst is banned: it hides the actual synchronization protocol — \
             state the acquire/release (or registered Relaxed) intent explicitly"
                .to_string(),
            out,
        );
    }
    if !registry::relaxed_allowed(rel) {
        for at in find_word(masked, "Relaxed") {
            push_at(
                rel,
                source,
                scan,
                at,
                "TM-L007",
                "Ordering::Relaxed outside a registered Hogwild/metrics zone \
                 (RELAXED_ZONES in crates/lint/src/registry.rs): cross-thread \
                 signalling defaults to acquire/release"
                    .to_string(),
                out,
            );
        }
    }
    // Pair matching: per (atom, file), an acquire-side ordering needs a
    // release side on the same atomic and vice versa. AcqRel is both.
    let mut sides: Vec<(String, bool, bool, usize)> = Vec::new(); // (atom, acq, rel, first_at)
    for (word, acq, rel_side) in
        [("Acquire", true, false), ("Release", false, true), ("AcqRel", true, true)]
    {
        for at in find_word(masked, word) {
            let Some(atom) = receiver_atom(masked, at) else { continue };
            match sides.iter_mut().find(|(a, ..)| *a == atom) {
                Some(entry) => {
                    entry.1 |= acq;
                    entry.2 |= rel_side;
                }
                None => sides.push((atom, acq, rel_side, at)),
            }
        }
    }
    for (atom, has_acq, has_rel, first_at) in sides {
        if has_acq != has_rel {
            let (present, missing) =
                if has_acq { ("Acquire", "Release") } else { ("Release", "Acquire") };
            push_at(
                rel,
                source,
                scan,
                first_at,
                "TM-L007",
                format!(
                    "atomic `{atom}` uses {present} ordering with no matching {missing} on \
                     the same atomic in this file: one-sided barriers synchronize nothing"
                ),
                out,
            );
        }
    }
}

/// Receiver identifier of the atomic method call an `Ordering::X` word
/// at `at` is an argument of (`flag.load(Ordering::Acquire)` → `flag`),
/// or None if the word is not inside a method call's argument list.
fn receiver_atom(masked: &str, at: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut depth = 0usize;
    let mut i = at;
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b';' | b'{' | b'}' if depth == 0 => return None,
            _ => {}
        }
    }
    // `i` is the call's `(`; read the method, then the receiver.
    let m_end = i;
    while i > 0 && is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    if i == m_end || i == 0 || bytes[i - 1] != b'.' {
        return None;
    }
    let a_end = i - 1;
    let mut k = a_end;
    while k > 0 && is_ident_byte(bytes[k - 1]) {
        k -= 1;
    }
    if k == a_end {
        return None;
    }
    Some(masked[k..a_end].to_string())
}

// ---------------------------------------------------------------------
// TM-L008: channel discipline.
// ---------------------------------------------------------------------

fn check_l008(
    rel: &str,
    source: &str,
    scan: &Scan,
    aliases: &UseAliases,
    out: &mut Vec<Violation>,
) {
    let masked = &scan.masked;
    let mut needles = vec!["channel(".to_string()];
    for alias in aliases.names_for_suffix("mpsc::channel") {
        let n = format!("{alias}(");
        if !needles.contains(&n) {
            needles.push(n);
        }
    }
    for needle in &needles {
        for at in find_word(masked, needle) {
            push_at(
                rel,
                source,
                scan,
                at,
                "TM-L008",
                "unbounded `mpsc::channel()`: request paths must use `sync_channel` so \
                 overload surfaces as backpressure, not unbounded memory growth"
                    .to_string(),
                out,
            );
        }
    }
    for at in find_word(masked, "try_send(") {
        let open = at + "try_send(".len() - 1;
        let close = match_paren(masked, open);
        let tail = masked[close + 1..].trim_start();
        if tail.starts_with(".unwrap()") || tail.starts_with(".expect(") {
            push_at(
                rel,
                source,
                scan,
                at,
                "TM-L008",
                "`try_send` result unwrapped: a full queue is an expected overload \
                 outcome — handle `TrySendError` (shed or count the rejection)"
                    .to_string(),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------
// TM-L009: thread lifecycle.
// ---------------------------------------------------------------------

fn check_l009(
    rel: &str,
    source: &str,
    scan: &Scan,
    aliases: &UseAliases,
    out: &mut Vec<Violation>,
) {
    let masked = &scan.masked;
    let bytes = masked.as_bytes();
    let mut spawns: Vec<usize> = Vec::new();
    for at in find_word(masked, "spawn(") {
        if is_thread_spawn(masked, at, aliases) {
            spawns.push(at);
        }
    }
    if spawns.is_empty() {
        return;
    }
    let has_join = has_thread_join(scan);
    for at in spawns {
        let open = at + "spawn(".len() - 1;
        let close = match_paren(masked, open);
        let stmt_start = statement_start(masked, at);
        let head = masked[stmt_start..at].trim_start();
        let mut after = close + 1;
        while after < bytes.len() && (bytes[after] as char).is_whitespace() {
            after += 1;
        }
        let discarded = head.starts_with("let _ ") || head.starts_with("let _=");
        let bare = !head.contains('=') && after < bytes.len() && bytes[after] == b';';
        if discarded || bare {
            push_at(
                rel,
                source,
                scan,
                at,
                "TM-L009",
                "spawned thread handle discarded: join it, or detach intentionally with \
                 a reasoned `lint:allow(TM-L009)`"
                    .to_string(),
                out,
            );
        } else if !has_join {
            push_at(
                rel,
                source,
                scan,
                at,
                "TM-L009",
                "spawned thread is never joined in this file: a bound handle that no \
                 `.join()` consumes leaks the thread on every exit path"
                    .to_string(),
                out,
            );
        }
    }
}

/// Whether the `spawn(` at `at` creates an OS thread: a `thread::spawn`
/// path, a `thread::Builder` chain, or a bare name aliased to
/// `std::thread::spawn`. Scoped pool spawns (`s.spawn`, rayon) are out
/// of scope — their lifecycle is structural.
fn is_thread_spawn(masked: &str, at: usize, aliases: &UseAliases) -> bool {
    let bytes = masked.as_bytes();
    if at >= 2 && &masked[at - 2..at] == "::" {
        // Path call: the segment before `::` must be `thread`.
        let mut i = at - 2;
        let end = i;
        while i > 0 && is_ident_byte(bytes[i - 1]) {
            i -= 1;
        }
        return &masked[i..end] == "thread";
    }
    if at >= 1 && bytes[at - 1] == b'.' {
        // Method chain: count it only for `thread::Builder` chains.
        let stmt_start = statement_start(masked, at);
        return !find_word(&masked[stmt_start..at], "Builder").is_empty();
    }
    aliases
        .resolve("spawn")
        .is_some_and(|path| path == "std::thread::spawn" || path == "thread::spawn")
}

/// Whether the file consumes any thread handle: a `.join(..)` call whose
/// argument list is empty in the masked view *and* contains no string
/// literal (`Vec::join(", ")` masks to blanks but keeps its literal).
fn has_thread_join(scan: &Scan) -> bool {
    let masked = &scan.masked;
    for at in find_word(masked, "join(") {
        if at == 0 || masked.as_bytes()[at - 1] != b'.' {
            continue;
        }
        let open = at + "join(".len() - 1;
        let close = match_paren(masked, open);
        let inner = &masked[open + 1..close];
        let has_literal = scan.literals.iter().any(|l| l.offset > open && l.offset < close);
        if inner.chars().all(char::is_whitespace) && !has_literal {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// TM-L010: error-reason exhaustiveness.
// ---------------------------------------------------------------------

fn check_l010(
    rel: &str,
    source: &str,
    scan: &Scan,
    tree: &ScopeTree,
    names: &Names,
    out: &mut Vec<Violation>,
) {
    if names.entries.is_empty() {
        return;
    }
    let masked = &scan.masked;
    for fam in &registry::REASON_FAMILIES {
        let Some(block) = tree.fn_in_impl(fam.imp, fam.method) else { continue };
        let Some(prefix_def) = names.entries.iter().find(|e| e.ident == fam.prefix_ident) else {
            push_at(
                rel,
                source,
                scan,
                block.open,
                "TM-L010",
                format!(
                    "reason family {}::{} maps to `{}`, which is not declared in the \
                     metric registry",
                    fam.imp, fam.method, fam.prefix_ident
                ),
                out,
            );
            continue;
        };
        for lit in &scan.literals {
            if lit.offset <= block.open || lit.offset >= block.close {
                continue;
            }
            // Only match-arm results count as reason strings.
            if !masked[..lit.offset].trim_end().ends_with("=>") {
                continue;
            }
            let reason = lit.value.as_str();
            if reason.is_empty() || fam.exempt.contains(&reason) {
                continue;
            }
            if !prefix_def.doc.contains(&format!("`{reason}`")) {
                push_at(
                    rel,
                    source,
                    scan,
                    lit.offset,
                    "TM-L010",
                    format!(
                        "error reason \"{reason}\" of {}::{} is not documented on `{}` \
                         ({}): every reason must appear backticked in the registry doc \
                         so the `{}<reason>` series is discoverable",
                        fam.imp, fam.method, fam.prefix_ident, names.file, prefix_def.value
                    ),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Names;
    use crate::rules::UsageTracker;

    fn lint(rel: &str, src: &str) -> Vec<crate::rules::Violation> {
        let names = Names::parse(
            "crates/obs/src/names.rs",
            "/// counter family — reasons: `malformed_json`.\n\
             pub const INGEST_REJECTED_PREFIX: &str = \"ingest.rejected.\";\n",
        );
        let mut usage = UsageTracker::default();
        crate::rules::lint_file(rel, src, &names, &mut usage).0
    }

    fn rules_fired(violations: &[crate::rules::Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn l006_inversion_under_guard_let() {
        let src = "impl Server {\n\
                   \x20   fn f(&self) {\n\
                   \x20       let q = self.queue_rx.lock();\n\
                   \x20       let m = self.model.read();\n\
                   \x20       drop((q, m));\n\
                   \x20   }\n\
                   }\n";
        let v = lint("crates/serve/src/server.rs", src);
        assert!(v.iter().any(|v| v.rule == "TM-L006" && v.message.contains("inversion")), "{v:?}");
        assert!(v[0].message.contains("serve.model") && v[0].message.contains("serve.queue_rx"));
    }

    #[test]
    fn l006_ascending_and_sequential_are_clean() {
        let src = "impl Server {\n\
                   \x20   fn f(&self) {\n\
                   \x20       let m = self.model.read();\n\
                   \x20       let q = self.queue_rx.lock();\n\
                   \x20       drop((m, q));\n\
                   \x20   }\n\
                   \x20   fn g(&self) {\n\
                   \x20       self.queue_rx.lock().try_recv().ok();\n\
                   \x20       self.model.read().len();\n\
                   \x20   }\n\
                   }\n";
        let v = lint("crates/serve/src/server.rs", src);
        assert!(!rules_fired(&v).contains(&"TM-L006"), "{v:?}");
    }

    #[test]
    fn l006_scrutinee_temporary_holds_through_body() {
        let src = "impl Server {\n\
                   \x20   fn f(&self) {\n\
                   \x20       while let Ok(_job) = self.queue_rx.lock().try_recv() {\n\
                   \x20           let _m = self.model.read();\n\
                   \x20       }\n\
                   \x20   }\n\
                   }\n";
        let v = lint("crates/serve/src/server.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "TM-L006" && v.message.contains("inversion")),
            "while-let scrutinee guard must be held through the body: {v:?}"
        );
    }

    #[test]
    fn l006_same_lock_reacquired_is_flagged() {
        let src = "impl Server {\n\
                   \x20   fn f(&self) {\n\
                   \x20       let a = self.queue_rx.lock();\n\
                   \x20       let b = self.queue_rx.lock();\n\
                   \x20       drop((a, b));\n\
                   \x20   }\n\
                   }\n";
        let v = lint("crates/serve/src/server.rs", src);
        assert!(v.iter().any(|v| v.rule == "TM-L006" && v.message.contains("reacquired")));
    }

    #[test]
    fn l006_aliased_lock_type_is_still_a_declaration() {
        let src = "use std::sync::Mutex as Mu;\n\
                   pub struct S { hidden: Mu<u32> }\n";
        let v = lint("crates/text/src/lib.rs", src);
        assert!(v.iter().any(|v| v.rule == "TM-L006" && v.message.contains("hidden")), "{v:?}");
    }

    #[test]
    fn l007_relaxed_outside_zone_and_unpaired_acquire() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   pub fn f(c: &AtomicU64) {\n\
                   \x20   c.store(1, Ordering::Relaxed);\n\
                   \x20   c.load(Ordering::Acquire);\n\
                   }\n";
        let fired = rules_fired(&lint("crates/text/src/lib.rs", src));
        assert_eq!(fired.iter().filter(|r| **r == "TM-L007").count(), 2);
        // The same file inside a registered Hogwild zone keeps the
        // Relaxed but still flags the one-sided Acquire.
        let fired = rules_fired(&lint("crates/linalg/src/matrix.rs", src));
        assert_eq!(fired.iter().filter(|r| **r == "TM-L007").count(), 1);
    }

    #[test]
    fn l007_acqrel_rmw_pairs_with_acquire_load() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   pub fn f(c: &AtomicU64) -> u64 {\n\
                   \x20   c.fetch_add(1, Ordering::AcqRel);\n\
                   \x20   c.load(Ordering::Acquire)\n\
                   }\n";
        let v = lint("crates/text/src/lib.rs", src);
        assert!(!rules_fired(&v).contains(&"TM-L007"), "{v:?}");
    }

    #[test]
    fn l008_try_send_unwrap_is_flagged_but_handled_is_clean() {
        let src = "pub fn f(tx: &std::sync::mpsc::SyncSender<u32>) {\n\
                   \x20   tx.try_send(1).unwrap();\n\
                   \x20   let _ = tx.try_send(2);\n\
                   \x20   if tx.try_send(3).is_err() { return; }\n\
                   }\n";
        let v = lint("crates/text/src/lib.rs", src);
        let l008: Vec<_> = v.iter().filter(|v| v.rule == "TM-L008").collect();
        assert_eq!(l008.len(), 1, "{v:?}");
        assert_eq!(l008[0].line, 2);
    }

    #[test]
    fn l009_bound_but_never_joined_spawn_is_flagged() {
        let src = "pub fn f() {\n\
                   \x20   let handle = std::thread::spawn(|| {});\n\
                   \x20   handle.thread();\n\
                   }\n";
        let v = lint("crates/text/src/lib.rs", src);
        assert!(v.iter().any(|v| v.rule == "TM-L009" && v.message.contains("never joined")));
    }

    #[test]
    fn l009_vec_join_is_not_a_thread_join() {
        let src = "pub fn f(parts: Vec<String>) -> String {\n\
                   \x20   let _h = std::thread::spawn(|| {});\n\
                   \x20   parts.join(\", \")\n\
                   }\n";
        let v = lint("crates/text/src/lib.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "TM-L009"),
            "Vec::join must not satisfy the thread-join requirement: {v:?}"
        );
    }

    #[test]
    fn l009_joined_spawn_and_scoped_spawn_are_clean() {
        let src = "pub fn f(s: &std::thread::Scope<'_, '_>) {\n\
                   \x20   s.spawn(|| {});\n\
                   \x20   let h = std::thread::spawn(|| {});\n\
                   \x20   h.join().unwrap();\n\
                   }\n";
        let v = lint("crates/text/src/lib.rs", src);
        assert!(!rules_fired(&v).contains(&"TM-L009"), "{v:?}");
    }

    #[test]
    fn l010_undocumented_reason_fires_and_documented_is_clean() {
        let src = "impl RejectReason {\n\
                   \x20   pub fn as_str(self) -> &'static str {\n\
                   \x20       match self {\n\
                   \x20           RejectReason::Malformed => \"malformed_json\",\n\
                   \x20           RejectReason::BadHeader => \"bad_header\",\n\
                   \x20       }\n\
                   \x20   }\n\
                   }\n";
        let v = lint("crates/tabular/src/ingest.rs", src);
        let l010: Vec<_> = v.iter().filter(|v| v.rule == "TM-L010").collect();
        assert_eq!(l010.len(), 1, "{v:?}");
        assert!(l010[0].message.contains("bad_header"));
    }
}
