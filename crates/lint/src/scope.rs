//! Phase two of the analyzer: a lightweight scope/item pass over the
//! masked source.
//!
//! The scanner (phase one) erases literals and comments while preserving
//! byte offsets; this module builds just enough structure on top of that
//! masked text for the concurrency rules to reason about *where* code
//! lives rather than only *what tokens* it contains:
//!
//! - a brace-matched [`ScopeTree`] of blocks, each attributed to the
//!   `fn` / `impl` / `mod` item whose header introduced it (everything
//!   else — loop bodies, closures, struct literals — is `Other`);
//! - [`use`-alias resolution](UseAliases) for the std sync types the
//!   rules care about, so `use std::sync::Mutex as Mu;` does not hide a
//!   lock declaration from TM-L006;
//! - statement-span helpers ([`statement_start`], [`statement_end`])
//!   that approximate edition-2021 temporary scopes well enough to
//!   decide how long a lock guard is held.
//!
//! This is deliberately not a parser. It never allocates an AST, it
//! tolerates unbalanced input (fixtures, macro-heavy code), and it is
//! wrong in ways that only *widen* hold ranges — a conservative
//! direction for a lock-order rule.

use crate::rules::is_ident_byte;

/// What kind of item header introduced a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `fn name(..) { .. }` (free function, method, or nested fn).
    Fn,
    /// `impl Type { .. }` or `impl Trait for Type { .. }` (named by the
    /// implementing type).
    Impl,
    /// `mod name { .. }` (inline module, including `mod tests`).
    Mod,
    /// Any other brace pair: control flow, closures, struct literals.
    Other,
}

/// One brace-delimited block in the masked source.
#[derive(Debug)]
pub struct Block {
    /// Byte offset of the opening `{`.
    pub open: usize,
    /// Byte offset of the matching `}` (or `masked.len()` if unclosed).
    pub close: usize,
    /// Index of the enclosing block in [`ScopeTree::blocks`], if any.
    pub parent: Option<usize>,
    /// Item kind attributed from the header text before `open`.
    pub kind: BlockKind,
    /// Item name (`fn`/`mod` identifier, `impl` target type); empty for
    /// [`BlockKind::Other`].
    pub name: String,
}

/// Brace-matched block tree over one file's masked source.
#[derive(Debug)]
pub struct ScopeTree {
    /// All blocks in source order of their opening brace.
    pub blocks: Vec<Block>,
}

impl ScopeTree {
    /// Build the tree by walking every `{`/`}` in the masked text.
    /// String and comment braces are already blanked by the scanner, so
    /// plain byte matching is exact up to macro weirdness.
    pub fn build(masked: &str) -> ScopeTree {
        let bytes = masked.as_bytes();
        let mut blocks: Vec<Block> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'{' {
                let (kind, name) = classify_header(masked, i);
                blocks.push(Block {
                    open: i,
                    close: masked.len(),
                    parent: stack.last().copied(),
                    kind,
                    name,
                });
                stack.push(blocks.len() - 1);
            } else if b == b'}' {
                if let Some(idx) = stack.pop() {
                    blocks[idx].close = i;
                }
            }
        }
        ScopeTree { blocks }
    }

    /// Innermost block containing `off`, if any.
    pub fn innermost(&self, off: usize) -> Option<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.open < off && off < b.close)
            .max_by_key(|(_, b)| b.open)
            .map(|(i, _)| i)
    }

    /// Walk from the innermost block containing `off` outward until a
    /// block of `kind` is found.
    pub fn enclosing(&self, off: usize, kind: BlockKind) -> Option<&Block> {
        let mut at = self.innermost(off);
        while let Some(i) = at {
            if self.blocks[i].kind == kind {
                return Some(&self.blocks[i]);
            }
            at = self.blocks[i].parent;
        }
        None
    }

    /// The `fn name { .. }` block nested (at any depth) inside an
    /// `impl imp { .. }` block. Used by TM-L010 to find `Type::method`.
    pub fn fn_in_impl(&self, imp: &str, name: &str) -> Option<&Block> {
        let imp_idx =
            self.blocks.iter().position(|b| b.kind == BlockKind::Impl && b.name == imp)?;
        let imp_block = &self.blocks[imp_idx];
        self.blocks.iter().find(|b| {
            b.kind == BlockKind::Fn
                && b.name == name
                && b.open > imp_block.open
                && b.close < imp_block.close
        })
    }
}

/// Classify the header text ending at the `{` at `open`.
fn classify_header(masked: &str, open: usize) -> (BlockKind, String) {
    let start = statement_start(masked, open);
    let header = &masked[start..open];
    if let Some(at) = find_word_at(header, "fn") {
        // `fn` wins over `impl`: `fn f(x: impl Trait) {` is a function.
        let name = ident_after(header, at + 2);
        return (BlockKind::Fn, name);
    }
    if let Some(at) = find_word_at(header, "impl") {
        return (BlockKind::Impl, impl_target(&header[at + 4..]));
    }
    if let Some(at) = find_word_at(header, "mod") {
        let name = ident_after(header, at + 3);
        if !name.is_empty() {
            return (BlockKind::Mod, name);
        }
    }
    (BlockKind::Other, String::new())
}

/// Name of the type an `impl` header targets, given the text after the
/// `impl` keyword: skip generics, and prefer the type after `for`
/// (`impl Display for Foo` → `Foo`). Paths and generic arguments are
/// stripped (`a::b::Foo<T>` → `Foo`).
fn impl_target(after_impl: &str) -> String {
    let mut rest = after_impl.trim_start();
    // Skip `<..>` generic parameters immediately after `impl`.
    if rest.starts_with('<') {
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        rest = &rest[i + 1..];
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    // `impl Trait for Type` — the item is named by `Type`.
    if let Some(at) = find_word_at(rest, "for") {
        rest = &rest[at + 3..];
    }
    // First path expression: take its final identifier segment.
    let rest = rest.trim_start();
    let mut end = 0;
    for (i, c) in rest.char_indices() {
        if c.is_alphanumeric() || c == '_' || c == ':' {
            end = i + c.len_utf8();
        } else {
            break;
        }
    }
    let path = &rest[..end];
    path.rsplit("::").next().unwrap_or("").to_string()
}

/// First identifier at or after byte `from` in `text`.
fn ident_after(text: &str, from: usize) -> String {
    let bytes = text.as_bytes();
    let mut i = from;
    while i < bytes.len() && !is_ident_byte(bytes[i]) {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && is_ident_byte(bytes[i]) {
        i += 1;
    }
    text[start..i].to_string()
}

/// Byte offset of the first standalone keyword occurrence in `text`
/// (not part of a longer identifier), or None.
fn find_word_at(text: &str, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(rel) = text[from..].find(word) {
        let at = from + rel;
        let pre_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

/// Start of the statement containing `off`: the byte just after the
/// nearest `;`, `{`, or `}` at the same nesting depth scanning
/// backwards (struct-literal fields and match arms count as their own
/// "statements", which is what the hold-range logic wants).
pub fn statement_start(masked: &str, off: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0usize;
    let mut i = off;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b')' | b']' | b'}' if i < off => {
                if bytes[i] == b'}' && depth == 0 {
                    return i + 1;
                }
                depth += 1;
            }
            b'(' | b'[' | b'{' => {
                if depth == 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
    }
    0
}

/// End of the statement containing `off` (exclusive): the first `;` at
/// the current depth, or the `}` that closes the enclosing block.
pub fn statement_end(masked: &str, off: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0usize;
    let mut i = off;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => depth = depth.saturating_sub(1),
            b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Resolved `use` aliases: local leaf name → full imported path.
///
/// Handles nested group imports (`use a::{b, c as d, e::{f, g}};`) and
/// explicit renames. Glob imports are ignored — the rules that consume
/// this treat an unresolved name as "not the type we care about", and
/// no workspace crate glob-imports a sync type.
#[derive(Debug, Default)]
pub struct UseAliases {
    entries: Vec<(String, String)>,
}

impl UseAliases {
    /// Parse every `use` statement in the masked source.
    pub fn parse(masked: &str) -> UseAliases {
        let mut aliases = UseAliases::default();
        let bytes = masked.as_bytes();
        let mut from = 0;
        while let Some(rel) = masked[from..].find("use ") {
            let at = from + rel;
            from = at + 4;
            // Must be a standalone keyword at a statement start.
            if at > 0 && is_ident_byte(bytes[at - 1]) {
                continue;
            }
            let before = masked[..at].trim_end();
            let starts_stmt = before.is_empty()
                || before.ends_with(';')
                || before.ends_with('{')
                || before.ends_with('}')
                || before.ends_with("pub");
            if !starts_stmt {
                continue;
            }
            let end = masked[at..].find(';').map(|e| at + e).unwrap_or(masked.len());
            parse_use_tree(masked[at + 4..end].trim(), "", &mut aliases.entries);
            from = end;
        }
        aliases
    }

    /// Full path a local name was imported as, if any.
    pub fn resolve(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(alias, _)| alias == name).map(|(_, path)| path.as_str())
    }

    /// Local names whose import path ends with `::suffix` (or equals
    /// it). Used to find every alias of e.g. `std::sync::Mutex`.
    pub fn names_for_suffix(&self, suffix: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(_, path)| path == suffix || path.ends_with(&format!("::{suffix}")))
            .map(|(alias, _)| alias.as_str())
            .collect()
    }
}

/// Recursively flatten one `use` tree (text between `use` and `;`).
fn parse_use_tree(tree: &str, prefix: &str, out: &mut Vec<(String, String)>) {
    let tree = tree.trim();
    if tree.is_empty() || tree == "*" {
        return;
    }
    if let Some(brace) = tree.find('{') {
        // `head::{group}` — recurse into each comma-separated item.
        let head = tree[..brace].trim().trim_end_matches("::");
        let inner_prefix = join_path(prefix, head);
        let inner = tree[brace + 1..].trim_end_matches('}');
        for item in split_top_level(inner) {
            parse_use_tree(item, &inner_prefix, out);
        }
        return;
    }
    // Plain path, optionally `path as alias`.
    let (path, alias) = match tree.split_once(" as ") {
        Some((p, a)) => (p.trim(), a.trim()),
        None => (tree, tree.rsplit("::").next().unwrap_or(tree).trim()),
    };
    if alias.is_empty() || alias == "_" {
        return;
    }
    out.push((alias.to_string(), join_path(prefix, path)));
}

/// Join two `::`-separated path fragments.
fn join_path(prefix: &str, tail: &str) -> String {
    let tail = tail.trim();
    if prefix.is_empty() {
        tail.to_string()
    } else if tail.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}::{tail}")
    }
}

/// Split a `use` group on commas that are not inside nested braces.
fn split_top_level(group: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in group.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                items.push(&group[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&group[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn block_tree_attributes_fn_impl_mod() {
        let src = r#"
mod outer {
    impl std::fmt::Display for Thing {
        fn fmt(&self, f: &mut Formatter) -> Result {
            if true { loop {} }
            Ok(())
        }
    }
    impl<T: Clone> Holder<T> {
        fn get(&self) -> &T { &self.0 }
    }
}
"#;
        let s = scan(src);
        let tree = ScopeTree::build(&s.masked);
        let named: Vec<(BlockKind, &str)> = tree
            .blocks
            .iter()
            .filter(|b| b.kind != BlockKind::Other)
            .map(|b| (b.kind, b.name.as_str()))
            .collect();
        assert_eq!(
            named,
            vec![
                (BlockKind::Mod, "outer"),
                (BlockKind::Impl, "Thing"),
                (BlockKind::Fn, "fmt"),
                (BlockKind::Impl, "Holder"),
                (BlockKind::Fn, "get"),
            ]
        );
        let fmt = tree.fn_in_impl("Thing", "fmt").expect("fmt found");
        assert!(tree.fn_in_impl("Holder", "fmt").is_none());
        let inner_if = tree
            .blocks
            .iter()
            .position(|b| b.kind == BlockKind::Other && b.open > fmt.open)
            .expect("if-body block");
        assert_eq!(
            tree.enclosing(tree.blocks[inner_if].open + 1, BlockKind::Fn).map(|b| b.name.as_str()),
            Some("fmt")
        );
    }

    #[test]
    fn fn_with_impl_trait_arg_is_a_fn() {
        let s = scan("fn run(f: impl Fn() -> u32) { f(); }\n");
        let tree = ScopeTree::build(&s.masked);
        assert_eq!(tree.blocks[0].kind, BlockKind::Fn);
        assert_eq!(tree.blocks[0].name, "run");
    }

    #[test]
    fn statement_spans_respect_nesting() {
        let src = "fn f() { let a = g(1, h(2; 3)); a.call(); }";
        // NB: the `;` inside parens must not terminate the let.
        let masked = scan(src).masked;
        let a_let = src.find("let a").unwrap();
        assert_eq!(statement_start(&masked, a_let), src.find('{').unwrap() + 1);
        assert_eq!(statement_end(&masked, a_let), src.find("); a").unwrap() + 2);
        let call = src.find("a.call").unwrap();
        assert_eq!(&src[statement_start(&masked, call)..call].trim(), &"");
    }

    #[test]
    fn use_aliases_resolve_nested_groups_and_renames() {
        let src = "use std::sync::{mpsc, Arc, Mutex as Mu};\n\
                   use std::sync::atomic::{AtomicU64, Ordering};\n\
                   pub use parking_lot::RwLock;\n\
                   use std::thread::spawn as go;\n";
        let aliases = UseAliases::parse(&scan(src).masked);
        assert_eq!(aliases.resolve("mpsc"), Some("std::sync::mpsc"));
        assert_eq!(aliases.resolve("Mu"), Some("std::sync::Mutex"));
        assert_eq!(aliases.resolve("RwLock"), Some("parking_lot::RwLock"));
        assert_eq!(aliases.resolve("go"), Some("std::thread::spawn"));
        assert_eq!(aliases.names_for_suffix("Mutex"), vec!["Mu"]);
        assert_eq!(aliases.names_for_suffix("RwLock"), vec!["RwLock"]);
        assert!(aliases.resolve("because").is_none(), "`use` inside words ignored");
    }
}
