//! `tabmeta-lint` CLI.
//!
//! ```sh
//! tabmeta-lint --workspace            # lint the enclosing workspace
//! tabmeta-lint --workspace --json     # deterministic JSON diagnostics
//! tabmeta-lint --root path/to/tree    # lint an explicit tree (fixtures)
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: tabmeta-lint [--workspace] [--root <path>] [--json]";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let _ = workspace; // `--workspace` is the default mode; kept for clarity.
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("current_dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match tabmeta_lint::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    match tabmeta_lint::lint_tree(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tabmeta-lint: {e}");
            ExitCode::from(2)
        }
    }
}
