//! A hand-rolled, lossless token scanner for Rust source.
//!
//! The lint rules must never fire on text that only *looks* like code —
//! `Instant::now` inside a doc comment, `unsafe` inside a raw string, a
//! metric name inside a `'"'` char literal. Instead of regexing raw
//! source, [`scan`] walks the file once and produces:
//!
//! * `masked` — the source with every comment, string literal, and char
//!   literal blanked to spaces (newlines and byte offsets preserved), so
//!   code-pattern searches can use plain substring matching;
//! * `literals` — every string literal with its position and *unescaped*
//!   value (metric-name checks read these);
//! * `comments` — every comment with its position and raw text
//!   (`// SAFETY:` and `lint:allow` live here).
//!
//! Handled syntax: `//` line comments, nested `/* /* */ */` block
//! comments, `"…"` strings with escapes, `r"…"` / `r#"…"#` raw strings at
//! any hash depth, `b"…"` / `br#"…"#` byte strings, `'x'` / `'\''` /
//! `'\u{…}'` char literals, `'lifetime` marks (which are *not* char
//! literals and stay in the masked code), raw identifiers (`r#fn`,
//! `r#type` — *not* raw strings; consumed atomically as code), and a
//! leading `#!` shebang line (treated as a comment so stray quotes in it
//! cannot desync every byte offset after line one).

/// One string literal (normal, raw, or byte) found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// Byte offset of the literal's first character (including any
    /// `r#`/`b` prefix).
    pub offset: usize,
    /// 1-based line of the literal start.
    pub line: u32,
    /// 1-based character column of the literal start.
    pub col: u32,
    /// Unescaped contents (raw strings verbatim).
    pub value: String,
}

/// One comment (line or block) found in the source, delimiters included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (same as `line` for `//`).
    pub end_line: u32,
    /// 1-based character column of the comment start.
    pub col: u32,
    /// Raw text including the `//` or `/* */` markers.
    pub text: String,
}

/// The result of scanning one file.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Source with comments and literals blanked; identical byte length
    /// and line structure to the input.
    pub masked: String,
    /// All string literals, in source order.
    pub literals: Vec<StrLit>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (line N starts at
    /// `line_starts[N - 1]`).
    pub line_starts: Vec<usize>,
}

impl Scan {
    /// Map a byte offset to a 1-based (line, character-column) pair.
    pub fn line_col(&self, source: &str, offset: usize) -> (u32, u32) {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let start = self.line_starts[line_idx];
        let col = source[start..offset].chars().count() as u32 + 1;
        (line_idx as u32 + 1, col)
    }

    /// The full text of a 1-based line, trailing whitespace trimmed.
    pub fn line_text<'a>(&self, source: &'a str, line: u32) -> &'a str {
        let idx = line.saturating_sub(1) as usize;
        let start = match self.line_starts.get(idx) {
            Some(&s) => s,
            None => return "",
        };
        let end = self.line_starts.get(idx + 1).copied().unwrap_or(source.len());
        source[start..end].trim_end_matches(['\n', '\r'])
    }

    /// Whether a 1-based line contains no code in the masked view (only
    /// whitespace — i.e. blank, comment-only, or literal-continuation).
    pub fn line_is_codeless(&self, line: u32) -> bool {
        let idx = line.saturating_sub(1) as usize;
        let start = match self.line_starts.get(idx) {
            Some(&s) => s,
            None => return true,
        };
        let end = self.line_starts.get(idx + 1).copied().unwrap_or(self.masked.len());
        self.masked[start..end].trim().is_empty()
    }
}

struct Cursor<'a> {
    chars: Vec<(usize, char)>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
    masked: String,
    /// Last character emitted into the masked code stream (identifier
    /// boundary detection for `r"…"` vs `var r` etc.).
    last_code: Option<char>,
}

impl Cursor<'_> {
    fn eof(&self) -> bool {
        self.i >= self.chars.len()
    }

    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars.get(self.i).map_or(self.src.len(), |&(o, _)| o)
    }

    fn advance(&mut self, c: char) {
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    /// Consume one char as code: it stays visible in the masked view.
    fn take_code(&mut self) -> char {
        let c = self.peek(0).expect("take_code at EOF");
        self.masked.push(c);
        self.last_code = Some(c);
        self.advance(c);
        c
    }

    /// Consume one char as non-code: blanked in the masked view (newlines
    /// survive so line numbers stay aligned).
    fn take_blank(&mut self) -> char {
        let c = self.peek(0).expect("take_blank at EOF");
        if c == '\n' {
            self.masked.push('\n');
        } else {
            for _ in 0..c.len_utf8() {
                self.masked.push(' ');
            }
        }
        self.advance(c);
        c
    }

    fn last_code_is_ident(&self) -> bool {
        self.last_code.is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

/// Scan one source file. Never fails: malformed trailing syntax (an
/// unterminated string or comment) consumes to EOF in the open state.
pub fn scan(source: &str) -> Scan {
    let mut cur = Cursor {
        chars: source.char_indices().collect(),
        src: source,
        i: 0,
        line: 1,
        col: 1,
        masked: String::with_capacity(source.len()),
        last_code: None,
    };
    let mut literals = Vec::new();
    let mut comments = Vec::new();
    let mut line_starts = vec![0usize];

    // A leading `#!...` shebang (but not the `#![...]` inner-attribute
    // form) is host-shell text, not Rust: quotes inside it must never
    // open a string or char literal, or every offset after line one
    // desyncs. Consume it as a comment up front.
    if source.starts_with("#!") && !source.starts_with("#![") {
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            cur.take_blank();
        }
        comments.push(Comment { line: 1, end_line: 1, col: 1, text });
    }

    while !cur.eof() {
        let c = cur.peek(0).expect("peek inside loop");
        match c {
            '\n' => {
                cur.take_code();
                line_starts.push(cur.offset());
            }
            '/' if cur.peek(1) == Some('/') => {
                comments.push(read_line_comment(&mut cur));
            }
            '/' if cur.peek(1) == Some('*') => {
                comments.push(read_block_comment(&mut cur, &mut line_starts));
            }
            '"' => {
                literals.push(read_string(&mut cur, 0, &mut line_starts));
            }
            '\'' => {
                read_char_or_lifetime(&mut cur, &mut line_starts);
            }
            'r' | 'b' if !cur.last_code_is_ident() => {
                match try_read_prefixed(&mut cur, &mut line_starts) {
                    Prefixed::Str(lit) => literals.push(lit),
                    Prefixed::ByteChar => {}
                    Prefixed::NotALiteral => {
                        cur.take_code();
                        // Raw identifier (`r#fn`, `r#type`): consume the
                        // `#` and the identifier atomically as code so no
                        // following char is re-probed as a literal start.
                        if c == 'r'
                            && cur.peek(0) == Some('#')
                            && cur.peek(1).is_some_and(|n| n.is_alphanumeric() || n == '_')
                        {
                            cur.take_code(); // '#'
                            while cur.peek(0).is_some_and(|n| n.is_alphanumeric() || n == '_') {
                                cur.take_code();
                            }
                        }
                    }
                }
            }
            _ => {
                cur.take_code();
            }
        }
    }

    Scan { masked: cur.masked, literals, comments, line_starts }
}

fn read_line_comment(cur: &mut Cursor) -> Comment {
    let (line, col) = (cur.line, cur.col);
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.take_blank();
    }
    Comment { line, end_line: line, col, text }
}

fn read_block_comment(cur: &mut Cursor, line_starts: &mut Vec<usize>) -> Comment {
    let (line, col) = (cur.line, cur.col);
    let mut text = String::new();
    let mut depth = 0usize;
    while !cur.eof() {
        if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
            depth += 1;
            text.push(cur.take_blank());
            text.push(cur.take_blank());
            continue;
        }
        if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
            depth = depth.saturating_sub(1);
            text.push(cur.take_blank());
            text.push(cur.take_blank());
            if depth == 0 {
                break;
            }
            continue;
        }
        let c = cur.take_blank();
        if c == '\n' {
            line_starts.push(cur.offset());
        }
        text.push(c);
    }
    Comment { line, end_line: cur.line, col, text }
}

/// Read a `"…"` string whose opening quote is `skip_prefix` chars ahead
/// of the cursor (0 for plain strings, 1 for `b"…"`), unescaping as it
/// goes.
fn read_string(cur: &mut Cursor, skip_prefix: usize, line_starts: &mut Vec<usize>) -> StrLit {
    let (offset, line, col) = (cur.offset(), cur.line, cur.col);
    for _ in 0..skip_prefix {
        cur.take_blank();
    }
    cur.take_blank(); // opening quote
    let mut value = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            '"' => {
                cur.take_blank();
                break;
            }
            '\\' => {
                cur.take_blank();
                let Some(e) = cur.peek(0) else { break };
                match e {
                    'n' => value.push('\n'),
                    't' => value.push('\t'),
                    'r' => value.push('\r'),
                    '0' => value.push('\0'),
                    '\\' | '"' | '\'' => value.push(e),
                    '\n' => {
                        // Line continuation: the newline and leading
                        // whitespace of the next line are elided.
                        cur.take_blank();
                        line_starts.push(cur.offset());
                        while cur.peek(0).is_some_and(|w| w == ' ' || w == '\t') {
                            cur.take_blank();
                        }
                        continue;
                    }
                    'u' => {
                        cur.take_blank(); // 'u'
                        let mut hex = String::new();
                        if cur.peek(0) == Some('{') {
                            cur.take_blank();
                            while let Some(h) = cur.peek(0) {
                                cur.take_blank();
                                if h == '}' {
                                    break;
                                }
                                hex.push(h);
                            }
                        }
                        if let Some(ch) =
                            u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32)
                        {
                            value.push(ch);
                        }
                        continue;
                    }
                    'x' => {
                        cur.take_blank(); // 'x'
                        let mut hex = String::new();
                        for _ in 0..2 {
                            if let Some(h) = cur.peek(0) {
                                if h.is_ascii_hexdigit() {
                                    hex.push(h);
                                    cur.take_blank();
                                }
                            }
                        }
                        if let Some(ch) =
                            u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32)
                        {
                            value.push(ch);
                        }
                        continue;
                    }
                    other => value.push(other),
                }
                cur.take_blank();
            }
            '\n' => {
                value.push(c);
                cur.take_blank();
                line_starts.push(cur.offset());
            }
            _ => {
                value.push(c);
                cur.take_blank();
            }
        }
    }
    StrLit { offset, line, col, value }
}

/// Outcome of a `r`/`b`-prefixed literal probe.
enum Prefixed {
    /// A (raw/byte) string literal was consumed.
    Str(StrLit),
    /// A `b'x'` byte-char literal was consumed (nothing to record).
    ByteChar,
    /// Nothing was consumed — the `r`/`b` starts a plain identifier.
    NotALiteral,
}

/// Try to read `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'x'` at the
/// cursor. Consumes nothing on [`Prefixed::NotALiteral`].
fn try_read_prefixed(cur: &mut Cursor, line_starts: &mut Vec<usize>) -> Prefixed {
    let Some(first) = cur.peek(0) else { return Prefixed::NotALiteral };
    // Shape of the prefix: [b] [r] [#]* "  — anything else is code.
    let mut k = 1usize;
    let mut raw = first == 'r';
    if first == 'b' {
        match cur.peek(1) {
            Some('r') => {
                raw = true;
                k = 2;
            }
            Some('"') => {
                // b"…" — a plain byte string.
                return Prefixed::Str(read_string(cur, 1, line_starts));
            }
            Some('\'') => {
                // b'x' byte char: consume the `b` as blank, then delegate.
                cur.take_blank();
                read_char_or_lifetime(cur, line_starts);
                return Prefixed::ByteChar;
            }
            _ => return Prefixed::NotALiteral,
        }
    }
    if !raw {
        return Prefixed::NotALiteral;
    }
    let mut hashes = 0usize;
    while cur.peek(k) == Some('#') {
        hashes += 1;
        k += 1;
    }
    if cur.peek(k) != Some('"') {
        return Prefixed::NotALiteral;
    }
    let (offset, line, col) = (cur.offset(), cur.line, cur.col);
    for _ in 0..=k {
        cur.take_blank(); // prefix chars and the opening quote
    }
    let mut value = String::new();
    'body: while let Some(c) = cur.peek(0) {
        if c == '"' {
            // Candidate close: must be followed by `hashes` hash marks.
            for h in 0..hashes {
                if cur.peek(1 + h) != Some('#') {
                    value.push(c);
                    cur.take_blank();
                    continue 'body;
                }
            }
            for _ in 0..=hashes {
                cur.take_blank();
            }
            break;
        }
        value.push(c);
        cur.take_blank();
        if c == '\n' {
            line_starts.push(cur.offset());
        }
    }
    Prefixed::Str(StrLit { offset, line, col, value })
}

/// Disambiguate `'x'` / `'\n'` char literals from `'lifetime` marks. Char
/// literals are blanked; lifetimes stay in the masked code.
fn read_char_or_lifetime(cur: &mut Cursor, line_starts: &mut Vec<usize>) {
    match (cur.peek(1), cur.peek(2)) {
        (Some('\\'), _) => {
            cur.take_blank(); // '
            cur.take_blank(); // backslash
            if let Some(e) = cur.peek(0) {
                cur.take_blank(); // the escaped char
                if e == 'u' && cur.peek(0) == Some('{') {
                    while let Some(h) = cur.peek(0) {
                        cur.take_blank();
                        if h == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek(0) == Some('\'') {
                cur.take_blank(); // closing quote
            }
        }
        (Some(inner), Some('\'')) if inner != '\'' => {
            let newline = inner == '\n';
            cur.take_blank();
            cur.take_blank();
            if newline {
                line_starts.push(cur.offset());
            }
            cur.take_blank();
        }
        _ => {
            // A lifetime (or stray quote): code, not a literal.
            cur.take_code();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_preserves_length_and_lines() {
        let src = "let a = \"x\"; // hi\nlet b = 1;\n";
        let s = scan(src);
        assert_eq!(s.masked.len(), src.len());
        assert_eq!(s.masked.matches('\n').count(), src.matches('\n').count());
        assert!(!s.masked.contains("hi"));
        assert!(s.masked.contains("let b = 1;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(s.masked.contains("'a"), "lifetime survives masking: {}", s.masked);
        assert!(s.masked.contains("'static"));
        assert!(s.literals.is_empty());
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#fn = 1;\nlet r#type = r#\"raw body\"#;\nlet s = \"plain\";\n";
        let s = scan(src);
        assert_eq!(s.masked.len(), src.len());
        assert!(s.masked.contains("r#fn"), "raw ident survives masking: {}", s.masked);
        assert!(s.masked.contains("r#type"));
        let values: Vec<&str> = s.literals.iter().map(|l| l.value.as_str()).collect();
        assert_eq!(values, ["raw body", "plain"], "masked: {}", s.masked);
        // Offsets stayed aligned: the plain literal's position is exact.
        let plain = &s.literals[1];
        assert_eq!(&src[plain.offset..plain.offset + 7], "\"plain\"");
    }

    #[test]
    fn raw_identifier_followed_by_string_keeps_offsets() {
        // `r#match` ends right before a string; the scanner must not eat
        // the quote as part of a raw-string probe.
        let src = "m.insert(r#match, \"value\");\n";
        let s = scan(src);
        assert_eq!(s.literals.len(), 1);
        assert_eq!(s.literals[0].value, "value");
        assert!(s.masked.contains("r#match"));
    }

    #[test]
    fn leading_shebang_is_a_comment_and_offsets_hold() {
        // The shebang carries an unbalanced quote; without shebang
        // handling it would open a char/string literal and desync the
        // entire file.
        let src = "#!/usr/bin/env -S sh -c 'exec \"cargo\" run\nfn main() { let c = 'x'; let s = \"body\"; }\n";
        let s = scan(src);
        assert_eq!(s.masked.len(), src.len());
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.starts_with("#!"));
        assert_eq!(s.comments[0].line, 1);
        // Line 2 is scanned as ordinary code: the char literal masked,
        // the string captured at its exact offset.
        assert!(s.masked.contains("fn main()"));
        assert_eq!(s.literals.len(), 1);
        assert_eq!(s.literals[0].value, "body");
        assert_eq!(s.literals[0].line, 2);
        let lit = &s.literals[0];
        assert_eq!(&src[lit.offset..lit.offset + 6], "\"body\"");
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        let s = scan(src);
        assert!(s.comments.is_empty());
        assert!(s.masked.contains("#![forbid(unsafe_code)]"));
    }
}
