//! The rule engine: workspace invariants as machine-checked lints.
//!
//! | id      | name                 | invariant                                          |
//! |---------|----------------------|----------------------------------------------------|
//! | TM-L000 | suppression-hygiene  | every `lint:allow` names a known rule + a reason   |
//! | TM-L001 | no-unseeded-rng      | all randomness flows from explicit seeds           |
//! | TM-L002 | obs-routed-timing    | wall-clock timing goes through `tabmeta_obs`       |
//! | TM-L003 | safety-comment       | every `unsafe` carries an adjacent `// SAFETY:`    |
//! | TM-L004 | metric-name-registry | metric/span names resolve via `tabmeta_obs::names` |
//! | TM-L005 | no-stdout-in-libs    | library crates never print to stdout/stderr        |
//! | TM-L006 | lock-ordering        | lock acquisitions follow the declared rank order   |
//! | TM-L007 | atomic-ordering      | no SeqCst; Relaxed zoned; acquire/release paired   |
//! | TM-L008 | channel-discipline   | bounded channels only; `try_send` errors handled   |
//! | TM-L009 | thread-lifecycle     | every spawned thread is joined or allow-detached   |
//! | TM-L010 | reason-exhaustive    | typed error reasons are documented in the registry |
//!
//! Suppression: `// lint:allow(TM-L00N): <reason>` on the violating line
//! or the line directly above it. The reason is mandatory — a bare allow
//! is itself a TM-L000 violation — so every surviving exception in the
//! tree documents *why* it is sound.

use crate::registry::Names;
use crate::scanner::{scan, Scan};
use std::collections::BTreeSet;

/// Rule identifiers that `lint:allow` may name.
pub const SUPPRESSIBLE_RULES: [&str; 10] = [
    "TM-L001", "TM-L002", "TM-L003", "TM-L004", "TM-L005", "TM-L006", "TM-L007", "TM-L008",
    "TM-L009", "TM-L010",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
    /// Rule id (`TM-L002`).
    pub rule: &'static str,
    /// Human-readable diagnosis.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// One violation silenced by a reasoned `lint:allow`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SuppressedHit {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the suppressed violation.
    pub line: u32,
    /// Rule id that was suppressed.
    pub rule: &'static str,
    /// The mandatory reason from the `lint:allow` comment.
    pub reason: String,
}

/// Names marked used during TM-L004 checking, shared across files so the
/// final unused-name pass sees the whole workspace.
#[derive(Debug, Default)]
pub struct UsageTracker {
    /// Registry const identifiers referenced anywhere outside `names.rs`.
    pub idents: BTreeSet<String>,
    /// Registered values matched by a literal at a call site.
    pub values: BTreeSet<String>,
}

/// A parsed `lint:allow` directive.
struct Allow {
    rule: String,
    reason: String,
    /// Line the directive's comment ends on; it covers this line and the
    /// next.
    line: u32,
}

/// Lint one file. `names` is the parsed registry (empty when the tree has
/// no `names.rs`); `usage` accumulates cross-file name usage.
pub fn lint_file(
    rel: &str,
    source: &str,
    names: &Names,
    usage: &mut UsageTracker,
) -> (Vec<Violation>, Vec<SuppressedHit>) {
    let scan = scan(source);
    let mut raw: Vec<Violation> = Vec::new();
    let (allows, mut malformed) = parse_allows(rel, source, &scan);
    raw.append(&mut malformed);

    let scope = Scope::classify(rel);
    check_l001(rel, source, &scan, &mut raw);
    if scope.timing_checked {
        check_l002(rel, source, &scan, &mut raw);
    }
    check_l003(rel, source, &scan, &mut raw);
    if scope.metrics_checked {
        check_l004(rel, source, &scan, names, usage, &mut raw);
    }
    if scope.stdout_checked {
        check_l005(rel, source, &scan, &mut raw);
    }
    crate::concurrency::check_concurrency(
        rel,
        source,
        &scan,
        names,
        scope.metrics_checked,
        &mut raw,
    );
    if rel != names.file {
        track_ident_usage(&scan, names, usage);
    }

    // Apply suppressions: a reasoned allow for the right rule on the same
    // or previous line converts the violation into a suppressed hit.
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for v in raw {
        let hit =
            allows.iter().find(|a| a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line));
        match hit {
            Some(a) if v.rule != "TM-L000" => suppressed.push(SuppressedHit {
                file: v.file,
                line: v.line,
                rule: v.rule,
                reason: a.reason.clone(),
            }),
            _ => violations.push(v),
        }
    }
    (violations, suppressed)
}

/// Post-pass over the whole workspace: registry integrity + unused names.
/// Call once after every file went through [`lint_file`].
pub fn check_registry(names: &Names, usage: &UsageTracker, out: &mut Vec<Violation>) {
    let exact: Vec<_> = names.entries.iter().filter(|e| !e.prefix).collect();
    for (i, a) in names.entries.iter().enumerate() {
        // Duplicate declarations.
        if names.entries[..i].iter().any(|b| b.value == a.value) {
            out.push(Violation {
                file: names.file.clone(),
                line: a.line,
                col: 1,
                rule: "TM-L004",
                message: format!("duplicate registered name \"{}\"", a.value),
                snippet: format!("pub const {}: &str = \"{}\";", a.ident, a.value),
            });
        }
        // Unused names: never referenced by const ident nor matched by a
        // call-site literal anywhere in the workspace.
        let used = usage.idents.contains(&a.ident)
            || usage.values.contains(&a.value)
            || (a.prefix && usage.values.iter().any(|v| v.starts_with(&a.value)));
        if !used {
            out.push(Violation {
                file: names.file.clone(),
                line: a.line,
                col: 1,
                rule: "TM-L004",
                message: format!(
                    "registered name `{}` (\"{}\") is never used at any call site",
                    a.ident, a.value
                ),
                snippet: format!("pub const {}: &str = \"{}\";", a.ident, a.value),
            });
        }
    }
    // Near-duplicate pairs inside the registry itself (one of them is a
    // typo waiting to split a metric series).
    for (i, a) in exact.iter().enumerate() {
        for b in &exact[i + 1..] {
            if crate::registry::edit_distance_le_1(&a.value, &b.value) {
                out.push(Violation {
                    file: names.file.clone(),
                    line: b.line,
                    col: 1,
                    rule: "TM-L004",
                    message: format!(
                        "registered names \"{}\" and \"{}\" differ by edit distance <= 1",
                        a.value, b.value
                    ),
                    snippet: format!("pub const {}: &str = \"{}\";", b.ident, b.value),
                });
            }
        }
    }
}

/// Which rule families apply to a file, based on its workspace location.
struct Scope {
    /// TM-L002: `Instant::now` is legitimate inside the obs crate (it
    /// implements the timing) and the bench crate (it measures kernels).
    timing_checked: bool,
    /// TM-L004: the obs crate itself (registry home + its private-registry
    /// unit tests) is exempt.
    metrics_checked: bool,
    /// TM-L005: binaries, tests, examples, benches, and the two
    /// reporting crates (bench, eval) may print.
    stdout_checked: bool,
}

impl Scope {
    fn classify(rel: &str) -> Scope {
        let in_obs = rel.starts_with("crates/obs/");
        let in_bench = rel.starts_with("crates/bench/");
        let in_eval = rel.starts_with("crates/eval/");
        let in_test_like = rel.starts_with("tests/")
            || rel.starts_with("examples/")
            || rel.contains("/tests/")
            || rel.contains("/examples/")
            || rel.contains("/benches/");
        let is_bin = rel.starts_with("src/bin/")
            || rel.contains("/src/bin/")
            || rel.ends_with("src/main.rs");
        Scope {
            timing_checked: !in_obs && !in_bench,
            metrics_checked: !in_obs,
            stdout_checked: !in_obs
                && !in_bench
                && !in_eval
                && !in_test_like
                && !is_bin
                && rel.ends_with(".rs"),
        }
    }
}

// ---------------------------------------------------------------------
// Shared text utilities.
// ---------------------------------------------------------------------

/// Bytes that can appear inside an identifier (multibyte UTF-8
/// continuation/start bytes count, so word boundaries stay byte-safe).
pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte offsets of `needle` in `haystack` where the match is not embedded
/// in a longer identifier on either side.
pub(crate) fn find_word(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let pre_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let needle_ends_ident = needle.as_bytes().last().copied().is_some_and(is_ident_byte);
        let post_ok = !needle_ends_ident || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

pub(crate) fn push_at(
    rel: &str,
    source: &str,
    scan: &Scan,
    offset: usize,
    rule: &'static str,
    message: String,
    out: &mut Vec<Violation>,
) {
    let (line, col) = scan.line_col(source, offset);
    out.push(Violation {
        file: rel.to_string(),
        line,
        col,
        rule,
        message,
        snippet: scan.line_text(source, line).trim_start().to_string(),
    });
}

// ---------------------------------------------------------------------
// TM-L000: suppression hygiene.
// ---------------------------------------------------------------------

fn parse_allows(rel: &str, source: &str, scan: &Scan) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &scan.comments {
        // Doc comments may *describe* the suppression syntax (this file
        // does); only plain `//` / `/* */` comments carry directives.
        if ["///", "//!", "/**", "/*!"].iter().any(|d| c.text.starts_with(d)) {
            continue;
        }
        let Some(at) = c.text.find("lint:allow") else { continue };
        let mut fail = |message: String| {
            bad.push(Violation {
                file: rel.to_string(),
                line: c.line,
                col: c.col,
                rule: "TM-L000",
                message,
                snippet: scan.line_text(source, c.line).trim_start().to_string(),
            });
        };
        let after = &c.text[at + "lint:allow".len()..];
        let Some(inner) = after.strip_prefix('(') else {
            fail("malformed suppression: expected `lint:allow(<rule>): <reason>`".to_string());
            continue;
        };
        let Some((rule, rest)) = inner.split_once(')') else {
            fail("malformed suppression: missing `)` in `lint:allow(<rule>)`".to_string());
            continue;
        };
        let rule = rule.trim();
        if !SUPPRESSIBLE_RULES.contains(&rule) {
            fail(format!("unknown rule `{rule}` in lint:allow (expected TM-L001..TM-L010)"));
            continue;
        }
        let reason = rest
            .trim_start()
            .strip_prefix(':')
            .map(|r| r.trim().trim_end_matches("*/").trim())
            .unwrap_or("");
        if reason.is_empty() {
            fail(format!(
                "suppression of {rule} without a reason: write `lint:allow({rule}): <why this is sound>`"
            ));
            continue;
        }
        allows.push(Allow { rule: rule.to_string(), reason: reason.to_string(), line: c.end_line });
    }
    (allows, bad)
}

// ---------------------------------------------------------------------
// TM-L001: no unseeded RNG.
// ---------------------------------------------------------------------

fn check_l001(rel: &str, source: &str, scan: &Scan, out: &mut Vec<Violation>) {
    for needle in ["thread_rng", "from_entropy", "from_os_rng"] {
        for at in find_word(&scan.masked, needle) {
            push_at(
                rel,
                source,
                scan,
                at,
                "TM-L001",
                format!(
                    "`{needle}` draws operating-system entropy; all randomness must flow from \
                     explicit seeds (StdRng::seed_from_u64) to keep runs bit-reproducible"
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------
// TM-L002: obs-routed timing.
// ---------------------------------------------------------------------

fn check_l002(rel: &str, source: &str, scan: &Scan, out: &mut Vec<Violation>) {
    for at in find_word(&scan.masked, "Instant::now") {
        push_at(
            rel,
            source,
            scan,
            at,
            "TM-L002",
            "raw `Instant::now()` outside crates/obs and crates/bench; route timing through \
             `tabmeta_obs::timed`/spans so wall-clock lands in the telemetry snapshot"
                .to_string(),
            out,
        );
    }
}

// ---------------------------------------------------------------------
// TM-L003: SAFETY comments on unsafe.
// ---------------------------------------------------------------------

fn check_l003(rel: &str, source: &str, scan: &Scan, out: &mut Vec<Violation>) {
    let hits = find_word(&scan.masked, "unsafe");
    if hits.is_empty() {
        return;
    }
    // Lines each comment touches, for walking contiguous comment blocks.
    let comment_has_safety = |line: u32| -> Option<bool> {
        let mut on_line =
            scan.comments.iter().filter(|c| c.line <= line && line <= c.end_line).peekable();
        on_line.peek()?;
        Some(on_line.any(|c| c.text.contains("SAFETY:")))
    };
    for at in hits {
        let (line, _col) = scan.line_col(source, at);
        // Trailing `// SAFETY:` on the same line.
        let mut ok = scan.comments.iter().any(|c| c.line == line && c.text.contains("SAFETY:"));
        // Contiguous comment block (plus attribute lines) directly above.
        let mut l = line.saturating_sub(1);
        while !ok && l >= 1 {
            let text = scan.line_text(source, l);
            let trimmed = text.trim_start();
            if scan.line_is_codeless(l) {
                match comment_has_safety(l) {
                    Some(true) => ok = true,
                    Some(false) => {}
                    None => break, // blank line: block ends
                }
            } else if !(trimmed.starts_with("#[") || trimmed.starts_with("#![")) {
                break;
            }
            l -= 1;
        }
        if !ok {
            push_at(
                rel,
                source,
                scan,
                at,
                "TM-L003",
                "`unsafe` without an immediately preceding `// SAFETY:` comment pinning the \
                 invariant that makes it sound"
                    .to_string(),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------
// TM-L004: metric names resolve through the registry.
// ---------------------------------------------------------------------

/// Call patterns whose first argument names an instrument.
const METRIC_CALLS: [&str; 8] = [
    "counter(",
    "gauge(",
    "histogram(",
    "histogram_with(",
    "span(",
    "span_enter(",
    "span!(",
    "timed(",
];

fn check_l004(
    rel: &str,
    source: &str,
    scan: &Scan,
    names: &Names,
    usage: &mut UsageTracker,
    out: &mut Vec<Violation>,
) {
    for pattern in METRIC_CALLS {
        for at in find_word(&scan.masked, pattern) {
            let open = at + pattern.len() - 1;
            let close = match_paren(&scan.masked, open);
            check_call_site(rel, source, scan, names, usage, open, close, out);
        }
    }
}

/// Byte offset of the `)` matching the `(` at `open` (or end of text).
pub(crate) fn match_paren(masked: &str, open: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    masked.len()
}

#[allow(clippy::too_many_arguments)]
fn check_call_site(
    rel: &str,
    source: &str,
    scan: &Scan,
    names: &Names,
    usage: &mut UsageTracker,
    open: usize,
    close: usize,
    out: &mut Vec<Violation>,
) {
    if close <= open + 1 {
        return;
    }
    let region = &scan.masked[open + 1..close];
    // Registry consts referenced anywhere inside the call count as usage
    // (and legitimize dynamic names built from a `*_PREFIX`).
    let mut region_prefix_const = false;
    for e in &names.entries {
        if !find_word(region, &e.ident).is_empty() {
            usage.idents.insert(e.ident.clone());
            region_prefix_const |= e.prefix;
        }
    }
    let first_lit = scan.literals.iter().find(|l| l.offset > open && l.offset < close);
    // Direct literal argument: only `&`/whitespace between `(` and it.
    let direct = first_lit.is_some_and(|l| {
        scan.masked[open + 1..l.offset].bytes().all(|b| b.is_ascii_whitespace() || b == b'&')
    });
    // `format!` argument: the name is assembled dynamically.
    let after = region.trim_start_matches(|c: char| c.is_whitespace() || c == '&');
    let is_format = after.starts_with("format!(");

    if direct {
        let lit = first_lit.expect("direct implies literal");
        check_name_literal(rel, source, scan, names, usage, lit.offset, &lit.value, false, out);
    } else if is_format {
        match first_lit {
            Some(lit) => check_name_literal(
                rel,
                source,
                scan,
                names,
                usage,
                lit.offset,
                &lit.value,
                region_prefix_const,
                out,
            ),
            None => {
                if !region_prefix_const {
                    push_at(
                        rel,
                        source,
                        scan,
                        open,
                        "TM-L004",
                        "dynamic metric name without a registered `*_PREFIX` constant or \
                         registered prefix literal"
                            .to_string(),
                        out,
                    );
                }
            }
        }
    }
    // Plain identifier argument: nothing statically checkable beyond the
    // const-usage tracking above.
}

/// Validate one name-position string literal against the registry.
#[allow(clippy::too_many_arguments)]
fn check_name_literal(
    rel: &str,
    source: &str,
    scan: &Scan,
    names: &Names,
    usage: &mut UsageTracker,
    offset: usize,
    value: &str,
    prefix_const_in_scope: bool,
    out: &mut Vec<Violation>,
) {
    if let Some(brace) = value.find('{') {
        // A format string: the static prefix must be a declared prefix.
        let head = &value[..brace];
        if head.is_empty() {
            if !prefix_const_in_scope {
                push_at(
                    rel,
                    source,
                    scan,
                    offset,
                    "TM-L004",
                    "dynamic metric name must start from a registered prefix (declare it in \
                     tabmeta_obs::names with a trailing `.`)"
                        .to_string(),
                    out,
                );
            }
            return;
        }
        match names.prefix_exact(head) {
            Some(_) => {
                usage.values.insert(head.to_string());
            }
            None => push_at(
                rel,
                source,
                scan,
                offset,
                "TM-L004",
                format!("dynamic metric prefix \"{head}\" is not registered in tabmeta_obs::names"),
                out,
            ),
        }
        return;
    }
    if names.exact(value).is_some() {
        usage.values.insert(value.to_string());
        return;
    }
    if names.matching_prefix(value).is_some() {
        usage.values.insert(value.to_string());
        return;
    }
    match names.near_duplicate(value) {
        Some(n) => push_at(
            rel,
            source,
            scan,
            offset,
            "TM-L004",
            format!(
                "metric name \"{value}\" is a near-duplicate of registered \"{}\" — typo?",
                n.value
            ),
            out,
        ),
        None => push_at(
            rel,
            source,
            scan,
            offset,
            "TM-L004",
            format!("metric name \"{value}\" is not registered in tabmeta_obs::names"),
            out,
        ),
    }
}

fn track_ident_usage(scan: &Scan, names: &Names, usage: &mut UsageTracker) {
    for e in &names.entries {
        if usage.idents.contains(&e.ident) {
            continue;
        }
        if !find_word(&scan.masked, &e.ident).is_empty() {
            usage.idents.insert(e.ident.clone());
        }
    }
}

// ---------------------------------------------------------------------
// TM-L005: no stdout/stderr printing in library crates.
// ---------------------------------------------------------------------

fn check_l005(rel: &str, source: &str, scan: &Scan, out: &mut Vec<Violation>) {
    for needle in ["println!", "eprintln!", "print!", "eprint!", "dbg!"] {
        for at in find_word(&scan.masked, needle) {
            push_at(
                rel,
                source,
                scan,
                at,
                "TM-L005",
                format!(
                    "`{needle}` in a library crate; return strings or record through \
                     tabmeta-obs instead (binaries, tests, bench and eval reporting are exempt)"
                ),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(rel: &str, src: &str) -> Vec<Violation> {
        let names = Names::default();
        let mut usage = UsageTracker::default();
        lint_file(rel, src, &names, &mut usage).0
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r##"
// Instant::now() in a comment is fine.
/* so is thread_rng in /* a nested */ block */
fn f() -> &'static str {
    let s = "Instant::now() and unsafe and println! inside a string";
    let r = r#"thread_rng inside a raw string"#;
    let c = '"';
    let _ = (s, r, c);
    "ok"
}
"##;
        let got = lint("crates/core/src/x.rs", src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn l002_fires_and_suppresses() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let v = lint("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "TM-L002");
        assert_eq!(v[0].line, 1);

        let ok = "// lint:allow(TM-L002): benchmark scratch, not pipeline timing\nfn f() { let t = std::time::Instant::now(); }\n";
        let names = Names::default();
        let mut usage = UsageTracker::default();
        let (v, s) = lint_file("crates/core/src/x.rs", ok, &names, &mut usage);
        assert!(v.is_empty());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "TM-L002");
    }
}
