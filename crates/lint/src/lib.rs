//! `tabmeta-lint`: workspace-invariant static analysis for the tabmeta
//! tree.
//!
//! The paper's claims are reproducible only because every stage is
//! seeded and deterministic; this crate makes those invariants
//! *machine-checked* instead of reviewer-enforced. It scans every
//! non-vendored `.rs` file with a comment/string/char-literal-aware
//! scanner ([`scanner`]) and runs the rule engine ([`rules`]): unseeded
//! RNG, raw timing outside the obs layer, `unsafe` without a SAFETY
//! comment, metric names that bypass the `tabmeta_obs::names` registry
//! ([`registry`]), and stdout printing in library crates.
//!
//! The binary (`cargo run -p tabmeta-lint -- --workspace`) exits nonzero
//! on any violation and is a permanent tier-1 stage in
//! `scripts/check.sh`.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod concurrency;
pub mod registry;
pub mod rules;
pub mod scanner;
pub mod scope;

pub use registry::Names;
pub use rules::{SuppressedHit, UsageTracker, Violation};

use std::fs;
use std::path::{Path, PathBuf};

/// Workspace-relative location of the metric-name registry module.
pub const NAMES_RS: &str = "crates/obs/src/names.rs";

/// Directory names never descended into: vendored dependencies, build
/// output, VCS metadata, and lint test fixtures (which contain deliberate
/// violations).
const SKIP_DIRS: [&str; 5] = ["vendor", "target", ".git", "fixtures", "node_modules"];

/// The outcome of linting a tree.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Workspace-relative paths of every scanned file (not serialized;
    /// the JSON stays violation-focused).
    pub scanned_files: Vec<String>,
    /// All violations, sorted by (file, line, col, rule).
    pub violations: Vec<Violation>,
    /// Violations silenced by reasoned `lint:allow` directives.
    pub suppressed: Vec<SuppressedHit>,
}

impl Report {
    /// Whether the tree passed.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable `file:line:col: RULE-ID message` diagnostics with
    /// the offending line underneath each.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("{}:{}:{}: {} {}\n", v.file, v.line, v.col, v.rule, v.message));
            if !v.snippet.is_empty() {
                out.push_str(&format!("    {}\n", v.snippet));
            }
        }
        if self.clean() {
            out.push_str(&format!(
                "tabmeta-lint: clean ({} files scanned, {} suppressed)\n",
                self.files_scanned,
                self.suppressed.len()
            ));
        } else {
            out.push_str(&format!(
                "tabmeta-lint: {} violation(s) in {} files scanned ({} suppressed)\n",
                self.violations.len(),
                self.files_scanned,
                self.suppressed.len()
            ));
        }
        out
    }

    /// Deterministic JSON: stable key order, arrays sorted the same way
    /// as the text output.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {} }}",
                json_str(&v.file),
                v.line,
                v.col,
                json_str(v.rule),
                json_str(&v.message),
                json_str(&v.snippet)
            ));
        }
        out.push_str(if self.violations.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {} }}",
                json_str(&s.file),
                s.line,
                json_str(s.rule),
                json_str(&s.reason)
            ));
        }
        out.push_str(if self.suppressed.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Escape a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Collect every lintable `.rs` file under `root`, as sorted
/// workspace-relative `/`-separated paths.
pub fn collect_rs_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("strip_prefix: {e}"))?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint the tree rooted at `root` (a workspace checkout or a fixture
/// mirroring its layout).
pub fn lint_tree(root: &Path) -> Result<Report, String> {
    let files = collect_rs_files(root)?;
    let names = match fs::read_to_string(root.join(NAMES_RS)) {
        Ok(src) => Names::parse(NAMES_RS, &src),
        Err(_) => Names::default(),
    };
    let mut usage = UsageTracker::default();
    let mut report = Report::default();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))
            .map_err(|e| format!("read {}: {e}", root.join(rel).display()))?;
        let (mut v, mut s) = rules::lint_file(rel, &source, &names, &mut usage);
        report.violations.append(&mut v);
        report.suppressed.append(&mut s);
        report.files_scanned += 1;
        report.scanned_files.push(rel.clone());
    }
    rules::check_registry(&names, &usage, &mut report.violations);
    report.violations.sort();
    report.suppressed.sort();
    Ok(report)
}

/// Ascend from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {} (pass --root <path>)",
                start.display()
            ));
        }
    }
}
