//! The static lock-order table (TM-L006) and the runtime witness
//! registry must be the same table: same ids, same ranks, same order.
//! A lock added to one side without the other would let the lint and
//! the chaos gates silently enforce different orders.

use tabmeta_lint::registry::LOCK_ORDER;
use tabmeta_obs::lockorder::REGISTRY;

#[test]
fn static_and_runtime_lock_registries_are_identical() {
    let lint: Vec<(&str, u32)> = LOCK_ORDER.iter().map(|l| (l.id, l.rank)).collect();
    let witness: Vec<(&str, u32)> = REGISTRY.iter().map(|l| (l.name, l.rank)).collect();
    assert_eq!(
        lint, witness,
        "crates/lint/src/registry.rs LOCK_ORDER and \
         crates/obs/src/lockorder.rs REGISTRY diverged"
    );
}

#[test]
fn ranks_are_strictly_ascending_and_files_exist() {
    for pair in LOCK_ORDER.windows(2) {
        assert!(pair[0].rank < pair[1].rank, "{} !< {}", pair[0].id, pair[1].id);
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for lock in &LOCK_ORDER {
        assert!(
            root.join(lock.file).is_file(),
            "registered lock `{}` points at missing file {}",
            lock.id,
            lock.file
        );
    }
}
