//! Concurrency fixture: exactly one seeded violation per rule
//! TM-L006..TM-L010. Never compiled — scanned by the snapshot test only.

pub struct Holder {
    held: std::sync::Mutex<Vec<u8>>,
}

pub fn fence(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, std::sync::atomic::Ordering::SeqCst);
}

pub fn unbounded_pipe() {
    let (_tx, _rx) = std::sync::mpsc::channel();
}

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}

pub enum RejectReason {
    Malformed,
    BadHeader,
}

impl RejectReason {
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::Malformed => "malformed_json",
            RejectReason::BadHeader => "bad_header",
        }
    }
}

pub fn reject_metrics(reg: &Registry) {
    reg.counter(&format!("{}io", INGEST_REJECTED_PREFIX)).inc();
}
