//! Binaries are exempt from TM-L005.

fn main() {
    println!("bins may print");
}
