//! Deliberately broken fixture library: exactly one violation per rule,
//! one reasoned suppression, one bare suppression, and a gauntlet of
//! scanner hard cases that must stay silent. Never compiled — scanned by
//! the snapshot test only.

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn timing() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

pub fn suppressed_timing() -> std::time::Duration {
    // lint:allow(TM-L002): fixture demonstrates a reasoned suppression
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

pub unsafe fn no_safety() {}

// SAFETY: does nothing; exists to prove the adjacent comment is honored.
pub unsafe fn with_safety() {}

pub fn metrics(reg: &Registry) {
    reg.counter("app.tick").inc();
    reg.gauge("nope.metric").set(1.0);
    reg.counter(&format!("{}warm", APP_PHASE_PREFIX)).inc();
    reg.counter(APP_TICKS).inc();
}

pub fn chatty() {
    println!("lib crates must not print");
}

// lint:allow(TM-L001)
pub fn bare_allow_is_malformed() {}

// --- hard cases below: none of these may fire -------------------------

/* outer /* thread_rng inside a nested block comment */ still comment */

pub fn quotes() -> (char, char) {
    ('"', '\'')
}

pub fn aligned() -> &'static str {
    "thread_rng and Instant::now() and unsafe stay inside this string"
}

pub fn raw() -> &'static str {
    r#"println! and unsafe and Instant::now() in a raw string"#
}
