//! Mini registry for the lint fixture tree.

pub const APP_TICKS: &str = "app.ticks";
pub const APP_PHASE_PREFIX: &str = "app.phase.";
pub const APP_UNUSED: &str = "app.unused";
/// counter family — ingest rejects by reason: `malformed_json`.
pub const INGEST_REJECTED_PREFIX: &str = "ingest.rejected.";
