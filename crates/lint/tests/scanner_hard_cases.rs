//! The scanner cases that break regex-over-raw-source linters: literals
//! and comments that *contain* forbidden tokens, and quote-like syntax
//! (lifetimes, char literals) that must not derail string detection.

use tabmeta_lint::registry::Names;
use tabmeta_lint::rules::{lint_file, UsageTracker};
use tabmeta_lint::scanner::scan;

fn lint(rel: &str, src: &str) -> Vec<tabmeta_lint::Violation> {
    let mut usage = UsageTracker::default();
    lint_file(rel, src, &Names::default(), &mut usage).0
}

#[test]
fn raw_strings_hide_forbidden_tokens() {
    let src = r##"
pub fn f() -> &'static str {
    r#"unsafe Instant::now() thread_rng println! counter("x")"#
}
"##;
    assert!(lint("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn plain_strings_hide_forbidden_tokens() {
    let src = "pub fn f() -> String {\n    \"unsafe and Instant::now() and \\\"thread_rng\\\"\".to_string()\n}\n";
    assert!(lint("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn nested_block_comments_stay_comments() {
    let src = "/* outer /* inner thread_rng */ still comment: Instant::now() */\npub fn f() {}\n";
    assert!(lint("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn quote_char_literals_do_not_open_strings() {
    // If '"' opened a string, the following real `thread_rng` call would
    // be swallowed into a literal and missed; if it closed one late, the
    // string on the next line would leak. Both directions are covered.
    let src = "pub fn f() -> char {\n    let q = '\"';\n    let e = '\\'';\n    let _ = (q, e, rand::thread_rng());\n    q\n}\n";
    let v = lint("crates/core/src/x.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!((v[0].rule, v[0].line, v[0].col), ("TM-L001", 4, 26));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "pub fn f<'a>(x: &'a str) -> &'a str {\n    let _ = \"thread_rng stays stringed\";\n    x\n}\n";
    assert!(lint("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn masked_text_preserves_offsets() {
    let src = "let s = \"ab\\ncd\"; let t = Instant::now();";
    let scanned = scan(src);
    assert_eq!(scanned.masked.len(), src.len());
    let at = scanned.masked.find("Instant::now").expect("code survives masking");
    assert_eq!(&src[at..at + 12], "Instant::now");
    assert_eq!(scanned.literals.len(), 1);
    assert_eq!(scanned.literals[0].value, "ab\ncd");
}

#[test]
fn allow_without_reason_is_tm_l000() {
    let src = "// lint:allow(TM-L002)\nfn f() { let _ = std::time::Instant::now(); }\n";
    let v = lint("crates/core/src/x.rs", src);
    // The bare allow is malformed AND fails to suppress the violation.
    assert_eq!(v.len(), 2, "{v:?}");
    assert_eq!(v[0].rule, "TM-L000");
    assert_eq!(v[1].rule, "TM-L002");
}

#[test]
fn allow_with_unknown_rule_is_tm_l000() {
    let src = "// lint:allow(TM-L999): creative rule invention\nfn f() {}\n";
    let v = lint("crates/core/src/x.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "TM-L000");
    assert!(v[0].message.contains("TM-L999"));
}

#[test]
fn allow_with_reason_suppresses_and_records_reason() {
    let src = "// lint:allow(TM-L002): scratch timing for a doc example\nfn f() { let _ = std::time::Instant::now(); }\n";
    let mut usage = UsageTracker::default();
    let (v, s) = lint_file("crates/core/src/x.rs", src, &Names::default(), &mut usage);
    assert!(v.is_empty(), "{v:?}");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].rule, "TM-L002");
    assert_eq!(s[0].reason, "scratch timing for a doc example");
}

#[test]
fn allow_only_covers_its_own_rule_and_lines() {
    // Wrong rule id: the violation survives.
    let src =
        "// lint:allow(TM-L001): wrong rule named\nfn f() { let _ = std::time::Instant::now(); }\n";
    let v = lint("crates/core/src/x.rs", src);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "TM-L002");

    // Right rule, two lines above the violation: out of range, survives.
    let src =
        "// lint:allow(TM-L002): too far away\n\nfn f() { let _ = std::time::Instant::now(); }\n";
    let v = lint("crates/core/src/x.rs", src);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "TM-L002");
}

#[test]
fn safety_comment_is_required_and_sufficient() {
    let bad = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let v = lint("crates/linalg/src/x.rs", bad);
    assert_eq!(v.len(), 1);
    assert_eq!((v[0].rule, v[0].line), ("TM-L003", 2));

    let good = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}\n";
    assert!(lint("crates/linalg/src/x.rs", good).is_empty());

    // A SAFETY comment above an attribute still counts as adjacent.
    let attr =
        "// SAFETY: the attribute does not break adjacency.\n#[inline]\npub unsafe fn g() {}\n";
    assert!(lint("crates/linalg/src/x.rs", attr).is_empty());
}

#[test]
fn timing_scope_exemptions() {
    let src = "fn f() { let _ = std::time::Instant::now(); }\n";
    assert!(lint("crates/obs/src/lib.rs", src).is_empty(), "obs implements timing");
    assert!(lint("crates/bench/src/kernels.rs", src).is_empty(), "bench measures kernels");
    assert_eq!(lint("crates/eval/src/x.rs", src).len(), 1, "eval must route through obs");
}

#[test]
fn stdout_scope_exemptions() {
    let src = "fn f() { println!(\"hi\"); }\n";
    assert_eq!(lint("crates/core/src/x.rs", src).len(), 1, "library crates must not print");
    for exempt in [
        "src/bin/tabmeta.rs",
        "crates/eval/src/report.rs",
        "crates/bench/src/lib.rs",
        "tests/telemetry.rs",
        "crates/core/tests/integration.rs",
        "crates/core/examples/demo.rs",
    ] {
        assert!(lint(exempt, src).is_empty(), "{exempt} should be exempt");
    }
}
