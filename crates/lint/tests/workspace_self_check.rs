//! The lint's own acceptance gate: the workspace must be lint-clean, and
//! any surviving suppression must carry a reason. This is the same check
//! `scripts/check.sh` runs via the binary, kept as a test so plain
//! `cargo test` enforces the invariants too.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = tabmeta_lint::lint_tree(&root).expect("workspace lints");
    assert!(report.clean(), "workspace has lint violations:\n{}", report.render_text());
    // The tree is large enough that a traversal bug (skipping crates/,
    // say) would show up as a suspiciously small file count.
    assert!(report.files_scanned > 80, "only {} files scanned", report.files_scanned);
    // The traversal must reach the workspace-level integration tests and
    // examples, not just crate sources — the concurrency rules guard
    // spawn/join discipline there too.
    assert!(
        report.scanned_files.iter().any(|f| f.starts_with("tests/")),
        "tests/ not covered by the lint walk"
    );
    assert!(
        report.scanned_files.iter().any(|f| f.contains("examples/")),
        "examples/ not covered by the lint walk"
    );
    // Zero-suppression budget: every invariant currently holds without
    // exceptions, and a new allow should be a reviewed, deliberate event.
    assert!(report.suppressed.is_empty(), "suppression budget exceeded: {:?}", report.suppressed);
}

#[test]
fn workspace_registry_names_all_resolve() {
    // Re-parse the live registry and confirm the structural conventions
    // TM-L004 relies on: unique values, prefixes end in '.', exact names
    // never do.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let source = std::fs::read_to_string(root.join(tabmeta_lint::NAMES_RS)).expect("names.rs");
    let names = tabmeta_lint::Names::parse(tabmeta_lint::NAMES_RS, &source);
    assert!(names.entries.len() >= 40, "registry shrank: {}", names.entries.len());
    for (i, e) in names.entries.iter().enumerate() {
        assert_eq!(e.prefix, e.value.ends_with('.'), "{:?}", e.value);
        assert!(!names.entries[..i].iter().any(|p| p.value == e.value), "duplicate {:?}", e.value);
    }
    assert!(names.exact("sgns.pairs").is_some());
    assert!(names.matching_prefix("classifier.degraded.no_signal").is_some());
}
