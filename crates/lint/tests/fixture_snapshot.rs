//! Snapshot test: linting the checked-in fixture tree must produce
//! byte-identical `--json` output to `fixtures/mini.expected.json`.
//!
//! The fixture seeds exactly one violation per rule (TM-L000 through
//! TM-L010), one reasoned suppression, and an unused registry name, so
//! this test pins every rule's file/line/col reporting and the JSON
//! shape at once. To regenerate after an intentional diagnostics change:
//!
//! ```sh
//! cargo run -p tabmeta-lint -- --root crates/lint/tests/fixtures/mini --json \
//!   > crates/lint/tests/fixtures/mini.expected.json
//! ```

use std::path::Path;

#[test]
fn fixture_json_matches_snapshot() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let report = tabmeta_lint::lint_tree(&base.join("mini")).expect("fixture lints");
    let expected = std::fs::read_to_string(base.join("mini.expected.json")).expect("snapshot");
    assert_eq!(report.render_json(), expected, "fixture diagnostics drifted from snapshot");
}

#[test]
fn fixture_covers_every_rule_once() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini");
    let report = tabmeta_lint::lint_tree(&base).expect("fixture lints");
    assert!(!report.clean());
    assert_eq!(report.files_scanned, 4);
    let count = |rule: &str| report.violations.iter().filter(|v| v.rule == rule).count();
    assert_eq!(count("TM-L000"), 1, "bare lint:allow");
    assert_eq!(count("TM-L001"), 1, "thread_rng");
    assert_eq!(count("TM-L002"), 1, "raw Instant::now");
    assert_eq!(count("TM-L003"), 1, "unsafe without SAFETY");
    assert_eq!(count("TM-L004"), 3, "near-dup + undeclared + unused registry name");
    assert_eq!(count("TM-L005"), 1, "println! in a lib (the bin is exempt)");
    assert_eq!(count("TM-L006"), 1, "undeclared Mutex field");
    assert_eq!(count("TM-L007"), 1, "SeqCst store");
    assert_eq!(count("TM-L008"), 1, "unbounded mpsc::channel");
    assert_eq!(count("TM-L009"), 1, "discarded thread::spawn handle");
    assert_eq!(count("TM-L010"), 1, "undocumented error reason");
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "TM-L002");

    // Text rendering carries file:line:col plus the offending line.
    let text = report.render_text();
    assert!(text.contains("src/lib.rs:7:25: TM-L001"), "{text}");
    assert!(text.contains("let mut rng = rand::thread_rng();"), "{text}");
    assert!(text.contains("13 violation(s) in 4 files scanned (1 suppressed)"), "{text}");
}
