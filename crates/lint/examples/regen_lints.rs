//! Regenerate the rule catalog in `LINTS.md` from
//! [`tabmeta_lint::catalog::render_markdown`].
//!
//! Run after adding or editing rules:
//!
//! ```text
//! cargo run --offline -p tabmeta-lint --example regen_lints
//! ```
//!
//! The lint test `lints_md_matches_catalog` pins the checked-in file to
//! the code, so a stale catalog fails `scripts/check.sh` until this runs.

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../LINTS.md");
    let doc = std::fs::read_to_string(path).expect("LINTS.md at workspace root");
    let begin = "<!-- catalog:begin -->\n";
    let end = "<!-- catalog:end -->";
    let start = doc.find(begin).expect("catalog:begin marker") + begin.len();
    let stop = doc[start..].find(end).expect("catalog:end marker") + start;
    let out =
        format!("{}{}{}", &doc[..start], tabmeta_lint::catalog::render_markdown(), &doc[stop..]);
    std::fs::write(path, out).expect("rewrite LINTS.md");
    println!("LINTS.md regenerated ({} rules)", tabmeta_lint::catalog::CATALOG.len());
}
