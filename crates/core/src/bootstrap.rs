//! Bootstrap weak labeling (§III-B).
//!
//! *"To calculate centroids in unsupervised manner, we used a subset of our
//! datasets that has markup for metadata in the HTML tags. … The script
//! labels HMD using tags like `<thead>`, `<th>`, `<tr>`, and labels data
//! using `<td>`. For VMD labeling, it checks for bold tags/attributes or
//! empty space characters in the first column. … In some datasets such
//! partial HTML tag markup may not be available (e.g., in SAUS and CIUS).
//! In that case, we used the first row/column instead."*
//!
//! Weak labels are per-level (row/column) booleans: metadata vs data vs
//! unknown. They seed centroid estimation and contrastive pair mining;
//! they never touch the classification phase.
// Grid construction walks coordinates; index loops are the clear form here.
#![allow(clippy::needless_range_loop)]

use tabmeta_tabular::{Axis, Table};
use tabmeta_text::classify_numeric;

/// One level's weak label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeakLabel {
    /// Level looks like metadata.
    Metadata,
    /// Level looks like data.
    Data,
    /// No evidence either way.
    Unknown,
}

/// Weak labels for a whole table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeakLabels {
    /// Per-row weak labels.
    pub rows: Vec<WeakLabel>,
    /// Per-column weak labels.
    pub columns: Vec<WeakLabel>,
    /// Whether markup (vs the positional fallback) produced the labels.
    pub from_markup: bool,
}

impl WeakLabels {
    /// Indices of weak-metadata levels along `axis`.
    pub fn metadata_indices(&self, axis: Axis) -> Vec<usize> {
        self.along(axis)
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == WeakLabel::Metadata)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of weak-data levels along `axis`.
    pub fn data_indices(&self, axis: Axis) -> Vec<usize> {
        self.along(axis)
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == WeakLabel::Data)
            .map(|(i, _)| i)
            .collect()
    }

    fn along(&self, axis: Axis) -> &[WeakLabel] {
        match axis {
            Axis::Row => &self.rows,
            Axis::Column => &self.columns,
        }
    }
}

/// Deepest weak-metadata run the positional fallback may produce (matches
/// the paper's deepest HMD level).
const MAX_FALLBACK_HMD: usize = 5;

/// Demote body rows with the section-header shape (one leading textual
/// cell, rest blank) from `Data` to `Unknown`. CMD rows carry no reliable
/// tags ("metadata may also exist in the middle of the table", Def. 4) —
/// weak-labeling them as data would make contrastive fine-tuning pull
/// section vocabulary into the data cluster and blind the classifier's
/// CMD extension.
fn demote_section_shaped_rows(table: &Table, rows: &mut [WeakLabel]) {
    for (i, label) in rows.iter_mut().enumerate() {
        if *label != WeakLabel::Data {
            continue;
        }
        let cells = table.row(i);
        let non_blank: Vec<_> = cells.iter().filter(|c| !c.is_blank()).collect();
        let lone_text = non_blank.len() == 1
            && !cells[0].is_blank()
            && classify_numeric(&cells[0].text).is_none();
        if lone_text && cells.len() >= 2 {
            *label = WeakLabel::Unknown;
        }
    }
}

/// Configuration of the bootstrap labeler.
#[derive(Debug, Clone)]
pub struct BootstrapLabeler {
    /// A row counts as markup-metadata when at least this fraction of its
    /// non-blank cells carries `th`/`thead`.
    pub row_tag_threshold: f32,
    /// A column counts as markup-VMD when at least this fraction of its
    /// body cells is bold, or its blank fraction exceeds
    /// `column_blank_threshold` while its non-blank cells are textual.
    pub column_bold_threshold: f32,
    /// Blank-run threshold for the "empty space characters in the first
    /// column" VMD cue.
    pub column_blank_threshold: f32,
    /// Only the leading `max_vmd_columns` columns are eligible for the
    /// VMD cues (VMD is leftmost by definition).
    pub max_vmd_columns: usize,
}

impl Default for BootstrapLabeler {
    fn default() -> Self {
        Self {
            row_tag_threshold: 0.5,
            column_bold_threshold: 0.4,
            column_blank_threshold: 0.35,
            max_vmd_columns: 3,
        }
    }
}

impl BootstrapLabeler {
    /// Weak-label one table: markup rules when the table has markup, the
    /// first-row/first-column fallback otherwise.
    pub fn label(&self, table: &Table) -> WeakLabels {
        if table.has_markup {
            self.label_from_markup(table)
        } else {
            self.label_positional(table)
        }
    }

    fn label_from_markup(&self, table: &Table) -> WeakLabels {
        let mut rows = Vec::with_capacity(table.n_rows());
        for i in 0..table.n_rows() {
            let cells = table.row(i);
            let non_blank = cells.iter().filter(|c| !c.is_blank()).count();
            if non_blank == 0 {
                rows.push(WeakLabel::Unknown);
                continue;
            }
            let tagged =
                cells.iter().filter(|c| !c.is_blank() && (c.markup.th || c.markup.thead)).count();
            if tagged as f32 / non_blank as f32 >= self.row_tag_threshold {
                rows.push(WeakLabel::Metadata);
            } else {
                rows.push(WeakLabel::Data);
            }
        }
        // Header rows must be a leading run; stray tagged rows deep in the
        // body (tag noise) are demoted to Unknown so they cannot poison
        // the metadata centroid.
        let run_end = rows.iter().take_while(|l| **l == WeakLabel::Metadata).count();
        for l in rows.iter_mut().skip(run_end) {
            if *l == WeakLabel::Metadata {
                *l = WeakLabel::Unknown;
            }
        }

        let body_start = run_end;
        let mut columns = Vec::with_capacity(table.n_cols());
        for j in 0..table.n_cols() {
            if j >= self.max_vmd_columns {
                columns.push(WeakLabel::Data);
                continue;
            }
            let body: Vec<&tabmeta_tabular::Cell> =
                (body_start..table.n_rows()).map(|i| table.cell(i, j)).collect();
            if body.is_empty() {
                columns.push(WeakLabel::Unknown);
                continue;
            }
            let blanks = body.iter().filter(|c| c.is_blank()).count();
            let non_blank = body.len() - blanks;
            let bold = body.iter().filter(|c| !c.is_blank() && c.markup.bold).count();
            let bold_frac = if non_blank > 0 { bold as f32 / non_blank as f32 } else { 0.0 };
            let blank_frac = blanks as f32 / body.len() as f32;
            let textual = body
                .iter()
                .filter(|c| !c.is_blank())
                .filter(|c| tabmeta_text::classify_numeric(&c.text).is_none())
                .count();
            let textual_frac = if non_blank > 0 { textual as f32 / non_blank as f32 } else { 0.0 };
            let is_vmd = bold_frac >= self.column_bold_threshold
                || (blank_frac >= self.column_blank_threshold && textual_frac >= 0.5);
            columns.push(if is_vmd { WeakLabel::Metadata } else { WeakLabel::Data });
        }
        // VMD must be a leading run as well.
        let col_run = columns.iter().take_while(|l| **l == WeakLabel::Metadata).count();
        for l in columns.iter_mut().skip(col_run) {
            if *l == WeakLabel::Metadata {
                *l = WeakLabel::Unknown;
            }
        }
        demote_section_shaped_rows(table, &mut rows);
        WeakLabels { rows, columns, from_markup: true }
    }

    /// The markup-free fallback (SAUS, CIUS): the paper anchors on the
    /// first row / first column; we extend that anchor structurally so the
    /// weak metadata run covers *hierarchical* headers too. Scanning from
    /// the top, a leading row stays weak-metadata while its non-blank cells
    /// are overwhelmingly textual (data rows in these corpora are numeric-
    /// dominated); symmetrically for leading columns. Still fully
    /// unsupervised — only surface structure is consulted.
    fn label_positional(&self, table: &Table) -> WeakLabels {
        let numeric_frac = |cells: &[&tabmeta_tabular::Cell]| -> Option<f32> {
            let non_blank: Vec<_> = cells.iter().filter(|c| !c.is_blank()).collect();
            if non_blank.is_empty() {
                return None;
            }
            let numeric = non_blank
                .iter()
                .filter(|c| tabmeta_text::classify_numeric(&c.text).is_some())
                .count();
            Some(numeric as f32 / non_blank.len() as f32)
        };

        let mut rows = vec![WeakLabel::Data; table.n_rows()];
        for i in 0..table.n_rows().min(MAX_FALLBACK_HMD) {
            let cells: Vec<&tabmeta_tabular::Cell> = table.row(i).iter().collect();
            match numeric_frac(&cells) {
                // First row is metadata by the paper's rule; deeper rows
                // must earn it by being textual.
                Some(f) if i == 0 || f <= 0.3 => rows[i] = WeakLabel::Metadata,
                _ => break,
            }
        }
        if rows[0] == WeakLabel::Data {
            rows[0] = WeakLabel::Metadata;
        }

        let body_start = rows.iter().take_while(|l| **l == WeakLabel::Metadata).count();
        let mut columns = vec![WeakLabel::Data; table.n_cols()];
        for j in 0..table.n_cols().min(self.max_vmd_columns) {
            let body: Vec<&tabmeta_tabular::Cell> =
                (body_start..table.n_rows()).map(|i| table.cell(i, j)).collect();
            let blanks = body.iter().filter(|c| c.is_blank()).count();
            let blank_frac = if body.is_empty() { 0.0 } else { blanks as f32 / body.len() as f32 };
            match numeric_frac(&body) {
                Some(f) if f <= 0.3 || (blank_frac >= self.column_blank_threshold && f <= 0.5) => {
                    columns[j] = WeakLabel::Metadata
                }
                _ => break,
            }
        }
        if columns[0] == WeakLabel::Data && table.n_cols() > 1 {
            // Keep the paper's first-column anchor only when the column is
            // not plainly numeric data.
            let body: Vec<&tabmeta_tabular::Cell> =
                (body_start..table.n_rows()).map(|i| table.cell(i, 0)).collect();
            if numeric_frac(&body).is_none_or(|f| f <= 0.5) {
                columns[0] = WeakLabel::Metadata;
            }
        }
        demote_section_shaped_rows(table, &mut rows);
        WeakLabels { rows, columns, from_markup: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabmeta_tabular::cell::{Cell, Markup};

    fn marked_table() -> Table {
        let mut grid: Vec<Vec<Cell>> = vec![
            vec![Cell::text("state"), Cell::text("count"), Cell::text("rate")],
            vec![Cell::text("new york"), Cell::text("61"), Cell::text("4.2")],
            vec![Cell::blank(), Cell::text("27"), Cell::text("1.1")],
            vec![Cell::text("indiana"), Cell::text("32"), Cell::text("2.0")],
        ];
        for c in grid[0].iter_mut() {
            c.markup = Markup::header();
        }
        grid[1][0].markup.bold = true;
        grid[3][0].markup.bold = true;
        Table::new(1, "", grid).with_markup_flag(true)
    }

    #[test]
    fn markup_rows_detected() {
        let labels = BootstrapLabeler::default().label(&marked_table());
        assert!(labels.from_markup);
        assert_eq!(labels.rows[0], WeakLabel::Metadata);
        assert!(labels.rows[1..].iter().all(|l| *l == WeakLabel::Data));
        assert_eq!(labels.metadata_indices(Axis::Row), vec![0]);
        assert_eq!(labels.data_indices(Axis::Row), vec![1, 2, 3]);
    }

    #[test]
    fn bold_and_blank_first_column_is_vmd() {
        let labels = BootstrapLabeler::default().label(&marked_table());
        assert_eq!(labels.columns[0], WeakLabel::Metadata);
        assert_eq!(labels.columns[1], WeakLabel::Data);
        assert_eq!(labels.columns[2], WeakLabel::Data);
    }

    #[test]
    fn stray_tagged_body_row_is_demoted() {
        let mut t = marked_table();
        // Noise: a data row mistakenly tagged th.
        for j in 0..3 {
            t.cell_mut(2, j).markup.th = true;
        }
        let labels = BootstrapLabeler::default().label(&t);
        assert_eq!(labels.rows[2], WeakLabel::Unknown, "stray tag must not become metadata");
    }

    #[test]
    fn section_shaped_body_rows_are_unknown_not_data() {
        // A mid-table section row must not be weak-labeled data — it would
        // poison the contrastive data cluster with header vocabulary.
        let t = Table::from_strings(
            9,
            &[&["state", "count"], &["york", "2"], &["Offenses known", ""], &["kent", "4"]],
        );
        let labels = BootstrapLabeler::default().label(&t);
        assert_eq!(labels.rows[2], WeakLabel::Unknown, "section shape → Unknown");
        assert_eq!(labels.rows[1], WeakLabel::Data);
        // Numeric lone cells stay data (a sparse numeric row is data).
        let t2 = Table::from_strings(10, &[&["a", "b"], &["42", ""], &["1", "2"]]);
        let l2 = BootstrapLabeler::default().label(&t2);
        assert_eq!(l2.rows[1], WeakLabel::Data);
    }

    #[test]
    fn positional_fallback_when_no_markup() {
        let t = Table::from_strings(2, &[&["name", "count"], &["york", "2"], &["kent", "4"]]);
        let labels = BootstrapLabeler::default().label(&t);
        assert!(!labels.from_markup);
        assert_eq!(labels.rows[0], WeakLabel::Metadata);
        assert_eq!(labels.rows[1], WeakLabel::Data);
        assert_eq!(labels.columns[0], WeakLabel::Metadata, "textual first column anchors VMD");
        assert_eq!(labels.columns[1], WeakLabel::Data);
    }

    #[test]
    fn positional_fallback_extends_over_textual_header_rows() {
        let t = Table::from_strings(
            3,
            &[
                &["group a", "group b", "group c"],
                &["count", "rate", "share"],
                &["1", "2", "3"],
                &["4", "5", "6"],
            ],
        );
        let labels = BootstrapLabeler::default().label(&t);
        assert_eq!(labels.rows[0], WeakLabel::Metadata);
        assert_eq!(labels.rows[1], WeakLabel::Metadata, "second textual row joins the run");
        assert_eq!(labels.rows[2], WeakLabel::Data);
    }

    #[test]
    fn positional_fallback_skips_numeric_first_column() {
        let t = Table::from_strings(4, &[&["year", "count"], &["2001", "5"], &["2002", "7"]]);
        let labels = BootstrapLabeler::default().label(&t);
        assert_eq!(
            labels.columns[0],
            WeakLabel::Data,
            "an all-numeric first column must not seed the VMD centroid"
        );
    }

    #[test]
    fn numeric_blank_column_is_not_vmd() {
        // A sparse numeric column must not trip the blank-run cue.
        let mut grid: Vec<Vec<Cell>> = vec![
            vec![Cell::text("h1"), Cell::text("h2")],
            vec![Cell::text("5"), Cell::text("x")],
            vec![Cell::blank(), Cell::text("y")],
            vec![Cell::blank(), Cell::text("z")],
        ];
        for c in grid[0].iter_mut() {
            c.markup = Markup::header();
        }
        let t = Table::new(3, "", grid).with_markup_flag(true);
        let labels = BootstrapLabeler::default().label(&t);
        assert_eq!(labels.columns[0], WeakLabel::Data, "numeric sparse column is data");
    }

    #[test]
    fn far_right_columns_never_vmd() {
        let mut grid: Vec<Vec<Cell>> = vec![vec![
            Cell::text("a"),
            Cell::text("b"),
            Cell::text("c"),
            Cell::text("d"),
            Cell::text("e"),
        ]];
        grid.push((0..5).map(|i| if i == 4 { Cell::blank() } else { Cell::text("v") }).collect());
        grid.push((0..5).map(|i| if i == 4 { Cell::blank() } else { Cell::text("w") }).collect());
        for c in grid[0].iter_mut() {
            c.markup = Markup::header();
        }
        let t = Table::new(4, "", grid).with_markup_flag(true);
        let labels = BootstrapLabeler::default().label(&t);
        assert_eq!(labels.columns[4], WeakLabel::Data);
    }
}
