//! Aggregated level vectors (Def. 8): one vector per table row or column,
//! the summation of its cells' term embeddings.
//!
//! Two paths produce the same vectors:
//!
//! * [`level_vector`] / [`axis_vectors`] — the direct path: tokenize the
//!   level's cells and accumulate term embeddings on the spot.
//! * [`LevelVectorCache`] + [`TermInterner`] — the classify hot path:
//!   tokenize every cell of a table exactly **once**, resolve each token to
//!   an interned term vector, and replay the same accumulation order for
//!   both the Row and Column axis passes. Because a cached term vector is a
//!   bit-exact copy of what `accumulate` would have added (an embedding
//!   accumulated into a zero buffer) and the per-level add order is
//!   unchanged, the cached path is bit-identical to the direct one.

use std::collections::HashMap;
use tabmeta_embed::TermEmbedder;
use tabmeta_tabular::{Axis, Table};
use tabmeta_text::{Token, Tokenizer};

/// Compute the aggregated embedding of one level (row or column).
///
/// Blank cells contribute nothing; returns `None` when no term of the
/// level embeds (fully blank or fully OOV level). The output buffer is
/// allocated lazily at the first embeddable token, so fully-blank and
/// fully-OOV levels allocate nothing.
pub fn level_vector<E: TermEmbedder + ?Sized>(
    table: &Table,
    axis: Axis,
    index: usize,
    embedder: &E,
    tokenizer: &Tokenizer,
) -> Option<Vec<f32>> {
    let mut out: Option<Vec<f32>> = None;
    let mut buf = Vec::new();
    for cell in table.level_cells(axis, index) {
        if cell.is_blank() {
            continue;
        }
        buf.clear();
        tokenizer.tokenize_into(&cell.text, &mut buf);
        for tok in &buf {
            match out.as_mut() {
                Some(o) => {
                    embedder.accumulate(&tok.text, o);
                }
                None if embedder.embeds(&tok.text) => {
                    // First embeddable token: accumulating into fresh zeros
                    // is exactly what the eager path did for the prefix of
                    // OOV tokens (they contributed nothing).
                    let mut o = vec![0.0f32; embedder.dim()];
                    embedder.accumulate(&tok.text, &mut o);
                    out = Some(o);
                }
                None => {}
            }
        }
    }
    out
}

/// Aggregated vectors for every level along `axis` (index-aligned; `None`
/// entries are blank/OOV levels).
pub fn axis_vectors<E: TermEmbedder + ?Sized>(
    table: &Table,
    axis: Axis,
    embedder: &E,
    tokenizer: &Tokenizer,
) -> Vec<Option<Vec<f32>>> {
    (0..table.n_levels(axis)).map(|i| level_vector(table, axis, i, embedder, tokenizer)).collect()
}

/// Memoized term → embedding resolution, shared across many tables.
///
/// The classify hot path sees the same header vocabulary over and over
/// (`age`, `<int>`, `patient`, …); resolving each distinct term through the
/// embedder once and replaying the cached vector afterwards removes the
/// per-occurrence vocabulary hash + row copy (and, for CharGram, the whole
/// n-gram composition). In-vocabulary terms take a dense fast path keyed by
/// [`TermEmbedder::term_id`]; everything else falls back to a string map.
///
/// Interner contents never influence *values* — a cached vector is the
/// bit-exact `embed` result — so reusing one interner across tables and
/// worker threads' scratch lifetimes cannot change any verdict.
#[derive(Default)]
pub struct TermInterner {
    /// Dense fast path: embedder vocab id → interned slot + 1 (0 = unset).
    by_vocab_id: Vec<u32>,
    /// Fallback for terms without a stable vocab id (OOV, gram-composed).
    by_str: HashMap<String, u32>,
    /// Slot → the term's embedding; `None` for terms that do not embed.
    vectors: Vec<Option<Vec<f32>>>,
    /// Cell text → its tokens' slots, in tokenization order. Corpora repeat
    /// cell texts heavily (years, units, shared header vocabulary), and a
    /// hit here skips the whole tokenize-then-resolve pass for the cell.
    /// Replaying the identical slot sequence is what makes the memo safe:
    /// the accumulation the caller performs is unchanged, byte for byte.
    cell_slots: HashMap<String, Vec<u32>>,
}

impl TermInterner {
    /// A fresh, empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve `term` to its interned slot, embedding it on first sight.
    pub fn resolve<E: TermEmbedder + ?Sized>(&mut self, embedder: &E, term: &str) -> u32 {
        if let Some(id) = embedder.term_id(term) {
            let idx = id as usize;
            if idx >= self.by_vocab_id.len() {
                self.by_vocab_id.resize(idx + 1, 0);
            }
            let slot = self.by_vocab_id[idx];
            if slot != 0 {
                return slot - 1;
            }
            let slot = self.intern(embedder, term);
            self.by_vocab_id[idx] = slot + 1;
            slot
        } else {
            if let Some(&slot) = self.by_str.get(term) {
                return slot;
            }
            let slot = self.intern(embedder, term);
            self.by_str.insert(term.to_string(), slot);
            slot
        }
    }

    fn intern<E: TermEmbedder + ?Sized>(&mut self, embedder: &E, term: &str) -> u32 {
        let slot = self.vectors.len() as u32;
        self.vectors.push(embedder.embed(term));
        slot
    }

    /// The interned slots of one cell's tokens, tokenizing on first sight
    /// of this exact cell text and replaying the memoized slot list after.
    ///
    /// `tokenizer` must be the same across all calls on one interner (the
    /// scratch that owns an interner belongs to one classifier, which has
    /// exactly one tokenizer, so this holds by construction).
    pub fn resolve_cell<E: TermEmbedder + ?Sized>(
        &mut self,
        embedder: &E,
        tokenizer: &Tokenizer,
        text: &str,
        token_buf: &mut Vec<Token>,
    ) -> &[u32] {
        if !self.cell_slots.contains_key(text) {
            token_buf.clear();
            tokenizer.tokenize_into(text, token_buf);
            let mut slots = Vec::with_capacity(token_buf.len());
            for tok in token_buf.iter() {
                slots.push(self.resolve(embedder, &tok.text));
            }
            self.cell_slots.insert(text.to_string(), slots);
        }
        &self.cell_slots[text]
    }

    /// The embedding behind a slot returned by [`resolve`], or `None` for a
    /// term with no representation.
    ///
    /// [`resolve`]: TermInterner::resolve
    #[inline]
    pub fn vector(&self, slot: u32) -> Option<&[f32]> {
        self.vectors[slot as usize].as_deref()
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Total memo entries held: interned terms plus memoized cell texts.
    /// The classify scratch pool uses this to retire oversized scratches.
    pub fn memo_entries(&self) -> usize {
        self.vectors.len() + self.cell_slots.len()
    }
}

/// Per-table cache of tokenized cells: every cell is tokenized exactly once
/// and its tokens resolved to [`TermInterner`] slots, then both axis passes
/// replay the slots.
///
/// Lifetime: built at the start of a table's classification (lazily — only
/// if at least one axis actually walks), dropped with the table. The
/// interner it references outlives it and keeps amortizing across tables.
pub struct LevelVectorCache {
    n_rows: usize,
    n_cols: usize,
    /// Per cell, row-major `(start, len)` into `terms`.
    spans: Vec<(u32, u32)>,
    /// Interner slots of every token of every cell, in tokenization order.
    terms: Vec<u32>,
}

impl LevelVectorCache {
    /// Tokenize every non-blank cell of `table` once, resolving tokens
    /// through `interner`. `token_buf` is caller-provided scratch so batch
    /// drivers can reuse one buffer across tables.
    pub fn build<E: TermEmbedder + ?Sized>(
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
        interner: &mut TermInterner,
        token_buf: &mut Vec<Token>,
    ) -> Self {
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        let mut spans = Vec::with_capacity(n_rows * n_cols);
        let mut terms = Vec::new();
        for r in 0..n_rows {
            for c in 0..n_cols {
                let cell = table.cell(r, c);
                if cell.is_blank() {
                    spans.push((terms.len() as u32, 0));
                    continue;
                }
                let start = terms.len() as u32;
                terms.extend_from_slice(
                    interner.resolve_cell(embedder, tokenizer, &cell.text, token_buf),
                );
                spans.push((start, terms.len() as u32 - start));
            }
        }
        Self { n_rows, n_cols, spans, terms }
    }

    /// Number of levels along `axis` (mirrors [`Table::n_levels`]).
    pub fn n_levels(&self, axis: Axis) -> usize {
        match axis {
            Axis::Row => self.n_rows,
            Axis::Column => self.n_cols,
        }
    }

    /// The aggregated vector of one level, bit-identical to
    /// [`level_vector`]: cells are replayed in the same order
    /// (left-to-right for rows, top-to-bottom for columns) and each token's
    /// cached vector is added in tokenization order. Allocation is deferred
    /// to the first embeddable token, so blank/OOV levels allocate nothing.
    pub fn level_vector(
        &self,
        axis: Axis,
        index: usize,
        interner: &TermInterner,
        dim: usize,
    ) -> Option<Vec<f32>> {
        let mut out: Option<Vec<f32>> = None;
        let (n_cells, stride, base) = match axis {
            Axis::Row => (self.n_cols, 1, index * self.n_cols),
            Axis::Column => (self.n_rows, self.n_cols, index),
        };
        for i in 0..n_cells {
            let (start, len) = self.spans[base + i * stride];
            for slot in &self.terms[start as usize..(start + len) as usize] {
                if let Some(v) = interner.vector(*slot) {
                    let buf = out.get_or_insert_with(|| vec![0.0f32; dim]);
                    tabmeta_linalg::add_assign(buf, v);
                }
            }
        }
        out
    }

    /// Aggregated vectors for every level along `axis` (index-aligned),
    /// mirroring [`axis_vectors`].
    pub fn axis_vectors(
        &self,
        axis: Axis,
        interner: &TermInterner,
        dim: usize,
    ) -> Vec<Option<Vec<f32>>> {
        (0..self.n_levels(axis)).map(|i| self.level_vector(axis, i, interner, dim)).collect()
    }
}

/// The terms of one level, post-tokenization — the constituency set that
/// contrastive fine-tuning distributes gradients over.
pub fn level_terms(table: &Table, axis: Axis, index: usize, tokenizer: &Tokenizer) -> Vec<String> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for cell in table.level_cells(axis, index) {
        if cell.is_blank() {
            continue;
        }
        buf.clear();
        tokenizer.tokenize_into(&cell.text, &mut buf);
        out.extend(buf.drain(..).map(|t| t.text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tabmeta_embed::TunableEmbedder;

    #[derive(Default)]
    struct MapEmbedder {
        dim: usize,
        map: HashMap<String, Vec<f32>>,
    }

    impl TermEmbedder for MapEmbedder {
        fn dim(&self) -> usize {
            self.dim
        }
        fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
            if let Some(v) = self.map.get(term) {
                tabmeta_linalg::add_assign(out, v);
                true
            } else {
                false
            }
        }
        fn embeds(&self, term: &str) -> bool {
            self.map.contains_key(term)
        }
    }

    impl TunableEmbedder for MapEmbedder {
        fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
            if let Some(v) = self.map.get_mut(term) {
                tabmeta_linalg::add_assign(v, grad);
            }
        }
    }

    fn embedder() -> MapEmbedder {
        let mut e = MapEmbedder { dim: 2, map: HashMap::new() };
        e.map.insert("age".into(), vec![1.0, 0.0]);
        e.map.insert("sex".into(), vec![0.5, 0.5]);
        e.map.insert("<int>".into(), vec![0.0, 1.0]);
        e
    }

    #[test]
    fn row_vector_sums_embedded_terms() {
        let t = Table::from_strings(1, &[&["age", "sex"], &["41", "42"]]);
        let e = embedder();
        let tok = Tokenizer::default();
        let v = level_vector(&t, Axis::Row, 0, &e, &tok).unwrap();
        assert_eq!(v, vec![1.5, 0.5]);
        let d = level_vector(&t, Axis::Row, 1, &e, &tok).unwrap();
        assert_eq!(d, vec![0.0, 2.0], "both numerics collapse to <int>");
    }

    #[test]
    fn blank_or_oov_levels_are_none() {
        let t = Table::from_strings(1, &[&["", "zzz"], &["", ""]]);
        let e = embedder();
        let tok = Tokenizer::default();
        assert!(level_vector(&t, Axis::Row, 0, &e, &tok).is_none(), "zzz is OOV");
        assert!(level_vector(&t, Axis::Row, 1, &e, &tok).is_none());
        assert!(level_vector(&t, Axis::Column, 0, &e, &tok).is_none());
    }

    #[test]
    fn axis_vectors_align_with_indices() {
        let t = Table::from_strings(1, &[&["age", ""], &["41", ""]]);
        let e = embedder();
        let tok = Tokenizer::default();
        let rows = axis_vectors(&t, Axis::Row, &e, &tok);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].is_some() && rows[1].is_some());
        let cols = axis_vectors(&t, Axis::Column, &e, &tok);
        assert!(cols[0].is_some());
        assert!(cols[1].is_none(), "fully blank column");
    }

    #[test]
    fn sum_vs_mean_aggregation_classifies_identically() {
        // §III-C weighs summation against alternatives; for this angle-
        // based method the sum-vs-mean choice is *analytically* neutral:
        // the mean is the sum scaled by 1/n, and angles are scale-
        // invariant — so every range test in Algorithm 1 sees the same
        // geometry either way. (linalg property tests cover the scale
        // invariance itself; this pins the consequence at the level API.)
        let t = Table::from_strings(1, &[&["age", "sex"], &["41", "42"]]);
        let e = embedder();
        let tok = Tokenizer::default();
        let sum = level_vector(&t, Axis::Row, 0, &e, &tok).unwrap();
        let n = level_terms(&t, Axis::Row, 0, &tok).len() as f32;
        let mean: Vec<f32> = sum.iter().map(|x| x / n).collect();
        let other = level_vector(&t, Axis::Row, 1, &e, &tok).unwrap();
        let a1 = tabmeta_linalg::angle_degrees(&sum, &other);
        let a2 = tabmeta_linalg::angle_degrees(&mean, &other);
        assert!((a1 - a2).abs() < 1e-4, "{a1} vs {a2}");
    }

    #[test]
    fn level_terms_lists_tokens_in_order() {
        let t = Table::from_strings(1, &[&["age group", "sex"]]);
        let terms = level_terms(&t, Axis::Row, 0, &Tokenizer::default());
        assert_eq!(terms, vec!["age", "group", "sex"]);
    }

    #[test]
    fn cached_level_vectors_are_bit_identical_to_direct() {
        let t = Table::from_strings(
            1,
            &[&["age group", "sex", ""], &["41", "zzz", "42"], &["", "", ""]],
        );
        let e = embedder();
        let tok = Tokenizer::default();
        let mut interner = TermInterner::new();
        let mut buf = Vec::new();
        let cache = LevelVectorCache::build(&t, &e, &tok, &mut interner, &mut buf);
        for axis in [Axis::Row, Axis::Column] {
            assert_eq!(cache.n_levels(axis), t.n_levels(axis));
            for i in 0..t.n_levels(axis) {
                let direct = level_vector(&t, axis, i, &e, &tok);
                let cached = cache.level_vector(axis, i, &interner, e.dim());
                match (&direct, &cached) {
                    (Some(d), Some(c)) => {
                        let db: Vec<u32> = d.iter().map(|x| x.to_bits()).collect();
                        let cb: Vec<u32> = c.iter().map(|x| x.to_bits()).collect();
                        assert_eq!(db, cb, "{axis:?} level {i}");
                    }
                    (None, None) => {}
                    _ => panic!("{axis:?} level {i}: {direct:?} vs {cached:?}"),
                }
            }
            let direct_axis = axis_vectors(&t, axis, &e, &tok);
            assert_eq!(cache.axis_vectors(axis, &interner, e.dim()), direct_axis);
        }
    }

    #[test]
    fn interner_memoizes_terms_across_tables() {
        let e = embedder();
        let tok = Tokenizer::default();
        let mut interner = TermInterner::new();
        let mut buf = Vec::new();
        let t1 = Table::from_strings(1, &[&["age", "sex"], &["41", "42"]]);
        let t2 = Table::from_strings(1, &[&["age", "sex"], &["7", "8"]]);
        LevelVectorCache::build(&t1, &e, &tok, &mut interner, &mut buf);
        let after_first = interner.len();
        assert!(after_first >= 3, "age, sex, <int>");
        LevelVectorCache::build(&t2, &e, &tok, &mut interner, &mut buf);
        assert_eq!(interner.len(), after_first, "second table adds no new terms");
        // OOV terms intern once too (slot with no vector).
        let slot = interner.resolve(&e, "never-seen");
        assert!(interner.vector(slot).is_none());
        assert_eq!(interner.resolve(&e, "never-seen"), slot);
    }
}
