//! Aggregated level vectors (Def. 8): one vector per table row or column,
//! the summation of its cells' term embeddings.

use tabmeta_embed::TermEmbedder;
use tabmeta_tabular::{Axis, Table};
use tabmeta_text::Tokenizer;

/// Compute the aggregated embedding of one level (row or column).
///
/// Blank cells contribute nothing; returns `None` when no term of the
/// level embeds (fully blank or fully OOV level).
pub fn level_vector<E: TermEmbedder + ?Sized>(
    table: &Table,
    axis: Axis,
    index: usize,
    embedder: &E,
    tokenizer: &Tokenizer,
) -> Option<Vec<f32>> {
    let mut out = vec![0.0f32; embedder.dim()];
    let mut any = false;
    let mut buf = Vec::new();
    for cell in table.level_cells(axis, index) {
        if cell.is_blank() {
            continue;
        }
        buf.clear();
        tokenizer.tokenize_into(&cell.text, &mut buf);
        for tok in &buf {
            any |= embedder.accumulate(&tok.text, &mut out);
        }
    }
    any.then_some(out)
}

/// Aggregated vectors for every level along `axis` (index-aligned; `None`
/// entries are blank/OOV levels).
pub fn axis_vectors<E: TermEmbedder + ?Sized>(
    table: &Table,
    axis: Axis,
    embedder: &E,
    tokenizer: &Tokenizer,
) -> Vec<Option<Vec<f32>>> {
    (0..table.n_levels(axis)).map(|i| level_vector(table, axis, i, embedder, tokenizer)).collect()
}

/// The terms of one level, post-tokenization — the constituency set that
/// contrastive fine-tuning distributes gradients over.
pub fn level_terms(table: &Table, axis: Axis, index: usize, tokenizer: &Tokenizer) -> Vec<String> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for cell in table.level_cells(axis, index) {
        if cell.is_blank() {
            continue;
        }
        buf.clear();
        tokenizer.tokenize_into(&cell.text, &mut buf);
        out.extend(buf.drain(..).map(|t| t.text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tabmeta_embed::TunableEmbedder;

    #[derive(Default)]
    struct MapEmbedder {
        dim: usize,
        map: HashMap<String, Vec<f32>>,
    }

    impl TermEmbedder for MapEmbedder {
        fn dim(&self) -> usize {
            self.dim
        }
        fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
            if let Some(v) = self.map.get(term) {
                tabmeta_linalg::add_assign(out, v);
                true
            } else {
                false
            }
        }
    }

    impl TunableEmbedder for MapEmbedder {
        fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
            if let Some(v) = self.map.get_mut(term) {
                tabmeta_linalg::add_assign(v, grad);
            }
        }
    }

    fn embedder() -> MapEmbedder {
        let mut e = MapEmbedder { dim: 2, map: HashMap::new() };
        e.map.insert("age".into(), vec![1.0, 0.0]);
        e.map.insert("sex".into(), vec![0.5, 0.5]);
        e.map.insert("<int>".into(), vec![0.0, 1.0]);
        e
    }

    #[test]
    fn row_vector_sums_embedded_terms() {
        let t = Table::from_strings(1, &[&["age", "sex"], &["41", "42"]]);
        let e = embedder();
        let tok = Tokenizer::default();
        let v = level_vector(&t, Axis::Row, 0, &e, &tok).unwrap();
        assert_eq!(v, vec![1.5, 0.5]);
        let d = level_vector(&t, Axis::Row, 1, &e, &tok).unwrap();
        assert_eq!(d, vec![0.0, 2.0], "both numerics collapse to <int>");
    }

    #[test]
    fn blank_or_oov_levels_are_none() {
        let t = Table::from_strings(1, &[&["", "zzz"], &["", ""]]);
        let e = embedder();
        let tok = Tokenizer::default();
        assert!(level_vector(&t, Axis::Row, 0, &e, &tok).is_none(), "zzz is OOV");
        assert!(level_vector(&t, Axis::Row, 1, &e, &tok).is_none());
        assert!(level_vector(&t, Axis::Column, 0, &e, &tok).is_none());
    }

    #[test]
    fn axis_vectors_align_with_indices() {
        let t = Table::from_strings(1, &[&["age", ""], &["41", ""]]);
        let e = embedder();
        let tok = Tokenizer::default();
        let rows = axis_vectors(&t, Axis::Row, &e, &tok);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].is_some() && rows[1].is_some());
        let cols = axis_vectors(&t, Axis::Column, &e, &tok);
        assert!(cols[0].is_some());
        assert!(cols[1].is_none(), "fully blank column");
    }

    #[test]
    fn sum_vs_mean_aggregation_classifies_identically() {
        // §III-C weighs summation against alternatives; for this angle-
        // based method the sum-vs-mean choice is *analytically* neutral:
        // the mean is the sum scaled by 1/n, and angles are scale-
        // invariant — so every range test in Algorithm 1 sees the same
        // geometry either way. (linalg property tests cover the scale
        // invariance itself; this pins the consequence at the level API.)
        let t = Table::from_strings(1, &[&["age", "sex"], &["41", "42"]]);
        let e = embedder();
        let tok = Tokenizer::default();
        let sum = level_vector(&t, Axis::Row, 0, &e, &tok).unwrap();
        let n = level_terms(&t, Axis::Row, 0, &tok).len() as f32;
        let mean: Vec<f32> = sum.iter().map(|x| x / n).collect();
        let other = level_vector(&t, Axis::Row, 1, &e, &tok).unwrap();
        let a1 = tabmeta_linalg::angle_degrees(&sum, &other);
        let a2 = tabmeta_linalg::angle_degrees(&mean, &other);
        assert!((a1 - a2).abs() < 1e-4, "{a1} vs {a2}");
    }

    #[test]
    fn level_terms_lists_tokens_in_order() {
        let t = Table::from_strings(1, &[&["age group", "sex"]]);
        let terms = level_terms(&t, Axis::Row, 0, &Tokenizer::default());
        assert_eq!(terms, vec!["age", "group", "sex"]);
    }
}
