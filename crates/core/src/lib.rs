//! The paper's contribution: unsupervised contrastive-learning
//! classification of hierarchical tabular metadata.
//!
//! The method (§III, Algorithm 1) in four moves:
//!
//! 1. **Bootstrap** ([`bootstrap`]) — derive *weak* metadata/data labels
//!    from imperfect HTML markup (`<thead>`/`<th>` for HMD; bold or
//!    leading-blank patterns for VMD); fall back to the first-row /
//!    first-column heuristic for markup-free corpora (SAUS, CIUS). No
//!    human labeling anywhere.
//! 2. **Centroid ranges** ([`centroid`]) — aggregate term embeddings per
//!    table level (Def. 8), then record the observed angle ranges
//!    `C_MDE`, `C_DE`, `C_MDE-DE` (Defs. 11–13) and the per-level-pair
//!    transition angles reported in paper Tables I–IV, separately for the
//!    row axis (HMD) and the column axis (VMD).
//! 3. **Contrastive fine-tuning** ([`finetune`]) — Siamese-style updates
//!    on aggregated level vectors: positive pairs (metadata↔metadata,
//!    data↔data) are pulled together, negative pairs (metadata↔data)
//!    pushed apart, with gradients distributed to the constituent term
//!    vectors. This widens the `C_MDE-DE` gap the classifier keys on.
//! 4. **Classification** ([`classifier`]) — walk the table row by row
//!    (then column by column, transposed): the first level is labeled by
//!    its closest reference centroid; each following level is labeled by
//!    which range the angle to its predecessor falls into; the jump from
//!    `C_MDE` into `C_MDE-DE` marks the metadata→data boundary and yields
//!    the metadata **depth**. A CMD extension spots mid-table section
//!    headers.
//!
//! [`pipeline::Pipeline`] ties the moves together behind one call.
//!
//! **Resilience:** [`classifier::Classifier::classify`] never panics —
//! degenerate tables (blank, all-OOV, single-level, non-finite
//! aggregates) and model/embedder mismatches route to a positional
//! fallback tagged with [`classifier::Provenance::Degraded`];
//! [`classifier::Classifier::try_classify`] surfaces setup errors as
//! typed [`classifier::ClassifyError`]s instead.

#![forbid(unsafe_code)]
// The data path must be panic-free on input-derived values: unwrap/
// expect are denied outside tests (promoted from warn by the clippy
// `-D warnings` gate in scripts/check.sh).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregate;
pub mod bootstrap;
pub mod centroid;
pub mod checkpoint;
pub mod classifier;
pub mod config;
pub mod finetune;
pub mod persist;
pub mod pipeline;
pub mod stream;

pub use aggregate::{LevelVectorCache, TermInterner};
pub use bootstrap::{BootstrapLabeler, WeakLabel, WeakLabels};
pub use centroid::{AxisCentroids, CentroidModel, LevelPairStats};
pub use checkpoint::{
    CheckpointScanReport, CheckpointStage, CheckpointStore, QuarantinedCheckpoint, TrainCheckpoint,
};
pub use classifier::{
    Classifier, ClassifierConfig, ClassifyError, ClassifyScratch, DegradeReason, Provenance,
    RangeKind, TraceStep, Verdict, WalkStrategy,
};
pub use config::{EmbeddingChoice, PipelineConfig};
pub use finetune::{FinetuneConfig, FinetuneResume};
pub use persist::{
    atomic_write, load_pipeline, run_fingerprint, save_pipeline, ArtifactError, StreamFingerprint,
};
pub use pipeline::{AnyEmbedder, Pipeline, TrainError, TrainHook, TrainSummary};
pub use stream::{
    train_streaming, SpillEvent, StreamBoundary, StreamHook, StreamSummary, StreamTrainError,
    StreamTrainOptions,
};
