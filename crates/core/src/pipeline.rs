//! The end-to-end pipeline: embed → bootstrap → fine-tune → centroids →
//! classify.
//!
//! ```text
//!  tables ──► sentences ──► SGNS training ──► term embeddings
//!     │                                            │
//!     └──► bootstrap weak labels ──► contrastive fine-tuning (mutates embeddings)
//!                      │                           │
//!                      └──────► centroid ranges ◄──┘
//!                                    │
//!                            Algorithm-1 classifier
//! ```
//!
//! Centroids are estimated **after** fine-tuning so the recorded ranges
//! describe the tuned geometry the classifier will actually measure.

use crate::bootstrap::WeakLabels;
use crate::centroid::{self, CentroidModel};
use crate::classifier::{Classifier, TraceStep, Verdict};
use crate::config::{EmbeddingChoice, PipelineConfig};
use crate::finetune::{self, FinetuneReport};
use rayon::prelude::*;
use tabmeta_embed::{sentences_from_tables_par, CharGram, TermEmbedder, TunableEmbedder, Word2Vec};
use tabmeta_obs::names;
use tabmeta_tabular::Table;
use tabmeta_text::Tokenizer;

/// Either embedding model behind one type (object-safety without dyn in
/// the hot path).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum AnyEmbedder {
    /// Word2Vec model.
    Word2Vec(Word2Vec),
    /// CharGram model.
    CharGram(CharGram),
}

impl TermEmbedder for AnyEmbedder {
    fn dim(&self) -> usize {
        match self {
            AnyEmbedder::Word2Vec(m) => m.dim(),
            AnyEmbedder::CharGram(m) => m.dim(),
        }
    }

    fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
        match self {
            AnyEmbedder::Word2Vec(m) => m.accumulate(term, out),
            AnyEmbedder::CharGram(m) => m.accumulate(term, out),
        }
    }
}

impl TunableEmbedder for AnyEmbedder {
    fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
        match self {
            AnyEmbedder::Word2Vec(m) => m.apply_gradient(term, grad),
            AnyEmbedder::CharGram(m) => m.apply_gradient(term, grad),
        }
    }
}

/// Training failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No tables were provided.
    EmptyCorpus,
    /// The corpus produced no usable centroid evidence along either axis.
    NoCentroidEvidence,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyCorpus => write!(f, "cannot train a pipeline on an empty corpus"),
            TrainError::NoCentroidEvidence => {
                write!(f, "corpus yielded no usable centroid evidence on either axis")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// What training did, for logs and EXPERIMENTS.md.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainSummary {
    /// Training sentences extracted.
    pub sentences: usize,
    /// SGNS (center, context) pairs processed.
    pub sgns_pairs: u64,
    /// Fine-tuning report (if enabled).
    pub finetune: Option<FinetuneReport>,
    /// Tables whose weak labels came from markup (vs positional fallback).
    pub markup_bootstrapped: usize,
}

/// A trained classification pipeline.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Pipeline {
    embedder: AnyEmbedder,
    tokenizer: Tokenizer,
    classifier: Classifier,
    summary: TrainSummary,
}

impl Pipeline {
    /// Train the full pipeline on a corpus (unsupervised: only markup or
    /// positional weak labels are consumed, never ground truth).
    pub fn train(tables: &[Table], config: &PipelineConfig) -> Result<Self, TrainError> {
        if tables.is_empty() {
            return Err(TrainError::EmptyCorpus);
        }
        let obs = tabmeta_obs::global();
        let _train_span = obs.span(names::SPAN_TRAIN);
        let threads = config.threads.max(1);
        obs.gauge(names::TRAIN_THREADS).set(threads as f64);
        let tokenizer = Tokenizer::default();

        let embed_span = obs.span(names::SPAN_EMBED);
        let sentences = sentences_from_tables_par(tables, &tokenizer, &config.sentences, threads);
        // The `threads` knob propagates into SGNS so one pipeline setting
        // governs the whole training path.
        let (mut embedder, sgns_pairs) = match &config.embedding {
            EmbeddingChoice::Word2Vec(sgns) => {
                let mut sgns = sgns.clone();
                sgns.threads = threads;
                let (model, report) = Word2Vec::train(&sentences, sgns);
                (AnyEmbedder::Word2Vec(model), report.pairs)
            }
            EmbeddingChoice::CharGram(cfg) => {
                let mut cfg = cfg.clone();
                cfg.sgns.threads = threads;
                let (model, report) = CharGram::train(&sentences, cfg);
                (AnyEmbedder::CharGram(model), report.pairs)
            }
        };
        drop(embed_span);

        let bootstrap_span = obs.span(names::SPAN_BOOTSTRAP);
        // `BootstrapLabeler::label` is pure per table; parallel labeling
        // preserves order, so weak labels are identical at any count.
        let weak: Vec<WeakLabels> = if threads > 1 {
            tables.par_iter().map(|t| config.bootstrap.label(t)).collect()
        } else {
            tables.iter().map(|t| config.bootstrap.label(t)).collect()
        };
        let markup_bootstrapped = weak.iter().filter(|w| w.from_markup).count();
        obs.counter(names::BOOTSTRAP_TABLES).add(weak.len() as u64);
        obs.counter(names::BOOTSTRAP_MARKUP_TABLES).add(markup_bootstrapped as u64);
        drop(bootstrap_span);

        let finetune_report = config.finetune.as_ref().map(|ft| {
            let _finetune_span = obs.span(names::SPAN_FINETUNE);
            finetune::run(tables, &weak, &mut embedder, &tokenizer, ft)
        });

        let centroid_span = obs.span(names::SPAN_CENTROID);
        let centroids =
            centroid::estimate_par(tables, &weak, &embedder, &tokenizer, &config.centroid, threads);
        drop(centroid_span);
        if !centroids.rows.is_usable() && !centroids.columns.is_usable() {
            return Err(TrainError::NoCentroidEvidence);
        }

        Ok(Self {
            embedder,
            tokenizer,
            classifier: Classifier { centroids, config: config.classifier.clone() },
            summary: TrainSummary {
                sentences: sentences.len(),
                sgns_pairs,
                finetune: finetune_report,
                markup_bootstrapped,
            },
        })
    }

    /// Classify one table.
    pub fn classify(&self, table: &Table) -> Verdict {
        self.classifier.classify(table, &self.embedder, &self.tokenizer)
    }

    /// Classify one table, recording the angle walk (Fig. 5).
    pub fn classify_with_trace(&self, table: &Table) -> (Verdict, Vec<TraceStep>) {
        self.classifier.classify_with_trace(table, &self.embedder, &self.tokenizer)
    }

    /// Classify a whole corpus in parallel (the "scalable" in the title:
    /// per-table classification is embarrassingly parallel).
    pub fn classify_corpus(&self, tables: &[Table]) -> Vec<Verdict> {
        // Timed through the span registry so `classify.tables_per_sec`
        // and the `classify` span report the same wall-clock interval.
        let (verdicts, elapsed) = tabmeta_obs::timed(names::SPAN_CLASSIFY, || -> Vec<Verdict> {
            tables.par_iter().map(|t| self.classify(t)).collect()
        });
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            tabmeta_obs::global()
                .gauge(names::CLASSIFY_TABLES_PER_SEC)
                .set(tables.len() as f64 / secs);
        }
        verdicts
    }

    /// The trained centroid model (paper Tables I–IV are views of this).
    pub fn centroids(&self) -> &CentroidModel {
        &self.classifier.centroids
    }

    /// Training summary.
    pub fn summary(&self) -> &TrainSummary {
        &self.summary
    }

    /// The embedder (read access, e.g. for nearest-neighbour inspection).
    pub fn embedder(&self) -> &AnyEmbedder {
        &self.embedder
    }

    /// The tokenizer the pipeline was trained with.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Mutable access to classification knobs (margins, depth caps, CMD).
    pub fn classifier_config_mut(&mut self) -> &mut crate::classifier::ClassifierConfig {
        &mut self.classifier.config
    }

    /// Serialize the trained pipeline (embeddings, centroids, tokenizer
    /// and classifier knobs) to JSON — train once, classify anywhere.
    // Serializing the pipeline's own state (plain structs, no maps with
    // non-string keys) cannot fail; this is not input-derived.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("pipeline state is serializable")
    }

    /// Restore a pipeline saved with [`Pipeline::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use tabmeta_corpora::{CorpusKind, GeneratorConfig};
    use tabmeta_tabular::LevelLabel;

    #[test]
    fn empty_corpus_is_an_error() {
        assert_eq!(
            Pipeline::train(&[], &PipelineConfig::fast()).unwrap_err(),
            TrainError::EmptyCorpus
        );
    }

    #[test]
    fn end_to_end_on_generated_corpus() {
        let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 120, seed: 21 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(21))
            .expect("training succeeds");
        assert!(pipeline.summary().sentences > 0);
        assert!(pipeline.summary().sgns_pairs > 0);
        assert!(pipeline.summary().markup_bootstrapped > 0);

        // Level-1 HMD accuracy on the training corpus must be far above
        // chance — the smoke test that the whole geometry works.
        let mut correct = 0usize;
        let mut total = 0usize;
        for t in &corpus.tables {
            let v = pipeline.classify(t);
            let truth = t.truth.as_ref().unwrap();
            total += 1;
            if (v.hmd_depth >= 1) == (truth.hmd_depth() >= 1)
                && v.rows.first() == truth.rows.first()
            {
                correct += 1;
            }
        }
        let acc = correct as f32 / total as f32;
        assert!(acc > 0.8, "HMD1 accuracy too low: {acc}");
    }

    #[test]
    fn corpus_classification_is_parallel_consistent() {
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 60, seed: 4 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(4)).unwrap();
        let seq: Vec<Verdict> = corpus.tables.iter().map(|t| pipeline.classify(t)).collect();
        let par = pipeline.classify_corpus(&corpus.tables);
        assert_eq!(seq, par);
    }

    #[test]
    fn verdict_shapes_match_tables() {
        let corpus = CorpusKind::Wdc.generate(&GeneratorConfig { n_tables: 50, seed: 8 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(8)).unwrap();
        for t in &corpus.tables {
            let v = pipeline.classify(t);
            assert_eq!(v.rows.len(), t.n_rows());
            assert_eq!(v.columns.len(), t.n_cols());
            // Depth is consistent with labels.
            let max_hmd = v
                .rows
                .iter()
                .filter_map(|l| match l {
                    LevelLabel::Hmd(k) => Some(*k),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            assert_eq!(max_hmd, v.hmd_depth);
        }
    }

    #[test]
    fn chargram_pipeline_trains_too() {
        let corpus = CorpusKind::Cord19.generate(&GeneratorConfig { n_tables: 60, seed: 13 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_chargram(13)).unwrap();
        let v = pipeline.classify(&corpus.tables[0]);
        assert_eq!(v.rows.len(), corpus.tables[0].n_rows());
    }

    #[test]
    fn pipeline_persistence_roundtrip() {
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 80, seed: 19 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(19)).unwrap();
        let json = pipeline.to_json();
        let restored = Pipeline::from_json(&json).expect("round-trips");
        for t in corpus.tables.iter().take(20) {
            assert_eq!(pipeline.classify(t), restored.classify(t));
        }
        assert_eq!(restored.summary().sentences, pipeline.summary().sentences);
    }

    #[test]
    fn trace_is_available_end_to_end() {
        let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 60, seed: 5 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(5)).unwrap();
        let (v, trace) = pipeline.classify_with_trace(&corpus.tables[3]);
        assert!(!trace.is_empty());
        assert_eq!(v.rows.len(), corpus.tables[3].n_rows());
    }
}
