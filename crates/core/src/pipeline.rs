//! The end-to-end pipeline: embed → bootstrap → fine-tune → centroids →
//! classify.
//!
//! ```text
//!  tables ──► sentences ──► SGNS training ──► term embeddings
//!     │                                            │
//!     └──► bootstrap weak labels ──► contrastive fine-tuning (mutates embeddings)
//!                      │                           │
//!                      └──────► centroid ranges ◄──┘
//!                                    │
//!                            Algorithm-1 classifier
//! ```
//!
//! Centroids are estimated **after** fine-tuning so the recorded ranges
//! describe the tuned geometry the classifier will actually measure.

use crate::bootstrap::WeakLabels;
use crate::centroid::{self, AxisCentroids, CentroidModel};
use crate::checkpoint::{CheckpointStage, CheckpointStore, TrainCheckpoint};
use crate::classifier::{Classifier, TraceStep, Verdict};
use crate::config::{EmbeddingChoice, PipelineConfig};
use crate::finetune::{self, FinetuneReport, FinetuneResume};
use crate::persist::ArtifactError;
use rayon::prelude::*;
use std::ops::ControlFlow;
use tabmeta_embed::{
    sentences_from_tables_par, CharGram, IntegrityFault, SgnsResume, TermEmbedder, TunableEmbedder,
    Word2Vec,
};
use tabmeta_linalg::AngleRange;
use tabmeta_obs::names;
use tabmeta_tabular::Table;
use tabmeta_text::Tokenizer;

/// Either embedding model behind one type (object-safety without dyn in
/// the hot path).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum AnyEmbedder {
    /// Word2Vec model.
    Word2Vec(Word2Vec),
    /// CharGram model.
    CharGram(CharGram),
}

impl TermEmbedder for AnyEmbedder {
    fn dim(&self) -> usize {
        match self {
            AnyEmbedder::Word2Vec(m) => m.dim(),
            AnyEmbedder::CharGram(m) => m.dim(),
        }
    }

    fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
        match self {
            AnyEmbedder::Word2Vec(m) => m.accumulate(term, out),
            AnyEmbedder::CharGram(m) => m.accumulate(term, out),
        }
    }

    fn term_id(&self, term: &str) -> Option<tabmeta_text::TermId> {
        match self {
            AnyEmbedder::Word2Vec(m) => TermEmbedder::term_id(m, term),
            AnyEmbedder::CharGram(m) => TermEmbedder::term_id(m, term),
        }
    }

    fn embeds(&self, term: &str) -> bool {
        match self {
            AnyEmbedder::Word2Vec(m) => TermEmbedder::embeds(m, term),
            AnyEmbedder::CharGram(m) => TermEmbedder::embeds(m, term),
        }
    }
}

impl TunableEmbedder for AnyEmbedder {
    fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
        match self {
            AnyEmbedder::Word2Vec(m) => m.apply_gradient(term, grad),
            AnyEmbedder::CharGram(m) => m.apply_gradient(term, grad),
        }
    }
}

impl AnyEmbedder {
    /// Structural and numeric self-check of the wrapped model (matrix
    /// shapes vs. vocabulary, finiteness of every weight).
    pub fn validate_integrity(&self) -> Result<(), IntegrityFault> {
        match self {
            AnyEmbedder::Word2Vec(m) => m.validate_integrity(),
            AnyEmbedder::CharGram(m) => m.validate_integrity(),
        }
    }
}

/// Training failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No tables were provided.
    EmptyCorpus,
    /// The corpus produced no usable centroid evidence along either axis.
    NoCentroidEvidence,
    /// The checkpoint hook stopped training after `at_epoch` global
    /// epochs (SGNS epochs first, fine-tune epochs after) — the
    /// crash-injection path.
    Interrupted {
        /// Global epochs fully completed (and checkpointed) before the stop.
        at_epoch: u64,
    },
    /// A training checkpoint could not be written or restored.
    Checkpoint(ArtifactError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyCorpus => write!(f, "cannot train a pipeline on an empty corpus"),
            TrainError::NoCentroidEvidence => {
                write!(f, "corpus yielded no usable centroid evidence on either axis")
            }
            TrainError::Interrupted { at_epoch } => {
                write!(f, "training interrupted after {at_epoch} completed epoch(s)")
            }
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Post-checkpoint observer for [`Pipeline::train_with_checkpoints`]:
/// called with the global epoch index after each epoch's checkpoint is
/// durable; returning [`ControlFlow::Break`] aborts training there (the
/// crash-injection harness uses this as its kill switch).
pub type TrainHook<'h> = &'h mut dyn FnMut(u64) -> ControlFlow<()>;

/// What training did, for logs and EXPERIMENTS.md.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainSummary {
    /// Training sentences extracted.
    pub sentences: usize,
    /// SGNS (center, context) pairs processed.
    pub sgns_pairs: u64,
    /// Fine-tuning report (if enabled).
    pub finetune: Option<FinetuneReport>,
    /// Tables whose weak labels came from markup (vs positional fallback).
    pub markup_bootstrapped: usize,
}

/// Recycled warm [`ClassifyScratch`]es, shared by every classify entry
/// point on one [`Pipeline`].
///
/// The expensive part of a scratch is not its buffers but its *warmth*:
/// the term interner and cell-text memo amortize tokenization and
/// embedding lookups across every table they have ever seen. Dropping
/// that state between `classify_corpus` calls (or between per-table
/// `classify` calls) re-pays the whole vocabulary warmup per call, which
/// dominates the batch profile. The pool keeps scratches alive across
/// calls; scratch contents never influence verdicts (the bit-identity
/// property suite pins this), so recycling is invisible to callers.
///
/// Never serialized and never cloned with contents — a cloned or
/// deserialized pipeline starts with a cold pool.
///
/// [`ClassifyScratch`]: crate::classifier::ClassifyScratch
struct ScratchPool {
    slots: tabmeta_obs::lockorder::TrackedMutex<Vec<crate::classifier::ClassifyScratch>>,
}

/// A scratch whose memo tables outgrow this many entries is retired
/// instead of pooled, bounding pool memory on unbounded-vocabulary
/// streams (a long-lived server classifying arbitrary corpora).
const SCRATCH_RETIRE_ENTRIES: usize = 1 << 20;

impl ScratchPool {
    fn new() -> Self {
        Self {
            slots: tabmeta_obs::lockorder::TrackedMutex::new(
                &tabmeta_obs::lockorder::CORE_SCRATCH,
                Vec::new(),
            ),
        }
    }

    /// A pooled warm scratch, if any is idle.
    fn checkout(&self) -> Option<crate::classifier::ClassifyScratch> {
        self.slots.lock().pop()
    }

    /// Return a scratch for reuse, unless its memos have grown past the
    /// retirement bound.
    fn checkin(&self, scratch: crate::classifier::ClassifyScratch) {
        if scratch.memo_entries() > SCRATCH_RETIRE_ENTRIES {
            return;
        }
        self.slots.lock().push(scratch);
    }
}

impl Clone for ScratchPool {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let idle = self.slots.lock().len();
        f.debug_struct("ScratchPool").field("idle", &idle).finish()
    }
}

/// A trained classification pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    embedder: AnyEmbedder,
    tokenizer: Tokenizer,
    classifier: Classifier,
    summary: TrainSummary,
    /// Warm scratch recycled across classify calls; runtime-only state
    /// (skipped by the hand-written serde impls below).
    scratch_pool: ScratchPool,
}

// Hand-written (de)serialization: the derive macro serializes every
// field, but `scratch_pool` is runtime-only cache state (a Mutex, and
// deliberately absent from artifacts). The four model fields keep the
// derive's exact map layout, so existing saved pipelines load unchanged.
impl serde::Serialize for Pipeline {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(serde::Content::Map(vec![
            ("embedder".to_string(), serde::to_content(&self.embedder)),
            ("tokenizer".to_string(), serde::to_content(&self.tokenizer)),
            ("classifier".to_string(), serde::to_content(&self.classifier)),
            ("summary".to_string(), serde::to_content(&self.summary)),
        ]))
    }
}

impl<'de> serde::Deserialize<'de> for Pipeline {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            serde::Content::Map(mut entries) => Ok(Pipeline {
                embedder: serde::de::take_field(&mut entries, "embedder")
                    .map_err(serde::de::Error::custom)?,
                tokenizer: serde::de::take_field(&mut entries, "tokenizer")
                    .map_err(serde::de::Error::custom)?,
                classifier: serde::de::take_field(&mut entries, "classifier")
                    .map_err(serde::de::Error::custom)?,
                summary: serde::de::take_field(&mut entries, "summary")
                    .map_err(serde::de::Error::custom)?,
                scratch_pool: ScratchPool::new(),
            }),
            other => {
                Err(serde::de::Error::custom(format!("expected pipeline object, found {other:?}")))
            }
        }
    }
}

impl Pipeline {
    /// Assemble a pipeline from already-trained parts (the streaming
    /// trainer's exit point); starts with a cold scratch pool.
    pub(crate) fn assemble(
        embedder: AnyEmbedder,
        tokenizer: Tokenizer,
        classifier: Classifier,
        summary: TrainSummary,
    ) -> Self {
        Self { embedder, tokenizer, classifier, summary, scratch_pool: ScratchPool::new() }
    }

    /// Train the full pipeline on a corpus (unsupervised: only markup or
    /// positional weak labels are consumed, never ground truth).
    pub fn train(tables: &[Table], config: &PipelineConfig) -> Result<Self, TrainError> {
        Self::train_with_checkpoints(tables, config, None, None, None)
    }

    /// [`Pipeline::train`] with crash-safe checkpointing.
    ///
    /// With a `store`, the embedder weights and stage loop state are
    /// durably checkpointed after every completed epoch (SGNS epochs on
    /// the sequential path, the stage boundary under Hogwild, every
    /// fine-tune epoch). `resume` restarts from a checkpoint previously
    /// returned by [`CheckpointStore::latest_valid`]: everything pure
    /// (sentences, vocabulary, weak labels, centroids) is recomputed, so
    /// at `threads = 1` the resumed run is **bit-identical** to an
    /// uninterrupted run with the same seed. `hook` fires after each
    /// checkpoint is durable and may abort training
    /// ([`TrainError::Interrupted`]) — the crash-injection kill switch.
    pub fn train_with_checkpoints(
        tables: &[Table],
        config: &PipelineConfig,
        store: Option<&CheckpointStore>,
        resume: Option<TrainCheckpoint>,
        mut hook: Option<TrainHook<'_>>,
    ) -> Result<Self, TrainError> {
        if tables.is_empty() {
            return Err(TrainError::EmptyCorpus);
        }
        let obs = tabmeta_obs::global();
        let _train_span = obs.span(names::SPAN_TRAIN);
        let threads = config.threads.max(1);
        obs.gauge(names::TRAIN_THREADS).set(threads as f64);
        let tokenizer = Tokenizer::default();

        let sgns_epochs = match &config.embedding {
            EmbeddingChoice::Word2Vec(sgns) => sgns.epochs,
            EmbeddingChoice::CharGram(cfg) => cfg.sgns.epochs,
        } as u64;
        let plan = match resume {
            None => ResumePlan::Embed(None),
            Some(ck) => {
                obs.gauge(names::CHECKPOINT_RESUMED_EPOCH)
                    .set(ck.stage.global_epoch(sgns_epochs) as f64);
                match ck.stage {
                    CheckpointStage::Sgns(state) => ResumePlan::Embed(Some((ck.embedder, state))),
                    CheckpointStage::Finetune { sgns_pairs, resume } => ResumePlan::PastEmbed {
                        embedder: ck.embedder,
                        sgns_pairs,
                        finetune: resume,
                    },
                    CheckpointStage::CentroidShard { .. } => {
                        return Err(TrainError::Checkpoint(ArtifactError::SchemaInvalid {
                            detail: "checkpoint holds a streaming centroid-shard stage; \
                                     resume it with train_streaming, not the in-memory \
                                     trainer"
                                .to_string(),
                        }))
                    }
                }
            }
        };
        let wants_sink = store.is_some() || hook.is_some();
        // Checkpoint-write failures escape the epoch sinks through this
        // slot (a sink can only `Break`, not return an error).
        let mut ckpt_err: Option<ArtifactError> = None;
        let mut halted_at: u64 = 0;

        let embed_span = obs.span(names::SPAN_EMBED);
        let sentences = sentences_from_tables_par(tables, &tokenizer, &config.sentences, threads);
        let n_sentences = sentences.len();
        // The `threads` knob propagates into SGNS so one pipeline setting
        // governs the whole training path.
        let (mut embedder, sgns_pairs, ft_resume) = match plan {
            ResumePlan::PastEmbed { embedder, sgns_pairs, finetune } => {
                (embedder, sgns_pairs, Some(finetune))
            }
            ResumePlan::Embed(prior) => {
                let (embedder, pairs, interrupted) = match &config.embedding {
                    EmbeddingChoice::Word2Vec(sgns) => {
                        let mut sgns = sgns.clone();
                        sgns.threads = threads;
                        let prior = match prior {
                            None => None,
                            Some((AnyEmbedder::Word2Vec(m), st)) => Some((m, st)),
                            Some((AnyEmbedder::CharGram(_), _)) => {
                                return Err(TrainError::Checkpoint(ArtifactError::SchemaInvalid {
                                    detail: "checkpoint holds a CharGram embedder but the config \
                                             trains Word2Vec"
                                        .to_string(),
                                }))
                            }
                        };
                        let mut sink = |m: &Word2Vec, st: &SgnsResume| {
                            sgns_boundary(
                                store,
                                &mut hook,
                                &mut ckpt_err,
                                &mut halted_at,
                                || AnyEmbedder::Word2Vec(m.clone()),
                                st,
                                n_sentences,
                            )
                        };
                        let (model, report, interrupted) = Word2Vec::train_resumable(
                            &sentences,
                            sgns,
                            prior,
                            wants_sink.then_some(&mut sink),
                        );
                        (AnyEmbedder::Word2Vec(model), report.pairs, interrupted)
                    }
                    EmbeddingChoice::CharGram(cfg) => {
                        let mut cfg = cfg.clone();
                        cfg.sgns.threads = threads;
                        let prior = match prior {
                            None => None,
                            Some((AnyEmbedder::CharGram(m), st)) => Some((m, st)),
                            Some((AnyEmbedder::Word2Vec(_), _)) => {
                                return Err(TrainError::Checkpoint(ArtifactError::SchemaInvalid {
                                    detail: "checkpoint holds a Word2Vec embedder but the config \
                                             trains CharGram"
                                        .to_string(),
                                }))
                            }
                        };
                        let mut sink = |m: &CharGram, st: &SgnsResume| {
                            sgns_boundary(
                                store,
                                &mut hook,
                                &mut ckpt_err,
                                &mut halted_at,
                                || AnyEmbedder::CharGram(m.clone()),
                                st,
                                n_sentences,
                            )
                        };
                        let (model, report, interrupted) = CharGram::train_resumable(
                            &sentences,
                            cfg,
                            prior,
                            wants_sink.then_some(&mut sink),
                        );
                        (AnyEmbedder::CharGram(model), report.pairs, interrupted)
                    }
                };
                if interrupted {
                    if let Some(e) = ckpt_err.take() {
                        return Err(TrainError::Checkpoint(e));
                    }
                    return Err(TrainError::Interrupted { at_epoch: halted_at });
                }
                (embedder, pairs, None)
            }
        };
        drop(embed_span);

        let bootstrap_span = obs.span(names::SPAN_BOOTSTRAP);
        // `BootstrapLabeler::label` is pure per table; parallel labeling
        // preserves order, so weak labels are identical at any count.
        let weak: Vec<WeakLabels> = if threads > 1 {
            tables.par_iter().map(|t| config.bootstrap.label(t)).collect()
        } else {
            tables.iter().map(|t| config.bootstrap.label(t)).collect()
        };
        let markup_bootstrapped = weak.iter().filter(|w| w.from_markup).count();
        obs.counter(names::BOOTSTRAP_TABLES).add(weak.len() as u64);
        obs.counter(names::BOOTSTRAP_MARKUP_TABLES).add(markup_bootstrapped as u64);
        drop(bootstrap_span);

        let finetune_report = match config.finetune.as_ref() {
            None => None,
            Some(ft) => {
                let _finetune_span = obs.span(names::SPAN_FINETUNE);
                let mut sink = |e: &AnyEmbedder, st: &FinetuneResume| {
                    finetune_boundary(
                        store,
                        &mut hook,
                        &mut ckpt_err,
                        &mut halted_at,
                        e,
                        st,
                        sgns_pairs,
                        sgns_epochs,
                        n_sentences,
                    )
                };
                let (report, interrupted) = finetune::run_resumable(
                    tables,
                    &weak,
                    &mut embedder,
                    &tokenizer,
                    ft,
                    ft_resume,
                    wants_sink.then_some(&mut sink),
                );
                if interrupted {
                    if let Some(e) = ckpt_err.take() {
                        return Err(TrainError::Checkpoint(e));
                    }
                    return Err(TrainError::Interrupted { at_epoch: halted_at });
                }
                Some(report)
            }
        };

        let centroid_span = obs.span(names::SPAN_CENTROID);
        let centroids =
            centroid::estimate_par(tables, &weak, &embedder, &tokenizer, &config.centroid, threads);
        drop(centroid_span);
        if !centroids.rows.is_usable() && !centroids.columns.is_usable() {
            return Err(TrainError::NoCentroidEvidence);
        }

        Ok(Self {
            embedder,
            tokenizer,
            classifier: Classifier { centroids, config: config.classifier.clone() },
            summary: TrainSummary {
                sentences: n_sentences,
                sgns_pairs,
                finetune: finetune_report,
                markup_bootstrapped,
            },
            scratch_pool: ScratchPool::new(),
        })
    }

    /// Classify one table.
    ///
    /// Uses a pooled warm scratch when one is idle (the verdict is
    /// bit-identical either way), so repeated single-table calls amortize
    /// tokenization and vocabulary lookups like the batch path does.
    pub fn classify(&self, table: &Table) -> Verdict {
        let mut scratch = self.scratch_pool.checkout().unwrap_or_else(|| self.classifier.scratch());
        let verdict = self.classify_with_scratch(table, &mut scratch);
        self.scratch_pool.checkin(scratch);
        verdict
    }

    /// Classify one table, recording the angle walk (Fig. 5).
    pub fn classify_with_trace(&self, table: &Table) -> (Verdict, Vec<TraceStep>) {
        let mut scratch = self.scratch_pool.checkout().unwrap_or_else(|| self.classifier.scratch());
        let out = self.classify_with_trace_scratch(table, &mut scratch);
        self.scratch_pool.checkin(scratch);
        out
    }

    /// Fresh reusable scratch for [`Pipeline::classify_with_scratch`].
    pub fn classify_scratch(&self) -> crate::classifier::ClassifyScratch {
        self.classifier.scratch()
    }

    /// [`Pipeline::classify`] with caller-owned scratch (see
    /// [`Classifier::classify_with_scratch`]).
    pub fn classify_with_scratch(
        &self,
        table: &Table,
        scratch: &mut crate::classifier::ClassifyScratch,
    ) -> Verdict {
        self.classifier.classify_with_scratch(table, &self.embedder, &self.tokenizer, scratch)
    }

    /// [`Pipeline::classify_with_trace`] with caller-owned scratch.
    pub fn classify_with_trace_scratch(
        &self,
        table: &Table,
        scratch: &mut crate::classifier::ClassifyScratch,
    ) -> (Verdict, Vec<TraceStep>) {
        self.classifier.classify_with_trace_scratch(table, &self.embedder, &self.tokenizer, scratch)
    }

    /// Classify a whole corpus in parallel (the "scalable" in the title:
    /// per-table classification is embarrassingly parallel).
    ///
    /// An empty corpus is explicit: no `classify` span is opened and
    /// `classify.tables_per_sec` reads zero, so bench and serve layers can
    /// never misread a stale gauge from an earlier run.
    pub fn classify_corpus(&self, tables: &[Table]) -> Vec<Verdict> {
        if tables.is_empty() {
            tabmeta_obs::global().gauge(names::CLASSIFY_TABLES_PER_SEC).set(0.0);
            return Vec::new();
        }
        // Timed through the span registry so `classify.tables_per_sec`
        // and the `classify` span report the same wall-clock interval.
        let (verdicts, elapsed) = tabmeta_obs::timed(names::SPAN_CLASSIFY, || -> Vec<Verdict> {
            self.classify_corpus_cached(tables)
        });
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            tabmeta_obs::global()
                .gauge(names::CLASSIFY_TABLES_PER_SEC)
                .set(tables.len() as f64 / secs);
        }
        verdicts
    }

    /// The batched classify hot path: contiguous per-worker chunks (the
    /// same slicing the rayon facade uses, so outputs stay in corpus
    /// order), each worker reusing one [`ClassifyScratch`] across its
    /// tables. Verdicts are bit-identical to per-table
    /// [`Pipeline::classify`] — scratch contents never influence values.
    ///
    /// [`ClassifyScratch`]: crate::classifier::ClassifyScratch
    pub fn classify_corpus_cached(&self, tables: &[Table]) -> Vec<Verdict> {
        let refs: Vec<&Table> = tables.iter().collect();
        self.classify_refs_cached(&refs)
    }

    /// [`Pipeline::classify_corpus_cached`] over borrowed tables, for
    /// callers (e.g. the hybrid router) whose batch is a scattered subset
    /// of a larger corpus.
    pub fn classify_refs_cached(&self, tables: &[&Table]) -> Vec<Verdict> {
        if tables.is_empty() {
            return Vec::new();
        }
        let workers = rayon::current_num_threads().max(1).min(tables.len());
        let interned: usize;
        let verdicts = if workers <= 1 {
            let mut scratch =
                self.scratch_pool.checkout().unwrap_or_else(|| self.classifier.scratch());
            let out: Vec<Verdict> =
                tables.iter().map(|t| self.classify_with_scratch(t, &mut scratch)).collect();
            interned = scratch.interned_terms();
            self.scratch_pool.checkin(scratch);
            out
        } else {
            let chunk = tables.len().div_ceil(workers);
            let mut chunk_results: Vec<(Vec<Verdict>, usize)> = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = tables
                    .chunks(chunk)
                    .map(|slice| {
                        s.spawn(move || {
                            let mut scratch = self
                                .scratch_pool
                                .checkout()
                                .unwrap_or_else(|| self.classifier.scratch());
                            let out: Vec<Verdict> = slice
                                .iter()
                                .map(|t| self.classify_with_scratch(t, &mut scratch))
                                .collect();
                            let n = scratch.interned_terms();
                            self.scratch_pool.checkin(scratch);
                            (out, n)
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(r) => chunk_results.push(r),
                        // Re-raise a worker panic on the calling thread;
                        // swallowing it would return a silently truncated
                        // verdict list.
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            interned = chunk_results.iter().map(|(_, n)| n).sum();
            chunk_results.into_iter().flat_map(|(out, _)| out).collect()
        };
        tabmeta_obs::global().gauge(names::CLASSIFY_INTERNED_TERMS).set(interned as f64);
        verdicts
    }

    /// The trained centroid model (paper Tables I–IV are views of this).
    pub fn centroids(&self) -> &CentroidModel {
        &self.classifier.centroids
    }

    /// Training summary.
    pub fn summary(&self) -> &TrainSummary {
        &self.summary
    }

    /// The embedder (read access, e.g. for nearest-neighbour inspection).
    pub fn embedder(&self) -> &AnyEmbedder {
        &self.embedder
    }

    /// The tokenizer the pipeline was trained with.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Mutable access to classification knobs (margins, depth caps, CMD).
    pub fn classifier_config_mut(&mut self) -> &mut crate::classifier::ClassifierConfig {
        &mut self.classifier.config
    }

    /// Serialize the trained pipeline (embeddings, centroids, tokenizer
    /// and classifier knobs) to JSON — train once, classify anywhere.
    /// The output is byte-deterministic (maps serialize key-sorted), which
    /// is what makes the resume determinism gate checkable by comparison.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restore a pipeline saved with [`Pipeline::to_json`], deep-validating
    /// it before it can reach the classify path: weight-matrix shapes vs.
    /// the vocabulary, centroid reference dimensions vs. the embedder,
    /// range ordering, and finiteness of every number.
    pub fn from_json(json: &str) -> Result<Self, ArtifactError> {
        let pipeline: Self = serde_json::from_str(json)
            .map_err(|e| ArtifactError::SchemaInvalid { detail: format!("pipeline: {e}") })?;
        pipeline.validate()?;
        Ok(pipeline)
    }

    /// Deep structural/numeric validation of a deserialized pipeline.
    pub fn validate(&self) -> Result<(), ArtifactError> {
        self.embedder.validate_integrity().map_err(|f| match f {
            IntegrityFault::Shape { detail } => ArtifactError::DimensionMismatch { detail },
            IntegrityFault::NonFinite { location } => ArtifactError::NonFiniteWeights { location },
        })?;
        let dim = self.embedder.dim();
        for (axis, ax) in [
            ("rows", &self.classifier.centroids.rows),
            ("columns", &self.classifier.centroids.columns),
        ] {
            validate_axis(axis, ax, dim)?;
        }
        Ok(())
    }
}

/// Where training resumes from, decoded from an optional checkpoint.
enum ResumePlan {
    /// Run the embedding stage — from scratch (`None`) or from a
    /// mid-stage SGNS checkpoint.
    Embed(Option<(AnyEmbedder, SgnsResume)>),
    /// The embedding stage already completed; go straight to fine-tuning.
    PastEmbed { embedder: AnyEmbedder, sgns_pairs: u64, finetune: FinetuneResume },
}

/// SGNS epoch boundary: persist a checkpoint (when a store is attached),
/// then give the hook its chance to abort.
fn sgns_boundary(
    store: Option<&CheckpointStore>,
    hook: &mut Option<TrainHook<'_>>,
    ckpt_err: &mut Option<ArtifactError>,
    halted_at: &mut u64,
    make_embedder: impl FnOnce() -> AnyEmbedder,
    state: &SgnsResume,
    sentences: usize,
) -> ControlFlow<()> {
    let epoch = state.epochs_done as u64;
    *halted_at = epoch;
    if let Some(store) = store {
        let checkpoint = TrainCheckpoint {
            stage: CheckpointStage::Sgns(state.clone()),
            embedder: make_embedder(),
            sentences,
        };
        if let Err(e) = store.write(&checkpoint) {
            *ckpt_err = Some(e);
            return ControlFlow::Break(());
        }
    }
    match hook.as_mut() {
        Some(h) => h(epoch),
        None => ControlFlow::Continue(()),
    }
}

/// Fine-tune epoch boundary; global epoch indices continue after the SGNS
/// stage's.
#[allow(clippy::too_many_arguments)]
fn finetune_boundary(
    store: Option<&CheckpointStore>,
    hook: &mut Option<TrainHook<'_>>,
    ckpt_err: &mut Option<ArtifactError>,
    halted_at: &mut u64,
    embedder: &AnyEmbedder,
    state: &FinetuneResume,
    sgns_pairs: u64,
    sgns_epochs: u64,
    sentences: usize,
) -> ControlFlow<()> {
    let epoch = sgns_epochs + state.epochs_done as u64;
    *halted_at = epoch;
    if let Some(store) = store {
        let checkpoint = TrainCheckpoint {
            stage: CheckpointStage::Finetune { sgns_pairs, resume: state.clone() },
            embedder: embedder.clone(),
            sentences,
        };
        if let Err(e) = store.write(&checkpoint) {
            *ckpt_err = Some(e);
            return ControlFlow::Break(());
        }
    }
    match hook.as_mut() {
        Some(h) => h(epoch),
        None => ControlFlow::Continue(()),
    }
}

/// Validate one axis of the centroid model against the embedder dimension.
fn validate_axis(axis: &str, ax: &AxisCentroids, dim: usize) -> Result<(), ArtifactError> {
    for (name, v) in [("meta_ref", &ax.meta_ref), ("data_ref", &ax.data_ref)] {
        if v.len() != dim {
            return Err(ArtifactError::DimensionMismatch {
                detail: format!(
                    "centroids.{axis}.{name} has {} components but the embedder dimension \
                     is {dim}",
                    v.len()
                ),
            });
        }
        if let Some(i) = v.iter().position(|x| !x.is_finite()) {
            return Err(ArtifactError::NonFiniteWeights {
                location: format!("centroids.{axis}.{name}[{i}]"),
            });
        }
    }
    for (name, r) in [("c_mde", &ax.c_mde), ("c_de", &ax.c_de), ("c_mde_de", &ax.c_mde_de)] {
        validate_range(&format!("centroids.{axis}.{name}"), r)?;
    }
    for l in &ax.levels {
        for (name, r) in [
            ("prev_range", &l.prev_range),
            ("to_data_range", &l.to_data_range),
            ("c_mde", &l.c_mde),
            ("c_mde_de", &l.c_mde_de),
            ("c_de", &l.c_de),
        ] {
            validate_range(&format!("centroids.{axis}.level{}.{name}", l.level), r)?;
        }
        for (name, d) in
            [("delta_prev_meta", l.delta_prev_meta), ("delta_to_data", l.delta_to_data)]
        {
            if let Some(d) = d {
                if !d.is_finite() {
                    return Err(ArtifactError::NonFiniteWeights {
                        location: format!("centroids.{axis}.level{}.{name}", l.level),
                    });
                }
            }
        }
    }
    Ok(())
}

/// An angle range is valid when empty (the "no evidence" sentinel, which
/// the classifier treats as never-matching) or finite with `lo <= hi`.
fn validate_range(location: &str, r: &AngleRange) -> Result<(), ArtifactError> {
    if r.is_empty() {
        return Ok(());
    }
    if !r.lo.is_finite() || !r.hi.is_finite() {
        return Err(ArtifactError::NonFiniteWeights { location: location.to_string() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use tabmeta_corpora::{CorpusKind, GeneratorConfig};
    use tabmeta_tabular::LevelLabel;

    #[test]
    fn empty_corpus_is_an_error() {
        assert_eq!(
            Pipeline::train(&[], &PipelineConfig::fast()).unwrap_err(),
            TrainError::EmptyCorpus
        );
    }

    #[test]
    fn end_to_end_on_generated_corpus() {
        let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 120, seed: 21 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(21))
            .expect("training succeeds");
        assert!(pipeline.summary().sentences > 0);
        assert!(pipeline.summary().sgns_pairs > 0);
        assert!(pipeline.summary().markup_bootstrapped > 0);

        // Level-1 HMD accuracy on the training corpus must be far above
        // chance — the smoke test that the whole geometry works.
        let mut correct = 0usize;
        let mut total = 0usize;
        for t in &corpus.tables {
            let v = pipeline.classify(t);
            let truth = t.truth.as_ref().unwrap();
            total += 1;
            if (v.hmd_depth >= 1) == (truth.hmd_depth() >= 1)
                && v.rows.first() == truth.rows.first()
            {
                correct += 1;
            }
        }
        let acc = correct as f32 / total as f32;
        assert!(acc > 0.8, "HMD1 accuracy too low: {acc}");
    }

    #[test]
    fn corpus_classification_is_parallel_consistent() {
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 60, seed: 4 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(4)).unwrap();
        let seq: Vec<Verdict> = corpus.tables.iter().map(|t| pipeline.classify(t)).collect();
        let par = pipeline.classify_corpus(&corpus.tables);
        assert_eq!(seq, par);
    }

    #[test]
    fn cached_corpus_path_matches_per_table_classify() {
        let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 70, seed: 33 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(33)).unwrap();
        let per_table: Vec<Verdict> = corpus.tables.iter().map(|t| pipeline.classify(t)).collect();
        assert_eq!(pipeline.classify_corpus_cached(&corpus.tables), per_table);
        // The ref-based variant preserves the caller's (scattered) order.
        let refs: Vec<&Table> = corpus.tables.iter().rev().collect();
        let rev: Vec<Verdict> = per_table.iter().rev().cloned().collect();
        assert_eq!(pipeline.classify_refs_cached(&refs), rev);
    }

    #[test]
    fn empty_corpus_classification_is_explicit() {
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 40, seed: 9 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(9)).unwrap();
        // Leave a non-zero throughput behind, then classify nothing: the
        // gauge must be explicitly reset, not left stale.
        pipeline.classify_corpus(&corpus.tables);
        let gauge = tabmeta_obs::global().gauge(names::CLASSIFY_TABLES_PER_SEC);
        assert!(gauge.get() > 0.0, "non-empty run sets a throughput");
        let classify_spans = || {
            tabmeta_obs::global()
                .spans()
                .snapshot()
                .iter()
                .filter(|(p, _)| p == names::SPAN_CLASSIFY || p.ends_with("/classify"))
                .map(|(_, s)| s.count)
                .sum::<u64>()
        };
        let spans_before = classify_spans();
        assert_eq!(pipeline.classify_corpus(&[]), Vec::<Verdict>::new());
        assert_eq!(gauge.get(), 0.0, "empty corpus records zero, not a stale rate");
        assert_eq!(classify_spans(), spans_before, "empty corpus opens no classify span");
        assert_eq!(pipeline.classify_refs_cached(&[]), Vec::<Verdict>::new());
    }

    #[test]
    fn verdict_shapes_match_tables() {
        let corpus = CorpusKind::Wdc.generate(&GeneratorConfig { n_tables: 50, seed: 8 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(8)).unwrap();
        for t in &corpus.tables {
            let v = pipeline.classify(t);
            assert_eq!(v.rows.len(), t.n_rows());
            assert_eq!(v.columns.len(), t.n_cols());
            // Depth is consistent with labels.
            let max_hmd = v
                .rows
                .iter()
                .filter_map(|l| match l {
                    LevelLabel::Hmd(k) => Some(*k),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            assert_eq!(max_hmd, v.hmd_depth);
        }
    }

    #[test]
    fn chargram_pipeline_trains_too() {
        let corpus = CorpusKind::Cord19.generate(&GeneratorConfig { n_tables: 60, seed: 13 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_chargram(13)).unwrap();
        let v = pipeline.classify(&corpus.tables[0]);
        assert_eq!(v.rows.len(), corpus.tables[0].n_rows());
    }

    #[test]
    fn pipeline_persistence_roundtrip() {
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 80, seed: 19 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(19)).unwrap();
        let json = pipeline.to_json().unwrap();
        let restored = Pipeline::from_json(&json).expect("round-trips");
        for t in corpus.tables.iter().take(20) {
            assert_eq!(pipeline.classify(t), restored.classify(t));
        }
        assert_eq!(restored.summary().sentences, pipeline.summary().sentences);
    }

    #[test]
    fn trace_is_available_end_to_end() {
        let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 60, seed: 5 });
        let pipeline = Pipeline::train(&corpus.tables, &PipelineConfig::fast_seeded(5)).unwrap();
        let (v, trace) = pipeline.classify_with_trace(&corpus.tables[3]);
        assert!(!trace.is_empty());
        assert_eq!(v.rows.len(), corpus.tables[3].n_rows());
    }
}
