//! Crash-safe training checkpoints.
//!
//! A [`CheckpointStore`] owns one directory of envelope-wrapped (see
//! [`crate::persist`]) [`TrainCheckpoint`] files, one per completed
//! training epoch. Each checkpoint captures everything the deterministic
//! training path cannot recompute: the embedder weights plus the loop
//! state (epoch counter, RNG position, learning-rate schedule) of the
//! stage in flight. Sentences, vocabulary, weak labels, and centroids are
//! pure functions of the corpus and configuration, so they are rebuilt on
//! resume rather than stored.
//!
//! [`CheckpointStore::latest_valid`] scans the directory, fully validates
//! every candidate (envelope checksum, config fingerprint, schema, weight
//! integrity), moves every invalid or uncommitted file into a
//! `quarantine/` subdirectory, and returns the newest checkpoint that
//! survived — corrupt checkpoints are never loaded, and the scan report
//! names each reject with its typed reason, mirroring the corpus
//! quarantine report from the ingestion layer.

use crate::centroid::CentroidShardResume;
use crate::finetune::FinetuneResume;
use crate::persist::{atomic_write, decode_envelope, encode_envelope, ArtifactError};
use crate::pipeline::AnyEmbedder;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use tabmeta_embed::{IntegrityFault, SgnsResume};
use tabmeta_obs::names;

/// Which training stage a checkpoint was taken in, with that stage's loop
/// state at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CheckpointStage {
    /// SGNS embedding (first stage): loop state of the trainer.
    Sgns(SgnsResume),
    /// Contrastive fine-tuning (second stage). SGNS is complete; its pair
    /// count is carried along for the final training summary.
    Finetune {
        /// Total SGNS pairs processed by the completed first stage.
        sgns_pairs: u64,
        /// Fine-tune loop state.
        resume: FinetuneResume,
    },
    /// Out-of-core centroid map-reduce (streaming training only; ranks
    /// past both in-memory stages). SGNS is complete; the partial
    /// per-axis fold state is carried so a kill at any logical shard
    /// boundary resumes to a byte-identical same-seed result.
    CentroidShard {
        /// Total SGNS pairs processed by the completed embedding stage.
        sgns_pairs: u64,
        /// Centroid fold state at the shard boundary (boxed: the fold
        /// accumulators dwarf the other variants).
        resume: Box<CentroidShardResume>,
    },
}

impl CheckpointStage {
    /// Ordering key: later stages and later epochs sort higher.
    fn order_key(&self) -> (u8, usize) {
        match self {
            CheckpointStage::Sgns(s) => (0, s.epochs_done),
            CheckpointStage::Finetune { resume, .. } => (1, resume.epochs_done),
            CheckpointStage::CentroidShard { resume, .. } => (2, resume.shards_done),
        }
    }

    /// Global epoch index (SGNS epochs count from 0; fine-tune epochs and
    /// streaming centroid shards continue after `sgns_epochs`).
    pub fn global_epoch(&self, sgns_epochs: u64) -> u64 {
        match self {
            CheckpointStage::Sgns(s) => s.epochs_done as u64,
            CheckpointStage::Finetune { resume, .. } => sgns_epochs + resume.epochs_done as u64,
            CheckpointStage::CentroidShard { resume, .. } => {
                sgns_epochs + resume.shards_done as u64
            }
        }
    }
}

/// One training checkpoint: stage loop state plus the embedder weights at
/// that epoch boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Stage and loop state.
    pub stage: CheckpointStage,
    /// Embedder weights at the boundary.
    pub embedder: AnyEmbedder,
    /// Training sentences extracted (consistency check for the summary).
    pub sentences: usize,
}

/// One file rejected during a checkpoint scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCheckpoint {
    /// File name inside the checkpoint directory.
    pub file: String,
    /// Why it was rejected.
    pub error: ArtifactError,
    /// Where it was moved (inside `quarantine/`), if the move succeeded.
    pub moved_to: Option<PathBuf>,
}

/// What [`CheckpointStore::latest_valid`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointScanReport {
    /// Candidate files examined.
    pub scanned: usize,
    /// Candidates that passed full validation.
    pub valid: usize,
    /// Files moved to quarantine, with their typed reasons.
    pub quarantined: Vec<QuarantinedCheckpoint>,
    /// File name of the checkpoint chosen for resume, if any.
    pub resumed_from: Option<String>,
}

impl CheckpointScanReport {
    /// `true` when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Human-readable report, one line per quarantined file — same shape
    /// as the corpus ingestion quarantine report.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "checkpoint scan: {} candidate(s), {} valid, {} quarantined\n",
            self.scanned,
            self.valid,
            self.quarantined.len()
        );
        for q in &self.quarantined {
            out.push_str(&format!(
                "  quarantined {}: [{}] {}\n",
                q.file,
                q.error.reason(),
                q.error
            ));
        }
        if let Some(f) = &self.resumed_from {
            out.push_str(&format!("  resuming from {f}\n"));
        }
        out
    }
}

/// A directory of training checkpoints for one training run (identified
/// by its config + corpus fingerprint).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    fingerprint: u64,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory for the run with
    /// this fingerprint (see [`crate::persist::run_fingerprint`]).
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, ArtifactError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| ArtifactError::Io {
            detail: format!("create checkpoint dir {}: {e}", dir.display()),
        })?;
        Ok(Self { dir, fingerprint })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run fingerprint this store validates against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn file_name(stage: &CheckpointStage) -> String {
        let (rank, epoch) = stage.order_key();
        format!("ckpt-{rank}-{epoch:05}.tma")
    }

    /// Serialize and atomically write `checkpoint`; returns its path.
    pub fn write(&self, checkpoint: &TrainCheckpoint) -> Result<PathBuf, ArtifactError> {
        let obs = tabmeta_obs::global();
        let payload = serde_json::to_string(checkpoint).map_err(|e| {
            ArtifactError::SchemaInvalid { detail: format!("serialize checkpoint: {e}") }
        })?;
        let path = self.dir.join(Self::file_name(&checkpoint.stage));
        let bytes = encode_envelope(self.fingerprint, payload.as_bytes());
        let (result, elapsed) =
            obs.timed(names::SPAN_CHECKPOINT_WRITE, || atomic_write(&path, &bytes));
        result?;
        obs.gauge(names::CHECKPOINT_WRITE_SECS).set(elapsed.as_secs_f64());
        obs.counter(names::CHECKPOINT_WRITTEN).inc();
        Ok(path)
    }

    /// Fully validate one candidate's bytes into a checkpoint.
    fn validate(&self, bytes: &[u8]) -> Result<TrainCheckpoint, ArtifactError> {
        let (fingerprint, payload) = decode_envelope(bytes)?;
        if fingerprint != self.fingerprint {
            return Err(ArtifactError::ConfigMismatch {
                expected: self.fingerprint,
                found: fingerprint,
            });
        }
        let json = std::str::from_utf8(payload).map_err(|e| ArtifactError::SchemaInvalid {
            detail: format!("payload not UTF-8: {e}"),
        })?;
        let checkpoint: TrainCheckpoint = serde_json::from_str(json)
            .map_err(|e| ArtifactError::SchemaInvalid { detail: format!("checkpoint: {e}") })?;
        checkpoint.embedder.validate_integrity().map_err(|f| match f {
            IntegrityFault::Shape { detail } => ArtifactError::DimensionMismatch { detail },
            IntegrityFault::NonFinite { location } => ArtifactError::NonFiniteWeights { location },
        })?;
        Ok(checkpoint)
    }

    /// Scan the directory: validate every candidate, quarantine every
    /// invalid or uncommitted file, and return the newest valid
    /// checkpoint (if any) plus the scan report. Older valid checkpoints
    /// are left in place as fallbacks.
    pub fn latest_valid(
        &self,
    ) -> Result<(Option<TrainCheckpoint>, CheckpointScanReport), ArtifactError> {
        let obs = tabmeta_obs::global();
        let mut report = CheckpointScanReport::default();
        let mut best: Option<(TrainCheckpoint, String)> = None;
        let entries = std::fs::read_dir(&self.dir).map_err(|e| ArtifactError::Io {
            detail: format!("read checkpoint dir {}: {e}", self.dir.display()),
        })?;
        let mut names_in_dir: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.starts_with("ckpt-") || n.contains(".tmp-"))
            .collect();
        // Deterministic scan order (newest name last wins ties).
        names_in_dir.sort();
        for name in names_in_dir {
            report.scanned += 1;
            let path = self.dir.join(&name);
            let verdict = if name.contains(".tmp-") {
                // A temp file is an interrupted atomic write: even if its
                // bytes validate, it was never committed under its final
                // name, so it is quarantined rather than resumed from.
                Err(ArtifactError::SchemaInvalid {
                    detail: "uncommitted temp file from an interrupted write".to_string(),
                })
            } else {
                std::fs::read(&path)
                    .map_err(|e| ArtifactError::Io {
                        detail: format!("read {}: {e}", path.display()),
                    })
                    .and_then(|bytes| self.validate(&bytes))
            };
            match verdict {
                Ok(checkpoint) => {
                    report.valid += 1;
                    let newer = best
                        .as_ref()
                        .is_none_or(|(b, _)| checkpoint.stage.order_key() >= b.stage.order_key());
                    if newer {
                        best = Some((checkpoint, name));
                    }
                }
                Err(error) => {
                    obs.counter(names::CHECKPOINT_QUARANTINED).inc();
                    obs.counter(&format!("{}{}", names::ARTIFACT_REJECTED_PREFIX, error.reason()))
                        .inc();
                    let moved_to = self.quarantine(&path, &name);
                    report.quarantined.push(QuarantinedCheckpoint { file: name, error, moved_to });
                }
            }
        }
        let chosen = best.map(|(checkpoint, name)| {
            obs.counter(names::ARTIFACT_LOADED).inc();
            report.resumed_from = Some(name);
            checkpoint
        });
        Ok((chosen, report))
    }

    /// Move a rejected file into `quarantine/`; best-effort (the scan
    /// must not fail because a bad file also resists moving).
    fn quarantine(&self, path: &Path, name: &str) -> Option<PathBuf> {
        let qdir = self.dir.join("quarantine");
        std::fs::create_dir_all(&qdir).ok()?;
        let target = qdir.join(name);
        std::fs::rename(path, &target).ok()?;
        Some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabmeta_embed::{SgnsConfig, Word2Vec};

    fn tiny_checkpoint(epochs_done: usize) -> TrainCheckpoint {
        let sentences: Vec<Vec<String>> =
            vec![vec!["alpha".into(), "beta".into(), "gamma".into()]; 4];
        let config = SgnsConfig { dim: 4, epochs: 3, seed: 9, ..SgnsConfig::default() };
        let (model, _) = Word2Vec::train(&sentences, config.clone());
        let mut state = SgnsResume::fresh(&config);
        state.epochs_done = epochs_done;
        TrainCheckpoint {
            stage: CheckpointStage::Sgns(state),
            embedder: AnyEmbedder::Word2Vec(model),
            sentences: 4,
        }
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("tabmeta-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir, 0xABCD).unwrap()
    }

    #[test]
    fn write_scan_roundtrip_picks_newest() {
        let store = temp_store("roundtrip");
        store.write(&tiny_checkpoint(1)).unwrap();
        store.write(&tiny_checkpoint(2)).unwrap();
        let (found, report) = store.latest_valid().unwrap();
        let found = found.unwrap();
        assert!(matches!(&found.stage, CheckpointStage::Sgns(s) if s.epochs_done == 2));
        assert_eq!(report.scanned, 2);
        assert_eq!(report.valid, 2);
        assert!(report.is_clean());
        assert_eq!(report.resumed_from.as_deref(), Some("ckpt-0-00002.tma"));
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_and_older_survives() {
        let store = temp_store("corrupt");
        store.write(&tiny_checkpoint(1)).unwrap();
        let newest = store.write(&tiny_checkpoint(2)).unwrap();
        // Flip one payload bit in the newest checkpoint.
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        std::fs::write(&newest, &bytes).unwrap();
        let (found, report) = store.latest_valid().unwrap();
        let found = found.unwrap();
        assert!(
            matches!(&found.stage, CheckpointStage::Sgns(s) if s.epochs_done == 1),
            "falls back to the older valid checkpoint"
        );
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.error.reason(), "checksum_mismatch");
        assert!(q.moved_to.as_ref().unwrap().exists(), "file moved into quarantine/");
        assert!(!newest.exists(), "corrupt file removed from the scan set");
        assert!(report.render_text().contains("checksum_mismatch"));
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_quarantined() {
        let store = temp_store("fp");
        store.write(&tiny_checkpoint(1)).unwrap();
        let other = CheckpointStore::open(store.dir(), 0x1234).unwrap();
        let (found, report) = other.latest_valid().unwrap();
        assert!(found.is_none());
        assert_eq!(report.quarantined[0].error.reason(), "config_mismatch");
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn stray_temp_file_is_quarantined() {
        let store = temp_store("tmp");
        store.write(&tiny_checkpoint(1)).unwrap();
        let stray = store.dir().join(".ckpt-0-00002.tma.tmp-999");
        std::fs::write(&stray, b"partial").unwrap();
        let (found, report) = store.latest_valid().unwrap();
        assert!(found.is_some(), "committed checkpoint still resumes");
        assert_eq!(report.quarantined.len(), 1);
        assert!(!stray.exists());
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn truncated_checkpoint_reports_offset() {
        let store = temp_store("trunc");
        let path = store.write(&tiny_checkpoint(1)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..20]).unwrap();
        let (found, report) = store.latest_valid().unwrap();
        assert!(found.is_none());
        assert_eq!(report.quarantined[0].error.reason(), "truncated");
        std::fs::remove_dir_all(store.dir()).unwrap();
    }
}
