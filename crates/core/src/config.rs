//! Pipeline configuration: embedding choice + every phase's knobs.

use crate::bootstrap::BootstrapLabeler;
use crate::centroid::CentroidOptions;
use crate::classifier::ClassifierConfig;
use crate::finetune::FinetuneConfig;
use tabmeta_embed::chargram::CharGramConfig;
use tabmeta_embed::sentences::SentenceConfig;
use tabmeta_embed::sgns::SgnsConfig;

/// Which embedding model the pipeline trains (§III-A pairs Word2Vec with
/// BioBERT; CharGram is our BioBERT substitute, see DESIGN.md §2).
#[derive(Debug, Clone)]
pub enum EmbeddingChoice {
    /// Skip-gram Word2Vec (paper default for the non-biomedical corpora).
    Word2Vec(SgnsConfig),
    /// Subword CharGram model (biomedical corpora).
    CharGram(CharGramConfig),
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Embedding model and its hyper-parameters.
    pub embedding: EmbeddingChoice,
    /// Table→sentence extraction.
    pub sentences: SentenceConfig,
    /// Bootstrap weak-labeling thresholds.
    pub bootstrap: BootstrapLabeler,
    /// Centroid range estimation options.
    pub centroid: CentroidOptions,
    /// Contrastive fine-tuning; `None` disables it (the ablation knob).
    pub finetune: Option<FinetuneConfig>,
    /// Classification-phase knobs.
    pub classifier: ClassifierConfig,
    /// Worker threads for the training path (sentence extraction, SGNS,
    /// bootstrap labeling, centroid estimation). `1` — the default, and
    /// what every determinism test pins — keeps the bit-identical seeded
    /// sequential stream; `>1` trains with Hogwild SGNS and map-reduce
    /// centroids, which are only statistically reproducible.
    pub threads: usize,
}

impl PipelineConfig {
    /// Paper-faithful configuration: 300-dimensional Word2Vec, window 3,
    /// `min_count` 1, contrastive fine-tuning on.
    pub fn paper(seed: u64) -> Self {
        Self {
            embedding: EmbeddingChoice::Word2Vec(SgnsConfig { seed, ..SgnsConfig::default() }),
            sentences: SentenceConfig::default(),
            bootstrap: BootstrapLabeler::default(),
            centroid: CentroidOptions { seed: seed ^ 0xce, ..CentroidOptions::default() },
            finetune: Some(FinetuneConfig { seed: seed ^ 0xf7, ..FinetuneConfig::default() }),
            classifier: ClassifierConfig::default(),
            threads: 1,
        }
    }

    /// Fast configuration for tests, examples and experiment defaults:
    /// 48-dimensional Word2Vec, fewer epochs, fine-tuning on.
    pub fn fast() -> Self {
        Self::fast_seeded(0xfa57)
    }

    /// [`PipelineConfig::fast`] with an explicit seed.
    pub fn fast_seeded(seed: u64) -> Self {
        Self {
            embedding: EmbeddingChoice::Word2Vec(SgnsConfig {
                dim: 48,
                epochs: 4,
                seed,
                ..SgnsConfig::default()
            }),
            sentences: SentenceConfig::default(),
            bootstrap: BootstrapLabeler::default(),
            centroid: CentroidOptions { seed: seed ^ 0xce, ..CentroidOptions::default() },
            finetune: Some(FinetuneConfig { seed: seed ^ 0xf7, ..FinetuneConfig::default() }),
            classifier: ClassifierConfig::default(),
            threads: 1,
        }
    }

    /// CharGram (BioBERT-substitute) variant of [`PipelineConfig::fast`].
    pub fn fast_chargram(seed: u64) -> Self {
        Self {
            embedding: EmbeddingChoice::CharGram(CharGramConfig {
                sgns: SgnsConfig { dim: 48, epochs: 3, seed, ..SgnsConfig::default() },
                ..CharGramConfig::tiny(seed)
            }),
            ..Self::fast_seeded(seed)
        }
    }

    /// Disable contrastive fine-tuning (ablation).
    pub fn without_finetune(mut self) -> Self {
        self.finetune = None;
        self
    }

    /// Set the training worker count (clamped to at least 1). See
    /// [`PipelineConfig::threads`] for the determinism trade-off.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_iv_c() {
        let c = PipelineConfig::paper(1);
        match &c.embedding {
            EmbeddingChoice::Word2Vec(s) => {
                assert_eq!(s.dim, 300);
                assert_eq!(s.window, 3);
                assert_eq!(s.min_count, 1);
            }
            _ => panic!("paper config uses Word2Vec"),
        }
        assert!(c.finetune.is_some());
    }

    #[test]
    fn fast_config_is_small() {
        match PipelineConfig::fast().embedding {
            EmbeddingChoice::Word2Vec(s) => assert!(s.dim <= 64),
            _ => panic!(),
        }
    }

    #[test]
    fn ablation_strips_finetune() {
        assert!(PipelineConfig::fast().without_finetune().finetune.is_none());
    }

    #[test]
    fn chargram_variant_selects_chargram() {
        assert!(matches!(PipelineConfig::fast_chargram(2).embedding, EmbeddingChoice::CharGram(_)));
    }

    #[test]
    fn threads_default_to_sequential_and_clamp() {
        assert_eq!(PipelineConfig::fast().threads, 1);
        assert_eq!(PipelineConfig::paper(1).threads, 1);
        assert_eq!(PipelineConfig::fast().with_threads(4).threads, 4);
        assert_eq!(PipelineConfig::fast().with_threads(0).threads, 1);
    }
}
