//! Durable artifact persistence: a versioned, checksummed envelope plus
//! atomic file writes.
//!
//! Every on-disk artifact (trained model, training checkpoint) is wrapped
//! in a fixed 28-byte header followed by a JSON payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic            b"TMA1"
//!      4     4  format_version   u32 LE
//!      8     8  config_fingerprint  u64 LE (FNV-1a over config + corpus)
//!     16     8  payload_len      u64 LE
//!     24     4  checksum         CRC-32 (IEEE) of the payload, u32 LE
//!     28     —  payload          JSON
//! ```
//!
//! Decoding validates structure outermost-first — magic, version, length,
//! checksum — and reports the first failure as a typed [`ArtifactError`]
//! with the byte offset where the problem was detected, so a `classify`
//! run against a truncated or bit-flipped model file names the damage
//! instead of deserializing garbage. Loading a [`Pipeline`] additionally
//! deep-validates the payload (matrix shapes vs. the vocabulary, centroid
//! reference dimensions vs. the embedder, finiteness everywhere) before
//! the model is allowed near the classify path.
//!
//! Writes go through [`atomic_write`]: temp file in the destination
//! directory → `fsync` → `rename`, so a crash mid-write leaves either the
//! old artifact or a quarantineable temp file — never a half-written
//! artifact under the final name.

use crate::config::PipelineConfig;
use crate::pipeline::Pipeline;
use std::io::Write;
use std::path::Path;
use tabmeta_obs::names;
use tabmeta_tabular::Table;

/// First four bytes of every tabmeta artifact.
pub const MAGIC: [u8; 4] = *b"TMA1";
/// Current (and only) envelope format version.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed byte length of the envelope header preceding the payload.
pub const HEADER_LEN: usize = 28;

/// Why an artifact was rejected. Ordered outermost-in: the decoder stops
/// at the first failure, so a single error names the damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file ends before a required section.
    Truncated {
        /// Byte offset where the missing section starts.
        offset: usize,
        /// Bytes the section needs.
        needed: usize,
        /// Bytes actually present from `offset`.
        available: usize,
    },
    /// Payload bytes do not hash to the checksum recorded in the header.
    ChecksumMismatch {
        /// CRC-32 recorded in the header.
        expected: u32,
        /// CRC-32 of the payload as read.
        actual: u32,
    },
    /// Header carries a version this build cannot read.
    VersionUnsupported {
        /// Version found in the header.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// The payload is not valid JSON for the expected schema (also covers
    /// a bad magic, which means the file is not a tabmeta artifact at all).
    SchemaInvalid {
        /// What failed to parse, with the decoder's own message.
        detail: String,
    },
    /// A weight matrix or centroid reference contains NaN or ±∞.
    NonFiniteWeights {
        /// Which tensor, row and column.
        location: String,
    },
    /// Internally inconsistent shapes (matrix rows vs. vocabulary,
    /// centroid reference length vs. embedder dimension, …).
    DimensionMismatch {
        /// Which dimensions disagree.
        detail: String,
    },
    /// The artifact's config fingerprint does not match this run's.
    ConfigMismatch {
        /// Fingerprint this run expects.
        expected: u64,
        /// Fingerprint recorded in the header.
        found: u64,
    },
    /// The underlying file operation failed.
    Io {
        /// Operation and OS error text.
        detail: String,
    },
}

impl ArtifactError {
    /// Stable snake_case tag, used as the `artifact.rejected.<reason>`
    /// counter suffix and in quarantine reports.
    pub fn reason(&self) -> &'static str {
        match self {
            ArtifactError::Truncated { .. } => "truncated",
            ArtifactError::ChecksumMismatch { .. } => "checksum_mismatch",
            ArtifactError::VersionUnsupported { .. } => "version_unsupported",
            ArtifactError::SchemaInvalid { .. } => "schema_invalid",
            ArtifactError::NonFiniteWeights { .. } => "non_finite_weights",
            ArtifactError::DimensionMismatch { .. } => "dimension_mismatch",
            ArtifactError::ConfigMismatch { .. } => "config_mismatch",
            ArtifactError::Io { .. } => "io",
        }
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Truncated { offset, needed, available } => write!(
                f,
                "truncated at byte {offset}: section needs {needed} bytes, {available} present"
            ),
            ArtifactError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch at byte {HEADER_LEN}: header says {expected:#010x}, \
                 payload hashes to {actual:#010x}"
            ),
            ArtifactError::VersionUnsupported { found, supported } => write!(
                f,
                "unsupported format version {found} at byte 4 (this build reads <= {supported})"
            ),
            ArtifactError::SchemaInvalid { detail } => write!(f, "invalid schema: {detail}"),
            ArtifactError::NonFiniteWeights { location } => {
                write!(f, "non-finite weight in {location}")
            }
            ArtifactError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            ArtifactError::ConfigMismatch { expected, found } => write!(
                f,
                "config fingerprint {found:#018x} at byte 8 does not match this run's \
                 {expected:#018x}"
            ),
            ArtifactError::Io { detail } => write!(f, "io: {detail}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

// ---------------------------------------------------------------------------
// Checksums — hand-rolled, zero new dependencies.
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Streaming FNV-1a (64-bit) hasher for fingerprints.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Fold `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold a length-prefixed string (prefixing prevents `"ab","c"` from
    /// colliding with `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// Fold a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// FNV-1a (64-bit) of `bytes` in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Fingerprint of one training run: the pipeline configuration (all
/// determinism-relevant knobs) plus the corpus content. `threads` is
/// excluded — it changes the schedule, not the task — so a checkpoint
/// written at `threads = 4` can resume at `threads = 1`.
pub fn run_fingerprint(config: &PipelineConfig, tables: &[Table]) -> u64 {
    let mut h = Fnv1a::new();
    // Every config knob derives Debug with full field values; hashing the
    // rendering tracks new knobs automatically. A config struct with
    // `threads` stripped keeps the fingerprint schedule-independent.
    let mut config = config.clone();
    config.threads = 1;
    h.write_str(&format!("{config:?}"));
    h.write_u64(tables.len() as u64);
    for t in tables {
        h.write_u64(t.id);
        h.write_str(&t.caption);
        h.write_u64(t.n_rows() as u64);
        h.write_u64(t.n_cols() as u64);
        for r in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                h.write_str(&t.cell(r, c).text);
            }
        }
    }
    h.finish()
}

/// Incremental run fingerprint for the out-of-core streaming path, where
/// the corpus is never resident and the table count is unknown until the
/// first pass completes.
///
/// Folds the same per-table byte sequence as [`run_fingerprint`] but
/// appends the table count *last* instead of first (FNV cannot splice a
/// prefix in after the fact), so streaming fingerprints are
/// self-consistent across passes and resumes but deliberately distinct
/// from in-memory fingerprints — a streaming checkpoint can never be
/// mistaken for an in-memory one. The centroid logical-shard size is
/// folded in too: it changes the map-reduce fold structure, so two runs
/// with different shard sizes must never share a checkpoint store.
#[derive(Debug, Clone)]
pub struct StreamFingerprint {
    h: Fnv1a,
    tables: u64,
}

impl StreamFingerprint {
    /// Start a fingerprint over `config` (with `threads` stripped, like
    /// [`run_fingerprint`]) and the given centroid logical-shard size.
    pub fn new(config: &PipelineConfig, centroid_shard_tables: usize) -> Self {
        let mut h = Fnv1a::new();
        let mut config = config.clone();
        config.threads = 1;
        h.write_str(&format!("{config:?}"));
        h.write_u64(centroid_shard_tables as u64);
        Self { h, tables: 0 }
    }

    /// Fold one accepted table (call in corpus order).
    pub fn fold_table(&mut self, t: &Table) {
        self.tables += 1;
        self.h.write_u64(t.id);
        self.h.write_str(&t.caption);
        self.h.write_u64(t.n_rows() as u64);
        self.h.write_u64(t.n_cols() as u64);
        for r in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                self.h.write_str(&t.cell(r, c).text);
            }
        }
    }

    /// The fingerprint over everything folded so far.
    pub fn finish(&self) -> u64 {
        let mut h = self.h.clone();
        h.write_u64(self.tables);
        h.finish()
    }
}

// ---------------------------------------------------------------------------
// Envelope encode / decode.
// ---------------------------------------------------------------------------

/// Wrap `payload` in the versioned, checksummed envelope.
pub fn encode_envelope(fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Read an LE integer section or report exactly where the file ran out.
fn take<const N: usize>(bytes: &[u8], offset: usize) -> Result<[u8; N], ArtifactError> {
    match bytes.get(offset..offset + N) {
        Some(s) => {
            let mut a = [0u8; N];
            a.copy_from_slice(s);
            Ok(a)
        }
        None => Err(ArtifactError::Truncated {
            offset,
            needed: N,
            available: bytes.len().saturating_sub(offset),
        }),
    }
}

/// Validate the envelope and return `(config_fingerprint, payload)`.
///
/// Checks run outermost-first: magic, version, declared length vs. actual
/// bytes, then the payload checksum. The first failure wins.
pub fn decode_envelope(bytes: &[u8]) -> Result<(u64, &[u8]), ArtifactError> {
    let magic: [u8; 4] = take(bytes, 0)?;
    if magic != MAGIC {
        return Err(ArtifactError::SchemaInvalid {
            detail: format!("bad magic at byte 0: {magic:02x?} (expected {MAGIC:02x?})"),
        });
    }
    let version = u32::from_le_bytes(take(bytes, 4)?);
    if version != FORMAT_VERSION {
        return Err(ArtifactError::VersionUnsupported {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let fingerprint = u64::from_le_bytes(take(bytes, 8)?);
    let payload_len = u64::from_le_bytes(take(bytes, 16)?) as usize;
    let expected_crc = u32::from_le_bytes(take(bytes, 24)?);
    let payload = bytes.get(HEADER_LEN..HEADER_LEN + payload_len).ok_or({
        ArtifactError::Truncated {
            offset: HEADER_LEN,
            needed: payload_len,
            available: bytes.len().saturating_sub(HEADER_LEN),
        }
    })?;
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(ArtifactError::ChecksumMismatch { expected: expected_crc, actual: actual_crc });
    }
    Ok((fingerprint, payload))
}

// ---------------------------------------------------------------------------
// Atomic writes.
// ---------------------------------------------------------------------------

fn io_err(op: &str, path: &Path, e: std::io::Error) -> ArtifactError {
    ArtifactError::Io { detail: format!("{op} {}: {e}", path.display()) }
}

/// Durably replace `path` with `bytes`: write to a temp file in the same
/// directory, `fsync` it, `rename` over the destination, then `fsync` the
/// directory. A crash at any point leaves either the previous file intact
/// or an orphaned `.tmp-*` file — never a partially-written `path`.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| ArtifactError::Io {
        detail: format!("atomic_write needs a file name, got {}", path.display()),
    })?;
    let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        file.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
        file.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, e))?;
        // Rename durability needs the directory entry flushed too.
        #[cfg(unix)]
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// Pipeline artifacts.
// ---------------------------------------------------------------------------

/// Serialize `pipeline`, wrap it in the envelope, and atomically write it
/// to `path`. `fingerprint` records the training run (see
/// [`run_fingerprint`]); pass `0` when the corpus is unavailable.
pub fn save_pipeline(
    path: &Path,
    pipeline: &Pipeline,
    fingerprint: u64,
) -> Result<(), ArtifactError> {
    let payload = pipeline
        .to_json()
        .map_err(|e| ArtifactError::SchemaInvalid { detail: format!("serialize pipeline: {e}") })?;
    atomic_write(path, &encode_envelope(fingerprint, payload.as_bytes()))
}

/// Decode, checksum-verify, parse, and deep-validate a pipeline artifact
/// from raw bytes. Returns the pipeline and the fingerprint recorded in
/// the header.
pub fn load_pipeline_bytes(bytes: &[u8]) -> Result<(Pipeline, u64), ArtifactError> {
    let (fingerprint, payload) = decode_envelope(bytes)?;
    let json = std::str::from_utf8(payload)
        .map_err(|e| ArtifactError::SchemaInvalid { detail: format!("payload not UTF-8: {e}") })?;
    let pipeline = Pipeline::from_json(json)?;
    Ok((pipeline, fingerprint))
}

/// [`load_pipeline_bytes`] from a file, with `artifact.loaded` /
/// `artifact.rejected.<reason>` telemetry.
pub fn load_pipeline(path: &Path) -> Result<(Pipeline, u64), ArtifactError> {
    let result = std::fs::read(path)
        .map_err(|e| io_err("read", path, e))
        .and_then(|bytes| load_pipeline_bytes(&bytes));
    record_load(&result);
    result
}

/// Count an artifact load attempt: `artifact.loaded` on success,
/// `artifact.rejected.<reason>` on failure.
pub(crate) fn record_load<T>(result: &Result<T, ArtifactError>) {
    let obs = tabmeta_obs::global();
    match result {
        Ok(_) => obs.counter(names::ARTIFACT_LOADED).inc(),
        Err(e) => obs.counter(&format!("{}{}", names::ARTIFACT_REJECTED_PREFIX, e.reason())).inc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn envelope_roundtrip() {
        let payload = b"{\"k\":1}";
        let bytes = encode_envelope(0xDEAD_BEEF, payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let (fp, body) = decode_envelope(&bytes).unwrap();
        assert_eq!(fp, 0xDEAD_BEEF);
        assert_eq!(body, payload);
    }

    #[test]
    fn bad_magic_is_schema_invalid() {
        let mut bytes = encode_envelope(1, b"x");
        bytes[0] = b'X';
        assert!(matches!(decode_envelope(&bytes), Err(ArtifactError::SchemaInvalid { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_envelope(1, b"x");
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(
            decode_envelope(&bytes).unwrap_err(),
            ArtifactError::VersionUnsupported { found: 2, supported: FORMAT_VERSION }
        );
    }

    #[test]
    fn truncation_reports_offset() {
        let bytes = encode_envelope(1, b"hello world");
        // Cut inside the payload.
        let err = decode_envelope(&bytes[..HEADER_LEN + 3]).unwrap_err();
        assert_eq!(err, ArtifactError::Truncated { offset: HEADER_LEN, needed: 11, available: 3 });
        // Cut inside the header.
        let err = decode_envelope(&bytes[..10]).unwrap_err();
        assert_eq!(err, ArtifactError::Truncated { offset: 8, needed: 8, available: 2 });
    }

    #[test]
    fn payload_bitflip_is_checksum_mismatch() {
        let mut bytes = encode_envelope(1, b"hello world");
        bytes[HEADER_LEN + 4] ^= 0x10;
        assert!(matches!(decode_envelope(&bytes), Err(ArtifactError::ChecksumMismatch { .. })));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("tabmeta-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"one").unwrap();
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_content() {
        use crate::config::PipelineConfig;
        use tabmeta_corpora::{CorpusKind, GeneratorConfig};
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 4, seed: 3 });
        let mut config = PipelineConfig::fast_seeded(3);
        let base = run_fingerprint(&config, &corpus.tables);
        config.threads = 8;
        assert_eq!(run_fingerprint(&config, &corpus.tables), base, "threads excluded");
        config.threads = 1;
        let other = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 4, seed: 4 });
        assert_ne!(run_fingerprint(&config, &other.tables), base, "corpus included");
        let mut tweaked = PipelineConfig::fast_seeded(4);
        tweaked.threads = 1;
        assert_ne!(run_fingerprint(&tweaked, &corpus.tables), base, "config included");
    }
}
