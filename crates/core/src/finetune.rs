//! Contrastive (Siamese) fine-tuning of term embeddings (§III-D, Fig. 4).
//!
//! Training pairs come from the weak labels: *(target, positive)* pairs are
//! two metadata levels or two data levels; *(target, negative)* pairs are a
//! metadata level against a data level. The objective pulls positive pairs'
//! aggregated vectors together (angle → small) and pushes negative pairs
//! apart (angle → large), stopping at configurable margins so the geometry
//! is shaped rather than collapsed.
//!
//! Because an aggregated level vector is the **sum** of its term vectors
//! (Def. 8), the cosine gradient with respect to the aggregate distributes
//! directly onto every constituent term; we scale it by `1/n_terms` to keep
//! per-term step sizes comparable across long and short levels.

use crate::aggregate::{level_terms, level_vector};
use crate::bootstrap::WeakLabels;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use tabmeta_embed::TunableEmbedder;
use tabmeta_linalg::{cosine_similarity, norm};
use tabmeta_tabular::{Axis, Table};
use tabmeta_text::Tokenizer;

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FinetuneConfig {
    /// Passes over the weakly-labeled tables.
    pub epochs: usize,
    /// Step size applied to the (already normalized) cosine gradient.
    pub learning_rate: f32,
    /// Positive pairs closer than this angle (degrees) are left alone.
    pub positive_margin_deg: f32,
    /// Negative pairs farther than this angle (degrees) are left alone.
    pub negative_margin_deg: f32,
    /// Cap on data↔data pairs per table per epoch.
    pub max_data_pairs: usize,
    /// Cap on metadata↔data pairs per table per epoch.
    pub max_neg_pairs: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            learning_rate: 0.15,
            positive_margin_deg: 20.0,
            negative_margin_deg: 65.0,
            max_data_pairs: 4,
            max_neg_pairs: 6,
            seed: 0xf17e,
        }
    }
}

/// What a fine-tuning run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FinetuneReport {
    /// Positive pairs that received an update.
    pub positive_updates: u64,
    /// Negative pairs that received an update.
    pub negative_updates: u64,
    /// Pairs skipped because they already satisfied their margin.
    pub satisfied: u64,
}

/// Loop state of a fine-tune run at an epoch boundary: epoch counter, RNG
/// position, and the accumulated report. Serialized into training
/// checkpoints; restoring it via [`run_resumable`] continues the identical
/// negative-mining stream, so a resumed run is bit-identical to an
/// uninterrupted one (fine-tuning is always sequential).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FinetuneResume {
    /// Epochs fully completed.
    pub epochs_done: usize,
    /// xoshiro256++ state of the mining RNG at the boundary.
    pub rng: [u64; 4],
    /// Report accumulated over the completed epochs.
    pub report: FinetuneReport,
}

/// Per-epoch observer for resumable fine-tuning: called with the embedder
/// and loop state after every completed epoch; returning
/// [`std::ops::ControlFlow::Break`] stops the run at that boundary.
pub type FinetuneSink<'s, E> = &'s mut dyn FnMut(&E, &FinetuneResume) -> std::ops::ControlFlow<()>;

/// ∂cos(A,B)/∂A = B/(|A||B|) − cos·A/|A|².
fn cosine_grad_wrt_a(a: &[f32], b: &[f32], cos: f32) -> Vec<f32> {
    let na = norm(a);
    let nb = norm(b);
    let mut g = vec![0.0f32; a.len()];
    if na == 0.0 || nb == 0.0 {
        return g;
    }
    let inv = 1.0 / (na * nb);
    let self_term = cos / (na * na);
    for i in 0..a.len() {
        g[i] = b[i] * inv - a[i] * self_term;
    }
    g
}

/// One pair update: move the aggregates' constituent terms so the pair's
/// cosine moves toward its target side of the margin. The pair's hinge
/// loss (degrees past the margin; zero when satisfied) accumulates into
/// `epoch_loss` so callers can report a loss trajectory.
///
/// Returns whether the pair was actually evaluated (updated or found
/// satisfied). Blank/OOV levels yield no aggregate vector and return
/// `false` — callers budgeting pairs must not spend budget on those.
#[allow(clippy::too_many_arguments)]
fn update_pair<E: TunableEmbedder + ?Sized>(
    table: &Table,
    axis: Axis,
    i: usize,
    j: usize,
    positive: bool,
    config: &FinetuneConfig,
    embedder: &mut E,
    tokenizer: &Tokenizer,
    report: &mut FinetuneReport,
    epoch_loss: &mut f64,
) -> bool {
    let (Some(a), Some(b)) = (
        level_vector(table, axis, i, embedder, tokenizer),
        level_vector(table, axis, j, embedder, tokenizer),
    ) else {
        return false;
    };
    let cos = cosine_similarity(&a, &b);
    let angle = cos.acos().to_degrees();
    let hinge = if positive {
        (angle - config.positive_margin_deg).max(0.0)
    } else {
        (config.negative_margin_deg - angle).max(0.0)
    };
    *epoch_loss += hinge as f64;
    let sign = if positive {
        if angle <= config.positive_margin_deg {
            report.satisfied += 1;
            return true;
        }
        1.0
    } else {
        if angle >= config.negative_margin_deg {
            report.satisfied += 1;
            return true;
        }
        -1.0
    };
    let grad_a = cosine_grad_wrt_a(&a, &b, cos);
    let grad_b = cosine_grad_wrt_a(&b, &a, cos);
    for (level, grad) in [(i, grad_a), (j, grad_b)] {
        let terms = level_terms(table, axis, level, tokenizer);
        if terms.is_empty() {
            continue;
        }
        let step = sign * config.learning_rate / terms.len() as f32;
        let mut scaled = grad;
        tabmeta_linalg::scale(&mut scaled, step);
        for term in &terms {
            embedder.apply_gradient(term, &scaled);
        }
    }
    if positive {
        report.positive_updates += 1;
    } else {
        report.negative_updates += 1;
    }
    true
}

/// Run contrastive fine-tuning over weakly-labeled tables, mutating the
/// embedder's term vectors in place.
pub fn run<E: TunableEmbedder + ?Sized>(
    tables: &[Table],
    weak: &[WeakLabels],
    embedder: &mut E,
    tokenizer: &Tokenizer,
    config: &FinetuneConfig,
) -> FinetuneReport {
    run_resumable(tables, weak, embedder, tokenizer, config, None, None).0
}

/// [`run`] with checkpoint/resume plumbing: `resume` restores the loop
/// state captured at an epoch boundary (the caller restores the embedder
/// weights separately), `sink` observes every completed epoch and may
/// break out. Returns the accumulated report and whether the sink
/// interrupted the run.
pub fn run_resumable<E: TunableEmbedder + ?Sized>(
    tables: &[Table],
    weak: &[WeakLabels],
    embedder: &mut E,
    tokenizer: &Tokenizer,
    config: &FinetuneConfig,
    resume: Option<FinetuneResume>,
    mut sink: Option<FinetuneSink<'_, E>>,
) -> (FinetuneReport, bool) {
    assert_eq!(tables.len(), weak.len(), "tables and weak labels must align");
    use tabmeta_obs::names;
    let obs = tabmeta_obs::global();
    let pair_counter = obs.counter(names::FINETUNE_PAIRS);
    let loss_gauge = obs.gauge(names::FINETUNE_LOSS);
    let rate_gauge = obs.gauge(names::FINETUNE_PAIRS_PER_SEC);
    let epoch_secs_gauge = obs.gauge(names::FINETUNE_EPOCH_SECS);
    let (start_epoch, mut rng, mut report) = match resume {
        Some(state) => (state.epochs_done, StdRng::from_state(state.rng), state.report),
        None => (0, StdRng::seed_from_u64(config.seed), FinetuneReport::default()),
    };
    let mut interrupted = false;
    for epoch in start_epoch..config.epochs {
        let pairs_before = report.positive_updates + report.negative_updates + report.satisfied;
        let (epoch_loss, elapsed) = obs.timed(names::SPAN_EPOCH, || {
            let mut epoch_loss = 0.0f64;
            for (table, labels) in tables.iter().zip(weak) {
                for axis in [Axis::Row, Axis::Column] {
                    let meta = labels.metadata_indices(axis);
                    let data = labels.data_indices(axis);
                    // Positive: every metadata level pair (runs are ≤5 levels,
                    // so this is at most 10 pairs). All-pairs rather than
                    // consecutive-only matters for deep hierarchies: level 1
                    // and level 3 must also read as "both metadata".
                    for a in 0..meta.len() {
                        for b in a + 1..meta.len() {
                            update_pair(
                                table,
                                axis,
                                meta[a],
                                meta[b],
                                true,
                                config,
                                embedder,
                                tokenizer,
                                &mut report,
                                &mut epoch_loss,
                            );
                        }
                    }
                    // Positive: consecutive data levels (capped).
                    for w in data.windows(2).take(config.max_data_pairs) {
                        update_pair(
                            table,
                            axis,
                            w[0],
                            w[1],
                            true,
                            config,
                            embedder,
                            tokenizer,
                            &mut report,
                            &mut epoch_loss,
                        );
                    }
                    // Negative: metadata vs random data levels (capped). The
                    // starting metadata level rotates each epoch so a run
                    // deeper than the budget still gets negative pressure on
                    // its tail levels, and budget is only spent on pairs that
                    // actually evaluate (blank/OOV levels no-op for free).
                    if !data.is_empty() && !meta.is_empty() {
                        let mut budget = config.max_neg_pairs;
                        for k in 0..meta.len() {
                            if budget == 0 {
                                break;
                            }
                            let m = meta[(k + epoch) % meta.len()];
                            let d = data[rng.random_range(0..data.len())];
                            if update_pair(
                                table,
                                axis,
                                m,
                                d,
                                false,
                                config,
                                embedder,
                                tokenizer,
                                &mut report,
                                &mut epoch_loss,
                            ) {
                                budget -= 1;
                            }
                        }
                    }
                }
            }
            epoch_loss
        });
        let epoch_pairs =
            report.positive_updates + report.negative_updates + report.satisfied - pairs_before;
        pair_counter.add(epoch_pairs);
        let secs = elapsed.as_secs_f64();
        epoch_secs_gauge.set(secs);
        if epoch_pairs > 0 {
            loss_gauge.set(epoch_loss / epoch_pairs as f64);
            if secs > 0.0 {
                rate_gauge.set(epoch_pairs as f64 / secs);
            }
        }
        if let Some(sink) = sink.as_mut() {
            let state = FinetuneResume { epochs_done: epoch + 1, rng: rng.state(), report };
            if sink(&*embedder, &state).is_break() {
                interrupted = true;
                break;
            }
        }
    }
    (report, interrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapLabeler;
    use std::collections::HashMap;
    use tabmeta_embed::TermEmbedder;
    use tabmeta_linalg::angle_degrees;

    #[derive(Clone)]
    struct MapEmbedder {
        map: HashMap<String, Vec<f32>>,
    }

    impl TermEmbedder for MapEmbedder {
        fn dim(&self) -> usize {
            3
        }
        fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
            if let Some(v) = self.map.get(term) {
                tabmeta_linalg::add_assign(out, v);
                true
            } else {
                false
            }
        }
    }

    impl TunableEmbedder for MapEmbedder {
        fn apply_gradient(&mut self, term: &str, grad: &[f32]) {
            if let Some(v) = self.map.get_mut(term) {
                tabmeta_linalg::add_assign(v, grad);
            }
        }
    }

    /// Embedder where header and data terms start only ~40° apart —
    /// a weak separation fine-tuning should widen.
    fn weakly_separated() -> MapEmbedder {
        let mut map = HashMap::new();
        map.insert("age".into(), vec![1.0, 0.6, 0.0]);
        map.insert("sex".into(), vec![1.0, 0.5, 0.1]);
        map.insert("<int>".into(), vec![0.6, 1.0, 0.0]);
        map.insert("<bigint>".into(), vec![0.5, 1.0, 0.1]);
        MapEmbedder { map }
    }

    fn tables() -> Vec<Table> {
        (0..8u64)
            .map(|id| {
                Table::from_strings(id, &[&["age", "sex"], &["1", "14,373"], &["2", "9,201"]])
            })
            .collect()
    }

    #[test]
    fn finetuning_widens_meta_data_angle() {
        let tables = tables();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let mut e = weakly_separated();
        let tok = Tokenizer::default();

        let header = e.aggregate(["age", "sex"]).unwrap();
        let data = e.aggregate(["<int>", "<bigint>"]).unwrap();
        let before = angle_degrees(&header, &data);

        let config = FinetuneConfig { epochs: 6, learning_rate: 0.1, ..Default::default() };
        let report = run(&tables, &weak, &mut e, &tok, &config);
        assert!(report.negative_updates > 0, "negative pairs should fire: {report:?}");

        let header = e.aggregate(["age", "sex"]).unwrap();
        let data = e.aggregate(["<int>", "<bigint>"]).unwrap();
        let after = angle_degrees(&header, &data);
        assert!(
            after > before + 5.0,
            "fine-tuning should widen the metadata↔data angle: {before:.1}° → {after:.1}°"
        );
    }

    #[test]
    fn satisfied_pairs_are_skipped() {
        let tables = tables();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let mut e = weakly_separated();
        // Margins nobody can violate: positives always satisfied (180°
        // margin), negatives always satisfied (0° margin).
        let config = FinetuneConfig {
            epochs: 1,
            positive_margin_deg: 180.0,
            negative_margin_deg: 0.0,
            ..Default::default()
        };
        let before = e.clone();
        let report = run(&tables, &weak, &mut e, &Tokenizer::default(), &config);
        assert_eq!(report.positive_updates + report.negative_updates, 0);
        assert!(report.satisfied > 0);
        assert_eq!(e.map.get("age"), before.map.get("age"), "no update may occur");
    }

    #[test]
    fn oov_metadata_levels_do_not_consume_negative_budget() {
        use crate::bootstrap::WeakLabel;
        // First metadata row is entirely OOV: its level vector is None and
        // `update_pair` no-ops. The budget must survive for the second,
        // in-vocab metadata level (this regressed: budget was spent on the
        // no-op and negatives never fired).
        let table = Table::from_strings(0, &[&["zzz", "qqq"], &["age", "sex"], &["1", "14,373"]]);
        let weak = WeakLabels {
            rows: vec![WeakLabel::Metadata, WeakLabel::Metadata, WeakLabel::Data],
            columns: vec![WeakLabel::Unknown, WeakLabel::Unknown],
            from_markup: true,
        };
        let mut e = weakly_separated();
        let config = FinetuneConfig { epochs: 1, max_neg_pairs: 1, ..Default::default() };
        let report = run(&[table], &[weak], &mut e, &Tokenizer::default(), &config);
        assert!(
            report.negative_updates > 0,
            "in-vocab metadata level must still get negative pressure: {report:?}"
        );
    }

    #[test]
    fn negative_mining_rotates_across_epochs() {
        use crate::bootstrap::WeakLabel;
        // Two metadata levels, budget of one negative pair per epoch.
        // Rotation must give each level an update across two epochs; the
        // old code always spent the budget on level 0.
        let table = Table::from_strings(0, &[&["age"], &["sex"], &["1"]]);
        let weak = WeakLabels {
            rows: vec![WeakLabel::Metadata, WeakLabel::Metadata, WeakLabel::Data],
            columns: vec![WeakLabel::Unknown],
            from_markup: true,
        };
        let mut e = weakly_separated();
        let before = e.clone();
        let config = FinetuneConfig {
            epochs: 2,
            max_neg_pairs: 1,
            // Positives never fire, negatives always do.
            positive_margin_deg: 180.0,
            negative_margin_deg: 180.0,
            ..Default::default()
        };
        let report = run(&[table], &[weak], &mut e, &Tokenizer::default(), &config);
        assert_eq!(report.negative_updates, 2, "{report:?}");
        assert_ne!(e.map.get("age"), before.map.get("age"), "epoch 0 updates level 1");
        assert_ne!(e.map.get("sex"), before.map.get("sex"), "epoch 1 rotates to level 2");
    }

    #[test]
    fn resumable_run_is_bit_identical() {
        use std::ops::ControlFlow;
        let tables = tables();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let config = FinetuneConfig { epochs: 4, ..Default::default() };
        let tok = Tokenizer::default();
        let mut baseline = weakly_separated();
        let base_report = run(&tables, &weak, &mut baseline, &tok, &config);

        // Interrupt after epoch 2, then resume from the snapshot alone.
        let mut e = weakly_separated();
        let mut snap = None;
        let mut sink = |em: &MapEmbedder, s: &FinetuneResume| {
            if s.epochs_done == 2 {
                snap = Some((em.clone(), s.clone()));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        };
        let (_, interrupted) =
            run_resumable(&tables, &weak, &mut e, &tok, &config, None, Some(&mut sink));
        assert!(interrupted);
        let (mut resumed, state) = snap.unwrap();
        let (report, interrupted) =
            run_resumable(&tables, &weak, &mut resumed, &tok, &config, Some(state), None);
        assert!(!interrupted);
        assert_eq!(report, base_report);
        assert_eq!(resumed.map, baseline.map, "resume must be bit-identical");
    }

    #[test]
    fn cosine_gradient_direction_is_correct() {
        // Moving A along the gradient must increase cos(A, B).
        let a = vec![1.0f32, 0.2, 0.0];
        let b = vec![0.0f32, 1.0, 0.0];
        let cos = cosine_similarity(&a, &b);
        let g = cosine_grad_wrt_a(&a, &b, cos);
        let mut a2 = a.clone();
        tabmeta_linalg::axpy(0.01, &g, &mut a2);
        assert!(cosine_similarity(&a2, &b) > cos);
    }

    #[test]
    fn zero_vectors_produce_zero_gradient() {
        let g = cosine_grad_wrt_a(&[0.0, 0.0], &[1.0, 0.0], 0.0);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn report_is_deterministic() {
        let tables = tables();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let config = FinetuneConfig::default();
        let run_once = || {
            let mut e = weakly_separated();
            run(&tables, &weak, &mut e, &Tokenizer::default(), &config)
        };
        assert_eq!(run_once(), run_once());
    }
}
