//! Algorithm 1: metadata classification in Generally Structured Tables.
//!
//! The classifier walks a table's levels in order. The **first** level is
//! labeled by its closest reference centroid (`row_mref` vs `row_dref` in
//! §III-D1). Every **following** level is labeled by where the angle to
//! its predecessor falls:
//!
//! * inside `C_MDE`   → still metadata, depth grows;
//! * inside `C_MDE-DE` → the metadata→data transition — everything from
//!   here on is data and the recorded depth is final;
//! * in neither range → the nearer range (by distance to its closest edge)
//!   decides, which is how tables whose angles drift slightly outside the
//!   training ranges still classify.
//!
//! Rows are walked first (HMD), then columns (VMD) — "the analysis is
//! transposed to consider columns rather than rows" (§III-D2). A CMD
//! extension inspects post-boundary rows for the mid-table section-header
//! signature (sparse row whose aggregate sits closer to the metadata
//! reference).

use crate::aggregate::{LevelVectorCache, TermInterner};
use crate::centroid::CentroidModel;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use tabmeta_embed::TermEmbedder;
use tabmeta_linalg::{angle_from_parts, dot, dot2, dot2_norms, dot_norms, norm};
use tabmeta_obs::names;
use tabmeta_tabular::{Axis, LevelLabel, Table};
use tabmeta_text::{Token, Tokenizer};

/// Cached handles into the global registry: classification runs per table
/// from rayon workers, so the registry lookup happens once per process and
/// every record after that is a relaxed atomic.
struct ObsHandles {
    tables: Arc<tabmeta_obs::Counter>,
    angle_tests: Arc<tabmeta_obs::Counter>,
    /// Axes that routed to the positional fallback instead of the walk.
    degraded: Arc<tabmeta_obs::Counter>,
    /// Metadata boundary depth per classified axis; depth 0 (headerless)
    /// lands in the underflow bucket, which the snapshot reports.
    boundary_depth: Arc<tabmeta_obs::Histogram>,
}

fn obs_handles() -> &'static ObsHandles {
    static HANDLES: OnceLock<ObsHandles> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let reg = tabmeta_obs::global();
        ObsHandles {
            tables: reg.counter(names::CLASSIFIER_TABLES),
            angle_tests: reg.counter(names::CLASSIFIER_ANGLE_TESTS),
            degraded: reg.counter(names::CLASSIFIER_DEGRADED),
            boundary_depth: reg.histogram_with(names::CLASSIFIER_BOUNDARY_DEPTH, 1, 16),
        }
    })
}

/// How levels are labeled along an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WalkStrategy {
    /// Algorithm 1: sequential angle walk over consecutive level pairs,
    /// with level-specific transition ranges (the paper's contribution).
    #[default]
    AngleWalk,
    /// Naive baseline: label each level independently by its nearest
    /// reference centroid. No pairwise angles, no transition ranges —
    /// kept as the internal ablation showing what the walk buys.
    ReferenceOnly,
}

/// Classifier knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Degrees of slack added to both ends of every centroid range.
    pub margin_deg: f32,
    /// Maximum HMD depth (the paper evaluates 1–5).
    pub max_hmd_depth: u8,
    /// Maximum VMD depth (deepest found in any corpus: 3).
    pub max_vmd_depth: u8,
    /// Enable the CMD extension.
    pub detect_cmd: bool,
    /// A CMD candidate row must have at least this blank fraction.
    pub cmd_blank_threshold: f32,
    /// Degrees of slack on the CMD reference test: a sparse row reads as a
    /// section header while `∠(row, meta_ref) < ∠(row, data_ref) +
    /// tolerance`. Section phrases sit between the header and data
    /// clusters, so a strict `<` misses many of them.
    pub cmd_ref_tolerance_deg: f32,
    /// Reference-consistency tolerance (degrees): a level can only extend
    /// the metadata run while `∠(level, meta_ref) ≤ ∠(level, data_ref) +
    /// tolerance`. This guards the angle walk against consecutive *data*
    /// levels that happen to sit `C_MDE`-close to each other — without it,
    /// two near-identical data columns would read as metadata continuation.
    pub ref_tolerance_deg: f32,
    /// Which labeling strategy to use (the ablation knob; defaults to the
    /// paper's angle walk).
    pub strategy: WalkStrategy,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            margin_deg: 5.0,
            max_hmd_depth: 5,
            max_vmd_depth: 3,
            detect_cmd: true,
            cmd_blank_threshold: 0.5,
            cmd_ref_tolerance_deg: 10.0,
            ref_tolerance_deg: 12.0,
            strategy: WalkStrategy::AngleWalk,
        }
    }
}

/// Why an axis could not be walked and fell back to position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The trained centroid model carries no evidence for this axis.
    UnusableCentroids,
    /// The axis has a single level — no consecutive pair to measure.
    SingleLevel,
    /// Every level aggregate was blank or fully out-of-vocabulary.
    NoSignal,
    /// An aggregate vector contained NaN/∞ components and was discarded,
    /// leaving no finite signal on the axis.
    NonFinite,
    /// The embedder's dimension does not match the centroid model's.
    ModelMismatch,
}

impl DegradeReason {
    /// Stable lowercase token used in metric names and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::UnusableCentroids => "unusable_centroids",
            DegradeReason::SingleLevel => "single_level",
            DegradeReason::NoSignal => "no_signal",
            DegradeReason::NonFinite => "non_finite",
            DegradeReason::ModelMismatch => "model_mismatch",
        }
    }
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How an axis's labels were produced: a confident angle walk, or the
/// positional fallback with the reason the walk was impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Provenance {
    /// Labels came from the trained walk (Algorithm 1 or the
    /// reference-only ablation).
    #[default]
    Walk,
    /// Labels came from the first-row/first-column positional fallback.
    Degraded(DegradeReason),
}

impl Provenance {
    /// Whether this axis fell back.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Provenance::Degraded(_))
    }

    /// The degrade reason, when degraded.
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        match self {
            Provenance::Walk => None,
            Provenance::Degraded(r) => Some(*r),
        }
    }
}

/// A typed classification failure, for callers that want strict semantics
/// ([`Classifier::try_classify`]) instead of silent degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifyError {
    /// The embedder and centroid model disagree on vector width — the
    /// model was trained with a different embedder.
    DimensionMismatch {
        /// The embedder's output dimension.
        embedder_dim: usize,
        /// The centroid model's vector dimension.
        model_dim: usize,
    },
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifyError::DimensionMismatch { embedder_dim, model_dim } => write!(
                f,
                "embedder dimension {embedder_dim} does not match centroid model dimension {model_dim}"
            ),
        }
    }
}

impl std::error::Error for ClassifyError {}

/// The classification result for one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Predicted label per row.
    pub rows: Vec<LevelLabel>,
    /// Predicted label per column.
    pub columns: Vec<LevelLabel>,
    /// Predicted HMD depth.
    pub hmd_depth: u8,
    /// Predicted VMD depth.
    pub vmd_depth: u8,
    /// How the row labels were produced.
    pub row_provenance: Provenance,
    /// How the column labels were produced.
    pub col_provenance: Provenance,
}

impl Verdict {
    /// Whether either axis fell back to positional labeling.
    pub fn is_degraded(&self) -> bool {
        self.row_provenance.is_degraded() || self.col_provenance.is_degraded()
    }

    /// Provenance along `axis`.
    pub fn provenance(&self, axis: Axis) -> Provenance {
        match axis {
            Axis::Row => self.row_provenance,
            Axis::Column => self.col_provenance,
        }
    }
}

/// Which range an observed angle matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RangeKind {
    /// Metadata↔metadata (`C_MDE`).
    Mde,
    /// Metadata↔data (`C_MDE-DE`).
    MdeDe,
    /// Data↔data (`C_DE`).
    De,
    /// No range matched; nearest-edge tie-break was used.
    Nearest,
    /// No angle available (blank/OOV level or first level).
    Reference,
    /// No walk happened at all: the axis fell back to positional labeling
    /// and this step records the fallback label for its level.
    Degraded,
}

/// One step of the classification walk, for worked-example output (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Axis walked.
    pub axis: Axis,
    /// Level index within the axis.
    pub index: usize,
    /// The observed angle (to the previous level, or to the references for
    /// the first level).
    pub angle: Option<f32>,
    /// Which range decided.
    pub matched: RangeKind,
    /// The label assigned.
    pub decision: LevelLabel,
}

/// The classifier: centroid model + config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classifier {
    /// The trained centroid model.
    pub centroids: CentroidModel,
    /// Classification knobs.
    pub config: ClassifierConfig,
}

/// Reusable classification state: the term interner, tokenization scratch,
/// and the reference-centroid norms, computed once instead of once per
/// angle test per table.
///
/// Obtain one from [`Classifier::scratch`] and reuse it across many tables
/// (one per worker thread in the batched path). A scratch is tied to the
/// classifier that created it — the cached reference norms belong to that
/// model's centroids. None of its contents influence verdict values:
/// interned vectors are bit-exact embeddings and the cached norms are the
/// same `dot(v, v).sqrt()` every angle test used to recompute.
pub struct ClassifyScratch {
    interner: TermInterner,
    token_buf: Vec<Token>,
    /// `(‖meta_ref‖, ‖data_ref‖)` per axis; `(0.0, 0.0)` for unusable axes
    /// (never read — unusable axes go positional before any angle test).
    row_ref_norms: (f32, f32),
    col_ref_norms: (f32, f32),
}

impl ClassifyScratch {
    /// Distinct terms interned so far (across all tables this scratch saw).
    pub fn interned_terms(&self) -> usize {
        self.interner.len()
    }

    /// Total memo entries held (terms + distinct cell texts) — the growth
    /// measure pool retirement bounds on.
    pub fn memo_entries(&self) -> usize {
        self.interner.memo_entries()
    }

    fn ref_norms(&self, axis: Axis) -> (f32, f32) {
        match axis {
            Axis::Row => self.row_ref_norms,
            Axis::Column => self.col_ref_norms,
        }
    }
}

/// Per-axis lazy memo of level norms and level↔reference angles, so each
/// quantity is computed at most once per table (the `still_meta` re-test
/// and the CMD scan previously recomputed angles the walk already knew).
struct AngleMemo {
    norms: Vec<Option<f32>>,
    refs: Vec<Option<(f32, f32)>>,
}

impl AngleMemo {
    fn new(n: usize) -> Self {
        Self { norms: vec![None; n], refs: vec![None; n] }
    }

    /// `(∠(v, meta_ref), ∠(v, data_ref))` for level `i`, fused into one
    /// pass over `v` and memoized.
    fn ref_angles(
        &mut self,
        i: usize,
        v: &[f32],
        meta_ref: &[f32],
        data_ref: &[f32],
        ref_norms: (f32, f32),
    ) -> (f32, f32) {
        if let Some(a) = self.refs[i] {
            return a;
        }
        let (dm, dd, nv) = match self.norms[i] {
            Some(nv) => {
                let (dm, dd) = dot2(v, meta_ref, data_ref);
                (dm, dd, nv)
            }
            None => {
                let fused = dot2_norms(v, meta_ref, data_ref);
                self.norms[i] = Some(fused.2);
                fused
            }
        };
        let a = (angle_from_parts(dm, nv, ref_norms.0), angle_from_parts(dd, nv, ref_norms.1));
        self.refs[i] = Some(a);
        a
    }

    /// `∠(prev, v)` — the walk's consecutive-pair delta — with both norms
    /// memoized and the unseen one fused into the dot's pass.
    fn delta(&mut self, i_prev: usize, prev: &[f32], i: usize, v: &[f32]) -> f32 {
        let np = match self.norms[i_prev] {
            Some(n) => n,
            None => {
                let n = norm(prev);
                self.norms[i_prev] = Some(n);
                n
            }
        };
        match self.norms[i] {
            Some(nv) => angle_from_parts(dot(prev, v), np, nv),
            None => {
                let (d, nv) = dot_norms(v, prev);
                self.norms[i] = Some(nv);
                angle_from_parts(d, np, nv)
            }
        }
    }
}

impl Classifier {
    /// Build a [`ClassifyScratch`] for this classifier, precomputing the
    /// reference-centroid norms once.
    pub fn scratch(&self) -> ClassifyScratch {
        let norms_of = |axis: Axis| {
            let c = self.centroids.axis(axis);
            if c.is_usable() {
                (norm(&c.meta_ref), norm(&c.data_ref))
            } else {
                (0.0, 0.0)
            }
        };
        ClassifyScratch {
            interner: TermInterner::new(),
            token_buf: Vec::new(),
            row_ref_norms: norms_of(Axis::Row),
            col_ref_norms: norms_of(Axis::Column),
        }
    }

    /// Classify one table (rows, then columns). Never panics and never
    /// fails: degenerate tables and model/embedder mismatches route to the
    /// positional fallback, with the reason recorded on the verdict's
    /// provenance fields.
    pub fn classify<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
    ) -> Verdict {
        self.classify_with_scratch(table, embedder, tokenizer, &mut self.scratch())
    }

    /// [`Classifier::classify`] with caller-owned scratch state, the entry
    /// point of the batched hot path: one scratch per worker thread
    /// amortizes term interning and reference norms across tables. Verdicts
    /// are bit-identical to [`Classifier::classify`].
    pub fn classify_with_scratch<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
        scratch: &mut ClassifyScratch,
    ) -> Verdict {
        if self.check_dims(embedder).is_err() {
            return self.degraded_verdict(table, DegradeReason::ModelMismatch, None);
        }
        self.classify_inner(table, embedder, tokenizer, scratch, None)
    }

    /// Strict variant of [`Classifier::classify`]: a model/embedder
    /// mismatch is a typed [`ClassifyError`] instead of a degraded
    /// verdict. Per-table degeneracy (blank, single-level, non-finite)
    /// still degrades — those are properties of one input record, not of
    /// the caller's setup.
    pub fn try_classify<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
    ) -> Result<Verdict, ClassifyError> {
        self.check_dims(embedder)?;
        Ok(self.classify_inner(table, embedder, tokenizer, &mut self.scratch(), None))
    }

    /// Classify and record every angle decision (the Fig. 5 walk-through).
    ///
    /// Positional fallbacks are traced too: when an axis (or, on a
    /// model/embedder mismatch, the whole table) degrades, one
    /// [`RangeKind::Degraded`] step per level records the fallback label —
    /// a degraded table never yields an empty trace.
    pub fn classify_with_trace<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
    ) -> (Verdict, Vec<TraceStep>) {
        self.classify_with_trace_scratch(table, embedder, tokenizer, &mut self.scratch())
    }

    /// [`Classifier::classify_with_trace`] with caller-owned scratch state;
    /// see [`Classifier::classify_with_scratch`].
    pub fn classify_with_trace_scratch<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
        scratch: &mut ClassifyScratch,
    ) -> (Verdict, Vec<TraceStep>) {
        let mut trace = Vec::new();
        if self.check_dims(embedder).is_err() {
            let verdict =
                self.degraded_verdict(table, DegradeReason::ModelMismatch, Some(&mut trace));
            return (verdict, trace);
        }
        let verdict = self.classify_inner(table, embedder, tokenizer, scratch, Some(&mut trace));
        (verdict, trace)
    }

    /// The embedder must produce vectors of the model's width on every
    /// usable axis; otherwise every angle test would be meaningless.
    fn check_dims<E: TermEmbedder + ?Sized>(&self, embedder: &E) -> Result<(), ClassifyError> {
        for axis in [Axis::Row, Axis::Column] {
            let c = self.centroids.axis(axis);
            if c.is_usable() && c.meta_ref.len() != embedder.dim() {
                return Err(ClassifyError::DimensionMismatch {
                    embedder_dim: embedder.dim(),
                    model_dim: c.meta_ref.len(),
                });
            }
        }
        Ok(())
    }

    /// Fully degraded verdict: positional fallback on both axes.
    fn degraded_verdict(
        &self,
        table: &Table,
        reason: DegradeReason,
        mut trace: Option<&mut Vec<TraceStep>>,
    ) -> Verdict {
        let (rows, hmd_depth, row_provenance) =
            positional_axis(table, Axis::Row, reason, trace.as_deref_mut());
        let (columns, vmd_depth, col_provenance) =
            positional_axis(table, Axis::Column, reason, trace);
        let obs = obs_handles();
        obs.tables.inc();
        obs.boundary_depth.record(hmd_depth as u64);
        obs.boundary_depth.record(vmd_depth as u64);
        Verdict { rows, columns, hmd_depth, vmd_depth, row_provenance, col_provenance }
    }

    fn classify_inner<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
        scratch: &mut ClassifyScratch,
        mut trace: Option<&mut Vec<TraceStep>>,
    ) -> Verdict {
        // Built lazily by the first axis that actually walks, then shared
        // by the second: each cell is tokenized exactly once per table.
        let mut cache: Option<LevelVectorCache> = None;
        let (rows, hmd_depth, row_provenance) = self.classify_axis(
            table,
            Axis::Row,
            self.config.max_hmd_depth,
            embedder,
            tokenizer,
            scratch,
            &mut cache,
            trace.as_deref_mut(),
        );
        let (columns, vmd_depth, col_provenance) = self.classify_axis(
            table,
            Axis::Column,
            self.config.max_vmd_depth,
            embedder,
            tokenizer,
            scratch,
            &mut cache,
            trace,
        );
        let obs = obs_handles();
        obs.tables.inc();
        obs.boundary_depth.record(hmd_depth as u64);
        obs.boundary_depth.record(vmd_depth as u64);
        Verdict { rows, columns, hmd_depth, vmd_depth, row_provenance, col_provenance }
    }

    #[allow(clippy::too_many_arguments)]
    fn classify_axis<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        axis: Axis,
        depth_cap: u8,
        embedder: &E,
        tokenizer: &Tokenizer,
        scratch: &mut ClassifyScratch,
        cache_slot: &mut Option<LevelVectorCache>,
        mut trace: Option<&mut Vec<TraceStep>>,
    ) -> (Vec<LevelLabel>, u8, Provenance) {
        let n = table.n_levels(axis);
        let mut labels = vec![LevelLabel::Data; n];
        let centroids = self.centroids.axis(axis);
        if !centroids.is_usable() {
            return positional_axis(table, axis, DegradeReason::UnusableCentroids, trace);
        }
        if n < 2 {
            // No consecutive pair to measure an angle over.
            return positional_axis(table, axis, DegradeReason::SingleLevel, trace);
        }
        let angle_tests = &obs_handles().angle_tests;
        let cache = cache_slot.get_or_insert_with(|| {
            LevelVectorCache::build(
                table,
                embedder,
                tokenizer,
                &mut scratch.interner,
                &mut scratch.token_buf,
            )
        });
        // Sanitize aggregates: a vector with NaN/∞ components (numeric
        // overflow upstream) would poison every angle test downstream, so
        // it is demoted to a blank level here.
        let mut non_finite = false;
        let vectors: Vec<Option<Vec<f32>>> = cache
            .axis_vectors(axis, &scratch.interner, embedder.dim())
            .into_iter()
            .map(|v| match v {
                Some(vec) if vec.iter().all(|x| x.is_finite()) => Some(vec),
                Some(_) => {
                    non_finite = true;
                    None
                }
                None => None,
            })
            .collect();
        if vectors.iter().all(Option::is_none) {
            let reason =
                if non_finite { DegradeReason::NonFinite } else { DegradeReason::NoSignal };
            return positional_axis(table, axis, reason, trace);
        }
        let ref_norms = scratch.ref_norms(axis);
        let mut memo = AngleMemo::new(n);
        let meta_label = |depth: u8| match axis {
            Axis::Row => LevelLabel::Hmd(depth),
            Axis::Column => LevelLabel::Vmd(depth),
        };
        if self.config.strategy == WalkStrategy::ReferenceOnly {
            // Naive ablation baseline: each level independently nearest-
            // reference; metadata depth = leading run of meta-leaning
            // levels. No pairwise angles anywhere.
            let mut depth: u8 = 0;
            for (i, maybe_v) in vectors.iter().enumerate() {
                let Some(v) = maybe_v else {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceStep {
                            axis,
                            index: i,
                            angle: None,
                            matched: RangeKind::Reference,
                            decision: LevelLabel::Data,
                        });
                    }
                    break;
                };
                angle_tests.inc();
                let (to_meta, to_data) =
                    memo.ref_angles(i, v, &centroids.meta_ref, &centroids.data_ref, ref_norms);
                let is_meta = to_meta < to_data && depth < depth_cap;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: i,
                        angle: Some(to_meta),
                        matched: RangeKind::Reference,
                        decision: if is_meta { meta_label(depth + 1) } else { LevelLabel::Data },
                    });
                }
                if is_meta {
                    depth += 1;
                    labels[depth as usize - 1] = meta_label(depth);
                } else {
                    break;
                }
            }
            return (labels, depth, Provenance::Walk);
        }
        let global_mde = centroids.c_mde.expanded(self.config.margin_deg);
        let global_mde_de = centroids.c_mde_de.expanded(self.config.margin_deg);
        // Level-specific ranges (paper Tables I & IV): at depth `d` the
        // continuation test uses the observed Δ_{dMDE,(d+1)MDE} range and
        // the transition test the observed Δ_{dMDE,DE} range; global
        // ranges back them up when a level was unseen in training.
        let min_support = 3usize;
        let meta_range_at = |depth: u8| -> tabmeta_linalg::AngleRange {
            centroids
                .level(depth + 1)
                .filter(|l| l.support >= min_support && !l.prev_range.is_empty())
                .map(|l| l.prev_range.expanded(self.config.margin_deg))
                .unwrap_or(global_mde)
        };
        let trans_range_at = |depth: u8| -> tabmeta_linalg::AngleRange {
            centroids
                .level(depth.max(1))
                .filter(|l| l.support >= min_support && !l.to_data_range.is_empty())
                .map(|l| l.to_data_range.expanded(self.config.margin_deg))
                .unwrap_or(global_mde_de)
        };

        let mut depth: u8 = 0;
        let mut boundary = 0usize; // first non-metadata level
        for (i, maybe_v) in vectors.iter().enumerate() {
            let Some(v) = maybe_v else {
                // Blank/OOV level ends the metadata run.
                boundary = i;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: i,
                        angle: None,
                        matched: RangeKind::Reference,
                        decision: LevelLabel::Data,
                    });
                }
                break;
            };
            if i == 0 {
                // First level: closest reference centroid decides.
                angle_tests.inc();
                let (to_meta, to_data) =
                    memo.ref_angles(0, v, &centroids.meta_ref, &centroids.data_ref, ref_norms);
                let is_meta = to_meta < to_data;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: 0,
                        angle: Some(to_meta),
                        matched: RangeKind::Reference,
                        decision: if is_meta { meta_label(1) } else { LevelLabel::Data },
                    });
                }
                if !is_meta {
                    boundary = 0;
                    break;
                }
                depth = 1;
                labels[0] = meta_label(1);
                boundary = 1;
                continue;
            }
            let Some(prev) = vectors[i - 1].as_ref() else {
                // Unreachable in practice (the walk breaks at the first
                // None), but a missing predecessor must end the run, not
                // the process.
                boundary = i;
                break;
            };
            angle_tests.inc();
            let delta = memo.delta(i - 1, prev, i, v);
            let mde = meta_range_at(depth);
            let mde_de = trans_range_at(depth);
            let in_mde = mde.contains(delta);
            let in_mde_de = mde_de.contains(delta);
            let (range_says_meta, matched) = if in_mde && !in_mde_de {
                (true, RangeKind::Mde)
            } else if in_mde_de && !in_mde {
                (false, RangeKind::MdeDe)
            } else if in_mde && in_mde_de {
                // Overlapping ranges: the nearer midpoint decides.
                (
                    (delta - mde.midpoint()).abs() <= (delta - mde_de.midpoint()).abs(),
                    RangeKind::Nearest,
                )
            } else {
                (mde.distance_to(delta) <= mde_de.distance_to(delta), RangeKind::Nearest)
            };
            // Reference consistency: metadata continuation additionally
            // requires the level itself to lean toward the metadata
            // reference (guards against C_MDE-close *data* level pairs).
            let still_meta = range_says_meta && {
                let (to_meta, to_data) =
                    memo.ref_angles(i, v, &centroids.meta_ref, &centroids.data_ref, ref_norms);
                to_meta <= to_data + self.config.ref_tolerance_deg
            };
            if still_meta && depth < depth_cap {
                depth += 1;
                labels[i] = meta_label(depth);
                boundary = i + 1;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: i,
                        angle: Some(delta),
                        matched,
                        decision: meta_label(depth),
                    });
                }
            } else {
                boundary = i;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: i,
                        angle: Some(delta),
                        matched,
                        decision: LevelLabel::Data,
                    });
                }
                break;
            }
        }

        // CMD extension: rows past the boundary that look like section
        // headers (sparse + metadata-flavoured aggregate).
        if axis == Axis::Row && self.config.detect_cmd {
            for i in boundary.max(1)..n {
                let Some(v) = &vectors[i] else { continue };
                if table.blank_fraction(axis, i) < self.config.cmd_blank_threshold {
                    continue;
                }
                let (to_meta, to_data) =
                    memo.ref_angles(i, v, &centroids.meta_ref, &centroids.data_ref, ref_norms);
                if to_meta < to_data + self.config.cmd_ref_tolerance_deg
                    && labels[i] == LevelLabel::Data
                {
                    labels[i] = LevelLabel::Cmd;
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceStep {
                            axis,
                            index: i,
                            angle: Some(to_meta),
                            matched: RangeKind::Reference,
                            decision: LevelLabel::Cmd,
                        });
                    }
                }
            }
        }
        (labels, depth, Provenance::Walk)
    }
}

/// First-row/first-column positional fallback, mirroring the
/// `PositionalBaseline` heuristic: the first row is HMD(1); the first
/// column is VMD(1) only when there is more than one column and it is not
/// numeric-dominated. Used whenever the angle walk has nothing to stand
/// on, with the reason recorded as [`Provenance::Degraded`].
///
/// When a trace is requested, one [`RangeKind::Degraded`] step per level
/// records the fallback label, so degraded axes never vanish from the
/// walk-through.
fn positional_axis(
    table: &Table,
    axis: Axis,
    reason: DegradeReason,
    trace: Option<&mut Vec<TraceStep>>,
) -> (Vec<LevelLabel>, u8, Provenance) {
    let n = table.n_levels(axis);
    let mut labels = vec![LevelLabel::Data; n];
    let mut depth = 0u8;
    match axis {
        Axis::Row => {
            if let Some(first) = labels.first_mut() {
                *first = LevelLabel::Hmd(1);
                depth = 1;
            }
        }
        Axis::Column => {
            if n > 1 && !numeric_dominated(table, Axis::Column, 0) {
                labels[0] = LevelLabel::Vmd(1);
                depth = 1;
            }
        }
    }
    if let Some(t) = trace {
        for (i, label) in labels.iter().enumerate() {
            t.push(TraceStep {
                axis,
                index: i,
                angle: None,
                matched: RangeKind::Degraded,
                decision: *label,
            });
        }
    }
    let obs = obs_handles();
    obs.degraded.inc();
    tabmeta_obs::global()
        .counter(&format!("{}{}", names::CLASSIFIER_DEGRADED_PREFIX, reason.as_str()))
        .inc();
    (labels, depth, Provenance::Degraded(reason))
}

/// Whether more than half of a level's non-empty cells read as numeric —
/// the sanity check that stops the positional fallback from claiming a
/// numeric first column as VMD.
fn numeric_dominated(table: &Table, axis: Axis, index: usize) -> bool {
    let texts = table.level_texts(axis, index);
    if texts.is_empty() {
        return false;
    }
    let numeric = texts.iter().filter(|t| tabmeta_text::classify_numeric(t).is_some()).count();
    numeric * 2 > texts.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centroid::{AxisCentroids, LevelPairStats};
    use std::collections::HashMap;
    use tabmeta_linalg::AngleRange;

    /// Hand-built embedder: "header" terms at 0°, "sub-header" terms at
    /// ~30°, data terms at ~80° from headers.
    struct Synthetic {
        map: HashMap<String, Vec<f32>>,
    }

    impl Synthetic {
        fn new() -> Self {
            let deg = |d: f32| {
                let r = d.to_radians();
                vec![r.cos(), r.sin()]
            };
            let mut map = HashMap::new();
            map.insert("header".to_string(), deg(0.0));
            map.insert("subheader".to_string(), deg(30.0));
            map.insert("subsub".to_string(), deg(55.0));
            map.insert("<int>".to_string(), deg(80.0));
            map.insert("<bigint>".to_string(), deg(82.0));
            map.insert("section".to_string(), deg(5.0));
            Self { map }
        }
    }

    impl TermEmbedder for Synthetic {
        fn dim(&self) -> usize {
            2
        }
        fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
            if let Some(v) = self.map.get(term) {
                tabmeta_linalg::add_assign(out, v);
                true
            } else {
                false
            }
        }
    }

    fn axis_centroids() -> AxisCentroids {
        let deg = |d: f32| {
            let r = d.to_radians();
            vec![r.cos(), r.sin()]
        };
        AxisCentroids {
            c_mde: AngleRange::new(20.0, 40.0),
            c_de: AngleRange::new(0.0, 10.0),
            c_mde_de: AngleRange::new(45.0, 90.0),
            meta_ref: deg(15.0),
            data_ref: deg(81.0),
            levels: vec![LevelPairStats {
                level: 1,
                delta_prev_meta: None,
                delta_to_data: Some(70.0),
                prev_range: AngleRange::empty(),
                to_data_range: AngleRange::new(45.0, 90.0),
                c_mde: AngleRange::new(20.0, 40.0),
                c_mde_de: AngleRange::new(45.0, 90.0),
                c_de: AngleRange::new(0.0, 10.0),
                support: 1,
            }],
        }
    }

    fn classifier() -> Classifier {
        Classifier {
            centroids: CentroidModel { rows: axis_centroids(), columns: axis_centroids() },
            config: ClassifierConfig { margin_deg: 2.0, ..Default::default() },
        }
    }

    #[test]
    fn two_level_header_then_data() {
        // Row 0: header (0°), row 1: subheader (30° away → C_MDE),
        // rows 2–3: data (~50°+ away → C_MDE-DE, then C_DE).
        let t = Table::from_strings(
            1,
            &[
                &["header", "header"],
                &["subheader", "subheader"],
                &["1", "14,373"],
                &["2", "9,201"],
            ],
        );
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 2, "labels: {:?}", v.rows);
        assert_eq!(v.rows[0], LevelLabel::Hmd(1));
        assert_eq!(v.rows[1], LevelLabel::Hmd(2));
        assert_eq!(v.rows[2], LevelLabel::Data);
        assert_eq!(v.rows[3], LevelLabel::Data);
    }

    #[test]
    fn single_header_table() {
        let t = Table::from_strings(2, &[&["header", "header"], &["1", "2"], &["3", "4"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 1);
        assert_eq!(v.rows, vec![LevelLabel::Hmd(1), LevelLabel::Data, LevelLabel::Data]);
    }

    #[test]
    fn headerless_table_is_all_data() {
        let t = Table::from_strings(3, &[&["1", "2"], &["3", "4"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 0);
        assert!(v.rows.iter().all(|l| *l == LevelLabel::Data));
    }

    #[test]
    fn depth_respects_cap() {
        let t = Table::from_strings(
            4,
            &[
                &["header", "header"],
                &["subheader", "subheader"],
                &["header", "header"],
                &["subheader", "subheader"],
                &["1", "2"],
            ],
        );
        let mut c = classifier();
        c.config.max_hmd_depth = 2;
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 2);
        assert_eq!(v.rows[2], LevelLabel::Data, "cap stops the run");
    }

    #[test]
    fn reference_only_trace_is_populated() {
        // Regression: the ReferenceOnly ablation returned an empty trace,
        // so Fig.-5-style walk-throughs silently vanished for the baseline.
        let t = Table::from_strings(
            7,
            &[&["header", "header"], &["subheader", "subheader"], &["1", "14,373"]],
        );
        let mut c = classifier();
        c.config.strategy = WalkStrategy::ReferenceOnly;
        let (v, trace) = c.classify_with_trace(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 2, "labels: {:?}", v.rows);
        let row_steps: Vec<&TraceStep> = trace.iter().filter(|s| s.axis == Axis::Row).collect();
        // One step per examined level, including the breaking data level.
        assert_eq!(row_steps.len(), 3, "trace: {row_steps:?}");
        assert!(row_steps.iter().all(|s| s.matched == RangeKind::Reference));
        assert!(row_steps.iter().all(|s| s.angle.is_some()));
        assert_eq!(row_steps[0].decision, LevelLabel::Hmd(1));
        assert_eq!(row_steps[1].decision, LevelLabel::Hmd(2));
        assert_eq!(row_steps[2].decision, LevelLabel::Data);
        // Column walk traces too.
        assert!(trace.iter().any(|s| s.axis == Axis::Column));
    }

    #[test]
    fn cmd_row_detected() {
        let t = Table::from_strings(
            5,
            &[
                &["header", "header", "header"],
                &["1", "2", "3"],
                &["section", "", ""],
                &["4", "5", "6"],
            ],
        );
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.rows[2], LevelLabel::Cmd, "labels: {:?}", v.rows);
        assert_eq!(v.hmd_depth, 1);
    }

    #[test]
    fn cmd_detection_can_be_disabled() {
        let t = Table::from_strings(
            6,
            &[&["header", "header"], &["1", "2"], &["section", ""], &["3", "4"]],
        );
        let mut c = classifier();
        c.config.detect_cmd = false;
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.rows[2], LevelLabel::Data);
    }

    #[test]
    fn columns_classify_transposed() {
        // Column 0 = VMD (header-ish terms down the column), columns 1-2 data.
        let t = Table::from_strings(
            7,
            &[
                &["header", "header", "header"],
                &["subheader", "1", "2"],
                &["subheader", "3", "4"],
                &["subsub", "5", "6"],
            ],
        );
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.vmd_depth, 1, "columns: {:?}", v.columns);
        assert_eq!(v.columns[0], LevelLabel::Vmd(1));
        assert_eq!(v.columns[1], LevelLabel::Data);
    }

    #[test]
    fn unusable_centroids_fall_back_to_positional() {
        let mut c = classifier();
        c.centroids.rows.meta_ref = vec![0.0, 0.0];
        let t = Table::from_strings(8, &[&["header", "header"], &["1", "2"]]);
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 1, "positional fallback claims the first row");
        assert_eq!(v.rows[0], LevelLabel::Hmd(1));
        assert_eq!(v.row_provenance, Provenance::Degraded(DegradeReason::UnusableCentroids));
        assert_eq!(v.col_provenance, Provenance::Walk, "column axis still walks");
        assert!(v.is_degraded());
    }

    #[test]
    fn healthy_walk_has_walk_provenance() {
        let t = Table::from_strings(20, &[&["header", "header"], &["1", "2"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.row_provenance, Provenance::Walk);
        assert!(!v.is_degraded());
    }

    #[test]
    fn single_row_table_degrades_to_single_level() {
        let t = Table::from_strings(21, &[&["header", "header", "header"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.row_provenance, Provenance::Degraded(DegradeReason::SingleLevel));
        assert_eq!(v.hmd_depth, 1);
        assert_eq!(v.rows[0], LevelLabel::Hmd(1));
    }

    #[test]
    fn all_blank_table_degrades_with_no_signal() {
        let t = Table::from_strings(22, &[&["", ""], &["", ""]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.row_provenance, Provenance::Degraded(DegradeReason::NoSignal));
        assert_eq!(v.col_provenance, Provenance::Degraded(DegradeReason::NoSignal));
        assert_eq!(v.rows[0], LevelLabel::Hmd(1), "positional fallback still labels");
    }

    #[test]
    fn all_oov_table_degrades_with_no_signal() {
        let t = Table::from_strings(23, &[&["zzz", "qqq"], &["xxx", "www"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.row_provenance, Provenance::Degraded(DegradeReason::NoSignal));
    }

    #[test]
    fn non_finite_aggregates_degrade_with_reason() {
        struct Poisoned;
        impl TermEmbedder for Poisoned {
            fn dim(&self) -> usize {
                2
            }
            fn accumulate(&self, _term: &str, out: &mut [f32]) -> bool {
                out[0] = f32::NAN;
                out[1] = f32::INFINITY;
                true
            }
        }
        let t = Table::from_strings(24, &[&["header", "header"], &["1", "2"]]);
        let c = classifier();
        let v = c.classify(&t, &Poisoned, &Tokenizer::default());
        assert_eq!(v.row_provenance, Provenance::Degraded(DegradeReason::NonFinite));
        assert_eq!(v.hmd_depth, 1, "fallback, not a panic or a NaN-driven walk");
    }

    #[test]
    fn dimension_mismatch_is_typed_for_try_classify_and_degraded_for_classify() {
        struct Wide;
        impl TermEmbedder for Wide {
            fn dim(&self) -> usize {
                7
            }
            fn accumulate(&self, _term: &str, out: &mut [f32]) -> bool {
                out[0] = 1.0;
                true
            }
        }
        let t = Table::from_strings(25, &[&["header", "header"], &["1", "2"]]);
        let c = classifier();
        let err = c.try_classify(&t, &Wide, &Tokenizer::default()).unwrap_err();
        assert_eq!(err, ClassifyError::DimensionMismatch { embedder_dim: 7, model_dim: 2 });
        assert!(err.to_string().contains('7'), "{err}");
        let v = c.classify(&t, &Wide, &Tokenizer::default());
        assert_eq!(v.row_provenance, Provenance::Degraded(DegradeReason::ModelMismatch));
        assert_eq!(v.col_provenance, Provenance::Degraded(DegradeReason::ModelMismatch));
    }

    #[test]
    fn try_classify_matches_classify_on_healthy_input() {
        let t = Table::from_strings(26, &[&["header", "header"], &["1", "2"]]);
        let c = classifier();
        let strict = c.try_classify(&t, &Synthetic::new(), &Tokenizer::default()).unwrap();
        let lenient = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(strict, lenient);
    }

    #[test]
    fn numeric_first_column_not_claimed_by_fallback() {
        // All-OOV on the column axis is impossible while numerics embed,
        // so poison the centroids instead to force the fallback.
        let mut c = classifier();
        c.centroids.columns.meta_ref = vec![0.0, 0.0];
        let t = Table::from_strings(27, &[&["1", "a"], &["2", "b"], &["3", "c"]]);
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert!(v.col_provenance.is_degraded());
        assert_eq!(v.vmd_depth, 0, "numeric-dominated first column stays data");
        assert_eq!(v.columns[0], LevelLabel::Data);
    }

    #[test]
    fn trace_records_the_walk() {
        let t = Table::from_strings(
            9,
            &[&["header", "header"], &["subheader", "subheader"], &["1", "2"]],
        );
        let c = classifier();
        let (v, trace) = c.classify_with_trace(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 2);
        let row_steps: Vec<&TraceStep> = trace.iter().filter(|s| s.axis == Axis::Row).collect();
        assert!(row_steps.len() >= 3);
        assert_eq!(row_steps[0].matched, RangeKind::Reference);
        assert_eq!(row_steps[1].matched, RangeKind::Mde);
        assert!(row_steps[1].angle.unwrap() > 20.0 && row_steps[1].angle.unwrap() < 42.0);
        assert_eq!(row_steps[2].decision, LevelLabel::Data);
    }

    #[test]
    fn blank_second_row_ends_the_header_run() {
        let t = Table::from_strings(10, &[&["header", "header"], &["", ""], &["1", "2"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 1);
        assert_eq!(v.rows[1], LevelLabel::Data);
    }

    #[test]
    fn degraded_trace_is_not_empty_on_dimension_mismatch() {
        // Regression: check_dims failure used to return an EMPTY trace,
        // hiding the positional-fallback labels from the walk-through.
        struct Wide;
        impl TermEmbedder for Wide {
            fn dim(&self) -> usize {
                7
            }
            fn accumulate(&self, _term: &str, out: &mut [f32]) -> bool {
                out[0] = 1.0;
                true
            }
        }
        let t = Table::from_strings(28, &[&["header", "header"], &["1", "2"]]);
        let c = classifier();
        let (v, trace) = c.classify_with_trace(&t, &Wide, &Tokenizer::default());
        assert_eq!(v.row_provenance, Provenance::Degraded(DegradeReason::ModelMismatch));
        assert_eq!(trace.len(), t.n_rows() + t.n_cols(), "one step per level on both axes");
        assert!(trace.iter().all(|s| s.matched == RangeKind::Degraded && s.angle.is_none()));
        // Each step records the fallback label actually assigned.
        for s in &trace {
            let label = match s.axis {
                Axis::Row => v.rows[s.index],
                Axis::Column => v.columns[s.index],
            };
            assert_eq!(s.decision, label, "{:?} level {}", s.axis, s.index);
        }
    }

    #[test]
    fn degraded_trace_on_unusable_axis() {
        // Only the column axis degrades; its levels still show up in the
        // trace as Degraded steps while the row walk traces normally.
        let mut c = classifier();
        c.centroids.columns.meta_ref = vec![0.0, 0.0];
        let t = Table::from_strings(29, &[&["header", "header"], &["1", "2"]]);
        let (v, trace) = c.classify_with_trace(&t, &Synthetic::new(), &Tokenizer::default());
        assert!(v.col_provenance.is_degraded());
        let col_steps: Vec<&TraceStep> = trace.iter().filter(|s| s.axis == Axis::Column).collect();
        assert_eq!(col_steps.len(), t.n_cols());
        assert!(col_steps.iter().all(|s| s.matched == RangeKind::Degraded));
        let row_steps: Vec<&TraceStep> = trace.iter().filter(|s| s.axis == Axis::Row).collect();
        assert!(!row_steps.is_empty());
        assert!(row_steps.iter().all(|s| s.matched != RangeKind::Degraded));
    }

    #[test]
    fn scratch_reuse_matches_fresh_classification() {
        let c = classifier();
        let e = Synthetic::new();
        let tok = Tokenizer::default();
        let tables = [
            Table::from_strings(30, &[&["header", "header"], &["1", "2"]]),
            Table::from_strings(
                31,
                &[&["header", "header"], &["subheader", "subheader"], &["1", "2"]],
            ),
            Table::from_strings(32, &[&["", ""], &["", ""]]),
            Table::from_strings(33, &[&["header"]]),
        ];
        let mut scratch = c.scratch();
        for t in &tables {
            assert_eq!(c.classify_with_scratch(t, &e, &tok, &mut scratch), c.classify(t, &e, &tok));
            let (v1, tr1) = c.classify_with_trace_scratch(t, &e, &tok, &mut scratch);
            let (v2, tr2) = c.classify_with_trace(t, &e, &tok);
            assert_eq!(v1, v2);
            assert_eq!(tr1, tr2);
        }
        assert!(scratch.interned_terms() > 0);
    }
}
