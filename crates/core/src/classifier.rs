//! Algorithm 1: metadata classification in Generally Structured Tables.
//!
//! The classifier walks a table's levels in order. The **first** level is
//! labeled by its closest reference centroid (`row_mref` vs `row_dref` in
//! §III-D1). Every **following** level is labeled by where the angle to
//! its predecessor falls:
//!
//! * inside `C_MDE`   → still metadata, depth grows;
//! * inside `C_MDE-DE` → the metadata→data transition — everything from
//!   here on is data and the recorded depth is final;
//! * in neither range → the nearer range (by distance to its closest edge)
//!   decides, which is how tables whose angles drift slightly outside the
//!   training ranges still classify.
//!
//! Rows are walked first (HMD), then columns (VMD) — "the analysis is
//! transposed to consider columns rather than rows" (§III-D2). A CMD
//! extension inspects post-boundary rows for the mid-table section-header
//! signature (sparse row whose aggregate sits closer to the metadata
//! reference).

use crate::aggregate::axis_vectors;
use crate::centroid::CentroidModel;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use tabmeta_embed::TermEmbedder;
use tabmeta_linalg::angle_degrees;
use tabmeta_tabular::{Axis, LevelLabel, Table};
use tabmeta_text::Tokenizer;

/// Cached handles into the global registry: classification runs per table
/// from rayon workers, so the registry lookup happens once per process and
/// every record after that is a relaxed atomic.
struct ObsHandles {
    tables: Arc<tabmeta_obs::Counter>,
    angle_tests: Arc<tabmeta_obs::Counter>,
    /// Metadata boundary depth per classified axis; depth 0 (headerless)
    /// lands in the underflow bucket, which the snapshot reports.
    boundary_depth: Arc<tabmeta_obs::Histogram>,
}

fn obs_handles() -> &'static ObsHandles {
    static HANDLES: OnceLock<ObsHandles> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let reg = tabmeta_obs::global();
        ObsHandles {
            tables: reg.counter("classifier.tables"),
            angle_tests: reg.counter("classifier.angle_tests"),
            boundary_depth: reg.histogram_with("classifier.boundary_depth", 1, 16),
        }
    })
}

/// How levels are labeled along an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WalkStrategy {
    /// Algorithm 1: sequential angle walk over consecutive level pairs,
    /// with level-specific transition ranges (the paper's contribution).
    #[default]
    AngleWalk,
    /// Naive baseline: label each level independently by its nearest
    /// reference centroid. No pairwise angles, no transition ranges —
    /// kept as the internal ablation showing what the walk buys.
    ReferenceOnly,
}

/// Classifier knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Degrees of slack added to both ends of every centroid range.
    pub margin_deg: f32,
    /// Maximum HMD depth (the paper evaluates 1–5).
    pub max_hmd_depth: u8,
    /// Maximum VMD depth (deepest found in any corpus: 3).
    pub max_vmd_depth: u8,
    /// Enable the CMD extension.
    pub detect_cmd: bool,
    /// A CMD candidate row must have at least this blank fraction.
    pub cmd_blank_threshold: f32,
    /// Degrees of slack on the CMD reference test: a sparse row reads as a
    /// section header while `∠(row, meta_ref) < ∠(row, data_ref) +
    /// tolerance`. Section phrases sit between the header and data
    /// clusters, so a strict `<` misses many of them.
    pub cmd_ref_tolerance_deg: f32,
    /// Reference-consistency tolerance (degrees): a level can only extend
    /// the metadata run while `∠(level, meta_ref) ≤ ∠(level, data_ref) +
    /// tolerance`. This guards the angle walk against consecutive *data*
    /// levels that happen to sit `C_MDE`-close to each other — without it,
    /// two near-identical data columns would read as metadata continuation.
    pub ref_tolerance_deg: f32,
    /// Which labeling strategy to use (the ablation knob; defaults to the
    /// paper's angle walk).
    pub strategy: WalkStrategy,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            margin_deg: 5.0,
            max_hmd_depth: 5,
            max_vmd_depth: 3,
            detect_cmd: true,
            cmd_blank_threshold: 0.5,
            cmd_ref_tolerance_deg: 10.0,
            ref_tolerance_deg: 12.0,
            strategy: WalkStrategy::AngleWalk,
        }
    }
}

/// The classification result for one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Predicted label per row.
    pub rows: Vec<LevelLabel>,
    /// Predicted label per column.
    pub columns: Vec<LevelLabel>,
    /// Predicted HMD depth.
    pub hmd_depth: u8,
    /// Predicted VMD depth.
    pub vmd_depth: u8,
}

/// Which range an observed angle matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RangeKind {
    /// Metadata↔metadata (`C_MDE`).
    Mde,
    /// Metadata↔data (`C_MDE-DE`).
    MdeDe,
    /// Data↔data (`C_DE`).
    De,
    /// No range matched; nearest-edge tie-break was used.
    Nearest,
    /// No angle available (blank/OOV level or first level).
    Reference,
}

/// One step of the classification walk, for worked-example output (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Axis walked.
    pub axis: Axis,
    /// Level index within the axis.
    pub index: usize,
    /// The observed angle (to the previous level, or to the references for
    /// the first level).
    pub angle: Option<f32>,
    /// Which range decided.
    pub matched: RangeKind,
    /// The label assigned.
    pub decision: LevelLabel,
}

/// The classifier: centroid model + config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classifier {
    /// The trained centroid model.
    pub centroids: CentroidModel,
    /// Classification knobs.
    pub config: ClassifierConfig,
}

impl Classifier {
    /// Classify one table (rows, then columns).
    pub fn classify<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
    ) -> Verdict {
        self.classify_inner(table, embedder, tokenizer, None)
    }

    /// Classify and record every angle decision (the Fig. 5 walk-through).
    pub fn classify_with_trace<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
    ) -> (Verdict, Vec<TraceStep>) {
        let mut trace = Vec::new();
        let verdict = self.classify_inner(table, embedder, tokenizer, Some(&mut trace));
        (verdict, trace)
    }

    fn classify_inner<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        embedder: &E,
        tokenizer: &Tokenizer,
        mut trace: Option<&mut Vec<TraceStep>>,
    ) -> Verdict {
        let (rows, hmd_depth) = self.classify_axis(
            table,
            Axis::Row,
            self.config.max_hmd_depth,
            embedder,
            tokenizer,
            trace.as_deref_mut(),
        );
        let (columns, vmd_depth) = self.classify_axis(
            table,
            Axis::Column,
            self.config.max_vmd_depth,
            embedder,
            tokenizer,
            trace,
        );
        let obs = obs_handles();
        obs.tables.inc();
        obs.boundary_depth.record(hmd_depth as u64);
        obs.boundary_depth.record(vmd_depth as u64);
        Verdict { rows, columns, hmd_depth, vmd_depth }
    }

    fn classify_axis<E: TermEmbedder + ?Sized>(
        &self,
        table: &Table,
        axis: Axis,
        depth_cap: u8,
        embedder: &E,
        tokenizer: &Tokenizer,
        mut trace: Option<&mut Vec<TraceStep>>,
    ) -> (Vec<LevelLabel>, u8) {
        let n = table.n_levels(axis);
        let mut labels = vec![LevelLabel::Data; n];
        let centroids = self.centroids.axis(axis);
        if !centroids.is_usable() {
            return (labels, 0);
        }
        let angle_tests = &obs_handles().angle_tests;
        let vectors = axis_vectors(table, axis, embedder, tokenizer);
        let meta_label = |depth: u8| match axis {
            Axis::Row => LevelLabel::Hmd(depth),
            Axis::Column => LevelLabel::Vmd(depth),
        };
        if self.config.strategy == WalkStrategy::ReferenceOnly {
            // Naive ablation baseline: each level independently nearest-
            // reference; metadata depth = leading run of meta-leaning
            // levels. No pairwise angles anywhere.
            let mut depth: u8 = 0;
            for (i, maybe_v) in vectors.iter().enumerate() {
                let Some(v) = maybe_v else {
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceStep {
                            axis,
                            index: i,
                            angle: None,
                            matched: RangeKind::Reference,
                            decision: LevelLabel::Data,
                        });
                    }
                    break;
                };
                angle_tests.inc();
                let to_meta = angle_degrees(v, &centroids.meta_ref);
                let to_data = angle_degrees(v, &centroids.data_ref);
                let is_meta = to_meta < to_data && depth < depth_cap;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: i,
                        angle: Some(to_meta),
                        matched: RangeKind::Reference,
                        decision: if is_meta { meta_label(depth + 1) } else { LevelLabel::Data },
                    });
                }
                if is_meta {
                    depth += 1;
                    labels[depth as usize - 1] = meta_label(depth);
                } else {
                    break;
                }
            }
            return (labels, depth);
        }
        let global_mde = centroids.c_mde.expanded(self.config.margin_deg);
        let global_mde_de = centroids.c_mde_de.expanded(self.config.margin_deg);
        // Level-specific ranges (paper Tables I & IV): at depth `d` the
        // continuation test uses the observed Δ_{dMDE,(d+1)MDE} range and
        // the transition test the observed Δ_{dMDE,DE} range; global
        // ranges back them up when a level was unseen in training.
        let min_support = 3usize;
        let meta_range_at = |depth: u8| -> tabmeta_linalg::AngleRange {
            centroids
                .level(depth + 1)
                .filter(|l| l.support >= min_support && !l.prev_range.is_empty())
                .map(|l| l.prev_range.expanded(self.config.margin_deg))
                .unwrap_or(global_mde)
        };
        let trans_range_at = |depth: u8| -> tabmeta_linalg::AngleRange {
            centroids
                .level(depth.max(1))
                .filter(|l| l.support >= min_support && !l.to_data_range.is_empty())
                .map(|l| l.to_data_range.expanded(self.config.margin_deg))
                .unwrap_or(global_mde_de)
        };

        let mut depth: u8 = 0;
        let mut boundary = 0usize; // first non-metadata level
        for (i, maybe_v) in vectors.iter().enumerate() {
            let Some(v) = maybe_v else {
                // Blank/OOV level ends the metadata run.
                boundary = i;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: i,
                        angle: None,
                        matched: RangeKind::Reference,
                        decision: LevelLabel::Data,
                    });
                }
                break;
            };
            if i == 0 {
                // First level: closest reference centroid decides.
                angle_tests.inc();
                let to_meta = angle_degrees(v, &centroids.meta_ref);
                let to_data = angle_degrees(v, &centroids.data_ref);
                let is_meta = to_meta < to_data;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: 0,
                        angle: Some(to_meta),
                        matched: RangeKind::Reference,
                        decision: if is_meta { meta_label(1) } else { LevelLabel::Data },
                    });
                }
                if !is_meta {
                    boundary = 0;
                    break;
                }
                depth = 1;
                labels[0] = meta_label(1);
                boundary = 1;
                continue;
            }
            let prev = vectors[i - 1].as_ref().expect("walk stops at first None");
            angle_tests.inc();
            let delta = angle_degrees(prev, v);
            let mde = meta_range_at(depth);
            let mde_de = trans_range_at(depth);
            let in_mde = mde.contains(delta);
            let in_mde_de = mde_de.contains(delta);
            let (range_says_meta, matched) = if in_mde && !in_mde_de {
                (true, RangeKind::Mde)
            } else if in_mde_de && !in_mde {
                (false, RangeKind::MdeDe)
            } else if in_mde && in_mde_de {
                // Overlapping ranges: the nearer midpoint decides.
                (
                    (delta - mde.midpoint()).abs() <= (delta - mde_de.midpoint()).abs(),
                    RangeKind::Nearest,
                )
            } else {
                (mde.distance_to(delta) <= mde_de.distance_to(delta), RangeKind::Nearest)
            };
            // Reference consistency: metadata continuation additionally
            // requires the level itself to lean toward the metadata
            // reference (guards against C_MDE-close *data* level pairs).
            let still_meta = range_says_meta && {
                let to_meta = angle_degrees(v, &centroids.meta_ref);
                let to_data = angle_degrees(v, &centroids.data_ref);
                to_meta <= to_data + self.config.ref_tolerance_deg
            };
            if still_meta && depth < depth_cap {
                depth += 1;
                labels[i] = meta_label(depth);
                boundary = i + 1;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: i,
                        angle: Some(delta),
                        matched,
                        decision: meta_label(depth),
                    });
                }
            } else {
                boundary = i;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceStep {
                        axis,
                        index: i,
                        angle: Some(delta),
                        matched,
                        decision: LevelLabel::Data,
                    });
                }
                break;
            }
        }

        // CMD extension: rows past the boundary that look like section
        // headers (sparse + metadata-flavoured aggregate).
        if axis == Axis::Row && self.config.detect_cmd {
            for i in boundary.max(1)..n {
                let Some(v) = &vectors[i] else { continue };
                if table.blank_fraction(axis, i) < self.config.cmd_blank_threshold {
                    continue;
                }
                let to_meta = angle_degrees(v, &centroids.meta_ref);
                let to_data = angle_degrees(v, &centroids.data_ref);
                if to_meta < to_data + self.config.cmd_ref_tolerance_deg
                    && labels[i] == LevelLabel::Data
                {
                    labels[i] = LevelLabel::Cmd;
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(TraceStep {
                            axis,
                            index: i,
                            angle: Some(to_meta),
                            matched: RangeKind::Reference,
                            decision: LevelLabel::Cmd,
                        });
                    }
                }
            }
        }
        (labels, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centroid::{AxisCentroids, LevelPairStats};
    use std::collections::HashMap;
    use tabmeta_linalg::AngleRange;

    /// Hand-built embedder: "header" terms at 0°, "sub-header" terms at
    /// ~30°, data terms at ~80° from headers.
    struct Synthetic {
        map: HashMap<String, Vec<f32>>,
    }

    impl Synthetic {
        fn new() -> Self {
            let deg = |d: f32| {
                let r = d.to_radians();
                vec![r.cos(), r.sin()]
            };
            let mut map = HashMap::new();
            map.insert("header".to_string(), deg(0.0));
            map.insert("subheader".to_string(), deg(30.0));
            map.insert("subsub".to_string(), deg(55.0));
            map.insert("<int>".to_string(), deg(80.0));
            map.insert("<bigint>".to_string(), deg(82.0));
            map.insert("section".to_string(), deg(5.0));
            Self { map }
        }
    }

    impl TermEmbedder for Synthetic {
        fn dim(&self) -> usize {
            2
        }
        fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
            if let Some(v) = self.map.get(term) {
                tabmeta_linalg::add_assign(out, v);
                true
            } else {
                false
            }
        }
    }

    fn axis_centroids() -> AxisCentroids {
        let deg = |d: f32| {
            let r = d.to_radians();
            vec![r.cos(), r.sin()]
        };
        AxisCentroids {
            c_mde: AngleRange::new(20.0, 40.0),
            c_de: AngleRange::new(0.0, 10.0),
            c_mde_de: AngleRange::new(45.0, 90.0),
            meta_ref: deg(15.0),
            data_ref: deg(81.0),
            levels: vec![LevelPairStats {
                level: 1,
                delta_prev_meta: None,
                delta_to_data: Some(70.0),
                prev_range: AngleRange::empty(),
                to_data_range: AngleRange::new(45.0, 90.0),
                c_mde: AngleRange::new(20.0, 40.0),
                c_mde_de: AngleRange::new(45.0, 90.0),
                c_de: AngleRange::new(0.0, 10.0),
                support: 1,
            }],
        }
    }

    fn classifier() -> Classifier {
        Classifier {
            centroids: CentroidModel { rows: axis_centroids(), columns: axis_centroids() },
            config: ClassifierConfig { margin_deg: 2.0, ..Default::default() },
        }
    }

    #[test]
    fn two_level_header_then_data() {
        // Row 0: header (0°), row 1: subheader (30° away → C_MDE),
        // rows 2–3: data (~50°+ away → C_MDE-DE, then C_DE).
        let t = Table::from_strings(
            1,
            &[
                &["header", "header"],
                &["subheader", "subheader"],
                &["1", "14,373"],
                &["2", "9,201"],
            ],
        );
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 2, "labels: {:?}", v.rows);
        assert_eq!(v.rows[0], LevelLabel::Hmd(1));
        assert_eq!(v.rows[1], LevelLabel::Hmd(2));
        assert_eq!(v.rows[2], LevelLabel::Data);
        assert_eq!(v.rows[3], LevelLabel::Data);
    }

    #[test]
    fn single_header_table() {
        let t = Table::from_strings(2, &[&["header", "header"], &["1", "2"], &["3", "4"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 1);
        assert_eq!(v.rows, vec![LevelLabel::Hmd(1), LevelLabel::Data, LevelLabel::Data]);
    }

    #[test]
    fn headerless_table_is_all_data() {
        let t = Table::from_strings(3, &[&["1", "2"], &["3", "4"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 0);
        assert!(v.rows.iter().all(|l| *l == LevelLabel::Data));
    }

    #[test]
    fn depth_respects_cap() {
        let t = Table::from_strings(
            4,
            &[
                &["header", "header"],
                &["subheader", "subheader"],
                &["header", "header"],
                &["subheader", "subheader"],
                &["1", "2"],
            ],
        );
        let mut c = classifier();
        c.config.max_hmd_depth = 2;
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 2);
        assert_eq!(v.rows[2], LevelLabel::Data, "cap stops the run");
    }

    #[test]
    fn reference_only_trace_is_populated() {
        // Regression: the ReferenceOnly ablation returned an empty trace,
        // so Fig.-5-style walk-throughs silently vanished for the baseline.
        let t = Table::from_strings(
            7,
            &[&["header", "header"], &["subheader", "subheader"], &["1", "14,373"]],
        );
        let mut c = classifier();
        c.config.strategy = WalkStrategy::ReferenceOnly;
        let (v, trace) = c.classify_with_trace(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 2, "labels: {:?}", v.rows);
        let row_steps: Vec<&TraceStep> = trace.iter().filter(|s| s.axis == Axis::Row).collect();
        // One step per examined level, including the breaking data level.
        assert_eq!(row_steps.len(), 3, "trace: {row_steps:?}");
        assert!(row_steps.iter().all(|s| s.matched == RangeKind::Reference));
        assert!(row_steps.iter().all(|s| s.angle.is_some()));
        assert_eq!(row_steps[0].decision, LevelLabel::Hmd(1));
        assert_eq!(row_steps[1].decision, LevelLabel::Hmd(2));
        assert_eq!(row_steps[2].decision, LevelLabel::Data);
        // Column walk traces too.
        assert!(trace.iter().any(|s| s.axis == Axis::Column));
    }

    #[test]
    fn cmd_row_detected() {
        let t = Table::from_strings(
            5,
            &[
                &["header", "header", "header"],
                &["1", "2", "3"],
                &["section", "", ""],
                &["4", "5", "6"],
            ],
        );
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.rows[2], LevelLabel::Cmd, "labels: {:?}", v.rows);
        assert_eq!(v.hmd_depth, 1);
    }

    #[test]
    fn cmd_detection_can_be_disabled() {
        let t = Table::from_strings(
            6,
            &[&["header", "header"], &["1", "2"], &["section", ""], &["3", "4"]],
        );
        let mut c = classifier();
        c.config.detect_cmd = false;
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.rows[2], LevelLabel::Data);
    }

    #[test]
    fn columns_classify_transposed() {
        // Column 0 = VMD (header-ish terms down the column), columns 1-2 data.
        let t = Table::from_strings(
            7,
            &[
                &["header", "header", "header"],
                &["subheader", "1", "2"],
                &["subheader", "3", "4"],
                &["subsub", "5", "6"],
            ],
        );
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.vmd_depth, 1, "columns: {:?}", v.columns);
        assert_eq!(v.columns[0], LevelLabel::Vmd(1));
        assert_eq!(v.columns[1], LevelLabel::Data);
    }

    #[test]
    fn unusable_centroids_yield_all_data() {
        let mut c = classifier();
        c.centroids.rows.meta_ref = vec![0.0, 0.0];
        let t = Table::from_strings(8, &[&["header", "header"], &["1", "2"]]);
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 0);
    }

    #[test]
    fn trace_records_the_walk() {
        let t = Table::from_strings(
            9,
            &[&["header", "header"], &["subheader", "subheader"], &["1", "2"]],
        );
        let c = classifier();
        let (v, trace) = c.classify_with_trace(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 2);
        let row_steps: Vec<&TraceStep> = trace.iter().filter(|s| s.axis == Axis::Row).collect();
        assert!(row_steps.len() >= 3);
        assert_eq!(row_steps[0].matched, RangeKind::Reference);
        assert_eq!(row_steps[1].matched, RangeKind::Mde);
        assert!(row_steps[1].angle.unwrap() > 20.0 && row_steps[1].angle.unwrap() < 42.0);
        assert_eq!(row_steps[2].decision, LevelLabel::Data);
    }

    #[test]
    fn blank_second_row_ends_the_header_run() {
        let t = Table::from_strings(10, &[&["header", "header"], &["", ""], &["1", "2"]]);
        let c = classifier();
        let v = c.classify(&t, &Synthetic::new(), &Tokenizer::default());
        assert_eq!(v.hmd_depth, 1);
        assert_eq!(v.rows[1], LevelLabel::Data);
    }
}
