//! Centroid angle ranges (Defs. 11–13) and the per-level transition
//! statistics of paper Tables I–IV.
//!
//! During the training phase the weakly-labeled corpus yields, per axis
//! (rows for HMD, columns for VMD):
//!
//! * `C_MDE` — observed angles between metadata aggregates (within-table
//!   level pairs **and** sampled cross-table pairs; the latter is what lets
//!   markup-free corpora, whose weak labels only cover level 1, still get
//!   a usable metadata↔metadata range),
//! * `C_DE` — angles between data aggregates,
//! * `C_MDE-DE` — angles between metadata and data aggregates,
//! * reference vectors `meta_ref` / `data_ref` (the `row_mref` / `row_dref`
//!   the classifier compares the first level against),
//! * per-level [`LevelPairStats`] — `Δ_{(k−1)MDE,kMDE}` and `Δ_{kMDE,DE}`,
//!   the numbers the paper prints per corpus per level.

use crate::aggregate::axis_vectors;
use crate::bootstrap::WeakLabels;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tabmeta_embed::TermEmbedder;
use tabmeta_linalg::{angle_degrees, AngleRange, RangeEstimator};
use tabmeta_tabular::{Axis, Table};
use tabmeta_text::Tokenizer;

/// Per-level transition statistics (one paper table row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelPairStats {
    /// The metadata level `k` (1-based).
    pub level: u8,
    /// Mean `Δ_{(k−1)MDE, kMDE}` — angle from the previous metadata level
    /// (absent for level 1, which has no predecessor).
    pub delta_prev_meta: Option<f32>,
    /// Mean `Δ_{kMDE, DE}` — angle from this level to the first data level.
    pub delta_to_data: Option<f32>,
    /// Trimmed range of `Δ_{(k−1)MDE, kMDE}` — the level-specific
    /// metadata-continuation range the classifier tests at depth `k`.
    pub prev_range: AngleRange,
    /// Trimmed range of `Δ_{kMDE, DE}` — the level-specific transition
    /// range marking the metadata→data boundary after level `k`.
    pub to_data_range: AngleRange,
    /// Observed metadata↔metadata range among tables reaching this depth.
    pub c_mde: AngleRange,
    /// Observed metadata↔data range among tables reaching this depth.
    pub c_mde_de: AngleRange,
    /// Observed data↔data range among the same tables.
    pub c_de: AngleRange,
    /// Number of tables contributing.
    pub support: usize,
}

/// Centroid state for one axis (rows or columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisCentroids {
    /// Metadata↔metadata angle range (Def. 11).
    pub c_mde: AngleRange,
    /// Data↔data angle range (Def. 12).
    pub c_de: AngleRange,
    /// Metadata↔data angle range (Def. 13).
    pub c_mde_de: AngleRange,
    /// Centroid of metadata aggregates — the reference the first level is
    /// compared against.
    pub meta_ref: Vec<f32>,
    /// Centroid of data aggregates.
    pub data_ref: Vec<f32>,
    /// Per-level statistics, `levels[k-1]` describing metadata level `k`.
    pub levels: Vec<LevelPairStats>,
}

impl AxisCentroids {
    /// Per-level stats for metadata level `k`, if observed during training.
    pub fn level(&self, k: u8) -> Option<&LevelPairStats> {
        self.levels.iter().find(|l| l.level == k)
    }

    /// Whether enough evidence was collected to classify along this axis.
    pub fn is_usable(&self) -> bool {
        !self.c_mde_de.is_empty()
            && !self.c_de.is_empty()
            && self.meta_ref.iter().any(|x| *x != 0.0)
            && self.data_ref.iter().any(|x| *x != 0.0)
    }
}

/// The trained centroid model: one [`AxisCentroids`] per axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentroidModel {
    /// Row-axis (HMD) centroids.
    pub rows: AxisCentroids,
    /// Column-axis (VMD) centroids.
    pub columns: AxisCentroids,
}

impl CentroidModel {
    /// The centroids for `axis`.
    pub fn axis(&self, axis: Axis) -> &AxisCentroids {
        match axis {
            Axis::Row => &self.rows,
            Axis::Column => &self.columns,
        }
    }
}

/// Estimation options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CentroidOptions {
    /// Percentile trim applied to every range (lo fraction).
    pub trim_lo: f64,
    /// Percentile trim (hi fraction).
    pub trim_hi: f64,
    /// Cross-table metadata reservoir size.
    pub reservoir: usize,
    /// Cross-table metadata pairs sampled from the reservoir.
    pub cross_pairs: usize,
    /// Max data↔data pairs recorded per table.
    pub data_pairs_per_table: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for CentroidOptions {
    fn default() -> Self {
        Self {
            trim_lo: 0.05,
            trim_hi: 0.95,
            reservoir: 256,
            cross_pairs: 512,
            data_pairs_per_table: 6,
            seed: 0xce17,
        }
    }
}

/// Accumulators for one axis during estimation.
///
/// Serializable so the streaming trainer can checkpoint the partial
/// reduce state at every shard boundary; the sample vectors round-trip
/// through JSON bit-exactly (the same f32 path the envelope tests pin),
/// which is what makes kill-and-resume byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct AxisAccumulator {
    mde: RangeEstimator,
    de: RangeEstimator,
    mde_de: RangeEstimator,
    meta_sum: Vec<f32>,
    meta_n: usize,
    data_sum: Vec<f32>,
    data_n: usize,
    reservoir: Vec<Vec<f32>>,
    seen_meta: usize,
    level_prev: Vec<RangeEstimator>,
    level_to_data: Vec<RangeEstimator>,
    level_support: Vec<usize>,
}

const MAX_LEVELS: usize = 5;

impl AxisAccumulator {
    pub(crate) fn new(dim: usize) -> Self {
        Self {
            mde: RangeEstimator::new(),
            de: RangeEstimator::new(),
            mde_de: RangeEstimator::new(),
            meta_sum: vec![0.0; dim],
            meta_n: 0,
            data_sum: vec![0.0; dim],
            data_n: 0,
            reservoir: Vec::new(),
            seen_meta: 0,
            level_prev: (0..MAX_LEVELS).map(|_| RangeEstimator::new()).collect(),
            level_to_data: (0..MAX_LEVELS).map(|_| RangeEstimator::new()).collect(),
            level_support: vec![0; MAX_LEVELS],
        }
    }

    pub(crate) fn observe_table(
        &mut self,
        vectors: &[Option<Vec<f32>>],
        meta_idx: &[usize],
        data_idx: &[usize],
        options: &CentroidOptions,
        rng: &mut StdRng,
    ) {
        let meta: Vec<&Vec<f32>> = meta_idx.iter().filter_map(|&i| vectors[i].as_ref()).collect();
        let data: Vec<&Vec<f32>> = data_idx.iter().filter_map(|&i| vectors[i].as_ref()).collect();

        for v in &meta {
            tabmeta_linalg::add_assign(&mut self.meta_sum, v);
            self.meta_n += 1;
            // Reservoir sampling for cross-table metadata pairs.
            self.seen_meta += 1;
            if self.reservoir.len() < options.reservoir {
                self.reservoir.push((*v).clone());
            } else {
                let j = rng.random_range(0..self.seen_meta);
                if j < options.reservoir {
                    self.reservoir[j] = (*v).clone();
                }
            }
        }
        for v in &data {
            tabmeta_linalg::add_assign(&mut self.data_sum, v);
            self.data_n += 1;
        }

        // Within-table metadata level pairs.
        for w in meta.windows(2) {
            self.mde.push(angle_degrees(w[0], w[1]));
        }
        // Data pairs: consecutive, capped.
        for w in data.windows(2).take(options.data_pairs_per_table) {
            self.de.push(angle_degrees(w[0], w[1]));
        }
        // Metadata ↔ data pairs: each metadata level against the first
        // data level (the transition the classifier detects) plus one
        // random data level for range coverage.
        if let Some(first_data) = data.first() {
            for m in &meta {
                self.mde_de.push(angle_degrees(m, first_data));
            }
            if data.len() > 1 {
                for m in &meta {
                    let d = data[rng.random_range(0..data.len())];
                    self.mde_de.push(angle_degrees(m, d));
                }
            }
        }

        // Per-level transitions. Weak metadata levels are a leading run, so
        // the vector at meta position k-1 is "level k".
        let depth = meta.len().min(MAX_LEVELS);
        for k in 1..=depth {
            self.level_support[k - 1] += 1;
            if k >= 2 {
                self.level_prev[k - 1].push(angle_degrees(meta[k - 2], meta[k - 1]));
            }
            if let Some(first_data) = data.first() {
                self.level_to_data[k - 1].push(angle_degrees(meta[k - 1], first_data));
            }
        }
    }

    /// Fold another shard's accumulator into this one — the reduce step of
    /// map-reduce estimation. Range estimators concatenate samples (order
    /// never affects their estimates), sums and counts add, and the two
    /// reservoirs merge by weighted draws so every metadata vector seen by
    /// either shard keeps an equal chance of surviving — the standard
    /// distributed-reservoir argument: an item survives shard sampling
    /// with probability `cap/seen_s` and the merge draw with probability
    /// proportional to `seen_s`, which cancels to `cap/(seen_a+seen_b)`.
    pub(crate) fn merge(
        &mut self,
        mut other: AxisAccumulator,
        options: &CentroidOptions,
        rng: &mut StdRng,
    ) {
        self.mde.merge(&other.mde);
        self.de.merge(&other.de);
        self.mde_de.merge(&other.mde_de);
        tabmeta_linalg::add_assign(&mut self.meta_sum, &other.meta_sum);
        self.meta_n += other.meta_n;
        tabmeta_linalg::add_assign(&mut self.data_sum, &other.data_sum);
        self.data_n += other.data_n;
        for k in 0..MAX_LEVELS {
            self.level_prev[k].merge(&other.level_prev[k]);
            self.level_to_data[k].merge(&other.level_to_data[k]);
            self.level_support[k] += other.level_support[k];
        }
        let (seen_a, seen_b) = (self.seen_meta, other.seen_meta);
        if self.reservoir.len() + other.reservoir.len() <= options.reservoir {
            self.reservoir.append(&mut other.reservoir);
        } else {
            let mut a = std::mem::take(&mut self.reservoir);
            let mut b = std::mem::take(&mut other.reservoir);
            // Both shards saw at least as many vectors as they retained,
            // so `wa >= a.len()` / `wb >= b.len()` hold throughout.
            let (mut wa, mut wb) = (seen_a, seen_b);
            let mut merged = Vec::with_capacity(options.reservoir);
            while merged.len() < options.reservoir && (!a.is_empty() || !b.is_empty()) {
                let pick_a = if a.is_empty() {
                    false
                } else if b.is_empty() {
                    true
                } else {
                    rng.random_range(0..wa + wb) < wa
                };
                if pick_a {
                    let i = rng.random_range(0..a.len());
                    merged.push(a.swap_remove(i));
                    wa -= 1;
                } else {
                    let i = rng.random_range(0..b.len());
                    merged.push(b.swap_remove(i));
                    wb -= 1;
                }
            }
            self.reservoir = merged;
        }
        self.seen_meta = seen_a + seen_b;
    }

    pub(crate) fn finish(mut self, options: &CentroidOptions, rng: &mut StdRng) -> AxisCentroids {
        // Cross-table metadata pairs from the reservoir.
        if self.reservoir.len() >= 2 {
            for _ in 0..options.cross_pairs {
                let i = rng.random_range(0..self.reservoir.len());
                let mut j = rng.random_range(0..self.reservoir.len());
                if i == j {
                    j = (j + 1) % self.reservoir.len();
                }
                self.mde.push(angle_degrees(&self.reservoir[i], &self.reservoir[j]));
            }
        }
        let trim = |e: &RangeEstimator| e.trimmed(options.trim_lo, options.trim_hi);
        let mut meta_ref = self.meta_sum;
        if self.meta_n > 0 {
            tabmeta_linalg::scale(&mut meta_ref, 1.0 / self.meta_n as f32);
        }
        let mut data_ref = self.data_sum;
        if self.data_n > 0 {
            tabmeta_linalg::scale(&mut data_ref, 1.0 / self.data_n as f32);
        }
        let levels = (1..=MAX_LEVELS)
            .filter(|&k| self.level_support[k - 1] > 0)
            .map(|k| LevelPairStats {
                level: k as u8,
                delta_prev_meta: self.level_prev[k - 1].mean(),
                delta_to_data: self.level_to_data[k - 1].mean(),
                prev_range: trim(&self.level_prev[k - 1]),
                to_data_range: trim(&self.level_to_data[k - 1]),
                c_mde: trim(&self.mde),
                c_mde_de: trim(&self.mde_de),
                c_de: trim(&self.de),
                support: self.level_support[k - 1],
            })
            .collect();
        AxisCentroids {
            c_mde: trim(&self.mde),
            c_de: trim(&self.de),
            c_mde_de: trim(&self.mde_de),
            meta_ref,
            data_ref,
            levels,
        }
    }
}

/// Feed one weakly-labeled table into the row/column accumulator pair —
/// the shared inner step of [`estimate`], [`estimate_par`], and the
/// streaming per-shard map phase.
#[allow(clippy::too_many_arguments)]
pub(crate) fn observe_table_pair<E: TermEmbedder + ?Sized>(
    rows_acc: &mut AxisAccumulator,
    cols_acc: &mut AxisAccumulator,
    table: &Table,
    labels: &WeakLabels,
    embedder: &E,
    tokenizer: &Tokenizer,
    options: &CentroidOptions,
    rng: &mut StdRng,
) {
    let row_vecs = axis_vectors(table, Axis::Row, embedder, tokenizer);
    rows_acc.observe_table(
        &row_vecs,
        &labels.metadata_indices(Axis::Row),
        &labels.data_indices(Axis::Row),
        options,
        rng,
    );
    let col_vecs = axis_vectors(table, Axis::Column, embedder, tokenizer);
    cols_acc.observe_table(
        &col_vecs,
        &labels.metadata_indices(Axis::Column),
        &labels.data_indices(Axis::Column),
        options,
        rng,
    );
}

/// Centroid map-reduce fold state at a logical shard boundary, carried
/// by streaming-training checkpoints.
///
/// Holds the running folded accumulators (rows merged before columns,
/// matching [`estimate_par`]'s fold order), the base-seed RNG position
/// the merges advanced, and the bootstrap provenance tally that the
/// final [`crate::pipeline::TrainSummary`] reports — everything the
/// resumed pass cannot recompute without re-observing the shards it
/// skips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentroidShardResume {
    /// Logical shards fully folded into the accumulators.
    pub shards_done: usize,
    /// Tables whose weak labels came from markup, over the folded shards.
    pub markup_bootstrapped: usize,
    /// Base-seed RNG position after `shards_done` folds.
    pub(crate) rng: [u64; 4],
    /// Folded row-axis accumulator.
    pub(crate) rows: AxisAccumulator,
    /// Folded column-axis accumulator.
    pub(crate) cols: AxisAccumulator,
}

/// Estimate a [`CentroidModel`] from weakly-labeled tables.
///
/// `tables` and `weak` must be index-aligned.
pub fn estimate<E: TermEmbedder + ?Sized>(
    tables: &[Table],
    weak: &[WeakLabels],
    embedder: &E,
    tokenizer: &Tokenizer,
    options: &CentroidOptions,
) -> CentroidModel {
    assert_eq!(tables.len(), weak.len(), "tables and weak labels must align");
    let dim = embedder.dim();
    let mut rows_acc = AxisAccumulator::new(dim);
    let mut cols_acc = AxisAccumulator::new(dim);
    let mut rng = StdRng::seed_from_u64(options.seed);
    for (table, labels) in tables.iter().zip(weak) {
        observe_table_pair(
            &mut rows_acc,
            &mut cols_acc,
            table,
            labels,
            embedder,
            tokenizer,
            options,
            &mut rng,
        );
    }
    CentroidModel {
        rows: rows_acc.finish(options, &mut rng),
        columns: cols_acc.finish(options, &mut rng),
    }
}

/// [`estimate`] with map-reduce sharding: tables are split into one
/// contiguous shard per worker, each shard accumulates independently with
/// its own RNG stream (`seed ⊕ (shard+1)`), and the per-shard accumulators
/// fold together in shard order before `finish` draws cross-table pairs
/// with the base seed. Deterministic for a fixed `(seed, threads)` pair;
/// only `threads = 1` reproduces the sequential stream exactly.
pub fn estimate_par<E: TermEmbedder + Sync + ?Sized>(
    tables: &[Table],
    weak: &[WeakLabels],
    embedder: &E,
    tokenizer: &Tokenizer,
    options: &CentroidOptions,
    threads: usize,
) -> CentroidModel {
    assert_eq!(tables.len(), weak.len(), "tables and weak labels must align");
    if threads <= 1 || tables.len() < 2 {
        return estimate(tables, weak, embedder, tokenizer, options);
    }
    let dim = embedder.dim();
    let chunk = tables.len().div_ceil(threads).max(1);
    let shards: Vec<(u64, &[Table], &[WeakLabels])> = tables
        .chunks(chunk)
        .zip(weak.chunks(chunk))
        .enumerate()
        .map(|(s, (t, w))| (s as u64, t, w))
        .collect();
    let per_shard: Vec<(AxisAccumulator, AxisAccumulator)> = shards
        .par_iter()
        .map(|&(shard, shard_tables, shard_weak)| {
            let mut rows_acc = AxisAccumulator::new(dim);
            let mut cols_acc = AxisAccumulator::new(dim);
            let mut rng = StdRng::seed_from_u64(options.seed ^ (shard + 1));
            for (table, labels) in shard_tables.iter().zip(shard_weak) {
                observe_table_pair(
                    &mut rows_acc,
                    &mut cols_acc,
                    table,
                    labels,
                    embedder,
                    tokenizer,
                    options,
                    &mut rng,
                );
            }
            (rows_acc, cols_acc)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut folded = per_shard.into_iter();
    let (mut rows_acc, mut cols_acc) =
        folded.next().unwrap_or_else(|| (AxisAccumulator::new(dim), AxisAccumulator::new(dim)));
    for (rows, cols) in folded {
        rows_acc.merge(rows, options, &mut rng);
        cols_acc.merge(cols, options, &mut rng);
    }
    CentroidModel {
        rows: rows_acc.finish(options, &mut rng),
        columns: cols_acc.finish(options, &mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapLabeler;
    use std::collections::HashMap;

    /// Embedder with two well-separated directions: header terms along x,
    /// data terms along y (plus a slight spread per term).
    struct TwoCluster {
        map: HashMap<String, Vec<f32>>,
    }

    impl TwoCluster {
        fn new() -> Self {
            let mut map = HashMap::new();
            for (i, t) in ["age", "sex", "rate", "count"].iter().enumerate() {
                map.insert(t.to_string(), vec![1.0, 0.1 * i as f32, 0.0]);
            }
            for (i, t) in ["<int>", "<bigint>", "<dec>", "<pct>"].iter().enumerate() {
                map.insert(t.to_string(), vec![0.0, 0.1 * i as f32, 1.0]);
            }
            // Entity names sit between but closer to data.
            map.insert("york".to_string(), vec![0.2, 0.5, 0.8]);
            map.insert("new".to_string(), vec![0.2, 0.4, 0.8]);
            Self { map }
        }
    }

    impl TermEmbedder for TwoCluster {
        fn dim(&self) -> usize {
            3
        }
        fn accumulate(&self, term: &str, out: &mut [f32]) -> bool {
            if let Some(v) = self.map.get(term) {
                tabmeta_linalg::add_assign(out, v);
                true
            } else {
                false
            }
        }
    }

    fn corpus() -> Vec<Table> {
        (0..12u64)
            .map(|id| {
                Table::from_strings(
                    id,
                    &[
                        &["age", "sex", "rate"],
                        &["1", "2", "3"],
                        &["14,373", "96.7%", "21.6"],
                        &["4", "5", "6"],
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn estimate_separates_ranges() {
        let tables = corpus();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let model = estimate(
            &tables,
            &weak,
            &TwoCluster::new(),
            &Tokenizer::default(),
            &CentroidOptions::default(),
        );
        let rows = &model.rows;
        assert!(rows.is_usable());
        // Data rows are all numeric-class aggregates: tight range near 0.
        assert!(rows.c_de.hi < 30.0, "C_DE too wide: {:?}", rows.c_de);
        // Header vs data is nearly orthogonal in this embedder.
        assert!(rows.c_mde_de.lo > 45.0, "C_MDE-DE too low: {:?}", rows.c_mde_de);
        // Cross-table header pairs are tight (identical headers).
        assert!(rows.c_mde.hi < 30.0, "C_MDE too wide: {:?}", rows.c_mde);
        // Reference vectors point along the right axes.
        assert!(rows.meta_ref[0] > rows.meta_ref[2]);
        assert!(rows.data_ref[2] > rows.data_ref[0]);
    }

    #[test]
    fn level_stats_cover_observed_depths() {
        let tables = corpus();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let model = estimate(
            &tables,
            &weak,
            &TwoCluster::new(),
            &Tokenizer::default(),
            &CentroidOptions::default(),
        );
        // Positional fallback gives exactly level-1 weak metadata.
        assert_eq!(model.rows.levels.len(), 1);
        let l1 = &model.rows.levels[0];
        assert_eq!(l1.level, 1);
        assert!(l1.delta_prev_meta.is_none());
        assert!(l1.delta_to_data.unwrap() > 45.0);
        assert_eq!(l1.support, 12);
    }

    #[test]
    fn estimation_is_deterministic() {
        let tables = corpus();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let e = TwoCluster::new();
        let tok = Tokenizer::default();
        let opts = CentroidOptions::default();
        let a = estimate(&tables, &weak, &e, &tok, &opts);
        let b = estimate(&tables, &weak, &e, &tok, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_estimation_matches_sequential_geometry() {
        let tables = corpus();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let e = TwoCluster::new();
        let tok = Tokenizer::default();
        let opts = CentroidOptions::default();
        let seq = estimate(&tables, &weak, &e, &tok, &opts);
        let par = estimate_par(&tables, &weak, &e, &tok, &opts, 3);
        assert!(par.rows.is_usable());
        // Shard RNG streams differ from the sequential stream, so ranges
        // are statistically — not bitwise — equal. On this synthetic
        // corpus (identical tables) the geometry must agree tightly.
        let close =
            |a: AngleRange, b: AngleRange| (a.lo - b.lo).abs() < 3.0 && (a.hi - b.hi).abs() < 3.0;
        assert!(close(par.rows.c_mde_de, seq.rows.c_mde_de));
        assert!(close(par.rows.c_de, seq.rows.c_de));
        // Reference vectors are exact sums reordered: near-identical.
        for (a, b) in par.rows.meta_ref.iter().zip(&seq.rows.meta_ref) {
            assert!((a - b).abs() < 1e-4, "meta_ref drifted: {a} vs {b}");
        }
        assert_eq!(par.rows.levels.len(), seq.rows.levels.len());
        assert_eq!(par.rows.levels[0].support, seq.rows.levels[0].support);
    }

    #[test]
    fn sharded_estimation_is_deterministic_per_thread_count() {
        let tables = corpus();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let e = TwoCluster::new();
        let tok = Tokenizer::default();
        let opts = CentroidOptions::default();
        let a = estimate_par(&tables, &weak, &e, &tok, &opts, 3);
        let b = estimate_par(&tables, &weak, &e, &tok, &opts, 3);
        assert_eq!(a, b, "fixed (seed, threads) must reproduce the model");
        let single = estimate_par(&tables, &weak, &e, &tok, &opts, 1);
        assert_eq!(single, estimate(&tables, &weak, &e, &tok, &opts));
    }

    #[test]
    fn reservoir_merge_respects_capacity() {
        // Many tables, tiny reservoir: the merged reservoir must not
        // exceed the cap and seen-counts must add up.
        let tables: Vec<Table> = (0..40u64)
            .map(|id| Table::from_strings(id, &[&["age", "sex", "rate"], &["1", "2", "3"]]))
            .collect();
        let labeler = BootstrapLabeler::default();
        let weak: Vec<WeakLabels> = tables.iter().map(|t| labeler.label(t)).collect();
        let opts = CentroidOptions { reservoir: 8, ..CentroidOptions::default() };
        let model =
            estimate_par(&tables, &weak, &TwoCluster::new(), &Tokenizer::default(), &opts, 4);
        // c_mde comes from reservoir cross-pairs; it must still be usable.
        assert!(!model.rows.c_mde.is_empty());
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_inputs_panic() {
        let tables = corpus();
        let _ = estimate(
            &tables,
            &[],
            &TwoCluster::new(),
            &Tokenizer::default(),
            &CentroidOptions::default(),
        );
    }

    #[test]
    fn empty_corpus_is_unusable_not_panicking() {
        let model = estimate(
            &[],
            &[],
            &TwoCluster::new(),
            &Tokenizer::default(),
            &CentroidOptions::default(),
        );
        assert!(!model.rows.is_usable());
        assert!(!model.columns.is_usable());
    }
}
