//! Out-of-core sharded training: the corpus never resides in memory.
//!
//! §IV-B of the paper trains on corpora from ~1K to 100M tables; an
//! in-memory `Vec<Table>` stops scaling long before the top of that
//! range. [`train_streaming`] instead drives a
//! [`ShardReader`](tabmeta_tabular::stream::ShardReader) over a corpus
//! *directory* in three bounded passes:
//!
//! * **Pass A (vocabulary)** folds every accepted table into the run
//!   fingerprint ([`StreamFingerprint`]) and the SGNS vocabulary, and
//!   counts training sentences. This pass is also the quarantine
//!   authority: its [`QuarantineReport`] is the one published to
//!   metrics, and conservation (`accepted + quarantined == total`)
//!   holds exactly even under injected disk faults.
//! * **Pass B (SGNS)** re-streams the corpus, encodes each sentence to
//!   compact `u32` ids against the frozen vocabulary (the memory win:
//!   ids, not strings, are what accumulates), and trains SGNS through
//!   the same resumable trainer as the in-memory path — the embedder is
//!   **bit-identical** to [`Pipeline::train`] on the same corpus/seed.
//! * **Pass C (centroids)** streams once more, bootstrapping weak
//!   labels table-by-table and folding fixed-size *logical* shards of
//!   accepted tables into centroid accumulators via the same map-reduce
//!   fold as [`centroid::estimate_par`]. After every fold a
//!   [`CheckpointStage::CentroidShard`] checkpoint is written, so a
//!   kill at any shard boundary resumes byte-identical to an
//!   uninterrupted run with the same seed (at `threads = 1`).
//!
//! Logical centroid shards are counted in *accepted tables*, not IO
//! shards: the memory-budget governor ([`SpillEvent`]) may shrink IO
//! shards mid-run, and results must not depend on where IO boundaries
//! fall. Disk-fault injection (see `resilience::disk`) keys decisions
//! on file *names*, so every pass — and every resumed run — sees an
//! identical record stream, which is what makes multi-pass streaming
//! and resume-determinism compatible with fault injection.

use std::ops::ControlFlow;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tabmeta_embed::{sentences_from_tables_par, SgnsResume, TermEmbedder, VocabBuilder, Word2Vec};
use tabmeta_obs::names;
use tabmeta_tabular::stream::{DiskIo, ShardReader, StreamOptions};
use tabmeta_tabular::QuarantineReport;
use tabmeta_text::Tokenizer;

use crate::centroid::{self, AxisAccumulator, CentroidModel, CentroidOptions, CentroidShardResume};
use crate::checkpoint::{CheckpointScanReport, CheckpointStage, CheckpointStore, TrainCheckpoint};
use crate::classifier::Classifier;
use crate::config::{EmbeddingChoice, PipelineConfig};
use crate::persist::{ArtifactError, StreamFingerprint};
use crate::pipeline::{AnyEmbedder, Pipeline, TrainSummary};

/// Knobs for [`train_streaming`].
#[derive(Debug, Clone)]
pub struct StreamTrainOptions {
    /// Maximum summed table rows per IO shard (the streaming unit).
    pub shard_rows: usize,
    /// Resident-memory budget in bytes. Checked at every IO shard
    /// boundary against the counting allocator
    /// ([`tabmeta_obs::mem::current_bytes`]); exceeding it halves the
    /// effective shard size (never below a floor of 64 rows) and
    /// records a [`SpillEvent`]. `None`, or a build without the
    /// `mem-track` feature, disables the governor.
    pub mem_budget: Option<u64>,
    /// Where quarantined raw records are spilled, per shard.
    pub quarantine_dir: Option<PathBuf>,
    /// Accepted tables per *logical* centroid shard — the fold and
    /// checkpoint granularity of pass C. Independent of `shard_rows`
    /// so budget spills never move centroid fold boundaries.
    pub centroid_shard_tables: usize,
}

impl Default for StreamTrainOptions {
    fn default() -> Self {
        Self {
            shard_rows: 4096,
            mem_budget: None,
            quarantine_dir: None,
            centroid_shard_tables: 512,
        }
    }
}

/// One memory-budget spill: the governor observed resident bytes over
/// budget at an IO shard boundary and shrank the effective shard size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillEvent {
    /// Which pass observed the overage (`"vocab"`, `"encode"`,
    /// `"centroid"`).
    pub pass: String,
    /// IO shard index (within its pass) at the observation.
    pub shard: usize,
    /// Resident bytes observed.
    pub observed_bytes: u64,
    /// The configured budget.
    pub budget_bytes: u64,
    /// Effective shard rows after shrinking.
    pub new_shard_rows: usize,
}

/// What a streaming run did, beyond the [`TrainSummary`] itself.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// The same summary an in-memory run produces.
    pub train: TrainSummary,
    /// Pass A's ingestion report (the published one; conservation
    /// `accepted + quarantined == total` holds exactly).
    pub report: QuarantineReport,
    /// The run fingerprint checkpoints were validated against.
    pub fingerprint: u64,
    /// IO shards streamed during pass A.
    pub io_shards: usize,
    /// Logical centroid shards folded during pass C.
    pub centroid_shards: usize,
    /// Memory-budget spills, in order.
    pub spills: Vec<SpillEvent>,
    /// Checkpoint scan outcome, when a checkpoint directory was given.
    pub scan: Option<CheckpointScanReport>,
}

impl StreamSummary {
    /// File name of the checkpoint this run resumed from, if any.
    pub fn resumed_from(&self) -> Option<&str> {
        self.scan.as_ref().and_then(|s| s.resumed_from.as_deref())
    }
}

/// A kill point: streaming training checkpoints (where applicable) and
/// consults the hook at each of these boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamBoundary {
    /// Pass A finished folding IO shard `n` into the vocabulary.
    /// Nothing is checkpointed yet; a kill here resumes from scratch.
    VocabShard(usize),
    /// Pass B finished encoding IO shard `n`. Also pre-checkpoint.
    EncodeShard(usize),
    /// SGNS epoch `n` completed and its checkpoint is durable.
    SgnsEpoch(u64),
    /// Logical centroid shard `n` folded and its checkpoint is durable.
    CentroidShard(usize),
}

impl std::fmt::Display for StreamBoundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamBoundary::VocabShard(n) => write!(f, "vocab shard {n}"),
            StreamBoundary::EncodeShard(n) => write!(f, "encode shard {n}"),
            StreamBoundary::SgnsEpoch(n) => write!(f, "sgns epoch {n}"),
            StreamBoundary::CentroidShard(n) => write!(f, "centroid shard {n}"),
        }
    }
}

/// Boundary observer for [`train_streaming`]; returning
/// [`ControlFlow::Break`] aborts the run there
/// ([`StreamTrainError::Interrupted`]) — the shard-chaos kill switch.
pub type StreamHook<'h> = &'h mut dyn FnMut(StreamBoundary) -> ControlFlow<()>;

/// Why streaming training failed. Every injected disk fault surfaces as
/// quarantine counters, *not* here — this enum is for conditions that
/// leave nothing trainable or that the caller asked for (interruption).
#[derive(Debug, PartialEq)]
pub enum StreamTrainError {
    /// The corpus directory could not be listed.
    Io {
        /// Underlying error text.
        detail: String,
    },
    /// No record in the directory survived ingestion.
    EmptyCorpus,
    /// Corpus yielded no usable centroid evidence on either axis.
    NoCentroidEvidence,
    /// Streaming supports only the Word2Vec embedder (char-gram
    /// fallback needs the whole corpus resident for its term table).
    UnsupportedEmbedder,
    /// Streaming does not run the fine-tune stage; strip it with
    /// [`PipelineConfig::without_finetune`].
    UnsupportedFinetune,
    /// The hook stopped the run at `at`.
    Interrupted {
        /// The boundary at which the hook broke.
        at: StreamBoundary,
    },
    /// A training checkpoint could not be written or restored.
    Checkpoint(ArtifactError),
}

impl std::fmt::Display for StreamTrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamTrainError::Io { detail } => write!(f, "streaming corpus IO: {detail}"),
            StreamTrainError::EmptyCorpus => {
                write!(f, "no record in the corpus directory survived ingestion")
            }
            StreamTrainError::NoCentroidEvidence => {
                write!(f, "corpus yielded no usable centroid evidence on either axis")
            }
            StreamTrainError::UnsupportedEmbedder => {
                write!(f, "streaming training supports only the Word2Vec embedder")
            }
            StreamTrainError::UnsupportedFinetune => {
                write!(f, "streaming training does not run the fine-tune stage")
            }
            StreamTrainError::Interrupted { at } => {
                write!(f, "streaming training interrupted at {at}")
            }
            StreamTrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for StreamTrainError {}

/// Floor for budget-driven shard shrinking: a shard always carries at
/// least this many rows (and always at least one table), so the
/// governor degrades throughput, never progress.
const SPILL_FLOOR_ROWS: usize = 64;

/// The memory-budget governor: consulted at IO shard boundaries, where
/// halving the effective shard size is safe because no result depends
/// on where IO boundaries fall.
struct StreamBudget {
    budget: Option<u64>,
    rows: usize,
    spills: Vec<SpillEvent>,
}

impl StreamBudget {
    fn new(shard_rows: usize, budget: Option<u64>) -> Self {
        let obs = tabmeta_obs::global();
        let rows = shard_rows.max(1);
        obs.gauge(names::STREAM_SHARD_ROWS).set(rows as f64);
        if let Some(b) = budget {
            obs.gauge(names::STREAM_BUDGET_BYTES).set(b as f64);
        }
        Self { budget, rows, spills: Vec::new() }
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn observe_boundary(&mut self, pass: &'static str, shard: usize) {
        let Some(limit) = self.budget else { return };
        if !tabmeta_obs::mem::is_tracking() {
            return;
        }
        let observed = tabmeta_obs::mem::current_bytes();
        let floor = SPILL_FLOOR_ROWS.min(self.rows);
        if observed > limit && self.rows > floor {
            self.rows = (self.rows / 2).max(floor);
            let obs = tabmeta_obs::global();
            obs.counter(names::STREAM_SPILLS).inc();
            obs.gauge(names::STREAM_SHARD_ROWS).set(self.rows as f64);
            self.spills.push(SpillEvent {
                pass: pass.to_string(),
                shard,
                observed_bytes: observed,
                budget_bytes: limit,
                new_shard_rows: self.rows,
            });
        }
    }
}

fn fire(hook: &mut Option<StreamHook<'_>>, at: StreamBoundary) -> ControlFlow<()> {
    match hook.as_mut() {
        Some(h) => h(at),
        None => ControlFlow::Continue(()),
    }
}

/// Fold one completed logical shard into the running pair, matching
/// [`centroid::estimate_par`]: the first shard *becomes* the fold (no
/// merge), later shards merge with the base RNG.
fn fold_shard(
    folded: &mut Option<(AxisAccumulator, AxisAccumulator)>,
    rows: AxisAccumulator,
    cols: AxisAccumulator,
    options: &CentroidOptions,
    rng: &mut StdRng,
) {
    match folded {
        None => *folded = Some((rows, cols)),
        Some((fr, fc)) => {
            fr.merge(rows, options, rng);
            fc.merge(cols, options, rng);
        }
    }
}

/// How a checkpoint scan maps onto the three passes.
enum ResumePlan {
    Fresh,
    Sgns(Word2Vec, SgnsResume),
    Centroid { embedder: AnyEmbedder, sgns_pairs: u64, resume: Box<CentroidShardResume> },
}

/// Train a pipeline by streaming a corpus directory in bounded shards.
///
/// `dir` holds the corpus as `*.jsonl` / `*.csv` files (the same layout
/// the batch readers ingest). `disk` is the IO seam — production passes
/// [`RealDisk`](tabmeta_tabular::stream::RealDisk); the chaos harness
/// passes a fault-injecting wrapper. With a `checkpoint_dir`, SGNS
/// epochs and centroid logical shards are durably checkpointed, and an
/// interrupted run resumes from the newest valid checkpoint —
/// byte-identical to an uninterrupted same-seed run at `threads = 1`.
///
/// The returned [`StreamSummary`] carries the published quarantine
/// report; `accepted + quarantined == total` holds exactly for every
/// disk-fault mix, because a faulted record is *counted*, never lost.
pub fn train_streaming(
    dir: &Path,
    config: &PipelineConfig,
    options: &StreamTrainOptions,
    disk: Arc<dyn DiskIo>,
    checkpoint_dir: Option<&Path>,
    mut hook: Option<StreamHook<'_>>,
) -> Result<(Pipeline, StreamSummary), StreamTrainError> {
    let sgns = match &config.embedding {
        EmbeddingChoice::Word2Vec(s) => s.clone(),
        EmbeddingChoice::CharGram(_) => return Err(StreamTrainError::UnsupportedEmbedder),
    };
    if config.finetune.is_some() {
        return Err(StreamTrainError::UnsupportedFinetune);
    }
    let obs = tabmeta_obs::global();
    let _stream_span = obs.span(names::SPAN_STREAM_TRAIN);
    let threads = config.threads.max(1);
    obs.gauge(names::TRAIN_THREADS).set(threads as f64);
    let tokenizer = Tokenizer::default();
    let shard_tables = options.centroid_shard_tables.max(1);
    let mut budget = StreamBudget::new(options.shard_rows, options.mem_budget);

    let reader = ShardReader::open(
        dir,
        StreamOptions {
            shard_rows: options.shard_rows,
            quarantine_dir: options.quarantine_dir.clone(),
        },
        disk,
    )
    .map_err(|e| StreamTrainError::Io { detail: format!("open corpus dir: {e}") })?;

    // ---- Pass A: fingerprint + vocabulary + sentence count. Always
    // runs in full — the fingerprint must exist before the checkpoint
    // store can open, so even a centroid-stage resume pays this pass.
    let embed_span = obs.span(names::SPAN_EMBED);
    let mut builder = VocabBuilder::new();
    let mut fp = StreamFingerprint::new(config, shard_tables);
    let mut n_sentences = 0usize;
    let mut io_shards = 0usize;
    let mut cursor = reader.pass();
    let mut interrupted_at: Option<StreamBoundary> = None;
    while let Some(shard) = cursor.next_shard(budget.rows()) {
        io_shards += 1;
        for table in &shard.tables {
            fp.fold_table(table);
        }
        let sentences =
            sentences_from_tables_par(&shard.tables, &tokenizer, &config.sentences, threads);
        n_sentences += sentences.len();
        for s in &sentences {
            builder.observe(s);
        }
        budget.observe_boundary("vocab", shard.index);
        let at = StreamBoundary::VocabShard(shard.index);
        if fire(&mut hook, at).is_break() {
            interrupted_at = Some(at);
            break;
        }
    }
    let report = cursor.finish();
    drop(embed_span);
    if let Some(at) = interrupted_at {
        return Err(StreamTrainError::Interrupted { at });
    }
    report.publish_metrics();
    if report.accepted == 0 {
        return Err(StreamTrainError::EmptyCorpus);
    }

    // ---- Checkpoint scan: the store validates against the streaming
    // fingerprint, so checkpoints from a different corpus, config, or
    // the in-memory trainer are quarantined rather than resumed.
    let fingerprint = fp.finish();
    let store = match checkpoint_dir {
        Some(ckpt_dir) => Some(
            CheckpointStore::open(ckpt_dir, fingerprint).map_err(StreamTrainError::Checkpoint)?,
        ),
        None => None,
    };
    let (resume_ck, scan) = match store.as_ref() {
        Some(s) => {
            let (ck, scan) = s.latest_valid().map_err(StreamTrainError::Checkpoint)?;
            (ck, Some(scan))
        }
        None => (None, None),
    };
    let plan = match resume_ck {
        None => ResumePlan::Fresh,
        Some(ck) => {
            obs.gauge(names::CHECKPOINT_RESUMED_EPOCH)
                .set(ck.stage.global_epoch(sgns.epochs as u64) as f64);
            match ck.stage {
                CheckpointStage::Sgns(state) => match ck.embedder {
                    AnyEmbedder::Word2Vec(m) => ResumePlan::Sgns(m, state),
                    AnyEmbedder::CharGram(_) => {
                        return Err(StreamTrainError::Checkpoint(ArtifactError::SchemaInvalid {
                            detail: "checkpoint holds a CharGram embedder but streaming \
                                     trains Word2Vec"
                                .to_string(),
                        }))
                    }
                },
                CheckpointStage::CentroidShard { sgns_pairs, resume } => {
                    ResumePlan::Centroid { embedder: ck.embedder, sgns_pairs, resume }
                }
                CheckpointStage::Finetune { .. } => {
                    return Err(StreamTrainError::Checkpoint(ArtifactError::SchemaInvalid {
                        detail: "checkpoint holds a fine-tune stage, which streaming \
                                 training never writes"
                            .to_string(),
                    }))
                }
            }
        }
    };

    // ---- Pass B: encode + SGNS (skipped entirely on a centroid-stage
    // resume — the checkpointed embedder is already final).
    let (embedder, sgns_pairs, centroid_resume) = match plan {
        ResumePlan::Centroid { embedder, sgns_pairs, resume } => {
            (embedder, sgns_pairs, Some(resume))
        }
        other => {
            let prior = match other {
                ResumePlan::Sgns(m, st) => Some((m, st)),
                _ => None,
            };
            let (vocab, encoder) = builder.finish(sgns.min_count);
            let mut encoded: Vec<Vec<u32>> = Vec::new();
            let mut cursor = reader.pass();
            let mut interrupted_at: Option<StreamBoundary> = None;
            while let Some(shard) = cursor.next_shard(budget.rows()) {
                let sentences = sentences_from_tables_par(
                    &shard.tables,
                    &tokenizer,
                    &config.sentences,
                    threads,
                );
                encoded.extend(sentences.iter().filter_map(|s| encoder.encode(s)));
                budget.observe_boundary("encode", shard.index);
                let at = StreamBoundary::EncodeShard(shard.index);
                if fire(&mut hook, at).is_break() {
                    interrupted_at = Some(at);
                    break;
                }
            }
            let _ = cursor.finish();
            if let Some(at) = interrupted_at {
                return Err(StreamTrainError::Interrupted { at });
            }

            let mut sgns_config = sgns.clone();
            sgns_config.threads = threads;
            let wants_sink = store.is_some() || hook.is_some();
            let mut ckpt_err: Option<ArtifactError> = None;
            let mut halted_at: u64 = 0;
            let mut sink = |m: &Word2Vec, st: &SgnsResume| -> ControlFlow<()> {
                halted_at = st.epochs_done as u64;
                if let Some(store) = store.as_ref() {
                    let checkpoint = TrainCheckpoint {
                        stage: CheckpointStage::Sgns(st.clone()),
                        embedder: AnyEmbedder::Word2Vec(m.clone()),
                        sentences: n_sentences,
                    };
                    if let Err(e) = store.write(&checkpoint) {
                        ckpt_err = Some(e);
                        return ControlFlow::Break(());
                    }
                }
                fire(&mut hook, StreamBoundary::SgnsEpoch(st.epochs_done as u64))
            };
            let (model, train_report, interrupted) = Word2Vec::train_encoded_resumable(
                vocab,
                &encoded,
                sgns_config,
                prior,
                wants_sink.then_some(&mut sink),
            );
            if interrupted {
                if let Some(e) = ckpt_err {
                    return Err(StreamTrainError::Checkpoint(e));
                }
                return Err(StreamTrainError::Interrupted {
                    at: StreamBoundary::SgnsEpoch(halted_at),
                });
            }
            (AnyEmbedder::Word2Vec(model), train_report.pairs, None)
        }
    };

    // ---- Pass C: weak labels + map-reduce centroids over logical
    // shards, checkpoint per fold. Resume skips exactly the accepted
    // tables already folded and restores the base RNG, so the fold
    // sequence is identical to an uninterrupted run.
    let centroid_span = obs.span(names::SPAN_CENTROID);
    let copts = &config.centroid;
    let dim = embedder.dim();
    let (mut folded, mut base_rng, mut shards_done, mut markup) = match centroid_resume {
        Some(r) => {
            let r = *r;
            (
                Some((r.rows, r.cols)),
                StdRng::from_state(r.rng),
                r.shards_done,
                r.markup_bootstrapped,
            )
        }
        None => (None, StdRng::seed_from_u64(copts.seed), 0usize, 0usize),
    };
    let mut skip = shards_done * shard_tables;
    let mut cur_rows = AxisAccumulator::new(dim);
    let mut cur_cols = AxisAccumulator::new(dim);
    let mut in_shard = 0usize;
    let mut shard_rng = StdRng::seed_from_u64(copts.seed ^ (shards_done as u64 + 1));
    let mut interrupted_at: Option<StreamBoundary> = None;
    let mut ckpt_err: Option<ArtifactError> = None;
    let mut cursor = reader.pass();
    'stream: while let Some(shard) = cursor.next_shard(budget.rows()) {
        for table in &shard.tables {
            if skip > 0 {
                skip -= 1;
                continue;
            }
            let labels = config.bootstrap.label(table);
            obs.counter(names::BOOTSTRAP_TABLES).inc();
            if labels.from_markup {
                markup += 1;
                obs.counter(names::BOOTSTRAP_MARKUP_TABLES).inc();
            }
            centroid::observe_table_pair(
                &mut cur_rows,
                &mut cur_cols,
                table,
                &labels,
                &embedder,
                &tokenizer,
                copts,
                &mut shard_rng,
            );
            in_shard += 1;
            if in_shard == shard_tables {
                let rows = std::mem::replace(&mut cur_rows, AxisAccumulator::new(dim));
                let cols = std::mem::replace(&mut cur_cols, AxisAccumulator::new(dim));
                fold_shard(&mut folded, rows, cols, copts, &mut base_rng);
                shards_done += 1;
                in_shard = 0;
                shard_rng = StdRng::seed_from_u64(copts.seed ^ (shards_done as u64 + 1));
                let at = StreamBoundary::CentroidShard(shards_done);
                if let (Some(store), Some((fr, fc))) = (store.as_ref(), folded.as_ref()) {
                    let checkpoint = TrainCheckpoint {
                        stage: CheckpointStage::CentroidShard {
                            sgns_pairs,
                            resume: Box::new(CentroidShardResume {
                                shards_done,
                                markup_bootstrapped: markup,
                                rng: base_rng.state(),
                                rows: fr.clone(),
                                cols: fc.clone(),
                            }),
                        },
                        embedder: embedder.clone(),
                        sentences: n_sentences,
                    };
                    if let Err(e) = store.write(&checkpoint) {
                        ckpt_err = Some(e);
                        break 'stream;
                    }
                }
                if fire(&mut hook, at).is_break() {
                    interrupted_at = Some(at);
                    break 'stream;
                }
            }
        }
        budget.observe_boundary("centroid", shard.index);
    }
    let _ = cursor.finish();
    if let Some(e) = ckpt_err {
        return Err(StreamTrainError::Checkpoint(e));
    }
    if let Some(at) = interrupted_at {
        return Err(StreamTrainError::Interrupted { at });
    }
    if in_shard > 0 {
        fold_shard(&mut folded, cur_rows, cur_cols, copts, &mut base_rng);
        shards_done += 1;
    }
    let (rows_acc, cols_acc) = match folded {
        Some(pair) => pair,
        None => (AxisAccumulator::new(dim), AxisAccumulator::new(dim)),
    };
    let centroids = CentroidModel {
        rows: rows_acc.finish(copts, &mut base_rng),
        columns: cols_acc.finish(copts, &mut base_rng),
    };
    drop(centroid_span);
    if !centroids.rows.is_usable() && !centroids.columns.is_usable() {
        return Err(StreamTrainError::NoCentroidEvidence);
    }

    let train = TrainSummary {
        sentences: n_sentences,
        sgns_pairs,
        finetune: None,
        markup_bootstrapped: markup,
    };
    let pipeline = Pipeline::assemble(
        embedder,
        tokenizer,
        Classifier { centroids, config: config.classifier.clone() },
        train.clone(),
    );
    let summary = StreamSummary {
        train,
        report,
        fingerprint,
        io_shards,
        centroid_shards: shards_done,
        spills: budget.spills,
        scan,
    };
    Ok((pipeline, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::Write as _;
    use tabmeta_corpora::{CorpusKind, GeneratorConfig};
    use tabmeta_tabular::stream::RealDisk;
    use tabmeta_tabular::Corpus;

    /// Write `corpus` as several JSONL files so the reader streams
    /// across file boundaries.
    fn write_corpus_dir(dir: &Path, corpus: &Corpus, files: usize) {
        fs::create_dir_all(dir).unwrap();
        let per = corpus.tables.len().div_ceil(files.max(1)).max(1);
        for (i, chunk) in corpus.tables.chunks(per).enumerate() {
            let mut slice = Corpus::new(&format!("part-{i}"));
            slice.tables = chunk.to_vec();
            let mut buf = Vec::new();
            slice.write_jsonl(&mut buf).unwrap();
            let mut f = fs::File::create(dir.join(format!("part-{i:02}.jsonl"))).unwrap();
            f.write_all(&buf).unwrap();
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tabmeta-stream-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn options() -> StreamTrainOptions {
        StreamTrainOptions {
            shard_rows: 96,
            mem_budget: None,
            quarantine_dir: None,
            centroid_shard_tables: 40,
        }
    }

    #[test]
    fn streaming_matches_in_memory_embedder_and_agrees_on_verdicts() {
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 120, seed: 11 });
        let dir = temp_dir("parity");
        write_corpus_dir(&dir, &corpus, 4);
        let config = PipelineConfig::fast_seeded(7).without_finetune();

        let in_memory = Pipeline::train(&corpus.tables, &config).unwrap();
        let (streamed, summary) =
            train_streaming(&dir, &config, &options(), Arc::new(RealDisk), None, None).unwrap();

        assert!(summary.report.is_clean());
        assert_eq!(summary.report.accepted, corpus.tables.len());
        assert_eq!(summary.train.sentences, in_memory.summary().sentences);
        // SGNS sees the identical sentence stream: bit-identical pairs.
        assert_eq!(summary.train.sgns_pairs, in_memory.summary().sgns_pairs);
        assert_eq!(summary.train.markup_bootstrapped, in_memory.summary().markup_bootstrapped);
        // Centroid folds differ (logical shards vs one sequential
        // stream), so require verdict agreement, not identity.
        let mut agree = 0usize;
        for t in &corpus.tables {
            if streamed.classify(t) == in_memory.classify(t) {
                agree += 1;
            }
        }
        let rate = agree as f64 / corpus.tables.len() as f64;
        assert!(rate >= 0.97, "verdict agreement {rate} below 0.97");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_at_centroid_shard_resumes_byte_identical() {
        let corpus = CorpusKind::Cius.generate(&GeneratorConfig { n_tables: 100, seed: 3 });
        let dir = temp_dir("resume-centroid");
        write_corpus_dir(&dir, &corpus, 3);
        let ckpt = dir.join("ckpt");
        let config = PipelineConfig::fast_seeded(5).without_finetune();
        let opts = options();

        let (baseline, _) =
            train_streaming(&dir, &config, &opts, Arc::new(RealDisk), None, None).unwrap();

        let mut kill = |at: StreamBoundary| -> ControlFlow<()> {
            if at == StreamBoundary::CentroidShard(1) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        };
        let err =
            train_streaming(&dir, &config, &opts, Arc::new(RealDisk), Some(&ckpt), Some(&mut kill))
                .unwrap_err();
        assert_eq!(err, StreamTrainError::Interrupted { at: StreamBoundary::CentroidShard(1) });

        let (resumed, summary) =
            train_streaming(&dir, &config, &opts, Arc::new(RealDisk), Some(&ckpt), None).unwrap();
        assert_eq!(
            summary.resumed_from(),
            Some("ckpt-2-00001.tma"),
            "must resume from the centroid-shard checkpoint"
        );
        assert_eq!(
            resumed.to_json().unwrap(),
            baseline.to_json().unwrap(),
            "resumed pipeline must be byte-identical to the uninterrupted run"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_at_sgns_epoch_resumes_byte_identical() {
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 80, seed: 9 });
        let dir = temp_dir("resume-sgns");
        write_corpus_dir(&dir, &corpus, 2);
        let ckpt = dir.join("ckpt");
        let config = PipelineConfig::fast_seeded(2).without_finetune();
        let opts = options();

        let (baseline, _) =
            train_streaming(&dir, &config, &opts, Arc::new(RealDisk), None, None).unwrap();

        let mut kill = |at: StreamBoundary| -> ControlFlow<()> {
            if at == StreamBoundary::SgnsEpoch(2) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        };
        let err =
            train_streaming(&dir, &config, &opts, Arc::new(RealDisk), Some(&ckpt), Some(&mut kill))
                .unwrap_err();
        assert_eq!(err, StreamTrainError::Interrupted { at: StreamBoundary::SgnsEpoch(2) });

        let (resumed, summary) =
            train_streaming(&dir, &config, &opts, Arc::new(RealDisk), Some(&ckpt), None).unwrap();
        assert!(summary.resumed_from().is_some());
        assert_eq!(resumed.to_json().unwrap(), baseline.to_json().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_budget_spills_deterministically_and_still_trains() {
        let corpus = CorpusKind::Wdc.generate(&GeneratorConfig { n_tables: 90, seed: 17 });
        let dir = temp_dir("budget");
        write_corpus_dir(&dir, &corpus, 3);
        let config = PipelineConfig::fast_seeded(4).without_finetune();
        let mut opts = options();
        opts.mem_budget = Some(1); // any tracked byte is over budget

        let run = || {
            train_streaming(&dir, &config, &opts, Arc::new(RealDisk), None, None)
                .map(|(p, s)| (p.to_json().unwrap_or_default(), s.spills.clone()))
        };
        let (json_a, spills_a) = run().unwrap();
        let (json_b, spills_b) = run().unwrap();
        if tabmeta_obs::mem::is_tracking() {
            assert!(!spills_a.is_empty(), "a 1-byte budget must spill");
            let floor = spills_a.last().map(|s| s.new_shard_rows).unwrap_or(0);
            assert!(floor >= SPILL_FLOOR_ROWS.min(opts.shard_rows));
        }
        assert_eq!(spills_a, spills_b, "spill provenance must be deterministic");
        assert_eq!(json_a, json_b, "spills must not change the trained pipeline");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupported_configs_are_typed_errors() {
        let dir = temp_dir("unsupported");
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 4, seed: 1 });
        write_corpus_dir(&dir, &corpus, 1);
        let with_ft = PipelineConfig::fast_seeded(1);
        assert_eq!(
            train_streaming(&dir, &with_ft, &options(), Arc::new(RealDisk), None, None)
                .map(|_| ())
                .unwrap_err(),
            StreamTrainError::UnsupportedFinetune
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_empty_corpus() {
        let dir = temp_dir("empty");
        assert_eq!(
            train_streaming(
                &dir,
                &PipelineConfig::fast_seeded(1).without_finetune(),
                &options(),
                Arc::new(RealDisk),
                None,
                None
            )
            .map(|_| ())
            .unwrap_err(),
            StreamTrainError::EmptyCorpus
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_fingerprint_is_stable_across_runs_and_corpus_sensitive() {
        let corpus = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 30, seed: 8 });
        let dir = temp_dir("fp");
        write_corpus_dir(&dir, &corpus, 2);
        let config = PipelineConfig::fast_seeded(3).without_finetune();
        let run = |d: &Path| {
            train_streaming(d, &config, &options(), Arc::new(RealDisk), None, None)
                .map(|(_, s)| s.fingerprint)
                .unwrap()
        };
        assert_eq!(run(&dir), run(&dir));
        let other = CorpusKind::Saus.generate(&GeneratorConfig { n_tables: 31, seed: 8 });
        let dir2 = temp_dir("fp2");
        write_corpus_dir(&dir2, &other, 2);
        assert_ne!(run(&dir), run(&dir2));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }
}
