//! Concurrency and serialization tests for the obs layer: recording from
//! rayon-style parallel loops must lose nothing, span stacks must stay
//! per-thread, and snapshots must round-trip through JSON.

use proptest::prelude::*;
use rayon::prelude::*;
use std::sync::Arc;
use tabmeta_obs::{Registry, Snapshot};

#[test]
fn parallel_counter_increments_are_all_counted() {
    let reg = Registry::new();
    let counter = reg.counter("par.events");
    let hist = reg.histogram("par.values");
    let items: Vec<u64> = (0..50_000).collect();
    let _: Vec<()> = items
        .par_iter()
        .map(|v| {
            counter.inc();
            hist.record(*v % 1024 + 1);
        })
        .collect();
    assert_eq!(counter.get(), 50_000, "no increment may be lost under contention");
    assert_eq!(hist.count(), 50_000);
    let binned: u64 = hist.underflow()
        + hist.overflow()
        + hist.nonzero_buckets().iter().map(|(_, _, n)| n).sum::<u64>();
    assert_eq!(binned, 50_000, "every value lands in exactly one bucket");
}

#[test]
fn spans_nest_per_thread_under_parallelism() {
    let reg = Arc::new(Registry::new());
    let items: Vec<u32> = (0..256).collect();
    let _outer = reg.span("driver");
    let reg_ref = &reg;
    let _: Vec<()> = items
        .par_iter()
        .map(|_| {
            let _work = reg_ref.span("work");
            let _step = reg_ref.span("step");
        })
        .collect();
    drop(_outer);
    let stats = reg.spans().snapshot();
    let get = |path: &str| stats.iter().find(|(p, _)| p == path).map(|(_, s)| s.count).unwrap_or(0);
    // Worker threads have their own stacks; their spans root at "work"
    // (or nest under "driver" when the calling thread executes a chunk
    // itself). Either way every invocation is recorded exactly once and
    // "step" always sits directly inside "work".
    assert_eq!(get("work") + get("driver/work"), 256);
    assert_eq!(get("work/step") + get("driver/work/step"), 256);
    assert_eq!(get("driver"), 1);
}

#[test]
fn snapshot_roundtrips_through_json() {
    let reg = Registry::new();
    reg.counter("tables").add(17);
    reg.gauge("loss").set(0.125);
    reg.gauge("rate").set(-3.5);
    let h = reg.histogram_with("depth", 1, 64);
    for v in [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 64, 99] {
        h.record(v);
    }
    {
        let _train = reg.span("train");
        let _epoch = reg.span("epoch");
    }
    let snap = reg.snapshot();
    let json = serde_json::to_string_pretty(&snap).expect("serialize");
    let back: Snapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, snap, "snapshot must survive a JSON round-trip");
    assert!(json.contains("\"train/epoch\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Splitting increments across threads and merging via the shared
    /// counter equals the plain sum: concurrent relaxed adds are exact.
    #[test]
    fn merged_counter_equals_sum_of_parts(parts in prop::collection::vec(0u64..500, 1..8)) {
        let reg = Registry::new();
        let counter = reg.counter("merge.test");
        std::thread::scope(|scope| {
            for &n in &parts {
                let handle = reg.counter("merge.test");
                scope.spawn(move || {
                    for _ in 0..n {
                        handle.inc();
                    }
                });
            }
        });
        let expected: u64 = parts.iter().sum();
        prop_assert_eq!(counter.get(), expected);
        prop_assert_eq!(reg.snapshot().counters[0].value, expected);
    }
}
