//! Zero-dependency heap accounting via a counting `#[global_allocator]`
//! wrapper (feature `alloc-track`).
//!
//! [`CountingAlloc`] delegates every allocation to the system allocator
//! and maintains two process-wide relaxed atomics: live heap bytes and
//! the high-water mark. Binaries opt in by installing it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tabmeta_obs::mem::CountingAlloc = tabmeta_obs::mem::CountingAlloc;
//! ```
//!
//! The bench harness and CLI install it (root feature `mem-track`, on by
//! default); library/test builds that don't simply read zeros —
//! [`is_tracking`] distinguishes the two. [`publish`] mirrors both
//! numbers into `mem.current_bytes` / `mem.peak_bytes` gauges, and
//! [`reset_peak`] rebases the high-water mark so peak heap is measurable
//! *per stage*, not just per process.

// The allocator impl is the workspace's one unsafe surface outside
// crates/linalg; the crate root forbids unsafe_code unless this feature
// is on.
#![allow(unsafe_code)]

use crate::names;
use crate::Registry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live heap bytes (allocated minus deallocated).
static CURRENT: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CURRENT`] since process start or [`reset_peak`].
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: usize) {
    let now = CURRENT.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

fn on_dealloc(bytes: usize) {
    CURRENT.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// Counting wrapper around [`std::alloc::System`].
pub struct CountingAlloc;

// SAFETY: every method forwards the caller's layout verbatim to the
// system allocator and returns its result unchanged; the only extra work
// is relaxed atomic bookkeeping on the side, which cannot violate the
// GlobalAlloc contract (no allocation, no panic, no reentrancy).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as the trait method; delegated to System.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: layout is the caller's, forwarded untouched.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: same contract as the trait method; delegated to System.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout pair is the caller's, forwarded untouched.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    // SAFETY: same contract as the trait method; delegated to System.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: layout is the caller's, forwarded untouched.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: same contract as the trait method; delegated to System.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: ptr/layout/new_size are the caller's, forwarded untouched.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now (0 when the allocator is not installed).
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water heap bytes since process start or the last [`reset_peak`]
/// (0 when the allocator is not installed).
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Rebase the high-water mark to the current live size, so the next
/// [`peak_bytes`] reading is the peak *of the stage that follows*.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Whether a [`CountingAlloc`] is actually installed in this process
/// (any real program allocates long before user code runs, so a zero
/// peak means nothing was ever counted).
pub fn is_tracking() -> bool {
    PEAK.load(Ordering::Relaxed) > 0 || CURRENT.load(Ordering::Relaxed) > 0
}

/// Mirror the two accounting numbers into `registry`'s
/// `mem.current_bytes` / `mem.peak_bytes` gauges.
pub fn publish(registry: &Registry) {
    registry.gauge(names::MEM_CURRENT_BYTES).set(current_bytes() as f64);
    registry.gauge(names::MEM_PEAK_BYTES).set(peak_bytes() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit-test binary does not install the allocator, so the statics
    // are ours to drive directly; this is the only test touching them.
    #[test]
    fn bookkeeping_tracks_current_and_peak() {
        reset_peak();
        let base_current = current_bytes();
        on_alloc(1000);
        on_alloc(500);
        assert_eq!(current_bytes(), base_current + 1500);
        assert!(peak_bytes() >= base_current + 1500);
        on_dealloc(1200);
        assert_eq!(current_bytes(), base_current + 300);
        assert!(peak_bytes() >= base_current + 1500, "peak survives frees");
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
        assert!(is_tracking());
        let reg = Registry::new();
        publish(&reg);
        assert_eq!(reg.gauge(names::MEM_CURRENT_BYTES).get(), current_bytes() as f64);
        assert_eq!(reg.gauge(names::MEM_PEAK_BYTES).get(), peak_bytes() as f64);
        // Restore the statics for any future reader.
        on_dealloc(300);
        reset_peak();
    }
}
