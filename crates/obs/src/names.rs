//! The metric-name registry: every instrument name the pipeline records,
//! declared once, checked statically.
//!
//! `tabmeta-lint` (rule TM-L004) parses this file's `pub const` items and
//! cross-checks every `counter(`/`gauge(`/`histogram(`/span call site in
//! the workspace against them: undeclared names, unused declarations, and
//! near-duplicates (edit distance ≤ 1 — the classic metric-typo failure)
//! all fail `scripts/check.sh`. Constants whose value ends in `.` declare
//! a *prefix*: a documented family of dynamically-suffixed names such as
//! `classifier.degraded.<reason>`.
//!
//! [`REGISTRY`] carries the documentation row (kind, unit, emitting
//! stage) for each name; `METRICS.md` at the workspace root is generated
//! from [`render_markdown`] and a test keeps the two in sync.

// --- spans: train path ------------------------------------------------

/// Whole-training span; every other training stage nests under it.
pub const SPAN_TRAIN: &str = "train";
/// Sentence extraction + embedding training stage.
pub const SPAN_EMBED: &str = "embed";
/// Weak-label bootstrap stage.
pub const SPAN_BOOTSTRAP: &str = "bootstrap";
/// Contrastive fine-tuning stage.
pub const SPAN_FINETUNE: &str = "finetune";
/// Centroid-range estimation stage.
pub const SPAN_CENTROID: &str = "centroid";
/// Corpus classification (root span of the inference path).
pub const SPAN_CLASSIFY: &str = "classify";
/// Sentence extraction inside the embed stage.
pub const SPAN_SENTENCES: &str = "sentences";
/// SGNS training inside the embed stage.
pub const SPAN_SGNS: &str = "sgns";
/// One training epoch (nests under `sgns` and `finetune`).
pub const SPAN_EPOCH: &str = "epoch";
/// CLI `train` command wall-clock (model build end to end).
pub const SPAN_CLI_TRAIN: &str = "cli.train";
/// One durable checkpoint write (serialize + envelope + atomic rename).
pub const SPAN_CHECKPOINT_WRITE: &str = "checkpoint.write";
/// Whole out-of-core streaming training run (all shard passes).
pub const SPAN_STREAM_TRAIN: &str = "stream.train";

// --- spans: bench harness ---------------------------------------------

/// Bench harness: one measured batch-classify iteration.
pub const SPAN_BENCH_CLASSIFY: &str = "bench.classify";
/// Bench harness: one measured training run.
pub const SPAN_BENCH_TRAIN: &str = "bench.train";
/// Bench harness: one measured JSONL ingestion pass.
pub const SPAN_BENCH_INGEST: &str = "bench.ingest";
/// Bench harness: one measured serve load-generation pass.
pub const SPAN_BENCH_SERVE: &str = "bench.serve";

// --- spans: serve path --------------------------------------------------

/// One admitted request's classify work on a serve worker thread.
pub const SPAN_SERVE_CLASSIFY: &str = "serve.classify";

// --- spans: eval harness ----------------------------------------------

/// Eval: our pipeline's training run in the runtime experiment.
pub const SPAN_EVAL_TRAIN_OURS: &str = "eval.train.ours";
/// Eval: Pytheas baseline training.
pub const SPAN_EVAL_TRAIN_PYTHEAS: &str = "eval.train.pytheas";
/// Eval: layout-detector baseline training.
pub const SPAN_EVAL_TRAIN_LAYOUT: &str = "eval.train.layout";
/// Eval: random-forest baseline training.
pub const SPAN_EVAL_TRAIN_RF: &str = "eval.train.rf";
/// Eval: one training run inside the Hogwild threads sweep.
pub const SPAN_EVAL_TRAIN_THREADS_SWEEP: &str = "eval.train.threads_sweep";
/// Eval: one inference pass over a held-out set.
pub const SPAN_EVAL_INFERENCE_PASS: &str = "eval.inference_pass";
/// Eval: one training run inside the corpus-size scaling sweep.
pub const SPAN_EVAL_SCALING_TRAIN: &str = "eval.scaling.train";
/// Eval: one training run inside an ablation variant.
pub const SPAN_EVAL_ABLATION_TRAIN: &str = "eval.ablation.train";
/// Eval: one training run inside the embedding-model comparison.
pub const SPAN_EVAL_EMBEDDINGS_TRAIN: &str = "eval.embeddings.train";

// --- counters ---------------------------------------------------------

/// Records accepted by quarantine-and-continue ingestion.
pub const INGEST_ACCEPTED: &str = "ingest.accepted";
/// Records quarantined (all rejection reasons combined).
pub const INGEST_QUARANTINED: &str = "ingest.quarantined";
/// Per-reason rejection family: `ingest.rejected.<reason>` where
/// `<reason>` is a `RejectReason::as_str` value (`malformed_json`,
/// `invalid_utf8`, `invalid_shape`, `malformed_csv`, `malformed_html`,
/// `io`).
pub const INGEST_REJECTED_PREFIX: &str = "ingest.rejected.";
/// Training sentences extracted from tables.
pub const EMBED_SENTENCES: &str = "embed.sentences";
/// SGNS (center, context) pairs trained, all epochs and workers.
pub const SGNS_PAIRS: &str = "sgns.pairs";
/// Tables weak-labeled by the bootstrap stage.
pub const BOOTSTRAP_TABLES: &str = "bootstrap.tables";
/// Tables whose weak labels came from HTML markup (vs positional).
pub const BOOTSTRAP_MARKUP_TABLES: &str = "bootstrap.markup_tables";
/// Contrastive fine-tuning pairs evaluated (positive + negative +
/// satisfied).
pub const FINETUNE_PAIRS: &str = "finetune.pairs";
/// Tables classified.
pub const CLASSIFIER_TABLES: &str = "classifier.tables";
/// Angle-range tests performed during classification walks.
pub const CLASSIFIER_ANGLE_TESTS: &str = "classifier.angle_tests";
/// Axes that routed to the positional fallback instead of the walk.
pub const CLASSIFIER_DEGRADED: &str = "classifier.degraded";
/// Per-reason degraded family: `classifier.degraded.<reason>` where
/// `<reason>` is a `DegradeReason::as_str` value (`unusable_centroids`,
/// `single_level`, `no_signal`, `non_finite`, `model_mismatch`).
pub const CLASSIFIER_DEGRADED_PREFIX: &str = "classifier.degraded.";
/// Artifacts (model files / checkpoints) loaded and fully validated.
pub const ARTIFACT_LOADED: &str = "artifact.loaded";
/// Per-reason artifact rejection family: `artifact.rejected.<reason>`
/// where `<reason>` is an `ArtifactError::reason` value (`truncated`,
/// `checksum_mismatch`, `version_unsupported`, `schema_invalid`,
/// `non_finite_weights`, `dimension_mismatch`, `config_mismatch`, `io`).
pub const ARTIFACT_REJECTED_PREFIX: &str = "artifact.rejected.";
/// Shards produced by the out-of-core streaming reader (all passes).
pub const STREAM_SHARDS: &str = "stream.shards";
/// Budget-driven spill events: shard size was halved because the live
/// heap exceeded the configured memory budget at a shard boundary.
pub const STREAM_SPILLS: &str = "stream.spills";
/// Per-fault shard quarantine family: `shard.quarantined.<fault>` where
/// `<fault>` is a `ShardFault::as_str` value (`short_read`,
/// `short_write`, `no_space`, `torn_rename`, `io`).
pub const SHARD_QUARANTINED_PREFIX: &str = "shard.quarantined.";
/// Training checkpoints durably written.
pub const CHECKPOINT_WRITTEN: &str = "checkpoint.written";
/// Checkpoint files quarantined during a resume scan.
pub const CHECKPOINT_QUARANTINED: &str = "checkpoint.quarantined";
/// Requests admitted into the serve queue (well-formed and accepted).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Per-reason serve rejection family: `serve.rejected.<reason>` where
/// `<reason>` is a `Status::as_str` value (`overloaded`,
/// `deadline_exceeded`, `bad_request`, `frame_too_large`, `slow_read`,
/// `shutting_down`, `internal_error`) or the wire-level tag
/// `truncated`/`io` for connections that died before a response could
/// be written.
pub const SERVE_REJECTED_PREFIX: &str = "serve.rejected.";
/// Hot model reloads that passed deep validation and were swapped in.
pub const SERVE_RELOADS: &str = "serve.reloads";
/// Hot reload candidates rejected by envelope or deep validation (the
/// server keeps serving the previous model).
pub const SERVE_RELOAD_REJECTED: &str = "serve.reload_rejected";

// --- gauges -----------------------------------------------------------

/// Worker count the training pipeline ran with.
pub const TRAIN_THREADS: &str = "train.threads";
/// Threads-sweep family: `train.threads_sweep.t<n>_secs`, one training
/// wall-clock gauge per worker count in the Hogwild sweep.
pub const TRAIN_THREADS_SWEEP_PREFIX: &str = "train.threads_sweep.";
/// Final SGNS learning rate after decay.
pub const SGNS_LR: &str = "sgns.lr";
/// Mean contrastive loss of the most recent fine-tune epoch.
pub const FINETUNE_LOSS: &str = "finetune.loss";
/// Fine-tune pair throughput of the most recent epoch.
pub const FINETUNE_PAIRS_PER_SEC: &str = "finetune.pairs_per_sec";
/// Wall-clock seconds of the most recent fine-tune epoch.
pub const FINETUNE_EPOCH_SECS: &str = "finetune.epoch_secs";
/// Classification throughput of the most recent `classify_corpus` call.
pub const CLASSIFY_TABLES_PER_SEC: &str = "classify.tables_per_sec";
/// Distinct terms interned across all workers of the most recent batched
/// classify call.
pub const CLASSIFY_INTERNED_TERMS: &str = "classify.interned_terms";
/// Wall-clock seconds of the CLI `train` command's model build.
pub const CLI_TOTAL_SECS: &str = "cli.total_secs";
/// Wall-clock seconds of the most recent checkpoint write.
pub const CHECKPOINT_WRITE_SECS: &str = "checkpoint.write_secs";
/// Global epoch index training resumed from (set once per resume).
pub const CHECKPOINT_RESUMED_EPOCH: &str = "checkpoint.resumed_epoch";
/// Effective shard row target the streaming trainer is currently using
/// (shrinks when the memory budget forces a spill).
pub const STREAM_SHARD_ROWS: &str = "stream.shard_rows";
/// Configured streaming memory budget (0 when unbounded).
pub const STREAM_BUDGET_BYTES: &str = "stream.budget_bytes";
/// Bench harness: batch classify throughput of the most recent run.
pub const BENCH_CLASSIFY_TABLES_PER_SEC: &str = "bench.classify.tables_per_sec";
/// Bench harness: SGNS pair throughput of the most recent run.
pub const BENCH_TRAIN_PAIRS_PER_SEC: &str = "bench.train.pairs_per_sec";
/// Bench harness: JSONL ingestion row throughput of the most recent run.
pub const BENCH_INGEST_ROWS_PER_SEC: &str = "bench.ingest.rows_per_sec";
/// Bench harness: serve request throughput of the most recent run.
pub const BENCH_SERVE_REQUESTS_PER_SEC: &str = "bench.serve.requests_per_sec";
/// Current depth of the serve admission queue.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Requests currently being classified by serve workers.
pub const SERVE_IN_FLIGHT: &str = "serve.in_flight";
/// Live heap bytes from the counting allocator (0 when not installed).
pub const MEM_CURRENT_BYTES: &str = "mem.current_bytes";
/// High-water heap bytes since process start or the last stage reset.
pub const MEM_PEAK_BYTES: &str = "mem.peak_bytes";

// --- histograms -------------------------------------------------------

/// Sentence length distribution (tokens), bounds [1, 256).
pub const EMBED_SENTENCE_LEN: &str = "embed.sentence_len";
/// Metadata boundary depth per classified axis, bounds [1, 16); depth 0
/// (headerless axes) lands in the underflow bucket.
pub const CLASSIFIER_BOUNDARY_DEPTH: &str = "classifier.boundary_depth";
/// Bench harness: per-table classify latency distribution.
pub const BENCH_CLASSIFY_TABLE_MICROS: &str = "bench.classify.table_micros";
/// Serve request latency (enqueue to response ready), queue wait
/// included; p50/p90/p99 come from the histogram quantiles.
pub const SERVE_REQUEST_MICROS: &str = "serve.request_micros";

/// The instrument kind a registered name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic counter.
    Counter,
    /// Last-value gauge.
    Gauge,
    /// Log-linear histogram.
    Histogram,
    /// RAII wall-time span.
    Span,
}

impl Kind {
    /// Lowercase label for docs.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
            Kind::Span => "span",
        }
    }
}

/// One documented registry row.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Registered name (a prefix when `suffix` is non-empty).
    pub name: &'static str,
    /// Placeholder for the dynamic part (`"<reason>"`), empty for exact
    /// names.
    pub suffix: &'static str,
    /// Instrument kind.
    pub kind: Kind,
    /// Unit of the recorded value.
    pub unit: &'static str,
    /// Pipeline stage that emits it.
    pub stage: &'static str,
    /// One-line description.
    pub doc: &'static str,
}

/// Every registered name with its documentation row, in `METRICS.md`
/// order.
pub static REGISTRY: &[MetricDef] = &[
    // Spans — train/classify path.
    MetricDef {
        name: SPAN_TRAIN,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train",
        doc: "Whole training run; all training stages nest under it",
    },
    MetricDef {
        name: SPAN_EMBED,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train",
        doc: "Sentence extraction + embedding training",
    },
    MetricDef {
        name: SPAN_SENTENCES,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train/embed",
        doc: "Sentence extraction from tables",
    },
    MetricDef {
        name: SPAN_SGNS,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train/embed",
        doc: "SGNS training over extracted sentences",
    },
    MetricDef {
        name: SPAN_EPOCH,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train/embed, train/finetune",
        doc: "One training epoch (nests under sgns and finetune)",
    },
    MetricDef {
        name: SPAN_BOOTSTRAP,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train",
        doc: "Weak-label bootstrap over the corpus",
    },
    MetricDef {
        name: SPAN_FINETUNE,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train",
        doc: "Contrastive fine-tuning",
    },
    MetricDef {
        name: SPAN_CENTROID,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train",
        doc: "Centroid angle-range estimation",
    },
    MetricDef {
        name: SPAN_CLASSIFY,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "classify",
        doc: "Parallel corpus classification",
    },
    MetricDef {
        name: SPAN_CLI_TRAIN,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "cli",
        doc: "CLI train command: end-to-end model build",
    },
    MetricDef {
        name: SPAN_CHECKPOINT_WRITE,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train",
        doc: "One durable checkpoint write (serialize + envelope + atomic rename)",
    },
    MetricDef {
        name: SPAN_STREAM_TRAIN,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "train/stream",
        doc: "Whole out-of-core streaming training run (all shard passes)",
    },
    // Spans — bench harness.
    MetricDef {
        name: SPAN_BENCH_CLASSIFY,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "bench",
        doc: "Bench harness: one measured batch-classify iteration",
    },
    MetricDef {
        name: SPAN_BENCH_TRAIN,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "bench",
        doc: "Bench harness: one measured training run",
    },
    MetricDef {
        name: SPAN_BENCH_INGEST,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "bench",
        doc: "Bench harness: one measured JSONL ingestion pass",
    },
    MetricDef {
        name: SPAN_BENCH_SERVE,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "bench",
        doc: "Bench harness: one measured serve load-generation pass",
    },
    // Spans — serve path.
    MetricDef {
        name: SPAN_SERVE_CLASSIFY,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "serve",
        doc: "One admitted request's classify work on a serve worker thread",
    },
    // Spans — eval harness.
    MetricDef {
        name: SPAN_EVAL_TRAIN_OURS,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Runtime experiment: our pipeline's training run",
    },
    MetricDef {
        name: SPAN_EVAL_TRAIN_PYTHEAS,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Runtime experiment: Pytheas baseline training",
    },
    MetricDef {
        name: SPAN_EVAL_TRAIN_LAYOUT,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Runtime experiment: layout-detector baseline training",
    },
    MetricDef {
        name: SPAN_EVAL_TRAIN_RF,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Runtime experiment: random-forest baseline training",
    },
    MetricDef {
        name: SPAN_EVAL_TRAIN_THREADS_SWEEP,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Hogwild threads sweep: one training run per worker count",
    },
    MetricDef {
        name: SPAN_EVAL_INFERENCE_PASS,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Inference-scaling experiment: one held-out pass",
    },
    MetricDef {
        name: SPAN_EVAL_SCALING_TRAIN,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Corpus-size scaling sweep: one training run per size",
    },
    MetricDef {
        name: SPAN_EVAL_ABLATION_TRAIN,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Ablation experiment: one training run per variant",
    },
    MetricDef {
        name: SPAN_EVAL_EMBEDDINGS_TRAIN,
        suffix: "",
        kind: Kind::Span,
        unit: "µs",
        stage: "eval",
        doc: "Embedding comparison: one training run per model",
    },
    // Counters.
    MetricDef {
        name: INGEST_ACCEPTED,
        suffix: "",
        kind: Kind::Counter,
        unit: "records",
        stage: "ingest",
        doc: "Records accepted by quarantine-and-continue ingestion",
    },
    MetricDef {
        name: INGEST_QUARANTINED,
        suffix: "",
        kind: Kind::Counter,
        unit: "records",
        stage: "ingest",
        doc: "Records quarantined, all rejection reasons combined",
    },
    MetricDef {
        name: INGEST_REJECTED_PREFIX,
        suffix: "<reason>",
        kind: Kind::Counter,
        unit: "records",
        stage: "ingest",
        doc: "Per-reason rejections; <reason> is a RejectReason::as_str value",
    },
    MetricDef {
        name: EMBED_SENTENCES,
        suffix: "",
        kind: Kind::Counter,
        unit: "sentences",
        stage: "train/embed",
        doc: "Training sentences extracted from tables",
    },
    MetricDef {
        name: SGNS_PAIRS,
        suffix: "",
        kind: Kind::Counter,
        unit: "pairs",
        stage: "train/embed",
        doc: "SGNS (center, context) pairs trained, all epochs and workers",
    },
    MetricDef {
        name: BOOTSTRAP_TABLES,
        suffix: "",
        kind: Kind::Counter,
        unit: "tables",
        stage: "train/bootstrap",
        doc: "Tables weak-labeled by the bootstrap stage",
    },
    MetricDef {
        name: BOOTSTRAP_MARKUP_TABLES,
        suffix: "",
        kind: Kind::Counter,
        unit: "tables",
        stage: "train/bootstrap",
        doc: "Tables whose weak labels came from HTML markup",
    },
    MetricDef {
        name: FINETUNE_PAIRS,
        suffix: "",
        kind: Kind::Counter,
        unit: "pairs",
        stage: "train/finetune",
        doc: "Contrastive pairs evaluated (positive + negative + satisfied)",
    },
    MetricDef {
        name: CLASSIFIER_TABLES,
        suffix: "",
        kind: Kind::Counter,
        unit: "tables",
        stage: "classify",
        doc: "Tables classified",
    },
    MetricDef {
        name: CLASSIFIER_ANGLE_TESTS,
        suffix: "",
        kind: Kind::Counter,
        unit: "tests",
        stage: "classify",
        doc: "Angle-range tests performed during classification walks",
    },
    MetricDef {
        name: CLASSIFIER_DEGRADED,
        suffix: "",
        kind: Kind::Counter,
        unit: "axes",
        stage: "classify",
        doc: "Axes routed to the positional fallback instead of the walk",
    },
    MetricDef {
        name: CLASSIFIER_DEGRADED_PREFIX,
        suffix: "<reason>",
        kind: Kind::Counter,
        unit: "axes",
        stage: "classify",
        doc: "Per-reason fallbacks; <reason> is a DegradeReason::as_str value",
    },
    MetricDef {
        name: ARTIFACT_LOADED,
        suffix: "",
        kind: Kind::Counter,
        unit: "artifacts",
        stage: "persist",
        doc: "Artifacts (model files / checkpoints) loaded and fully validated",
    },
    MetricDef {
        name: ARTIFACT_REJECTED_PREFIX,
        suffix: "<reason>",
        kind: Kind::Counter,
        unit: "artifacts",
        stage: "persist",
        doc: "Per-reason artifact rejections; <reason> is an ArtifactError::reason value",
    },
    MetricDef {
        name: STREAM_SHARDS,
        suffix: "",
        kind: Kind::Counter,
        unit: "shards",
        stage: "train/stream",
        doc: "Shards produced by the out-of-core streaming reader, all passes",
    },
    MetricDef {
        name: STREAM_SPILLS,
        suffix: "",
        kind: Kind::Counter,
        unit: "events",
        stage: "train/stream",
        doc: "Budget-driven spills: shard size halved after a budget overshoot",
    },
    MetricDef {
        name: SHARD_QUARANTINED_PREFIX,
        suffix: "<fault>",
        kind: Kind::Counter,
        unit: "faults",
        stage: "train/stream",
        doc: "Per-fault shard quarantines; <fault> is a ShardFault::as_str value",
    },
    MetricDef {
        name: CHECKPOINT_WRITTEN,
        suffix: "",
        kind: Kind::Counter,
        unit: "checkpoints",
        stage: "train",
        doc: "Training checkpoints durably written",
    },
    MetricDef {
        name: CHECKPOINT_QUARANTINED,
        suffix: "",
        kind: Kind::Counter,
        unit: "files",
        stage: "train",
        doc: "Checkpoint files quarantined during a resume scan",
    },
    MetricDef {
        name: SERVE_REQUESTS,
        suffix: "",
        kind: Kind::Counter,
        unit: "requests",
        stage: "serve",
        doc: "Requests admitted into the serve queue",
    },
    MetricDef {
        name: SERVE_REJECTED_PREFIX,
        suffix: "<reason>",
        kind: Kind::Counter,
        unit: "requests",
        stage: "serve",
        doc: "Per-reason typed rejections; <reason> is a Status::as_str or wire tag",
    },
    MetricDef {
        name: SERVE_RELOADS,
        suffix: "",
        kind: Kind::Counter,
        unit: "reloads",
        stage: "serve",
        doc: "Hot model reloads validated and atomically swapped in",
    },
    MetricDef {
        name: SERVE_RELOAD_REJECTED,
        suffix: "",
        kind: Kind::Counter,
        unit: "artifacts",
        stage: "serve",
        doc: "Reload candidates rejected by validation; old model keeps serving",
    },
    // Gauges.
    MetricDef {
        name: TRAIN_THREADS,
        suffix: "",
        kind: Kind::Gauge,
        unit: "threads",
        stage: "train",
        doc: "Worker count the training pipeline ran with",
    },
    MetricDef {
        name: TRAIN_THREADS_SWEEP_PREFIX,
        suffix: "t<n>_secs",
        kind: Kind::Gauge,
        unit: "seconds",
        stage: "eval",
        doc: "Training wall-clock per worker count in the Hogwild sweep",
    },
    MetricDef {
        name: SGNS_LR,
        suffix: "",
        kind: Kind::Gauge,
        unit: "rate",
        stage: "train/embed",
        doc: "Final SGNS learning rate after decay",
    },
    MetricDef {
        name: FINETUNE_LOSS,
        suffix: "",
        kind: Kind::Gauge,
        unit: "loss",
        stage: "train/finetune",
        doc: "Mean contrastive loss of the most recent epoch",
    },
    MetricDef {
        name: FINETUNE_PAIRS_PER_SEC,
        suffix: "",
        kind: Kind::Gauge,
        unit: "pairs/s",
        stage: "train/finetune",
        doc: "Pair throughput of the most recent epoch",
    },
    MetricDef {
        name: FINETUNE_EPOCH_SECS,
        suffix: "",
        kind: Kind::Gauge,
        unit: "seconds",
        stage: "train/finetune",
        doc: "Wall-clock of the most recent fine-tune epoch",
    },
    MetricDef {
        name: CLASSIFY_TABLES_PER_SEC,
        suffix: "",
        kind: Kind::Gauge,
        unit: "tables/s",
        stage: "classify",
        doc: "Throughput of the most recent classify_corpus call",
    },
    MetricDef {
        name: CLASSIFY_INTERNED_TERMS,
        suffix: "",
        kind: Kind::Gauge,
        unit: "terms",
        stage: "classify",
        doc: "Distinct terms interned across workers of the most recent batched classify",
    },
    MetricDef {
        name: CLI_TOTAL_SECS,
        suffix: "",
        kind: Kind::Gauge,
        unit: "seconds",
        stage: "cli",
        doc: "Wall-clock of the CLI train command's model build",
    },
    MetricDef {
        name: CHECKPOINT_WRITE_SECS,
        suffix: "",
        kind: Kind::Gauge,
        unit: "seconds",
        stage: "train",
        doc: "Wall-clock of the most recent checkpoint write",
    },
    MetricDef {
        name: CHECKPOINT_RESUMED_EPOCH,
        suffix: "",
        kind: Kind::Gauge,
        unit: "epoch",
        stage: "train",
        doc: "Global epoch index training resumed from (set once per resume)",
    },
    MetricDef {
        name: STREAM_SHARD_ROWS,
        suffix: "",
        kind: Kind::Gauge,
        unit: "rows",
        stage: "train/stream",
        doc: "Effective shard row target; shrinks when the budget forces a spill",
    },
    MetricDef {
        name: STREAM_BUDGET_BYTES,
        suffix: "",
        kind: Kind::Gauge,
        unit: "bytes",
        stage: "train/stream",
        doc: "Configured streaming memory budget (0 when unbounded)",
    },
    MetricDef {
        name: BENCH_CLASSIFY_TABLES_PER_SEC,
        suffix: "",
        kind: Kind::Gauge,
        unit: "tables/s",
        stage: "bench",
        doc: "Batch classify throughput of the most recent bench run",
    },
    MetricDef {
        name: BENCH_TRAIN_PAIRS_PER_SEC,
        suffix: "",
        kind: Kind::Gauge,
        unit: "pairs/s",
        stage: "bench",
        doc: "SGNS pair throughput of the most recent bench run",
    },
    MetricDef {
        name: BENCH_INGEST_ROWS_PER_SEC,
        suffix: "",
        kind: Kind::Gauge,
        unit: "rows/s",
        stage: "bench",
        doc: "JSONL ingestion row throughput of the most recent bench run",
    },
    MetricDef {
        name: BENCH_SERVE_REQUESTS_PER_SEC,
        suffix: "",
        kind: Kind::Gauge,
        unit: "requests/s",
        stage: "bench",
        doc: "Serve request throughput of the most recent bench run",
    },
    MetricDef {
        name: SERVE_QUEUE_DEPTH,
        suffix: "",
        kind: Kind::Gauge,
        unit: "requests",
        stage: "serve",
        doc: "Current depth of the serve admission queue",
    },
    MetricDef {
        name: SERVE_IN_FLIGHT,
        suffix: "",
        kind: Kind::Gauge,
        unit: "requests",
        stage: "serve",
        doc: "Requests currently being classified by serve workers",
    },
    MetricDef {
        name: MEM_CURRENT_BYTES,
        suffix: "",
        kind: Kind::Gauge,
        unit: "bytes",
        stage: "process",
        doc: "Live heap bytes from the counting allocator (0 when not installed)",
    },
    MetricDef {
        name: MEM_PEAK_BYTES,
        suffix: "",
        kind: Kind::Gauge,
        unit: "bytes",
        stage: "process",
        doc: "High-water heap bytes since process start or the last stage reset",
    },
    // Histograms.
    MetricDef {
        name: EMBED_SENTENCE_LEN,
        suffix: "",
        kind: Kind::Histogram,
        unit: "tokens",
        stage: "train/embed",
        doc: "Sentence length distribution, bounds [1, 256)",
    },
    MetricDef {
        name: CLASSIFIER_BOUNDARY_DEPTH,
        suffix: "",
        kind: Kind::Histogram,
        unit: "levels",
        stage: "classify",
        doc: "Metadata boundary depth per axis, bounds [1, 16); depth 0 underflows",
    },
    MetricDef {
        name: BENCH_CLASSIFY_TABLE_MICROS,
        suffix: "",
        kind: Kind::Histogram,
        unit: "µs",
        stage: "bench",
        doc: "Per-table classify latency distribution in the bench harness",
    },
    MetricDef {
        name: SERVE_REQUEST_MICROS,
        suffix: "",
        kind: Kind::Histogram,
        unit: "µs",
        stage: "serve",
        doc: "Request latency from enqueue to response ready, queue wait included",
    },
];

/// Render the registry as the markdown table embedded in `METRICS.md`
/// (a test asserts the checked-in file matches).
pub fn render_markdown() -> String {
    let mut out = String::new();
    out.push_str("| name | kind | unit | emitting stage | description |\n");
    out.push_str("|------|------|------|----------------|-------------|\n");
    for def in REGISTRY {
        out.push_str(&format!(
            "| `{}{}` | {} | {} | {} | {} |\n",
            def.name,
            def.suffix,
            def.kind.as_str(),
            def.unit,
            def.stage,
            def.doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_is_well_formed() {
        let mut seen = BTreeSet::new();
        for def in REGISTRY {
            assert!(!def.name.is_empty());
            assert!(seen.insert(def.name), "duplicate registry name {:?}", def.name);
            // Prefix convention: dynamic families end in '.', exact names
            // never do, and only dynamic families carry a suffix doc.
            assert_eq!(def.name.ends_with('.'), !def.suffix.is_empty(), "{:?}", def.name);
            assert!(!def.unit.is_empty() && !def.stage.is_empty() && !def.doc.is_empty());
        }
    }

    #[test]
    fn markdown_lists_every_name() {
        let md = render_markdown();
        for def in REGISTRY {
            assert!(md.contains(def.name), "{:?} missing from markdown", def.name);
        }
        assert_eq!(md.lines().count(), REGISTRY.len() + 2);
    }

    #[test]
    fn metrics_md_matches_registry() {
        // METRICS.md embeds the rendered table between markers; the
        // checked-in copy must match the code exactly.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS.md");
        let doc = std::fs::read_to_string(path).expect("METRICS.md at workspace root");
        let begin = "<!-- registry:begin -->\n";
        let end = "<!-- registry:end -->";
        let start = doc.find(begin).expect("registry:begin marker") + begin.len();
        let stop = doc[start..].find(end).expect("registry:end marker") + start;
        assert_eq!(
            &doc[start..stop],
            render_markdown(),
            "METRICS.md table is stale; regenerate it from names::render_markdown()"
        );
    }
}
