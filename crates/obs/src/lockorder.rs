//! Runtime lock-order witness: the dynamic half of lint rule TM-L006.
//!
//! The static rule in `crates/lint` proves that *source text* acquires
//! the workspace's locks in ascending declared rank; this module proves
//! the same thing about *executions*. Every lock the serve and classify
//! hot paths touch is wrapped in a [`TrackedMutex`] / [`TrackedRwLock`]
//! keyed by a [`LockId`] from [`REGISTRY`] — the same ids and ranks the
//! lint registry declares (`crates/lint/src/registry.rs`; a sync test
//! pins the two tables equal). Each acquisition pushes onto a
//! thread-local held-lock stack and panics if any held lock has an equal
//! or higher rank, so the chaos, serve-chaos, and crash gates exercise
//! the declared order under real concurrency instead of trusting the
//! static approximation.
//!
//! Cost and gating: the witness is a thread-local `Vec` push/pop plus one
//! relaxed counter bump per acquisition — nothing shared, no extra
//! synchronization. It defaults on under `debug_assertions` and off in
//! release; release-mode gates opt in with [`set_enabled`] and assert
//! [`checks`] advanced so a silently-disabled witness cannot pass.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One registered lock: a stable name shared with the lint registry and
/// a rank; locks must be acquired in strictly ascending rank order.
#[derive(Debug)]
pub struct LockId {
    /// Registry id (`serve.model`), identical to the lint table's.
    pub name: &'static str,
    /// Declared order: a thread holding rank R may only acquire > R.
    pub rank: u32,
}

/// Serve model slot (`RwLock<Arc<ServingModel>>`).
pub static SERVE_MODEL: LockId = LockId { name: "serve.model", rank: 10 };
/// Serve admission-queue receiver (`Mutex<Receiver<Job>>`).
pub static SERVE_QUEUE_RX: LockId = LockId { name: "serve.queue_rx", rank: 20 };
/// Serve last-rejected-reload reason (`Mutex<String>`).
pub static SERVE_RELOAD_ERROR: LockId = LockId { name: "serve.reload_error", rank: 30 };
/// Core classify scratch pool (`Mutex<Vec<ClassifyScratch>>`).
pub static CORE_SCRATCH: LockId = LockId { name: "core.scratch", rank: 40 };
/// Obs counter map (`RwLock<BTreeMap<..>>`, untracked at runtime).
pub static OBS_COUNTERS: LockId = LockId { name: "obs.counters", rank: 50 };
/// Obs gauge map (`RwLock<BTreeMap<..>>`, untracked at runtime).
pub static OBS_GAUGES: LockId = LockId { name: "obs.gauges", rank: 51 };
/// Obs histogram map (`RwLock<BTreeMap<..>>`, untracked at runtime).
pub static OBS_HISTOGRAMS: LockId = LockId { name: "obs.histograms", rank: 52 };
/// Obs span aggregates (`Mutex<BTreeMap<..>>`, untracked at runtime).
pub static OBS_SPAN_STATS: LockId = LockId { name: "obs.span_stats", rank: 60 };
/// Obs trace-timeline event buffer (`Mutex<Buffer>`).
pub static OBS_TIMELINE: LockId = LockId { name: "obs.timeline", rank: 70 };

/// Every declared lock, ascending by rank. Mirrors (and is pinned
/// against) `LOCK_ORDER` in `crates/lint/src/registry.rs`. The metric
/// maps and span aggregates are declared for the static rule but left
/// untracked at runtime: they sit on the relaxed-atomic record path,
/// where even a thread-local push per acquisition is measurable.
pub static REGISTRY: [&LockId; 9] = [
    &SERVE_MODEL,
    &SERVE_QUEUE_RX,
    &SERVE_RELOAD_ERROR,
    &CORE_SCRATCH,
    &OBS_COUNTERS,
    &OBS_GAUGES,
    &OBS_HISTOGRAMS,
    &OBS_SPAN_STATS,
    &OBS_TIMELINE,
];

static ENABLED: AtomicBool = AtomicBool::new(cfg!(debug_assertions));
static CHECKS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Turn the witness on or off (process-wide). Defaults on under
/// `debug_assertions`; release-mode gates call `set_enabled(true)`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether acquisitions are currently being checked.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Total acquisitions checked since process start. Gates assert this
/// advanced so "the witness saw nothing" cannot be mistaken for "the
/// witness found nothing".
pub fn checks() -> u64 {
    CHECKS.load(Ordering::Relaxed)
}

fn acquire(id: &'static LockId) {
    if !is_enabled() {
        return;
    }
    CHECKS.fetch_add(1, Ordering::Relaxed);
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        // The stack is ascending by construction, so the top is the max.
        if let Some(&(rank, name)) = held.last() {
            assert!(
                rank < id.rank,
                "lock-order inversion: acquiring `{}` (rank {}) while holding `{}` (rank {}); \
                 the declared order (crates/lint/src/registry.rs) requires strictly ascending \
                 ranks",
                id.name,
                id.rank,
                name,
                rank
            );
        }
        held.push((id.rank, id.name));
    });
}

fn release(id: &'static LockId) {
    // Runs even when disabled so toggling mid-hold cannot leak an entry.
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(at) = held.iter().rposition(|&(_, name)| name == id.name) {
            held.remove(at);
        }
    });
}

/// A [`parking_lot::Mutex`] whose acquisitions are order-checked against
/// the witness stack.
pub struct TrackedMutex<T> {
    id: &'static LockId,
    inner: parking_lot::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// New unlocked mutex registered as `id`.
    pub const fn new(id: &'static LockId, value: T) -> Self {
        TrackedMutex { id, inner: parking_lot::Mutex::new(value) }
    }

    /// Acquire, recording the hold on the witness stack. The order check
    /// runs *before* blocking: a would-deadlock acquisition panics with
    /// the inversion instead of hanging the gate.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        acquire(self.id);
        TrackedMutexGuard { id: self.id, inner: self.inner.lock() }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("id", &self.id.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard of a [`TrackedMutex`]; releases the witness entry on drop.
pub struct TrackedMutexGuard<'a, T> {
    id: &'static LockId,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        release(self.id);
    }
}

/// A [`parking_lot::RwLock`] whose acquisitions (shared and exclusive)
/// are order-checked against the witness stack.
pub struct TrackedRwLock<T> {
    id: &'static LockId,
    inner: parking_lot::RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// New unlocked lock registered as `id`.
    pub const fn new(id: &'static LockId, value: T) -> Self {
        TrackedRwLock { id, inner: parking_lot::RwLock::new(value) }
    }

    /// Acquire shared, recording the hold on the witness stack.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        acquire(self.id);
        TrackedReadGuard { id: self.id, inner: self.inner.read() }
    }

    /// Acquire exclusive, recording the hold on the witness stack.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        acquire(self.id);
        TrackedWriteGuard { id: self.id, inner: self.inner.write() }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("id", &self.id.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared-read guard of a [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T> {
    id: &'static LockId,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        release(self.id);
    }
}

/// Exclusive-write guard of a [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T> {
    id: &'static LockId,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize the witness tests: they share the process-wide ENABLED
    /// flag and the per-thread stack, so run each body on a fresh thread
    /// with the witness forced on.
    fn on_fresh_thread(f: impl FnOnce() + Send + 'static) -> std::thread::Result<()> {
        std::thread::spawn(move || {
            set_enabled(true);
            f();
        })
        .join()
    }

    #[test]
    fn registry_is_strictly_ascending_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(pair[0].rank < pair[1].rank, "{} vs {}", pair[0].name, pair[1].name);
        }
        let mut names: Vec<_> = REGISTRY.iter().map(|l| l.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
    }

    #[test]
    fn ascending_acquisition_is_clean() {
        on_fresh_thread(|| {
            let before = checks();
            let low = TrackedMutex::new(&SERVE_QUEUE_RX, 1u32);
            let high = TrackedMutex::new(&CORE_SCRATCH, 2u32);
            let a = low.lock();
            let b = high.lock();
            assert_eq!(*a + *b, 3);
            drop(b);
            drop(a);
            assert!(checks() >= before + 2, "witness counted both acquisitions");
        })
        .expect("ascending order must not panic");
    }

    #[test]
    fn inversion_panics_with_both_ids() {
        let result = on_fresh_thread(|| {
            let low = TrackedRwLock::new(&SERVE_MODEL, ());
            let high = TrackedMutex::new(&OBS_TIMELINE, ());
            let held = high.lock();
            let _inverted = low.read(); // rank 10 under rank 70: inversion
            drop(held);
        });
        let panic = result.expect_err("inversion must panic");
        let text = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(text.contains("serve.model") && text.contains("obs.timeline"), "{text}");
    }

    #[test]
    fn release_unwinds_so_sequential_holds_are_clean() {
        on_fresh_thread(|| {
            let high = TrackedMutex::new(&OBS_TIMELINE, ());
            let low = TrackedMutex::new(&SERVE_QUEUE_RX, ());
            drop(high.lock()); // rank 70 acquired and fully released...
            drop(low.lock()); // ...so rank 20 afterwards is not nested
        })
        .expect("sequential acquisition must not panic");
    }

    #[test]
    fn disabled_witness_checks_nothing() {
        std::thread::spawn(|| {
            set_enabled(false);
            let before = checks();
            let high = TrackedMutex::new(&OBS_TIMELINE, ());
            let low = TrackedMutex::new(&SERVE_QUEUE_RX, ());
            let a = high.lock();
            let _b = low.lock(); // inverted, but the witness is off
            drop(a);
            assert_eq!(checks(), before);
            set_enabled(cfg!(debug_assertions));
        })
        .join()
        .expect("disabled witness must not panic");
    }
}
