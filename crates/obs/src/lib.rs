//! `tabmeta-obs`: observability for the train/classify pipeline.
//!
//! Three pieces, one registry:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — relaxed-atomic
//!   record paths (no locks, no allocation) safe to hit from rayon hot
//!   loops. Callers fetch a handle once ([`Registry::counter`] & co.,
//!   which take a short registry lock) and then hammer the handle.
//! * **Spans** ([`SpanGuard`], the [`span!`] macro) — RAII wall-time
//!   scopes that nest per thread into `/`-joined paths
//!   (`train/embed/epoch`), aggregated per path *and* mirrored as
//!   timestamped open/close events into a bounded [`Timeline`]
//!   exportable as JSONL or Chrome `trace_event` JSON.
//! * **Memory accounting** ([`mem`], feature `alloc-track`) — a counting
//!   `#[global_allocator]` wrapper feeding `mem.current_bytes` /
//!   `mem.peak_bytes` gauges.
//! * **Export** ([`Snapshot`]) — one serializable view of everything,
//!   renderable as aligned text or JSON (via `serde_json`), with
//!   self-vs-cumulative time attribution per span path.
//!
//! The [`global()`] registry serves the pipeline; tests that need exact
//! counts build private [`Registry`] instances instead.

// The crate is unsafe-free except for the feature-gated counting
// allocator in `mem`, which carries its own allow + SAFETY comments.
#![cfg_attr(not(feature = "alloc-track"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-track", deny(unsafe_code))]

pub mod clock;
pub mod lockorder;
#[cfg(feature = "alloc-track")]
pub mod mem;
/// Memory-accounting stubs when the counting allocator is compiled
/// out: [`mem::is_tracking`] reports `false` and every reading is
/// zero, so callers (e.g. the streaming memory-budget governor) need
/// no feature gates of their own.
#[cfg(not(feature = "alloc-track"))]
pub mod mem {
    /// Always 0 without `alloc-track`.
    pub fn current_bytes() -> u64 {
        0
    }

    /// Always 0 without `alloc-track`.
    pub fn peak_bytes() -> u64 {
        0
    }

    /// No-op without `alloc-track`.
    pub fn reset_peak() {}

    /// Always `false` without `alloc-track`: readings are meaningless.
    pub fn is_tracking() -> bool {
        false
    }

    /// No-op without `alloc-track`.
    pub fn publish(_registry: &crate::Registry) {}
}
pub mod metrics;
pub mod names;
pub mod span;
pub mod timeline;

pub use metrics::{Counter, Gauge, Histogram, SUB_BUCKETS};
pub use span::{SpanGuard, SpanRecorder, SpanStat};
pub use timeline::{
    ChromeTrace, ChromeTraceEvent, EventKind, Timeline, TimelineSnapshot, TraceEvent,
};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A named home for metrics and spans.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call for a
/// name allocates the instrument under a write lock, later calls clone
/// the `Arc` under a read lock. Hot paths should cache the returned
/// handle rather than re-looking-up per event.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: SpanRecorder,
}

macro_rules! get_or_create {
    ($map:expr, $name:expr, $make:expr) => {{
        if let Some(found) = $map.read().get($name) {
            return Arc::clone(found);
        }
        let mut map = $map.write();
        Arc::clone(map.entry($name.to_string()).or_insert_with(|| Arc::new($make)))
    }};
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Handle to the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self.counters, name, Counter::new())
    }

    /// Handle to the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self.gauges, name, Gauge::new())
    }

    /// Handle to the histogram named `name` (microsecond-range buckets).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create!(self.histograms, name, Histogram::for_micros())
    }

    /// Handle to the histogram named `name` with bounds `[lo, hi)`
    /// (powers of two). Bounds apply on first creation only.
    pub fn histogram_with(&self, name: &str, lo: u64, hi: u64) -> Arc<Histogram> {
        get_or_create!(self.histograms, name, Histogram::new(lo, hi))
    }

    /// Open a span named `name` recording into this registry.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard::enter(&self.spans, name)
    }

    /// Run `f` inside a span on this registry, returning its result and
    /// elapsed wall time (for callers that need the duration as a value,
    /// e.g. throughput gauges).
    pub fn timed<R>(&self, name: &str, f: impl FnOnce() -> R) -> (R, Duration) {
        let _guard = self.span(name);
        let start = Instant::now();
        let result = f();
        (result, start.elapsed())
    }

    /// This registry's span aggregates.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// This registry's trace timeline (the span open/close event log).
    pub fn timeline(&self) -> &Timeline {
        self.spans.timeline()
    }

    /// Point-in-time copy of the trace timeline.
    pub fn timeline_snapshot(&self) -> TimelineSnapshot {
        self.timeline().snapshot()
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let span_stats = self.spans.snapshot();
        // Self time = a path's total minus its *direct* children's totals
        // (a child path is parent + "/" + one more segment). Children on
        // other threads root independently, so there is no double count.
        let mut child_totals: BTreeMap<String, u64> = BTreeMap::new();
        for (path, stat) in &span_stats {
            if let Some(cut) = path.rfind('/') {
                *child_totals.entry(path[..cut].to_string()).or_default() += stat.total_micros;
            }
        }
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(name, c)| CounterSnapshot { name: name.clone(), value: c.get() })
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(name, g)| GaugeSnapshot { name: name.clone(), value: g.get() })
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(name, h)| HistogramSnapshot {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    underflow: h.underflow(),
                    overflow: h.overflow(),
                    p50: h.p50(),
                    p90: h.p90(),
                    p99: h.p99(),
                    buckets: h
                        .nonzero_buckets()
                        .into_iter()
                        .map(|(lo, hi, count)| BucketSnapshot { lo, hi, count })
                        .collect(),
                })
                .collect(),
            spans: span_stats
                .into_iter()
                .map(|(path, s)| {
                    let children = child_totals.get(&path).copied().unwrap_or(0);
                    SpanSnapshot {
                        // Concurrent children (Hogwild workers nesting
                        // under a parent on the driving thread) can sum
                        // past the parent's wall time; clamp at zero.
                        self_micros: s.total_micros.saturating_sub(children),
                        path,
                        count: s.count,
                        total_micros: s.total_micros,
                        min_micros: s.min_micros,
                        max_micros: s.max_micros,
                    }
                })
                .collect(),
        }
    }

    /// Reset everything (test isolation). Existing handles stay valid and
    /// keep recording into the same instruments, which are zeroed here by
    /// replacement — callers caching handles across a reset keep writing
    /// into instruments no longer reachable from the registry.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.spans.clear();
    }
}

/// The process-wide registry the pipeline records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Open a span on the [`global()`] registry.
pub fn span_enter(name: &str) -> SpanGuard<'static> {
    global().span(name)
}

/// Run `f` inside a global span, returning its result and elapsed wall
/// time (for callers that need the duration as a value, e.g. reported
/// experiment timings).
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> (R, Duration) {
    global().timed(name, f)
}

/// Open a span on the global registry for the rest of the enclosing
/// scope: `span!("finetune.epoch");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span_enter($name);
    };
}

// ---------------------------------------------------------------------
// Snapshot: the serializable export surface.
// ---------------------------------------------------------------------

/// One counter's value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Total count.
    pub value: u64,
}

/// One gauge's level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// One occupied histogram bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Inclusive low bound.
    pub lo: u64,
    /// Exclusive high bound.
    pub hi: u64,
    /// Values recorded in `[lo, hi)`.
    pub count: u64,
}

/// One histogram's distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Values below the low bound.
    pub underflow: u64,
    /// Values at or above the high bound.
    pub overflow: u64,
    /// Approximate median.
    pub p50: Option<u64>,
    /// Approximate 90th percentile.
    pub p90: Option<u64>,
    /// Approximate 99th percentile.
    pub p99: Option<u64>,
    /// Occupied buckets only.
    pub buckets: Vec<BucketSnapshot>,
}

/// One span path's aggregate timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// `/`-joined nesting path.
    pub path: String,
    /// Completed invocations.
    pub count: u64,
    /// Summed wall time, microseconds (cumulative: includes children).
    pub total_micros: u64,
    /// Wall time not attributed to any direct child span, microseconds
    /// (clamped at zero when concurrent children oversum the parent).
    pub self_micros: u64,
    /// Fastest invocation, microseconds.
    pub min_micros: u64,
    /// Slowest invocation, microseconds.
    pub max_micros: u64,
}

/// Point-in-time view of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All span paths, sorted.
    pub spans: Vec<SpanSnapshot>,
}

fn fmt_micros(micros: u64) -> String {
    if micros >= 1_000_000 {
        format!("{:.2}s", micros as f64 / 1e6)
    } else if micros >= 1_000 {
        format!("{:.2}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}µs")
    }
}

impl Snapshot {
    /// Aligned human-readable report of every instrument.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                let depth = s.path.matches('/').count();
                let name = s.path.rsplit('/').next().unwrap_or(&s.path);
                let mean = s.total_micros.checked_div(s.count).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {:indent$}{name:<28} n={:<7} total={:<10} self={:<10} mean={:<10} min={:<10} max={}",
                    "",
                    s.count,
                    fmt_micros(s.total_micros),
                    fmt_micros(s.self_micros),
                    fmt_micros(mean),
                    fmt_micros(s.min_micros),
                    fmt_micros(s.max_micros),
                    indent = depth * 2,
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<44} {}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                let _ = writeln!(out, "  {:<44} {}", g.name, g.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let mean = h.sum.checked_div(h.count).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {:<44} n={} mean={} p50={} p99={} under={} over={}",
                    h.name,
                    h.count,
                    mean,
                    h.p50.map_or_else(|| "-".to_string(), |v| v.to_string()),
                    h.p99.map_or_else(|| "-".to_string(), |v| v.to_string()),
                    h.underflow,
                    h.overflow,
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no instruments recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("events");
        let b = reg.counter("events");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter("events").get(), 3);
        reg.gauge("level").set(1.5);
        assert_eq!(reg.gauge("level").get(), 1.5);
    }

    #[test]
    fn snapshot_collects_everything() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(0.25);
        reg.histogram("h").record(100);
        {
            let _outer = reg.span("stage");
            let _inner = reg.span("step");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 7);
        assert_eq!(snap.gauges[0].value, 0.25);
        assert_eq!(snap.histograms[0].count, 1);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["stage", "stage/step"]);
        let text = snap.render_text();
        // Spans render as an indented tree (leaf names, two spaces per
        // depth level), not flat slash paths.
        for needle in ["spans:", "counters:", "gauges:", "histograms:", "  stage", "    step"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (value, elapsed) = timed("obs.test.timed", || 41 + 1);
        assert_eq!(value, 42);
        assert!(elapsed.as_nanos() > 0 || elapsed.is_zero()); // total, not panicking
        let paths: Vec<String> = global().spans().snapshot().into_iter().map(|(p, _)| p).collect();
        assert!(paths.iter().any(|p| p.ends_with("obs.test.timed")));
    }

    #[test]
    fn snapshot_attributes_self_vs_cumulative_time() {
        let reg = Registry::new();
        // Inject known aggregates directly; only direct children subtract.
        reg.spans().record("train", 100);
        reg.spans().record("train/embed", 30);
        reg.spans().record("train/embed/epoch", 10);
        reg.spans().record("train/bootstrap", 25);
        reg.spans().record("classify", 5);
        let snap = reg.snapshot();
        let self_of = |p: &str| snap.spans.iter().find(|s| s.path == p).unwrap().self_micros;
        assert_eq!(self_of("train"), 100 - 30 - 25);
        assert_eq!(self_of("train/embed"), 30 - 10);
        assert_eq!(self_of("train/embed/epoch"), 10);
        assert_eq!(self_of("classify"), 5);
        // Oversumming children clamp the parent's self time at zero.
        reg.spans().record("train/embed/epoch", 1_000);
        assert_eq!(
            reg.snapshot().spans.iter().find(|s| s.path == "train/embed").unwrap().self_micros,
            0
        );
    }

    #[test]
    fn reset_clears_instruments() {
        let reg = Registry::new();
        reg.counter("x").inc();
        drop(reg.span("s"));
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.spans.is_empty());
        assert!(reg.timeline_snapshot().events.is_empty(), "reset clears the timeline too");
    }
}
