//! Hierarchical wall-time spans with RAII guards.
//!
//! A span guard notes the moment it is created and, on drop, records its
//! elapsed wall time under a `/`-joined path built from the spans active
//! *on the same thread*: entering `"train"` and then `"epoch"` inside it
//! records `"train/epoch"`. Each thread keeps its own stack, so rayon
//! workers nest independently of (and never corrupt) the caller's stack;
//! a worker's spans simply root at the worker's own outermost span.
//!
//! Aggregation (count / total / min / max per path) happens only at guard
//! drop, under a short mutex — spans are for stage-level timing, not
//! per-element hot loops; use [`crate::metrics::Histogram`] for those.
//!
//! Alongside the aggregates, every span entry/exit is mirrored into the
//! recorder's [`Timeline`] — a bounded event log with monotonic
//! timestamps, exportable as JSONL or Chrome `trace_event` JSON (see
//! [`crate::timeline`]).

use crate::timeline::Timeline;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

thread_local! {
    /// Full paths of the spans currently open on this thread, outermost
    /// first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed invocations.
    pub count: u64,
    /// Summed wall time, microseconds.
    pub total_micros: u64,
    /// Fastest invocation, microseconds.
    pub min_micros: u64,
    /// Slowest invocation, microseconds.
    pub max_micros: u64,
}

/// Path-keyed span aggregates; one per [`crate::Registry`].
#[derive(Debug, Default)]
pub struct SpanRecorder {
    stats: Mutex<BTreeMap<String, SpanStat>>,
    timeline: Timeline,
}

impl SpanRecorder {
    /// The event log mirroring this recorder's span entries/exits.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Fold one completed invocation into the aggregate for `path`.
    pub fn record(&self, path: &str, micros: u64) {
        let mut stats = self.stats.lock();
        let s = stats.entry(path.to_string()).or_default();
        if s.count == 0 {
            s.min_micros = micros;
            s.max_micros = micros;
        } else {
            s.min_micros = s.min_micros.min(micros);
            s.max_micros = s.max_micros.max(micros);
        }
        s.count += 1;
        s.total_micros += micros;
    }

    /// Copy of all aggregates, sorted by path.
    pub fn snapshot(&self) -> Vec<(String, SpanStat)> {
        self.stats.lock().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Drop all aggregates and timeline events (test isolation).
    pub fn clear(&self) {
        self.stats.lock().clear();
        self.timeline.clear();
    }
}

/// RAII guard for one span invocation; records on drop.
#[must_use = "a span guard must be held for the duration it measures"]
pub struct SpanGuard<'r> {
    recorder: &'r SpanRecorder,
    path: String,
    start: Instant,
    /// Whether the open event made it into the (bounded) timeline; the
    /// close event is recorded only if the open was.
    traced: bool,
}

impl<'r> SpanGuard<'r> {
    /// Open a span named `name`, nested under this thread's innermost
    /// open span (if any).
    pub fn enter(recorder: &'r SpanRecorder, name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        let traced = recorder.timeline.open(&path);
        SpanGuard { recorder, path, start: Instant::now(), traced }
    }

    /// This span's full `/`-joined path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let micros = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.recorder.timeline.close(&self.path, self.traced);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards normally drop LIFO; tolerate out-of-order drops by
            // removing this guard's own entry wherever it sits.
            if let Some(pos) = stack.iter().rposition(|p| *p == self.path) {
                stack.remove(pos);
            }
        });
        self.recorder.record(&self.path, micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_nest_and_unwind() {
        let rec = SpanRecorder::default();
        {
            let outer = SpanGuard::enter(&rec, "outer");
            assert_eq!(outer.path(), "outer");
            {
                let inner = SpanGuard::enter(&rec, "inner");
                assert_eq!(inner.path(), "outer/inner");
            }
            let sibling = SpanGuard::enter(&rec, "sibling");
            assert_eq!(sibling.path(), "outer/sibling");
        }
        let paths: Vec<String> = rec.snapshot().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, ["outer", "outer/inner", "outer/sibling"]);
        // The stack fully unwound: a fresh span roots again.
        let fresh = SpanGuard::enter(&rec, "fresh");
        assert_eq!(fresh.path(), "fresh");
    }

    #[test]
    fn stats_aggregate_counts_and_extremes() {
        let rec = SpanRecorder::default();
        rec.record("s", 10);
        rec.record("s", 30);
        rec.record("s", 20);
        let stats = rec.snapshot();
        assert_eq!(stats.len(), 1);
        let (_, s) = &stats[0];
        assert_eq!((s.count, s.total_micros, s.min_micros, s.max_micros), (3, 60, 10, 30));
    }

    #[test]
    fn guards_mirror_open_close_into_the_timeline() {
        let rec = SpanRecorder::default();
        {
            let _a = SpanGuard::enter(&rec, "outer");
            let _b = SpanGuard::enter(&rec, "inner");
        }
        let snap = rec.timeline().snapshot();
        snap.validate().expect("RAII drops keep the event stream balanced");
        let seq: Vec<(&str, crate::timeline::EventKind)> =
            snap.events.iter().map(|e| (e.path.as_str(), e.kind)).collect();
        use crate::timeline::EventKind::{Close, Open};
        assert_eq!(
            seq,
            [("outer", Open), ("outer/inner", Open), ("outer/inner", Close), ("outer", Close)]
        );
        // Open and close of one span come from the same thread.
        assert!(snap.events.iter().all(|e| e.thread == snap.events[0].thread));
    }

    #[test]
    fn out_of_order_drop_keeps_stack_sane() {
        let rec = SpanRecorder::default();
        let a = SpanGuard::enter(&rec, "a");
        let b = SpanGuard::enter(&rec, "b");
        drop(a); // wrong order on purpose
        let c = SpanGuard::enter(&rec, "c");
        assert_eq!(c.path(), "a/b/c");
        drop(c);
        drop(b);
        let fresh = SpanGuard::enter(&rec, "fresh");
        assert_eq!(fresh.path(), "fresh");
    }
}
