//! Monotonic process clock for code outside the obs/bench crates.
//!
//! Rule TM-L002 confines raw `Instant::now()` to the obs layer so that
//! timing stays observable and mockable in one place. Long-lived runtime
//! code (the serve admission queue, request deadlines, reload polling)
//! still needs a monotonic "now"; this module is that sanctioned source:
//! microseconds since a process-wide epoch captured on first use.
//!
//! The epoch is lazy and shared, so differences between two
//! [`monotonic_micros`] readings taken anywhere in the process measure
//! real elapsed wall-time, immune to system-clock steps.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-wide monotonic epoch (the
/// first call to any function in this module).
pub fn monotonic_micros() -> u64 {
    // u64 micros overflow ~584k years after the epoch; saturate anyway.
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Milliseconds elapsed since the process-wide monotonic epoch.
pub fn monotonic_millis() -> u64 {
    monotonic_micros() / 1_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let mut last = monotonic_micros();
        for _ in 0..1_000 {
            let now = monotonic_micros();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn millis_track_micros() {
        let us = monotonic_micros();
        let ms = monotonic_millis();
        // millis sampled after micros, so ms >= us/1000 is not guaranteed
        // in the other direction; both must stay in lockstep within 1s.
        assert!(ms >= us / 1_000);
        assert!(ms - us / 1_000 < 1_000);
    }
}
