//! Lock-free metric primitives: counters, gauges, and log-linear
//! histograms.
//!
//! The record path of every primitive is a single relaxed atomic RMW (two
//! for histograms' count/sum bookkeeping) — no locks, no allocation — so
//! handles can be hammered from rayon hot loops. Cross-thread visibility
//! is only needed at snapshot time, and a snapshot that races with
//! recording may be off by in-flight increments, which is the usual
//! monitoring contract.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two major bucket.
pub const SUB_BUCKETS: usize = 4;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point level (loss, learning rate, rates).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// New gauge at 0.0.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Where a recorded value lands in a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Under,
    At(usize),
    Over,
}

/// A log-linear histogram over `u64` values.
///
/// Major buckets are powers of two between `lo` and `hi` (both powers of
/// two); each major is split into [`SUB_BUCKETS`] linear sub-buckets, so
/// relative error is bounded by `1/SUB_BUCKETS` everywhere. Values below
/// `lo` and at-or-above `hi` land in dedicated underflow/overflow buckets
/// rather than being clamped silently.
#[derive(Debug)]
pub struct Histogram {
    lo: u64,
    hi: u64,
    count: AtomicU64,
    sum: AtomicU64,
    under: AtomicU64,
    over: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Histogram {
    /// Histogram covering `[lo, hi)`; both bounds must be powers of two
    /// with `lo < hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(
            lo.is_power_of_two() && hi.is_power_of_two() && lo < hi,
            "bounds must be powers of two with lo < hi"
        );
        let majors = (hi.trailing_zeros() - lo.trailing_zeros()) as usize;
        let buckets = (0..majors * SUB_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            lo,
            hi,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            under: AtomicU64::new(0),
            over: AtomicU64::new(0),
            buckets,
        }
    }

    /// Default range for microsecond durations: 1µs up to ~72 minutes.
    pub fn for_micros() -> Self {
        Histogram::new(1, 1 << 32)
    }

    fn slot(&self, v: u64) -> Slot {
        if v < self.lo {
            return Slot::Under;
        }
        if v >= self.hi {
            return Slot::Over;
        }
        let major = 63 - v.leading_zeros();
        let base = 1u64 << major;
        let sub = ((v - base) * SUB_BUCKETS as u64 / base) as usize;
        Slot::At((major - self.lo.trailing_zeros()) as usize * SUB_BUCKETS + sub)
    }

    /// Record one value (relaxed atomics only; no locks, no allocation).
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        match self.slot(v) {
            Slot::Under => self.under.fetch_add(1, Ordering::Relaxed),
            Slot::Over => self.over.fetch_add(1, Ordering::Relaxed),
            Slot::At(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wraps on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Values recorded below the low bound.
    pub fn underflow(&self) -> u64 {
        self.under.load(Ordering::Relaxed)
    }

    /// Values recorded at or above the high bound.
    pub fn overflow(&self) -> u64 {
        self.over.load(Ordering::Relaxed)
    }

    /// Inclusive-low/exclusive-high value bounds of in-range bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (u64, u64) {
        let major = self.lo.trailing_zeros() as usize + i / SUB_BUCKETS;
        let sub = (i % SUB_BUCKETS) as u64;
        let base = 1u64 << major;
        (base + base * sub / SUB_BUCKETS as u64, base + base * (sub + 1) / SUB_BUCKETS as u64)
    }

    /// Occupied in-range buckets as `(low, high, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let (lo, hi) = self.bucket_bounds(i);
                Some((lo, hi, n))
            })
            .collect()
    }

    /// Approximate quantile: the upper bound of the bucket where the
    /// cumulative count crosses `q` (0.0–1.0). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow();
        if seen >= target {
            return Some(self.lo);
        }
        for i in 0..self.buckets.len() {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= target {
                return Some(self.bucket_bounds(i).1);
            }
        }
        Some(self.hi)
    }

    /// Approximate median (`None` when empty).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// Approximate 90th percentile (`None` when empty).
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// Approximate 99th percentile (`None` when empty).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn power_of_two_edges_split_buckets() {
        let h = Histogram::new(1, 1 << 16);
        for k in 4..16u32 {
            let edge = 1u64 << k;
            assert_ne!(h.slot(edge - 1), h.slot(edge), "2^{k} must start a new major bucket");
            let (lo, _) = match h.slot(edge) {
                Slot::At(i) => h.bucket_bounds(i),
                s => panic!("edge 2^{k} out of range: {s:?}"),
            };
            assert_eq!(lo, edge, "2^{k} must be its bucket's low bound");
        }
    }

    #[test]
    fn sub_buckets_are_linear_within_major() {
        let h = Histogram::new(1, 1 << 16);
        // Major [256, 512) has 4 sub-buckets of width 64.
        for (v, sub) in [(256u64, 0usize), (319, 0), (320, 1), (447, 2), (448, 3), (511, 3)] {
            match h.slot(v) {
                Slot::At(i) => assert_eq!(i % SUB_BUCKETS, sub, "value {v}"),
                s => panic!("{v} out of range: {s:?}"),
            }
        }
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let h = Histogram::new(8, 64);
        h.record(0);
        h.record(7);
        h.record(64);
        h.record(u64::MAX);
        h.record(8);
        h.record(63);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        let in_range: u64 = h.nonzero_buckets().iter().map(|(_, _, n)| n).sum();
        assert_eq!(in_range, 2);
    }

    #[test]
    fn bounds_tile_the_range() {
        let h = Histogram::new(4, 1 << 10);
        let mut expected_lo = 4;
        for i in 0..(8 * SUB_BUCKETS) {
            let (lo, hi) = h.bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(lo, expected_lo, "bucket {i} must start where the previous ended");
            expected_lo = hi;
        }
        assert_eq!(expected_lo, 1 << 10);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_none() {
        let h = Histogram::for_micros();
        assert_eq!(h.p50(), None);
        assert_eq!(h.p90(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn single_sample_pins_every_quantile_to_its_bucket() {
        let h = Histogram::for_micros();
        h.record(100);
        // 100 lands in major [64,128), sub-bucket [96,112); every
        // quantile reports that bucket's upper bound.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(112), "q={q}");
        }
        assert_eq!(h.p50(), h.p99());
    }

    #[test]
    fn exact_boundary_sample_reports_its_own_buckets_bound() {
        // A power-of-two value starts a new major bucket; the quantile
        // must report that bucket's upper bound, not the previous one's.
        let h = Histogram::for_micros();
        h.record(256);
        assert_eq!(h.quantile(0.5), Some(256 + 256 / SUB_BUCKETS as u64)); // [256, 320)
        let h2 = Histogram::for_micros();
        h2.record(255); // last sub-bucket of [128, 256)
        assert_eq!(h2.quantile(0.5), Some(256));
    }

    #[test]
    fn quantile_boundary_cases_under_and_overflow() {
        let h = Histogram::new(8, 64);
        h.record(1); // underflow
        assert_eq!(h.quantile(0.5), Some(8), "all-underflow reports the low bound");
        let h2 = Histogram::new(8, 64);
        h2.record(100); // overflow
        assert_eq!(h2.quantile(0.5), Some(64), "all-overflow reports the high bound");
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let h = Histogram::for_micros();
        for v in 1..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!((256..=1024).contains(&p50), "p50 {p50} implausible for 1..1000");
        assert!(h.quantile(1.0).unwrap() >= 999);
    }
}
