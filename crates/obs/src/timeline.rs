//! Structured trace timeline: timestamped span open/close events.
//!
//! Where [`crate::span`] aggregates (count/total/min/max per path), the
//! timeline keeps the *sequence*: every span open and close lands in a
//! bounded, mutex-buffered event log with a monotonic timestamp (offset
//! from the log's epoch), the full `/`-joined parent chain, and a compact
//! per-process thread id. The log exports as JSONL (one event per line)
//! or as Chrome `trace_event` JSON loadable in `chrome://tracing` and
//! Perfetto.
//!
//! Bounding: an open that would exceed the capacity is dropped (and
//! counted); the matching close is then dropped too, so the recorded
//! stream always keeps opens and closes balanced. Closes of spans that
//! were admitted *before* saturation are always recorded, so the buffer
//! may briefly exceed capacity by the number of spans in flight at the
//! moment it filled.

use crate::lockorder::{self, TrackedMutex};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Default event capacity of a [`Timeline`].
pub const DEFAULT_TIMELINE_CAPACITY: usize = 65_536;

/// Compact per-process thread id (0, 1, 2, … in first-use order); stable
/// for the lifetime of the thread, unlike `std::thread::ThreadId` it is
/// a plain small integer suitable for trace export.
pub fn current_thread_id() -> u64 {
    static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    }
    THREAD_ID.with(|id| *id)
}

/// Whether a [`TraceEvent`] marks a span entry or exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span entered.
    Open,
    /// Span exited.
    Close,
}

// Hand-written (de)serialization: the JSONL format uses lowercase
// "open"/"close", which the derive macro cannot rename.
impl Serialize for EventKind {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(match self {
            EventKind::Open => "open",
            EventKind::Close => "close",
        })
    }
}

impl<'de> Deserialize<'de> for EventKind {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            serde::Content::Str(s) if s == "open" => Ok(EventKind::Open),
            serde::Content::Str(s) if s == "close" => Ok(EventKind::Close),
            other => Err(serde::de::Error::custom(format!(
                "expected \"open\" or \"close\", found {other:?}"
            ))),
        }
    }
}

/// One timestamped span boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds since the timeline's epoch (monotonic).
    pub ts_micros: u64,
    /// Open or close.
    pub kind: EventKind,
    /// Full `/`-joined span path — the parent chain is the path minus its
    /// last segment.
    pub path: String,
    /// Compact per-process thread id (see [`current_thread_id`]).
    pub thread: u64,
}

#[derive(Debug)]
struct Buffer {
    events: Vec<TraceEvent>,
    capacity: usize,
}

/// Bounded buffered event log; one per [`crate::SpanRecorder`].
#[derive(Debug)]
pub struct Timeline {
    epoch: Instant,
    enabled: AtomicBool,
    dropped: AtomicU64,
    buffer: TrackedMutex<Buffer>,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::with_capacity(DEFAULT_TIMELINE_CAPACITY)
    }
}

impl Timeline {
    /// New enabled timeline holding at most `capacity` events; its epoch
    /// is the moment of construction.
    pub fn with_capacity(capacity: usize) -> Self {
        Timeline {
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            dropped: AtomicU64::new(0),
            buffer: TrackedMutex::new(
                &lockorder::OBS_TIMELINE,
                Buffer { events: Vec::new(), capacity },
            ),
        }
    }

    /// Microseconds elapsed since this timeline's epoch.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Turn event recording on or off (span *aggregation* is unaffected).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Change the capacity bound (existing events are kept).
    pub fn set_capacity(&self, capacity: usize) {
        self.buffer.lock().capacity = capacity;
    }

    /// Record a span open. Returns `true` when the event was admitted;
    /// the caller must pass that flag back to [`Timeline::close`] so a
    /// dropped open never produces an orphan close.
    pub fn open(&self, path: &str) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let event = TraceEvent {
            ts_micros: self.now_micros(),
            kind: EventKind::Open,
            path: path.to_string(),
            thread: current_thread_id(),
        };
        let mut buf = self.buffer.lock();
        if buf.events.len() >= buf.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        buf.events.push(event);
        true
    }

    /// Record a span close. `admitted` is the return of the matching
    /// [`Timeline::open`]; closes of admitted opens are always recorded
    /// (even past capacity) to keep the stream balanced.
    pub fn close(&self, path: &str, admitted: bool) {
        if !admitted {
            return;
        }
        let event = TraceEvent {
            ts_micros: self.now_micros(),
            kind: EventKind::Close,
            path: path.to_string(),
            thread: current_thread_id(),
        };
        self.buffer.lock().events.push(event);
    }

    /// Point-in-time copy of the event log.
    pub fn snapshot(&self) -> TimelineSnapshot {
        let buf = self.buffer.lock();
        TimelineSnapshot {
            events: buf.events.clone(),
            capacity: buf.capacity as u64,
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Drop all events and the drop counter (test isolation).
    pub fn clear(&self) {
        self.buffer.lock().events.clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// Serializable copy of a [`Timeline`]'s event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSnapshot {
    /// Events in admission order.
    pub events: Vec<TraceEvent>,
    /// Capacity bound at snapshot time.
    pub capacity: u64,
    /// Opens dropped because the buffer was full.
    pub dropped: u64,
}

impl TimelineSnapshot {
    /// One JSON object per line, in admission order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            // TraceEvent contains no map types, so serialization cannot
            // fail; an empty line would only hide an impossible error.
            if let Ok(line) = serde_json::to_string(e) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Chrome `trace_event` JSON (the object form with a `traceEvents`
    /// array), loadable in `chrome://tracing` and Perfetto. Opens map to
    /// `ph:"B"`, closes to `ph:"E"`; timestamps are the native
    /// microseconds the format expects.
    pub fn to_chrome_trace(&self) -> ChromeTrace {
        let trace_events = self
            .events
            .iter()
            .map(|e| ChromeTraceEvent {
                name: e.path.rsplit('/').next().unwrap_or(&e.path).to_string(),
                cat: "span".to_string(),
                ph: match e.kind {
                    EventKind::Open => "B".to_string(),
                    EventKind::Close => "E".to_string(),
                },
                ts: e.ts_micros,
                pid: 1,
                tid: e.thread,
                args: ChromeTraceArgs { path: e.path.clone() },
            })
            .collect();
        ChromeTrace { trace_events, display_time_unit: "ms".to_string() }
    }

    /// Check well-formedness: on every thread, events must obey stack
    /// discipline — each close matches the most recent unclosed open on
    /// the same thread (children close before parents), and no span is
    /// left open. Returns the first violation as an error string.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::BTreeMap;
        let mut stacks: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            let stack = stacks.entry(e.thread).or_default();
            match e.kind {
                EventKind::Open => stack.push(&e.path),
                EventKind::Close => match stack.pop() {
                    Some(top) if top == e.path => {}
                    Some(top) => {
                        return Err(format!(
                            "event {i}: close of {:?} on thread {} but innermost open is {top:?}",
                            e.path, e.thread
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: close of {:?} on thread {} with no open span",
                            e.path, e.thread
                        ))
                    }
                },
            }
        }
        for (thread, stack) in stacks {
            if let Some(path) = stack.last() {
                return Err(format!("span {path:?} on thread {thread} was never closed"));
            }
        }
        Ok(())
    }
}

/// Top-level Chrome `trace_event` JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    /// The event array (`ph:"B"`/`ph:"E"` duration events).
    pub trace_events: Vec<ChromeTraceEvent>,
    /// Display hint for viewers.
    pub display_time_unit: String,
}

// Hand-written (de)serialization: the trace_event format mandates
// camelCase keys (`traceEvents`, `displayTimeUnit`), which the derive
// macro cannot rename.
impl Serialize for ChromeTrace {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(serde::Content::Map(vec![
            ("traceEvents".to_string(), serde::to_content(&self.trace_events)),
            ("displayTimeUnit".to_string(), serde::to_content(&self.display_time_unit)),
        ]))
    }
}

impl<'de> Deserialize<'de> for ChromeTrace {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            serde::Content::Map(mut entries) => Ok(ChromeTrace {
                trace_events: serde::de::take_field(&mut entries, "traceEvents")
                    .map_err(serde::de::Error::custom)?,
                display_time_unit: serde::de::take_field(&mut entries, "displayTimeUnit")
                    .map_err(serde::de::Error::custom)?,
            }),
            other => {
                Err(serde::de::Error::custom(format!("expected trace object, found {other:?}")))
            }
        }
    }
}

/// One Chrome `trace_event` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTraceEvent {
    /// Leaf span name (the last path segment).
    pub name: String,
    /// Event category (always `"span"`).
    pub cat: String,
    /// Phase: `"B"` (begin) or `"E"` (end).
    pub ph: String,
    /// Microseconds since the timeline epoch.
    pub ts: u64,
    /// Process id (always 1 — one process).
    pub pid: u64,
    /// Compact thread id.
    pub tid: u64,
    /// Extra payload: the full span path.
    pub args: ChromeTraceArgs,
}

/// `args` payload of a [`ChromeTraceEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTraceArgs {
    /// Full `/`-joined span path (parent chain).
    pub path: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_round_trip_balances() {
        let t = Timeline::default();
        let a = t.open("a");
        let b = t.open("a/b");
        t.close("a/b", b);
        t.close("a", a);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 0);
        snap.validate().expect("balanced nested events validate");
        // JSONL: one line per event, each parseable.
        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        for line in jsonl.lines() {
            let _: TraceEvent = serde_json::from_str(line).expect("line parses");
        }
    }

    #[test]
    fn capacity_drops_whole_spans_keeping_balance() {
        let t = Timeline::with_capacity(2);
        let a = t.open("a"); // admitted (1 event)
        let b = t.open("a/b"); // admitted (2 events, at capacity)
        let c = t.open("a/b/c"); // dropped
        assert!(a && b && !c);
        t.close("a/b/c", c); // no orphan close
        t.close("a/b", b); // overshoot: admitted closes always land
        t.close("a", a);
        let snap = t.snapshot();
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.events.len(), 4);
        snap.validate().expect("dropped span leaves no imbalance");
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let t = Timeline::default();
        t.set_enabled(false);
        let admitted = t.open("a");
        t.close("a", admitted);
        assert!(!admitted);
        assert!(t.snapshot().events.is_empty());
        assert_eq!(t.snapshot().dropped, 0, "disabled is not 'dropped'");
    }

    #[test]
    fn chrome_trace_maps_phases_and_round_trips() {
        let t = Timeline::default();
        let a = t.open("train");
        let b = t.open("train/embed");
        t.close("train/embed", b);
        t.close("train", a);
        let chrome = t.snapshot().to_chrome_trace();
        let phases: Vec<&str> = chrome.trace_events.iter().map(|e| e.ph.as_str()).collect();
        assert_eq!(phases, ["B", "B", "E", "E"]);
        assert_eq!(chrome.trace_events[1].name, "embed", "name is the leaf segment");
        assert_eq!(chrome.trace_events[1].args.path, "train/embed");
        let json = serde_json::to_string(&chrome).expect("serializes");
        assert!(json.contains("\"traceEvents\""));
        let back: ChromeTrace = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, chrome);
    }

    #[test]
    fn validate_rejects_mismatched_and_unclosed() {
        let bad = TimelineSnapshot {
            events: vec![
                TraceEvent { ts_micros: 0, kind: EventKind::Open, path: "a".into(), thread: 0 },
                TraceEvent { ts_micros: 1, kind: EventKind::Close, path: "b".into(), thread: 0 },
            ],
            capacity: 10,
            dropped: 0,
        };
        assert!(bad.validate().is_err(), "mismatched close must fail");
        let unclosed = TimelineSnapshot {
            events: vec![TraceEvent {
                ts_micros: 0,
                kind: EventKind::Open,
                path: "a".into(),
                thread: 3,
            }],
            capacity: 10,
            dropped: 0,
        };
        assert!(unclosed.validate().is_err(), "unclosed span must fail");
    }

    #[test]
    fn timestamps_are_monotone_per_admission_order() {
        let t = Timeline::default();
        let a = t.open("a");
        let b = t.open("a/b");
        t.close("a/b", b);
        t.close("a", a);
        let snap = t.snapshot();
        for w in snap.events.windows(2) {
            assert!(w[0].ts_micros <= w[1].ts_micros);
        }
    }
}
