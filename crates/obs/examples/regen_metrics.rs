//! Regenerate the registry table in `METRICS.md` from
//! [`tabmeta_obs::names::render_markdown`].
//!
//! Run after adding names to the registry:
//!
//! ```text
//! cargo run --offline -p tabmeta-obs --example regen_metrics
//! ```
//!
//! The obs test `metrics_md_matches_registry` pins the checked-in file to
//! the code, so a stale table fails `scripts/check.sh` until this runs.

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS.md");
    let doc = std::fs::read_to_string(path).expect("METRICS.md at workspace root");
    let begin = "<!-- registry:begin -->\n";
    let end = "<!-- registry:end -->";
    let start = doc.find(begin).expect("registry:begin marker") + begin.len();
    let stop = doc[start..].find(end).expect("registry:end marker") + start;
    let out = format!("{}{}{}", &doc[..start], tabmeta_obs::names::render_markdown(), &doc[stop..]);
    std::fs::write(path, out).expect("rewrite METRICS.md");
    println!("METRICS.md regenerated ({} registry rows)", tabmeta_obs::names::REGISTRY.len());
}
