//! Shard-chaos drills for out-of-core streaming training.
//!
//! Two families of drill, mirroring [`crate::crash`] for the streaming
//! path:
//!
//! * **Kill/resume** ([`run_shard_chaos`]) — kill a checkpointing
//!   streaming run at a chosen [`StreamBoundary`] (the moral equivalent
//!   of `kill -9` right after the boundary's checkpoint goes durable),
//!   then resume to completion. The invariant a test asserts: at
//!   `threads = 1` the recovered model is **byte-identical** to an
//!   uninterrupted same-seed streaming run. [`enumerate_boundaries`]
//!   lists every kill point a corpus/config pair exposes, so a sweep
//!   can kill at *all* of them instead of guessing counts.
//! * **Disk-fault sweep** ([`run_disk_fault_drills`]) — train through a
//!   [`FaultyDisk`] injecting each [`DiskFaultKind`] in turn. The
//!   invariant: every fault yields typed quarantine (conservation
//!   `accepted + quarantined == total` exact) or a typed error — never
//!   a panic, never a silently wrong model.

use std::ops::ControlFlow;
use std::path::Path;
use std::sync::Arc;
use tabmeta_core::checkpoint::CheckpointScanReport;
use tabmeta_core::stream::{train_streaming, StreamBoundary, StreamTrainError, StreamTrainOptions};
use tabmeta_core::{Pipeline, PipelineConfig};
use tabmeta_tabular::stream::{DiskIo, RealDisk};
use tabmeta_tabular::QuarantineReport;

use crate::disk::{DiskFaultKind, DiskFaultPlan, FaultyDisk};

/// What a kill-at-boundary drill observed.
#[derive(Debug)]
pub struct ShardChaosOutcome {
    /// The boundary the kill switch fired at, or `None` when the run
    /// finished before reaching it (the kill point lies past the end).
    pub killed_at: Option<StreamBoundary>,
    /// Checkpoint scan of the resumed run (chosen file, quarantines).
    pub scan: Option<CheckpointScanReport>,
    /// The model produced by the interrupted-then-resumed run.
    pub recovered: Pipeline,
    /// Ingestion report of the resumed run.
    pub report: QuarantineReport,
}

/// Run one streaming pass with a recording hook and return every
/// boundary it fires — the complete list of kill points for this
/// corpus/config/options triple. Deterministic: the same triple always
/// exposes the same boundaries.
pub fn enumerate_boundaries(
    corpus_dir: &Path,
    config: &PipelineConfig,
    options: &StreamTrainOptions,
    disk: Arc<dyn DiskIo>,
) -> Result<Vec<StreamBoundary>, StreamTrainError> {
    let mut seen = Vec::new();
    let mut recorder = |at: StreamBoundary| {
        seen.push(at);
        ControlFlow::Continue(())
    };
    train_streaming(corpus_dir, config, options, disk, None, Some(&mut recorder))?;
    Ok(seen)
}

/// Execute one kill/resume drill:
///
/// 1. stream-train with checkpointing into `checkpoint_dir`, killing
///    at `kill_at` (checkpoints for that boundary, if any, are already
///    durable when the kill fires);
/// 2. stream-train again over the same directory and checkpoint store,
///    which resumes from the newest valid checkpoint — or from scratch
///    when the kill preceded the first checkpoint.
///
/// If the run finishes without reaching `kill_at`, the drill records
/// `killed_at: None` and the finished model (nothing to recover from).
pub fn run_shard_chaos(
    corpus_dir: &Path,
    config: &PipelineConfig,
    options: &StreamTrainOptions,
    checkpoint_dir: &Path,
    disk: Arc<dyn DiskIo>,
    kill_at: StreamBoundary,
) -> Result<ShardChaosOutcome, StreamTrainError> {
    let mut killed_at = None;
    let mut kill_switch = |at: StreamBoundary| {
        if at == kill_at {
            killed_at = Some(at);
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    };
    let first_run = train_streaming(
        corpus_dir,
        config,
        options,
        Arc::clone(&disk),
        Some(checkpoint_dir),
        Some(&mut kill_switch),
    );
    match first_run {
        Err(StreamTrainError::Interrupted { .. }) => {}
        Ok((finished, summary)) => {
            return Ok(ShardChaosOutcome {
                killed_at: None,
                scan: summary.scan,
                recovered: finished,
                report: summary.report,
            });
        }
        Err(other) => return Err(other),
    }

    let (recovered, summary) =
        train_streaming(corpus_dir, config, options, disk, Some(checkpoint_dir), None)?;
    Ok(ShardChaosOutcome { killed_at, scan: summary.scan, recovered, report: summary.report })
}

/// One entry of a disk-fault sweep.
#[derive(Debug)]
pub struct FaultDrillOutcome {
    /// The injected fault kind.
    pub kind: DiskFaultKind,
    /// `Ok`: training completed; the ingestion report carries the
    /// quarantines. `Err`: training failed with this *typed* error
    /// (e.g. every open failing with EIO leaves an empty corpus).
    pub result: Result<QuarantineReport, StreamTrainError>,
}

impl FaultDrillOutcome {
    /// Conservation holds: either training finished with an exact
    /// report, or it failed with a typed (non-panic) error.
    pub fn conserved(&self) -> bool {
        match &self.result {
            Ok(report) => report.conservation_holds(),
            Err(_) => true,
        }
    }
}

/// Train through a [`FaultyDisk`] once per [`DiskFaultKind`], with the
/// given seed and per-file fault rate. Every outcome is typed; a panic
/// anywhere fails the calling test by unwinding through it.
pub fn run_disk_fault_drills(
    corpus_dir: &Path,
    config: &PipelineConfig,
    options: &StreamTrainOptions,
    seed: u64,
    rate: f64,
) -> Vec<FaultDrillOutcome> {
    DiskFaultKind::ALL
        .into_iter()
        .map(|kind| {
            let mut plan = DiskFaultPlan::only(seed, kind);
            plan.rate = rate;
            let disk = Arc::new(FaultyDisk::new(Arc::new(RealDisk), plan));
            let result = train_streaming(corpus_dir, config, options, disk, None, None)
                .map(|(_, summary)| summary.report);
            FaultDrillOutcome { kind, result }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::Write as _;
    use std::path::PathBuf;
    use tabmeta_tabular::{Corpus, Table};

    fn corpus_dir(tag: &str, tables: usize) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tabmeta-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut corpus = Corpus::new("chaos");
        for id in 0..tables as u64 {
            let a = format!("region {id}");
            let b = format!("population count {id}");
            let c = format!("{}", 100 + id);
            let d = format!("{}", 200 + id);
            let mut t = Table::from_strings(
                id,
                &[
                    &["area name", "total residents"],
                    &[a.as_str(), c.as_str()],
                    &[b.as_str(), d.as_str()],
                ],
            );
            t.caption = format!("regional summary {id}");
            corpus.tables.push(t);
        }
        for (i, chunk) in corpus.tables.chunks(tables.div_ceil(2).max(1)).enumerate() {
            let mut slice = Corpus::new("part");
            slice.tables = chunk.to_vec();
            let mut buf = Vec::new();
            slice.write_jsonl(&mut buf).unwrap();
            fs::File::create(dir.join(format!("part-{i}.jsonl"))).unwrap().write_all(&buf).unwrap();
        }
        dir
    }

    fn config() -> PipelineConfig {
        let mut c = PipelineConfig::fast_seeded(13).without_finetune();
        c.threads = 1;
        c
    }

    fn options() -> StreamTrainOptions {
        StreamTrainOptions {
            shard_rows: 48,
            mem_budget: None,
            quarantine_dir: None,
            centroid_shard_tables: 10,
        }
    }

    #[test]
    fn every_boundary_kill_resumes_byte_identical() {
        let dir = corpus_dir("killsweep", 24);
        let config = config();
        let options = options();
        let disk: Arc<dyn DiskIo> = Arc::new(RealDisk);
        let (baseline, _) =
            train_streaming(&dir, &config, &options, Arc::clone(&disk), None, None).unwrap();
        let baseline_json = baseline.to_json().unwrap();
        let boundaries = enumerate_boundaries(&dir, &config, &options, Arc::clone(&disk)).unwrap();
        assert!(
            boundaries.iter().any(|b| matches!(b, StreamBoundary::SgnsEpoch(_)))
                && boundaries.iter().any(|b| matches!(b, StreamBoundary::CentroidShard(_))),
            "sweep must cover SGNS and centroid boundaries: {boundaries:?}"
        );
        // Every other boundary keeps this unit test fast; the
        // integration suite sweeps them all.
        for (i, &kill_at) in boundaries.iter().step_by(2).enumerate() {
            let ckpt = dir.join(format!("ckpt-{i}"));
            let outcome =
                run_shard_chaos(&dir, &config, &options, &ckpt, Arc::clone(&disk), kill_at)
                    .unwrap();
            assert_eq!(outcome.killed_at, Some(kill_at));
            assert!(outcome.report.conservation_holds());
            assert_eq!(
                outcome.recovered.to_json().unwrap(),
                baseline_json,
                "kill at {kill_at} must recover byte-identical"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_fault_sweep_is_typed_and_conserving() {
        let dir = corpus_dir("faultsweep", 16);
        let outcomes = run_disk_fault_drills(&dir, &config(), &options(), 0xfa17, 1.0);
        assert_eq!(outcomes.len(), DiskFaultKind::ALL.len());
        for o in &outcomes {
            assert!(o.conserved(), "{:?} broke conservation: {:?}", o.kind, o.result);
        }
        // EIO at rate 1.0 fails every open: typed empty-corpus error.
        let eio = outcomes.iter().find(|o| o.kind == DiskFaultKind::Eio).unwrap();
        assert_eq!(
            eio.result.as_ref().err(),
            Some(&StreamTrainError::EmptyCorpus),
            "all-EIO must be a typed error, not a panic"
        );
        // Write-only faults never touch the read path: clean training.
        let torn = outcomes.iter().find(|o| o.kind == DiskFaultKind::TornRename).unwrap();
        assert!(torn.result.as_ref().is_ok_and(|r| r.is_clean()));
        let _ = fs::remove_dir_all(&dir);
    }
}
