//! Seeded disk-fault injection behind the [`DiskIo`] seam.
//!
//! The out-of-core shard streamer moves every byte through
//! [`tabmeta_tabular::stream::DiskIo`]; wrapping that seam with a
//! [`FaultyDisk`] lets the chaos suite hit the *production* read/write
//! code with the full disk failure surface — short reads and writes,
//! ENOSPC, EIO, torn renames of temp files, and bit-flipped shard bytes
//! — without touching the kernel.
//!
//! Determinism is the contract that makes this usable for resume
//! drills: every fault decision is a **pure function of (plan seed,
//! file name, operation)**. The same plan over the same directory
//! injects byte-identical faults on every pass and on every process,
//! so a run killed at a shard boundary and resumed sees exactly the
//! faults the uninterrupted run saw, and a failing chaos seed
//! reproduces exactly.
//!
//! Transport faults surface as `io::Error`s carrying a typed
//! [`FaultPayload`], so [`ShardFault::classify`] recovers the precise
//! fault for the `shard.quarantined.<reason>` counter. Bit flips are
//! *content* damage — the read succeeds, the record fails to parse —
//! and land in the ingestion taxonomy instead, exactly as real silent
//! corruption would.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;
use tabmeta_core::persist::Fnv1a;
use tabmeta_tabular::stream::{DiskIo, FaultPayload, ShardFault};

/// One injectable disk failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskFaultKind {
    /// A reader that delivers a prefix of the file and then errors
    /// (dying NFS mount, truncated block). Read surface.
    ShortRead,
    /// One byte of the file XOR-flipped in transit (silent corruption).
    /// Read surface; surfaces as a parse failure, not an IO error.
    BitFlip,
    /// ENOSPC partway through a temp-file write: a partial temp file is
    /// left behind and the write fails typed. Write surface.
    NoSpace,
    /// A write that persists fewer bytes than requested before failing.
    /// Write surface.
    ShortWrite,
    /// The commit rename tears: the temp file is fully written but the
    /// destination never appears. Write surface.
    TornRename,
    /// Plain EIO on open/read/write. Both surfaces.
    Eio,
}

impl DiskFaultKind {
    /// Every kind, for exhaustive plans.
    pub const ALL: [DiskFaultKind; 6] = [
        DiskFaultKind::ShortRead,
        DiskFaultKind::BitFlip,
        DiskFaultKind::NoSpace,
        DiskFaultKind::ShortWrite,
        DiskFaultKind::TornRename,
        DiskFaultKind::Eio,
    ];

    /// Kinds applicable to the read surface (`open_read` / `read`).
    pub const READ: [DiskFaultKind; 3] =
        [DiskFaultKind::ShortRead, DiskFaultKind::BitFlip, DiskFaultKind::Eio];

    /// Kinds applicable to the write surface (`atomic_write`).
    pub const WRITE: [DiskFaultKind; 4] = [
        DiskFaultKind::NoSpace,
        DiskFaultKind::ShortWrite,
        DiskFaultKind::TornRename,
        DiskFaultKind::Eio,
    ];

    fn applies_to_reads(self) -> bool {
        Self::READ.contains(&self)
    }

    fn applies_to_writes(self) -> bool {
        Self::WRITE.contains(&self)
    }

    /// The [`ShardFault`] bucket a transport-level injection of this
    /// kind classifies into (`None` for [`DiskFaultKind::BitFlip`],
    /// which is content damage and never raises an IO error).
    pub fn shard_fault(self) -> Option<ShardFault> {
        match self {
            DiskFaultKind::ShortRead => Some(ShardFault::ShortRead),
            DiskFaultKind::BitFlip => None,
            DiskFaultKind::NoSpace => Some(ShardFault::NoSpace),
            DiskFaultKind::ShortWrite => Some(ShardFault::ShortWrite),
            DiskFaultKind::TornRename => Some(ShardFault::TornRename),
            DiskFaultKind::Eio => Some(ShardFault::Io),
        }
    }
}

/// A deterministic disk-fault schedule: which failure modes, how often,
/// under which seed. Same plan → identical fault decisions on every
/// pass, every process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskFaultPlan {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Per-operation fault probability in `[0, 1]`.
    pub rate: f64,
    /// The failure modes this plan may inject (kinds inapplicable to an
    /// operation's surface are filtered per decision).
    pub kinds: Vec<DiskFaultKind>,
}

impl DiskFaultPlan {
    /// A plan over every failure mode at the given rate.
    pub fn all(seed: u64, rate: f64) -> Self {
        Self { seed, rate, kinds: DiskFaultKind::ALL.to_vec() }
    }

    /// A plan injecting nothing (useful as a control arm).
    pub fn none(seed: u64) -> Self {
        Self { seed, rate: 0.0, kinds: Vec::new() }
    }

    /// A plan over a single failure mode, firing on every applicable
    /// operation.
    pub fn only(seed: u64, kind: DiskFaultKind) -> Self {
        Self { seed, rate: 1.0, kinds: vec![kind] }
    }

    /// The fault decision for one `(path, op)` — a pure function of the
    /// plan, the file *name* (so identical corpora in different temp
    /// dirs draw identical faults), and the operation tag. Returns the
    /// chosen kind plus a fraction in `(0, 1)` that positions the fault
    /// within the payload (short-read cutoff, flipped-byte offset,
    /// partial-write length).
    fn decide(&self, path: &Path, op: &str) -> Option<(DiskFaultKind, f64)> {
        if self.rate <= 0.0 || self.kinds.is_empty() {
            return None;
        }
        let applicable: Vec<DiskFaultKind> = self
            .kinds
            .iter()
            .copied()
            .filter(|k| match op {
                "write" => k.applies_to_writes(),
                _ => k.applies_to_reads(),
            })
            .collect();
        if applicable.is_empty() {
            return None;
        }
        let mut h = Fnv1a::new();
        h.write_u64(self.seed);
        h.write_str(
            &path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default(),
        );
        h.write_str(op);
        let mut rng = StdRng::seed_from_u64(h.finish());
        if !rng.random_bool(self.rate.clamp(0.0, 1.0)) {
            return None;
        }
        let kind = applicable[rng.random_range(0..applicable.len())];
        // Keep the fraction strictly interior so "short" is never empty
        // or complete and a flip offset always lands on a real byte.
        let frac = rng.random_range(0.15..0.85);
        Some((kind, frac))
    }
}

/// A [`DiskIo`] wrapper that injects the plan's faults into an inner
/// disk (usually [`tabmeta_tabular::stream::RealDisk`]).
pub struct FaultyDisk {
    inner: Arc<dyn DiskIo>,
    plan: DiskFaultPlan,
}

impl std::fmt::Debug for FaultyDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyDisk").field("plan", &self.plan).finish()
    }
}

impl FaultyDisk {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: Arc<dyn DiskIo>, plan: DiskFaultPlan) -> Self {
        Self { inner, plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &DiskFaultPlan {
        &self.plan
    }

    fn flip_byte(bytes: &mut [u8], frac: f64) {
        if bytes.is_empty() {
            return;
        }
        let idx = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 0xFF;
    }

    fn cut(len: usize, frac: f64) -> usize {
        ((len as f64 * frac) as usize).min(len)
    }
}

/// Delivers a byte prefix, then fails every subsequent read with a
/// typed short-read error — the shape of a truncated block device or a
/// dying network mount.
struct ShortReader {
    inner: Box<dyn Read + Send>,
    remaining: usize,
    detail: String,
}

impl Read for ShortReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(FaultPayload::to_io_error(ShardFault::ShortRead, self.detail.clone()));
        }
        let cap = self.remaining.min(buf.len());
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        if n == 0 {
            // The file ended before the injected cutoff: surface the
            // short read now so the fault is observed exactly once.
            self.remaining = 0;
            return Err(FaultPayload::to_io_error(ShardFault::ShortRead, self.detail.clone()));
        }
        Ok(n)
    }
}

impl DiskIo for FaultyDisk {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        match self.plan.decide(path, "open") {
            None => self.inner.open_read(path),
            Some((DiskFaultKind::Eio, _)) => Err(FaultPayload::to_io_error(
                ShardFault::Io,
                format!("EIO opening {}", path.display()),
            )),
            Some((DiskFaultKind::ShortRead, frac)) => {
                let len = self.inner.read(path)?.len();
                Ok(Box::new(ShortReader {
                    inner: self.inner.open_read(path)?,
                    remaining: Self::cut(len, frac),
                    detail: format!("short read of {}", path.display()),
                }))
            }
            Some((DiskFaultKind::BitFlip, frac)) => {
                let mut bytes = self.inner.read(path)?;
                Self::flip_byte(&mut bytes, frac);
                Ok(Box::new(io::Cursor::new(bytes)))
            }
            // Write-surface kinds are filtered out by decide().
            Some((k, _)) => Err(FaultPayload::to_io_error(
                ShardFault::Io,
                format!("unexpected read fault {k:?}"),
            )),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.plan.decide(path, "read") {
            None => self.inner.read(path),
            Some((DiskFaultKind::Eio, _)) => Err(FaultPayload::to_io_error(
                ShardFault::Io,
                format!("EIO reading {}", path.display()),
            )),
            Some((DiskFaultKind::ShortRead, _)) => Err(FaultPayload::to_io_error(
                ShardFault::ShortRead,
                format!("short read of {}", path.display()),
            )),
            Some((DiskFaultKind::BitFlip, frac)) => {
                let mut bytes = self.inner.read(path)?;
                Self::flip_byte(&mut bytes, frac);
                Ok(bytes)
            }
            Some((k, _)) => Err(FaultPayload::to_io_error(
                ShardFault::Io,
                format!("unexpected read fault {k:?}"),
            )),
        }
    }

    fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let Some((kind, frac)) = self.plan.decide(path, "write") else {
            return self.inner.atomic_write(path, bytes);
        };
        // Simulate the on-disk debris each failure mode leaves: partial
        // or complete temp files that never committed. The temp naming
        // matches the production atomic-write convention so resume
        // scans exercise their temp-file quarantine path.
        let leave_temp = |cut: usize| -> io::Result<()> {
            let (Some(parent), Some(name)) =
                (path.parent(), path.file_name().and_then(|n| n.to_str()))
            else {
                return Ok(());
            };
            std::fs::create_dir_all(parent)?;
            let tmp = parent.join(format!(".{name}.tmp-{}", std::process::id()));
            std::fs::write(&tmp, &bytes[..cut.min(bytes.len())])?;
            Ok(())
        };
        match kind {
            DiskFaultKind::NoSpace => {
                leave_temp(Self::cut(bytes.len(), frac))?;
                Err(FaultPayload::to_io_error(
                    ShardFault::NoSpace,
                    format!("ENOSPC writing {}", path.display()),
                ))
            }
            DiskFaultKind::ShortWrite => {
                leave_temp(Self::cut(bytes.len(), frac))?;
                Err(FaultPayload::to_io_error(
                    ShardFault::ShortWrite,
                    format!("short write of {}", path.display()),
                ))
            }
            DiskFaultKind::TornRename => {
                leave_temp(bytes.len())?;
                Err(FaultPayload::to_io_error(
                    ShardFault::TornRename,
                    format!("rename of {} tore", path.display()),
                ))
            }
            _ => Err(FaultPayload::to_io_error(
                ShardFault::Io,
                format!("EIO writing {}", path.display()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use tabmeta_tabular::stream::{RealDisk, ShardReader, StreamOptions};
    use tabmeta_tabular::{Corpus, RejectReason, Table};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tabmeta-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_corpus(dir: &Path, files: usize, tables_per_file: usize) {
        let mut id = 0u64;
        for f in 0..files {
            let mut corpus = Corpus::new(format!("part-{f}"));
            for _ in 0..tables_per_file {
                corpus
                    .tables
                    .push(Table::from_strings(id, &[&["h1", "h2"], &["1", "2"], &["3", "4"]]));
                id += 1;
            }
            let mut buf = Vec::new();
            corpus.write_jsonl(&mut buf).unwrap();
            std::fs::write(dir.join(format!("part-{f:03}.jsonl")), buf).unwrap();
        }
    }

    fn stream_all(dir: &Path, disk: Arc<dyn DiskIo>) -> (usize, tabmeta_tabular::QuarantineReport) {
        let reader = ShardReader::open(dir, StreamOptions::default(), disk).unwrap();
        let mut cursor = reader.pass();
        let mut n = 0;
        while let Some(s) = cursor.next_shard(100) {
            n += s.tables.len();
        }
        (n, cursor.finish())
    }

    #[test]
    fn decisions_are_pure_and_dir_independent() {
        let plan = DiskFaultPlan::all(7, 0.5);
        for op in ["open", "read", "write"] {
            let a = plan.decide(Path::new("/x/part-000.jsonl"), op);
            let b = plan.decide(Path::new("/totally/else/part-000.jsonl"), op);
            assert_eq!(a, b, "same file name must draw the same fault for op {op}");
        }
        // A different seed reshuffles at least one decision across a
        // spread of files (rate 0.5 makes all-equal astronomically
        // unlikely).
        let other = DiskFaultPlan::all(8, 0.5);
        let differs = (0..64).any(|i| {
            let p = PathBuf::from(format!("f{i}.jsonl"));
            plan.decide(&p, "open") != other.decide(&p, "open")
        });
        assert!(differs);
    }

    #[test]
    fn every_kind_injects_a_typed_fault_never_a_panic() {
        for kind in DiskFaultKind::ALL {
            let dir = temp_dir(&format!("kind-{kind:?}"));
            write_corpus(&dir, 2, 3);
            let plan = DiskFaultPlan::only(11, kind);
            let disk = Arc::new(FaultyDisk::new(Arc::new(RealDisk), plan));
            let (accepted, report) = stream_all(&dir, disk);
            assert!(report.conservation_holds(), "conservation broke under {kind:?}");
            assert_eq!(report.accepted as usize, accepted);
            if kind.applies_to_reads() {
                // Read faults hit every file: bit flips damage one byte
                // (other records may still parse), short reads deliver a
                // prefix (records before the cutoff still parse), EIO on
                // open kills the whole file.
                assert!(
                    report.quarantined() > 0,
                    "read fault {kind:?} should quarantine something"
                );
                if kind == DiskFaultKind::Eio {
                    assert_eq!(accepted, 0, "EIO fires on every open");
                }
            } else {
                // Write-surface kinds never touch reads.
                assert_eq!(accepted, 6, "{kind:?} must not affect reads");
                assert!(report.is_clean());
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn passes_see_identical_faults() {
        let dir = temp_dir("repass");
        write_corpus(&dir, 4, 3);
        let plan = DiskFaultPlan::all(1234, 0.5);
        let disk: Arc<dyn DiskIo> = Arc::new(FaultyDisk::new(Arc::new(RealDisk), plan));
        let reader = ShardReader::open(&dir, StreamOptions::default(), disk).unwrap();
        let collect = || {
            let mut cursor = reader.pass();
            let mut tables = Vec::new();
            while let Some(s) = cursor.next_shard(5) {
                tables.extend(s.tables);
            }
            (tables, cursor.finish())
        };
        let (ta, ra) = collect();
        let (tb, rb) = collect();
        assert_eq!(ta, tb);
        assert_eq!(ra, rb);
        assert!(ra.conservation_holds());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_mid_quarantine_write_keeps_conservation_exact() {
        // A corpus with a bad record *and* a quarantine dir whose
        // sidecar writes die with ENOSPC partway through: the record
        // stays quarantined, conservation stays exact, and a partial
        // temp file is left behind (as a real ENOSPC would).
        let dir = temp_dir("enospc");
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir).unwrap();
        write_corpus(&dir, 1, 2);
        std::fs::write(dir.join("bad.jsonl"), b"{\"id\": broken broken broken\n").unwrap();
        let plan = DiskFaultPlan::only(3, DiskFaultKind::NoSpace);
        let disk = Arc::new(FaultyDisk::new(Arc::new(RealDisk), plan));
        let options = StreamOptions { shard_rows: 100, quarantine_dir: Some(qdir.clone()) };
        let reader = ShardReader::open(&dir, options, disk).unwrap();
        let mut cursor = reader.pass();
        let mut accepted = 0;
        while let Some(s) = cursor.next_shard(100) {
            accepted += s.tables.len();
        }
        let report = cursor.finish();
        assert_eq!(accepted, 2);
        assert_eq!(report.quarantined(), 1);
        assert_eq!(report.count_for(RejectReason::MalformedJson), 1);
        assert!(report.conservation_holds());
        // The sidecar never committed; only partial temp debris exists.
        let entries: Vec<String> = std::fs::read_dir(&qdir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(entries.iter().all(|n| n.contains(".tmp-")), "no committed sidecar: {entries:?}");
        assert!(!entries.is_empty(), "ENOSPC leaves a partial temp file");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_sidecar_rename_keeps_conservation_exact() {
        let dir = temp_dir("torn");
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir).unwrap();
        write_corpus(&dir, 1, 1);
        std::fs::write(dir.join("bad.jsonl"), b"not json at all\n").unwrap();
        let plan = DiskFaultPlan::only(5, DiskFaultKind::TornRename);
        let disk = Arc::new(FaultyDisk::new(Arc::new(RealDisk), plan));
        let options = StreamOptions { shard_rows: 100, quarantine_dir: Some(qdir.clone()) };
        let reader = ShardReader::open(&dir, options, disk).unwrap();
        let mut cursor = reader.pass();
        while cursor.next_shard(100).is_some() {}
        let report = cursor.finish();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined(), 1);
        assert!(report.conservation_holds());
        // Torn rename: the temp file holds the full payload, the
        // committed `.bad` file never appeared.
        let entries: Vec<String> = std::fs::read_dir(&qdir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(entries.iter().any(|n| n.contains(".tmp-")));
        assert!(entries.iter().all(|n| !n.ends_with(".bad")));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
