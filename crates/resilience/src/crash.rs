//! Seeded crash injection for the checkpoint/resume training path.
//!
//! A [`CrashPlan`] kills training at a chosen epoch boundary (via the
//! pipeline's checkpoint hook — the moral equivalent of `kill -9` right
//! after the checkpoint goes durable) and can then damage the newest
//! checkpoint file the way real crashes do: a torn tail, a flipped bit, a
//! half-written prefix. [`run_crash_recovery`] executes the whole drill —
//! kill, corrupt, rescan, resume to completion — and returns what
//! happened, so a test can assert the two recovery invariants:
//!
//! 1. every corrupted checkpoint is quarantined with a typed reason and
//!    never loaded, and
//! 2. at `threads = 1` the recovered model is byte-identical to an
//!    uninterrupted run of the same seed.

use serde::{Deserialize, Serialize};
use std::ops::ControlFlow;
use std::path::Path;
use tabmeta_core::checkpoint::{CheckpointScanReport, CheckpointStore};
use tabmeta_core::persist::run_fingerprint;
use tabmeta_core::{ArtifactError, Pipeline, PipelineConfig, TrainError};
use tabmeta_tabular::Table;

/// How to damage the newest checkpoint after the kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointCorruption {
    /// Leave every checkpoint intact (pure kill/resume drill).
    Intact,
    /// Drop the last `n` bytes — a torn write.
    TruncateTail(usize),
    /// XOR the byte at `offset` (wrapped into range) with `mask` — disk
    /// or transport bit rot.
    BitFlip {
        /// Byte position, taken modulo the file length.
        offset: usize,
        /// XOR mask; `0` would be a no-op, so use a nonzero mask.
        mask: u8,
    },
    /// Keep only the first `n` bytes — a write that died early.
    KeepPrefix(usize),
}

impl CheckpointCorruption {
    /// Apply the damage to `bytes`; `true` if anything changed.
    fn apply(&self, bytes: &mut Vec<u8>) -> bool {
        match *self {
            CheckpointCorruption::Intact => false,
            CheckpointCorruption::TruncateTail(n) => {
                let keep = bytes.len().saturating_sub(n);
                bytes.truncate(keep);
                n > 0
            }
            CheckpointCorruption::BitFlip { offset, mask } => {
                if bytes.is_empty() || mask == 0 {
                    return false;
                }
                let i = offset % bytes.len();
                bytes[i] ^= mask;
                true
            }
            CheckpointCorruption::KeepPrefix(n) => {
                if n >= bytes.len() {
                    return false;
                }
                bytes.truncate(n);
                true
            }
        }
    }
}

/// One seeded crash scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPlan {
    /// Kill training right after this global epoch's checkpoint is
    /// durable (SGNS epochs count from 1; fine-tune epochs continue
    /// after the SGNS stage).
    pub kill_after_epoch: u64,
    /// Damage applied to the newest checkpoint file after the kill.
    pub corruption: CheckpointCorruption,
}

/// What a crash-recovery drill observed.
#[derive(Debug)]
pub struct CrashOutcome {
    /// Global epoch the kill switch fired at, or `None` when training
    /// finished before reaching the kill point.
    pub killed_at: Option<u64>,
    /// Name of the checkpoint file that was corrupted, if any.
    pub corrupted_file: Option<String>,
    /// Scan report from the resume (quarantines, chosen checkpoint).
    pub scan: CheckpointScanReport,
    /// The model produced by the interrupted-then-resumed run.
    pub recovered: Pipeline,
}

fn ckpt_io(detail: String) -> TrainError {
    TrainError::Checkpoint(ArtifactError::Io { detail })
}

/// Newest committed checkpoint file in `dir` (zero-padded stage/epoch
/// file names sort chronologically).
fn newest_checkpoint(dir: &Path) -> Result<Option<std::path::PathBuf>, TrainError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ckpt_io(format!("read checkpoint dir {}: {e}", dir.display())))?;
    Ok(entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("ckpt-"))
        })
        .max())
}

/// Execute one crash-recovery drill in `dir`:
///
/// 1. train with checkpointing, killing after [`CrashPlan::kill_after_epoch`];
/// 2. damage the newest checkpoint per [`CrashPlan::corruption`]
///    (bypassing the atomic writer, the way real corruption does);
/// 3. rescan the store — corrupt files must quarantine, never load;
/// 4. resume from the newest surviving checkpoint and train to completion.
///
/// If training finishes before the kill point fires, the drill records
/// `killed_at: None` and the finished model (nothing to recover from).
pub fn run_crash_recovery(
    tables: &[Table],
    config: &PipelineConfig,
    dir: &Path,
    plan: &CrashPlan,
) -> Result<CrashOutcome, TrainError> {
    let fingerprint = run_fingerprint(config, tables);
    let store = CheckpointStore::open(dir, fingerprint).map_err(TrainError::Checkpoint)?;

    let mut killed_at = None;
    let kill_after = plan.kill_after_epoch;
    let mut kill_switch = |epoch: u64| {
        if epoch >= kill_after {
            killed_at = Some(epoch);
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    };
    let first_run = Pipeline::train_with_checkpoints(
        tables,
        config,
        Some(&store),
        None,
        Some(&mut kill_switch),
    );
    match first_run {
        Err(TrainError::Interrupted { .. }) => {}
        Ok(finished) => {
            // The kill point lies past the end of training.
            return Ok(CrashOutcome {
                killed_at: None,
                corrupted_file: None,
                scan: CheckpointScanReport::default(),
                recovered: finished,
            });
        }
        Err(other) => return Err(other),
    }

    let mut corrupted_file = None;
    if plan.corruption != CheckpointCorruption::Intact {
        if let Some(path) = newest_checkpoint(store.dir())? {
            let mut bytes = std::fs::read(&path)
                .map_err(|e| ckpt_io(format!("read {}: {e}", path.display())))?;
            if plan.corruption.apply(&mut bytes) {
                // Deliberately a plain overwrite: simulated corruption must
                // not enjoy the atomic writer's crash safety.
                std::fs::write(&path, &bytes)
                    .map_err(|e| ckpt_io(format!("corrupt {}: {e}", path.display())))?;
                corrupted_file = path.file_name().and_then(|n| n.to_str()).map(String::from);
            }
        }
    }

    let (resume_from, scan) = store.latest_valid().map_err(TrainError::Checkpoint)?;
    let recovered =
        Pipeline::train_with_checkpoints(tables, config, Some(&store), resume_from, None)?;
    Ok(CrashOutcome { killed_at, corrupted_file, scan, recovered })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_kinds_change_bytes_deterministically() {
        let base = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut b = base.clone();
        assert!(!CheckpointCorruption::Intact.apply(&mut b));
        assert_eq!(b, base);
        let mut b = base.clone();
        assert!(CheckpointCorruption::TruncateTail(3).apply(&mut b));
        assert_eq!(b, &base[..5]);
        let mut b = base.clone();
        assert!(CheckpointCorruption::BitFlip { offset: 9, mask: 0x80 }.apply(&mut b));
        assert_eq!(b[1], 2 ^ 0x80, "offset wraps modulo length");
        let mut b = base.clone();
        assert!(CheckpointCorruption::KeepPrefix(2).apply(&mut b));
        assert_eq!(b, &base[..2]);
        let mut b = base.clone();
        assert!(!CheckpointCorruption::KeepPrefix(100).apply(&mut b), "no-op prefix");
    }
}
