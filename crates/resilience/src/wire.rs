//! Seeded wire-level fault injection for the serve protocol.
//!
//! The serve chaos gate needs malformed traffic that is hostile *and*
//! replayable: a failing seed must reproduce the exact byte stream that
//! broke the server. [`RequestFaultPlan`] mirrors the corpus-level
//! [`crate::FaultPlan`] — a seed, a rate, and a kind mix — and
//! [`RequestFaultInjector`] applies it deterministically to well-formed
//! frames (4-byte little-endian length prefix + JSON payload, the
//! `tabmeta-serve` wire format).
//!
//! Every kind is *lethal at the wire layer*: the server must answer with
//! a typed rejection or (when the peer vanishes mid-frame) close without
//! panicking, and must never interpret the damage as a valid request.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tabmeta_core::persist::Fnv1a;

/// One kind of wire damage applied to an outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireFaultKind {
    /// Send only a proper prefix of the frame, then continue the
    /// conversation as if nothing happened (a flaky proxy). The server
    /// reads a length it can never fill from bytes that follow.
    TruncatedFrame,
    /// Keep the payload but lie in the length prefix with a huge value.
    /// The server must reject on the declared length alone, before
    /// buffering a body it will never receive.
    OversizedLength,
    /// Replace the JSON payload with length-correct garbage bytes. The
    /// frame parses; the request must not.
    GarbageBytes,
    /// Send a proper prefix of the frame and hang up mid-body (a client
    /// killed at the worst moment). Nobody is left to answer.
    MidFrameDisconnect,
}

impl WireFaultKind {
    /// Every wire fault kind.
    pub const ALL: [WireFaultKind; 4] = [
        WireFaultKind::TruncatedFrame,
        WireFaultKind::OversizedLength,
        WireFaultKind::GarbageBytes,
        WireFaultKind::MidFrameDisconnect,
    ];

    /// Whether the peer closes the connection after the damaged bytes
    /// (no response can be delivered to it).
    pub fn disconnects(self) -> bool {
        matches!(self, WireFaultKind::MidFrameDisconnect)
    }

    /// Stable lowercase token for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            WireFaultKind::TruncatedFrame => "truncated_frame",
            WireFaultKind::OversizedLength => "oversized_length",
            WireFaultKind::GarbageBytes => "garbage_bytes",
            WireFaultKind::MidFrameDisconnect => "mid_frame_disconnect",
        }
    }
}

impl std::fmt::Display for WireFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A deterministic wire-corruption recipe for one traffic source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFaultPlan {
    /// RNG seed — the whole corruption is a pure function of this and
    /// the frame sequence.
    pub seed: u64,
    /// Per-frame corruption probability in `[0, 1]`.
    pub rate: f64,
    /// The fault kinds to draw from (uniformly).
    pub kinds: Vec<WireFaultKind>,
}

impl RequestFaultPlan {
    /// The full wire fault mix at `rate`.
    pub fn full(seed: u64, rate: f64) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0), kinds: WireFaultKind::ALL.to_vec() }
    }

    /// A plan restricted to the given kinds.
    pub fn with_kinds(seed: u64, rate: f64, kinds: &[WireFaultKind]) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0), kinds: kinds.to_vec() }
    }
}

/// What the injector decided for one outgoing frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDecision {
    /// Send the frame untouched and read a normal response.
    Clean,
    /// Send `bytes` instead; `kind` documents the damage, and
    /// [`WireFaultKind::disconnects`] tells the sender to hang up
    /// afterwards instead of reading a response.
    Corrupt {
        /// The damage applied.
        kind: WireFaultKind,
        /// The bytes to put on the wire.
        bytes: Vec<u8>,
    },
}

/// Applies a [`RequestFaultPlan`] to a sequence of well-formed frames.
///
/// Determinism contract: decisions depend only on the plan and on the
/// *sequence* of `decide` calls (frame content included via a content
/// hash, so the same request stream replays byte-identically).
#[derive(Debug)]
pub struct RequestFaultInjector {
    plan: RequestFaultPlan,
    rng: StdRng,
    injected: Vec<WireFaultKind>,
}

impl RequestFaultInjector {
    /// Injector for `plan`.
    pub fn new(plan: RequestFaultPlan) -> Self {
        // Fold the content-independent parts of the plan into the seed so
        // two plans differing only in rate/kinds still diverge.
        let mut tag = Fnv1a::new();
        tag.write(&plan.seed.to_le_bytes());
        tag.write(&plan.rate.to_bits().to_le_bytes());
        for kind in &plan.kinds {
            tag.write(kind.as_str().as_bytes());
        }
        let rng = StdRng::seed_from_u64(tag.finish());
        Self { plan, rng, injected: Vec::new() }
    }

    /// Decide what to do with one well-formed frame (`header ‖ payload`,
    /// as produced by the serve protocol's `write_frame`).
    pub fn decide(&mut self, frame: &[u8]) -> WireDecision {
        if self.plan.kinds.is_empty() || !self.rng.random_bool(self.plan.rate) {
            return WireDecision::Clean;
        }
        let kind = self.plan.kinds[self.rng.random_range(0..self.plan.kinds.len())];
        let bytes = self.corrupt(kind, frame);
        self.injected.push(kind);
        WireDecision::Corrupt { kind, bytes }
    }

    fn corrupt(&mut self, kind: WireFaultKind, frame: &[u8]) -> Vec<u8> {
        match kind {
            WireFaultKind::TruncatedFrame | WireFaultKind::MidFrameDisconnect => {
                // A proper prefix: at least the header, never the whole
                // frame (the header alone is the degenerate minimum for
                // tiny frames).
                let cut = if frame.len() > 5 { self.rng.random_range(5..frame.len()) } else { 4 };
                frame[..cut.min(frame.len())].to_vec()
            }
            WireFaultKind::OversizedLength => {
                let mut bytes = frame.to_vec();
                let declared = self.rng.random_range(1u32 << 30..u32::MAX);
                bytes[..4].copy_from_slice(&declared.to_le_bytes());
                bytes
            }
            WireFaultKind::GarbageBytes => {
                let mut bytes = frame.to_vec();
                for b in bytes.iter_mut().skip(4) {
                    *b = self.rng.random_range(0..=255u32) as u8;
                }
                bytes
            }
        }
    }

    /// Every fault injected so far, in decision order.
    pub fn injected(&self) -> &[WireFaultKind] {
        &self.injected
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &RequestFaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn same_plan_same_stream_replays_identically() {
        let frames: Vec<Vec<u8>> =
            (0..200).map(|i| frame(format!("{{\"id\":{i}}}").as_bytes())).collect();
        let mut a = RequestFaultInjector::new(RequestFaultPlan::full(7, 0.5));
        let mut b = RequestFaultInjector::new(RequestFaultPlan::full(7, 0.5));
        for f in &frames {
            assert_eq!(a.decide(f), b.decide(f));
        }
        assert!(!a.injected().is_empty());
    }

    #[test]
    fn rate_zero_never_corrupts_rate_one_always_does() {
        let f = frame(b"{\"id\":1}");
        let mut never = RequestFaultInjector::new(RequestFaultPlan::full(3, 0.0));
        let mut always = RequestFaultInjector::new(RequestFaultPlan::full(3, 1.0));
        for _ in 0..50 {
            assert_eq!(never.decide(&f), WireDecision::Clean);
            assert!(matches!(always.decide(&f), WireDecision::Corrupt { .. }));
        }
        assert_eq!(always.injected().len(), 50);
    }

    #[test]
    fn corruptions_are_structurally_what_they_claim() {
        let f = frame(b"{\"id\":1,\"tables\":[]}");
        let mut inj = RequestFaultInjector::new(RequestFaultPlan::full(11, 1.0));
        for _ in 0..200 {
            match inj.decide(&f) {
                WireDecision::Clean => unreachable!("rate 1.0"),
                WireDecision::Corrupt { kind, bytes } => match kind {
                    WireFaultKind::TruncatedFrame | WireFaultKind::MidFrameDisconnect => {
                        assert!(bytes.len() < f.len());
                        assert!(bytes.len() >= 4);
                        assert_eq!(&bytes[..], &f[..bytes.len()]);
                    }
                    WireFaultKind::OversizedLength => {
                        assert_eq!(bytes.len(), f.len());
                        let declared = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                        assert!(declared >= 1 << 30);
                    }
                    WireFaultKind::GarbageBytes => {
                        assert_eq!(bytes.len(), f.len());
                        assert_eq!(&bytes[..4], &f[..4]);
                    }
                },
            }
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let f = frame(b"{\"id\":1}");
        let mut a = RequestFaultInjector::new(RequestFaultPlan::full(1, 0.5));
        let mut b = RequestFaultInjector::new(RequestFaultPlan::full(2, 0.5));
        let decisions_a: Vec<_> = (0..100).map(|_| a.decide(&f)).collect();
        let decisions_b: Vec<_> = (0..100).map(|_| b.decide(&f)).collect();
        assert_ne!(decisions_a, decisions_b);
    }
}
