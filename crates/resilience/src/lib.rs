//! Seeded fault injection for chaos-testing the tabmeta data path.
//!
//! Real corpora arrive damaged: truncated export jobs, mojibake from
//! encoding round-trips, HTML debris pasted into JSONL feeds, CSVs with
//! mixed delimiters, numeric overflow, duplicated header rows, blank
//! tables. A [`FaultPlan`] describes *which* damage and *how much*; a
//! [`FaultInjector`] applies it **deterministically** (same plan → byte-
//! identical corruption), so a failing chaos seed reproduces exactly.
//!
//! Faults split into two classes, and the returned [`FaultLog`] records
//! which was applied where:
//!
//! * **Lethal** faults break the record's encoding (invalid UTF-8,
//!   unparseable JSON). Lossy ingestion must quarantine *exactly* these —
//!   the chaos suite asserts `quarantined == log.lethal()`.
//! * **Benign** faults keep the record well-formed but semantically
//!   degenerate (blank tables, extreme numerics, duplicated headers).
//!   Ingestion must accept them and classification must survive them.

#![forbid(unsafe_code)]
// The data path must be panic-free on input-derived values: unwrap/
// expect are denied outside tests (promoted from warn by the clippy
// `-D warnings` gate in scripts/check.sh).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tabmeta_tabular::{Cell, LevelLabel, Table};

pub mod crash;
pub mod disk;
pub mod shard;
pub mod wire;

pub use crash::{run_crash_recovery, CheckpointCorruption, CrashOutcome, CrashPlan};
pub use disk::{DiskFaultKind, DiskFaultPlan, FaultyDisk};
pub use shard::{
    enumerate_boundaries, run_disk_fault_drills, run_shard_chaos, FaultDrillOutcome,
    ShardChaosOutcome,
};
pub use wire::{RequestFaultInjector, RequestFaultPlan, WireDecision, WireFaultKind};

/// One kind of injectable damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Cut a record off mid-byte-stream (a killed export job). Lethal:
    /// every proper prefix of a one-line JSON object is invalid JSON.
    TruncateRecord,
    /// Splice raw `0xFF`/`0xFE` bytes into the record (encoding damage).
    /// Lethal: the line stops being UTF-8.
    Mojibake,
    /// Strip the closing brace (a writer that died between flushes).
    /// Lethal: unbalanced JSON.
    UnbalancedJson,
    /// Replace the record with an unclosed `<tr><th>` HTML fragment (a
    /// scraper that wrote markup into the JSONL feed). Lethal.
    HtmlDebris,
    /// Rewrite data cells with overflow-scale numerics (`1e308`, 39-digit
    /// integers). Benign: valid JSON, hostile arithmetic.
    ExtremeNumerics,
    /// Blank every cell. Benign: valid JSON, zero signal — must degrade,
    /// not crash.
    BlankTable,
    /// Duplicate the first row (copy-paste export bug). Benign.
    DuplicateHeader,
    /// Swap CSV commas for semicolons/tabs mid-file. CSV surface only.
    MixedDelimiters,
    /// Drop a closing tag from an HTML-lite document. HTML surface only.
    UnclosedTag,
}

impl FaultKind {
    /// The kinds applicable to a JSONL stream, lethal and benign.
    pub const JSONL: [FaultKind; 7] = [
        FaultKind::TruncateRecord,
        FaultKind::Mojibake,
        FaultKind::UnbalancedJson,
        FaultKind::HtmlDebris,
        FaultKind::ExtremeNumerics,
        FaultKind::BlankTable,
        FaultKind::DuplicateHeader,
    ];

    /// Whether this fault makes the record unparseable (must be
    /// quarantined) rather than degenerate-but-valid (must be accepted).
    pub fn is_lethal(self) -> bool {
        matches!(
            self,
            FaultKind::TruncateRecord
                | FaultKind::Mojibake
                | FaultKind::UnbalancedJson
                | FaultKind::HtmlDebris
        )
    }

    /// Stable lowercase token for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TruncateRecord => "truncate_record",
            FaultKind::Mojibake => "mojibake",
            FaultKind::UnbalancedJson => "unbalanced_json",
            FaultKind::HtmlDebris => "html_debris",
            FaultKind::ExtremeNumerics => "extreme_numerics",
            FaultKind::BlankTable => "blank_table",
            FaultKind::DuplicateHeader => "duplicate_header",
            FaultKind::MixedDelimiters => "mixed_delimiters",
            FaultKind::UnclosedTag => "unclosed_tag",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A deterministic corruption recipe: which faults, how often, which seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed — the whole corruption is a pure function of this.
    pub seed: u64,
    /// Per-record corruption probability in `[0, 1]`.
    pub rate: f64,
    /// The fault kinds to draw from (uniformly).
    pub kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// The full JSONL fault mix at `rate`.
    pub fn jsonl(seed: u64, rate: f64) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0), kinds: FaultKind::JSONL.to_vec() }
    }

    /// A plan restricted to the given kinds.
    pub fn with_kinds(seed: u64, rate: f64, kinds: &[FaultKind]) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0), kinds: kinds.to_vec() }
    }
}

/// One applied fault: which record (0-based, counting non-blank lines —
/// i.e. the table's position in write order) and what was done to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// 0-based record index in the clean stream.
    pub index: usize,
    /// The damage applied.
    pub kind: FaultKind,
}

/// What a corruption pass actually did — the ground truth the chaos suite
/// checks quarantine accounting against.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultLog {
    /// Applied faults in record order.
    pub records: Vec<FaultRecord>,
    /// Total records seen (corrupted or not).
    pub total: usize,
}

impl FaultLog {
    /// Number of lethally corrupted records (these must be quarantined).
    pub fn lethal(&self) -> usize {
        self.records.iter().filter(|r| r.kind.is_lethal()).count()
    }

    /// Number of benignly corrupted records (these must be accepted).
    pub fn benign(&self) -> usize {
        self.records.len() - self.lethal()
    }

    /// Whether record `index` was touched at all.
    pub fn touched(&self, index: usize) -> bool {
        self.records.iter().any(|r| r.index == index)
    }

    /// The fault applied to record `index`, if any.
    pub fn fault_at(&self, index: usize) -> Option<FaultKind> {
        self.records.iter().find(|r| r.index == index).map(|r| r.kind)
    }
}

/// Applies a [`FaultPlan`] to corpus surfaces.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultInjector {
    /// New injector; all randomness derives from the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        Self { plan, rng }
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Corrupt a JSONL stream record-by-record. Blank lines pass through
    /// untouched and are not counted (the reader does not count them as
    /// records either, which keeps `FaultLog::total` aligned with
    /// `QuarantineReport::total`).
    pub fn corrupt_jsonl(&mut self, clean: &[u8]) -> (Vec<u8>, FaultLog) {
        let mut out = Vec::with_capacity(clean.len());
        let mut log = FaultLog::default();
        for line in split_inclusive_newlines(clean) {
            let body_len = trimmed_len(line);
            if body_len == 0 {
                out.extend_from_slice(line);
                continue;
            }
            let index = log.total;
            log.total += 1;
            if self.plan.kinds.is_empty() || !self.rng.random_bool(self.plan.rate) {
                out.extend_from_slice(line);
                continue;
            }
            let kind = self.plan.kinds[self.rng.random_range(0..self.plan.kinds.len())];
            if self.apply_jsonl_fault(kind, &line[..body_len], &mut out) {
                out.push(b'\n');
                log.records.push(FaultRecord { index, kind });
            } else {
                // Fault not applicable to this record (e.g. it no longer
                // parses as a table) — pass it through unchanged.
                out.extend_from_slice(line);
            }
        }
        (out, log)
    }

    /// Apply one fault to a record body (no trailing newline). Returns
    /// false when the fault could not be applied.
    fn apply_jsonl_fault(&mut self, kind: FaultKind, body: &[u8], out: &mut Vec<u8>) -> bool {
        match kind {
            FaultKind::TruncateRecord => {
                if body.len() < 2 {
                    return false;
                }
                // A proper prefix (≥ 1 byte, < full length) of a one-line
                // JSON object is never valid JSON.
                let keep = self.rng.random_range(1..body.len());
                out.extend_from_slice(&body[..keep]);
                true
            }
            FaultKind::Mojibake => {
                let at = self.rng.random_range(0..=body.len());
                out.extend_from_slice(&body[..at]);
                out.extend_from_slice(&[0xFF, 0xFE]);
                out.extend_from_slice(&body[at..]);
                true
            }
            FaultKind::UnbalancedJson => {
                let Some(stripped) = body.strip_suffix(b"}") else { return false };
                out.extend_from_slice(stripped);
                true
            }
            FaultKind::HtmlDebris => {
                out.extend_from_slice(b"<table><tr><th>Region</th><td>Total<tr><td>");
                true
            }
            FaultKind::ExtremeNumerics => self.mutate_table(body, out, |table, rng| {
                let extremes =
                    ["1e308", "-1e308", "99999999999999999999999999999999999999", "2e-308"];
                for r in 0..table.n_rows() {
                    for c in 0..table.n_cols() {
                        let cell = table.cell_mut(r, c);
                        if cell.text.chars().any(|ch| ch.is_ascii_digit()) && rng.random_bool(0.6) {
                            cell.text = extremes[rng.random_range(0..extremes.len())].to_string();
                        }
                    }
                }
            }),
            FaultKind::BlankTable => self.mutate_table(body, out, |table, _| {
                for r in 0..table.n_rows() {
                    for c in 0..table.n_cols() {
                        table.cell_mut(r, c).text.clear();
                    }
                }
            }),
            FaultKind::DuplicateHeader => self.mutate_table(body, out, |table, _| {
                let mut cells: Vec<Vec<Cell>> =
                    (0..table.n_rows()).map(|r| table.row(r).to_vec()).collect();
                cells.insert(1, cells[0].clone());
                let mut truth = table.truth.clone();
                if let Some(t) = &mut truth {
                    // The copy is a spurious repeat, not more metadata.
                    t.rows.insert(1, LevelLabel::Data);
                }
                let mut rebuilt = Table::new(table.id, table.caption.clone(), cells)
                    .with_markup_flag(table.has_markup);
                if let Some(t) = truth {
                    rebuilt = rebuilt.with_truth(t);
                }
                *table = rebuilt;
            }),
            FaultKind::MixedDelimiters | FaultKind::UnclosedTag => false,
        }
    }

    /// Parse → mutate → re-serialize a table record. The mutation must
    /// keep the grid rectangular and non-empty.
    fn mutate_table(
        &mut self,
        body: &[u8],
        out: &mut Vec<u8>,
        f: impl FnOnce(&mut Table, &mut StdRng),
    ) -> bool {
        let Ok(text) = std::str::from_utf8(body) else { return false };
        let Ok(mut table) = serde_json::from_str::<Table>(text) else { return false };
        f(&mut table, &mut self.rng);
        let Ok(json) = serde_json::to_string(&table) else { return false };
        out.extend_from_slice(json.as_bytes());
        true
    }

    /// Corrupt a CSV document with mixed delimiters and/or truncation.
    /// Returns the corrupted text and the fault applied, if any.
    pub fn corrupt_csv(&mut self, text: &str) -> (String, Option<FaultKind>) {
        if !self.rng.random_bool(self.plan.rate) || text.is_empty() {
            return (text.to_string(), None);
        }
        if self.rng.random_bool(0.5) {
            let delim = if self.rng.random_bool(0.5) { ';' } else { '\t' };
            let corrupted: String = text
                .chars()
                .map(|c| if c == ',' && self.rng.random_bool(0.5) { delim } else { c })
                .collect();
            (corrupted, Some(FaultKind::MixedDelimiters))
        } else {
            let keep = self.rng.random_range(1..=text.len().max(2) - 1);
            let mut end = keep.min(text.len());
            while end > 0 && !text.is_char_boundary(end) {
                end -= 1;
            }
            (text[..end].to_string(), Some(FaultKind::TruncateRecord))
        }
    }

    /// Corrupt an HTML-lite document by dropping one closing tag.
    /// Returns the corrupted text and the fault applied, if any.
    pub fn corrupt_htmlite(&mut self, html: &str) -> (String, Option<FaultKind>) {
        if !self.rng.random_bool(self.plan.rate) {
            return (html.to_string(), None);
        }
        let closers = ["</tr>", "</th>", "</td>", "</thead>", "</table>"];
        let positions: Vec<(usize, &str)> =
            closers.iter().flat_map(|c| html.match_indices(c).map(move |(i, _)| (i, *c))).collect();
        if positions.is_empty() {
            return (html.to_string(), None);
        }
        let (at, tag) = positions[self.rng.random_range(0..positions.len())];
        let mut out = String::with_capacity(html.len());
        out.push_str(&html[..at]);
        out.push_str(&html[at + tag.len()..]);
        (out, Some(FaultKind::UnclosedTag))
    }
}

/// Split a byte stream into lines, each including its trailing `\n` when
/// present (like `split_inclusive`, spelled out for clarity on bytes).
fn split_inclusive_newlines(bytes: &[u8]) -> impl Iterator<Item = &[u8]> {
    bytes.split_inclusive(|b| *b == b'\n')
}

/// Length of a line body excluding trailing `\r\n`, and treating
/// whitespace-only bodies as length zero (blank lines are not records).
fn trimmed_len(line: &[u8]) -> usize {
    let mut end = line.len();
    while end > 0 && (line[end - 1] == b'\n' || line[end - 1] == b'\r') {
        end -= 1;
    }
    if line[..end].iter().all(|b| b.is_ascii_whitespace()) {
        0
    } else {
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabmeta_tabular::Corpus;

    fn corpus(n: usize) -> Corpus {
        let mut c = Corpus::new("chaos");
        for id in 0..n as u64 {
            c.tables.push(Table::from_strings(
                id,
                &[&["name", "count"], &["alpha", "14,373"], &["beta", "9,201"]],
            ));
        }
        c
    }

    fn jsonl(c: &Corpus) -> Vec<u8> {
        let mut buf = Vec::new();
        c.write_jsonl(&mut buf).unwrap();
        buf
    }

    #[test]
    fn same_seed_same_corruption() {
        let clean = jsonl(&corpus(40));
        let (a, la) = FaultInjector::new(FaultPlan::jsonl(7, 0.3)).corrupt_jsonl(&clean);
        let (b, lb) = FaultInjector::new(FaultPlan::jsonl(7, 0.3)).corrupt_jsonl(&clean);
        assert_eq!(a, b, "corruption is a pure function of the plan");
        assert_eq!(la, lb);
        let (c, _) = FaultInjector::new(FaultPlan::jsonl(8, 0.3)).corrupt_jsonl(&clean);
        assert_ne!(a, c, "different seed, different corruption");
    }

    #[test]
    fn zero_rate_is_identity() {
        let clean = jsonl(&corpus(10));
        let (out, log) = FaultInjector::new(FaultPlan::jsonl(1, 0.0)).corrupt_jsonl(&clean);
        assert_eq!(out, clean);
        assert!(log.records.is_empty());
        assert_eq!(log.total, 10);
    }

    #[test]
    fn lethal_faults_break_parsing_and_benign_faults_do_not() {
        let clean = jsonl(&corpus(60));
        for kind in FaultKind::JSONL {
            let plan = FaultPlan::with_kinds(11, 1.0, &[kind]);
            let (out, log) = FaultInjector::new(plan).corrupt_jsonl(&clean);
            assert_eq!(log.records.len(), 60, "{kind}: rate 1.0 touches every record");
            let (got, report) = Corpus::read_jsonl_lossy("x", out.as_slice()).unwrap();
            assert!(report.conservation_holds(), "{kind}");
            assert_eq!(report.total, 60, "{kind}");
            if kind.is_lethal() {
                assert_eq!(report.quarantined(), 60, "{kind} must always kill the record");
                assert!(got.is_empty(), "{kind}");
            } else {
                assert_eq!(report.quarantined(), 0, "{kind} must never kill the record");
                assert_eq!(got.len(), 60, "{kind}");
            }
        }
    }

    #[test]
    fn log_indices_point_at_the_right_records() {
        let clean = jsonl(&corpus(30));
        let plan = FaultPlan::with_kinds(3, 0.4, &[FaultKind::BlankTable]);
        let (out, log) = FaultInjector::new(plan).corrupt_jsonl(&clean);
        assert!(!log.records.is_empty());
        let (got, _) = Corpus::read_jsonl_lossy("x", out.as_slice()).unwrap();
        assert_eq!(got.len(), 30, "blanking is benign");
        for r in &log.records {
            let t = &got.tables[r.index];
            let all_blank = (0..t.n_rows())
                .all(|row| (0..t.n_cols()).all(|col| t.cell(row, col).text.is_empty()));
            assert!(all_blank, "record {} was logged blank", r.index);
        }
        for (i, t) in got.tables.iter().enumerate() {
            if !log.touched(i) {
                assert_eq!(t.cell(0, 0).text, "name", "untouched record {i} is intact");
            }
        }
    }

    #[test]
    fn duplicate_header_keeps_truth_aligned() {
        let mut c = corpus(5);
        for t in &mut c.tables {
            let rows = vec![
                tabmeta_tabular::LevelLabel::Hmd(1),
                tabmeta_tabular::LevelLabel::Data,
                tabmeta_tabular::LevelLabel::Data,
            ];
            let columns =
                vec![tabmeta_tabular::LevelLabel::Vmd(1), tabmeta_tabular::LevelLabel::Data];
            *t = t.clone().with_truth(tabmeta_tabular::table::GroundTruth { rows, columns });
        }
        let clean = jsonl(&c);
        let plan = FaultPlan::with_kinds(5, 1.0, &[FaultKind::DuplicateHeader]);
        let (out, _) = FaultInjector::new(plan).corrupt_jsonl(&clean);
        let (got, report) = Corpus::read_jsonl_lossy("x", out.as_slice()).unwrap();
        assert!(report.is_clean(), "duplicated header with extended truth stays valid");
        assert_eq!(got.tables[0].n_rows(), 4);
    }

    #[test]
    fn csv_and_htmlite_surfaces_apply_faults() {
        let mut inj = FaultInjector::new(FaultPlan::jsonl(9, 1.0));
        let (csv, kind) = inj.corrupt_csv("a,b\n1,2\n");
        assert!(kind.is_some());
        assert_ne!(csv, "a,b\n1,2\n");
        let html = "<table><tr><th>x</th></tr><tr><td>1</td></tr></table>";
        let (out, kind) = inj.corrupt_htmlite(html);
        assert_eq!(kind, Some(FaultKind::UnclosedTag));
        assert!(out.len() < html.len());
    }
}
