//! Property tests over the corpus generators: structural invariants that
//! must hold for every profile, every seed, every size.

use proptest::prelude::*;
use tabmeta_corpora::{CorpusKind, GeneratorConfig, SourceStyle};
use tabmeta_tabular::{Axis, LevelLabel};

fn any_kind() -> impl Strategy<Value = CorpusKind> {
    prop::sample::select(CorpusKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated table: rectangular, truth-carrying, HMD a leading
    /// consecutive run, VMD a leading consecutive column run, CMD only in
    /// the body.
    #[test]
    fn structural_invariants(kind in any_kind(), seed in 0u64..1000, n in 5usize..40) {
        let corpus = kind.generate(&GeneratorConfig { n_tables: n, seed });
        prop_assert_eq!(corpus.len(), n);
        for t in &corpus.tables {
            let truth = t.truth.as_ref().expect("truth attached");
            prop_assert_eq!(truth.rows.len(), t.n_rows());
            prop_assert_eq!(truth.columns.len(), t.n_cols());

            // HMD rows are exactly rows 0..depth with consecutive levels.
            let depth = truth.hmd_depth() as usize;
            prop_assert!(depth >= 1);
            for (i, l) in truth.rows.iter().enumerate() {
                match l {
                    LevelLabel::Hmd(k) => {
                        prop_assert_eq!(*k as usize, i + 1);
                        prop_assert!(i < depth);
                    }
                    LevelLabel::Cmd => prop_assert!(i >= depth, "CMD in header block"),
                    _ => prop_assert!(i >= depth, "data row inside header block"),
                }
            }
            // VMD columns are exactly columns 0..vdepth.
            let vdepth = truth.vmd_depth() as usize;
            for (j, l) in truth.columns.iter().enumerate() {
                match l {
                    LevelLabel::Vmd(k) => {
                        prop_assert_eq!(*k as usize, j + 1);
                        prop_assert!(j < vdepth);
                    }
                    _ => prop_assert!(j >= vdepth),
                }
            }
            // The deepest header row is fully populated over data columns.
            for c in vdepth..t.n_cols() {
                prop_assert!(!t.cell(depth - 1, c).is_blank());
            }
            // Data rows are fully populated over data columns.
            for (i, l) in truth.rows.iter().enumerate() {
                if *l == LevelLabel::Data {
                    for c in vdepth..t.n_cols() {
                        prop_assert!(
                            !t.cell(i, c).is_blank(),
                            "blank data cell at ({i},{c})"
                        );
                    }
                }
            }
        }
    }

    /// Depth caps respect the paper: HMD ≤ 5, VMD ≤ 3.
    #[test]
    fn depth_caps(kind in any_kind(), seed in 0u64..500) {
        let corpus = kind.generate(&GeneratorConfig { n_tables: 30, seed });
        for t in &corpus.tables {
            let truth = t.truth.as_ref().unwrap();
            prop_assert!(truth.hmd_depth() <= 5);
            prop_assert!(truth.vmd_depth() <= 3);
        }
    }

    /// Source styles are pure functions of (profile, index).
    #[test]
    fn source_styles_are_deterministic(kind in any_kind(), idx in 0usize..64) {
        let p = kind.profile();
        prop_assert_eq!(SourceStyle::for_source(&p, idx), SourceStyle::for_source(&p, idx));
    }

    /// Deepest VMD column is value-dense over plain data rows even under
    /// placeholder styles (placeholders never land in the deepest VMD
    /// column — it carries a value per row by construction).
    #[test]
    fn deepest_vmd_column_is_dense(seed in 0u64..200) {
        let corpus = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 25, seed });
        for t in &corpus.tables {
            let truth = t.truth.as_ref().unwrap();
            let vdepth = truth.vmd_depth() as usize;
            if vdepth == 0 {
                continue;
            }
            for (i, l) in truth.rows.iter().enumerate() {
                if *l == LevelLabel::Data {
                    prop_assert!(
                        !t.cell(i, vdepth - 1).is_blank(),
                        "table {} row {i}",
                        t.id
                    );
                }
            }
            let _ = Axis::Column; // axis helpers exercised elsewhere
        }
    }
}

#[test]
fn contiguous_source_blocks_hold_out_unseen_styles() {
    // generate() assigns sources in contiguous blocks, so a positional
    // 70/30 split separates source sets entirely.
    let kind = CorpusKind::Saus;
    let profile = kind.profile();
    let n = 300usize;
    let corpus = kind.generate(&GeneratorConfig { n_tables: n, seed: 5 });
    let source_of = |id: u64| (id as usize * profile.n_sources) / n;
    let cut = n * 7 / 10;
    let train_sources: std::collections::HashSet<usize> =
        corpus.tables[..cut].iter().map(|t| source_of(t.id)).collect();
    let test_sources: std::collections::HashSet<usize> =
        corpus.tables[cut..].iter().map(|t| source_of(t.id)).collect();
    let overlap: Vec<_> = train_sources.intersection(&test_sources).collect();
    assert!(overlap.len() <= 1, "at most the boundary source may straddle the split: {overlap:?}");
    assert!(test_sources.len() >= 2, "test must cover multiple sources");
}
