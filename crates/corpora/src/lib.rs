//! Synthetic stand-ins for the paper's six evaluation corpora.
//!
//! The originals (CORD-19, CKG, CIUS, SAUS, WDC, PubTables-1M) range from
//! ~1K to 100M tables and are gated behind proprietary extraction
//! pipelines; per DESIGN.md §2 we substitute seeded generators that
//! reproduce the three properties the method actually consumes:
//!
//! 1. **Hierarchical structure** — per-corpus distributions over HMD depth
//!    (1–5), VMD depth (0–3) and CMD occurrence, matching each corpus's
//!    description in §IV-B (e.g. only CKG exhibits HMD level 5; WDC is
//!    dominated by flat relational tables).
//! 2. **Imperfect markup** — a fraction of tables carry HTML-lite markup
//!    with configurable tag noise; SAUS and CIUS carry none at all, forcing
//!    the bootstrap fallback, exactly as in §III-B.
//! 3. **Heterogeneous vocabulary** — each corpus draws from its own domain
//!    vocabulary (biomedical, crime, census, web/products), with per-table
//!    naming-convention variation standing in for "thousands of sources".
//!
//! Everything is deterministic given the seed.

#![forbid(unsafe_code)]

pub mod builder;
pub mod profiles;
pub mod vocab;

pub use builder::{SourceStyle, TableBuilder};
pub use profiles::{CorpusKind, CorpusProfile};
pub use vocab::{Domain, DomainVocab};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tabmeta_tabular::Corpus;

/// How much corpus to generate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of tables to generate.
    pub n_tables: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Small corpus (fast tests / examples): 150 tables.
    pub fn small(seed: u64) -> Self {
        Self { n_tables: 150, seed }
    }

    /// Medium corpus (experiment defaults): 600 tables.
    pub fn medium(seed: u64) -> Self {
        Self { n_tables: 600, seed }
    }

    /// Large corpus (scaling benches): 3000 tables.
    pub fn large(seed: u64) -> Self {
        Self { n_tables: 3000, seed }
    }
}

impl CorpusKind {
    /// Generate a corpus of this kind.
    pub fn generate(self, config: &GeneratorConfig) -> Corpus {
        let profile = self.profile();
        let mut rng = StdRng::seed_from_u64(config.seed ^ self.seed_salt());
        let mut corpus = Corpus::new(self.name());
        let n_sources = profile.n_sources.max(1);
        let mut builder = TableBuilder::new(profile);
        corpus.tables.reserve(config.n_tables);
        for id in 0..config.n_tables as u64 {
            // Contiguous source blocks: a positional 70/30 split holds out
            // entire sources, testing cross-source generalization.
            let source = (id as usize * n_sources) / config.n_tables.max(1);
            corpus.tables.push(builder.build_for_source(id, source, &mut rng));
        }
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabmeta_tabular::LevelLabel;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::small(5);
        let a = CorpusKind::Ckg.generate(&cfg);
        let b = CorpusKind::Ckg.generate(&cfg);
        assert_eq!(a.tables.len(), b.tables.len());
        assert_eq!(a.tables[0], b.tables[0]);
        assert_eq!(a.tables[a.len() - 1], b.tables[b.len() - 1]);
    }

    #[test]
    fn different_kinds_differ() {
        let cfg = GeneratorConfig::small(5);
        let ckg = CorpusKind::Ckg.generate(&cfg);
        let wdc = CorpusKind::Wdc.generate(&cfg);
        assert_ne!(ckg.tables[0], wdc.tables[0]);
    }

    #[test]
    fn every_table_has_truth_and_valid_shape() {
        for kind in CorpusKind::ALL {
            let corpus = kind.generate(&GeneratorConfig { n_tables: 40, seed: 9 });
            assert_eq!(corpus.len(), 40, "{kind:?}");
            for t in &corpus.tables {
                let truth = t.truth.as_ref().expect("generated tables carry truth");
                assert_eq!(truth.rows.len(), t.n_rows());
                assert_eq!(truth.columns.len(), t.n_cols());
                assert!(truth.hmd_depth() >= 1, "{kind:?} table {} lacks HMD", t.id);
                // HMD rows must be the leading rows in order.
                for (i, label) in truth.rows.iter().enumerate() {
                    if let LevelLabel::Hmd(k) = label {
                        assert_eq!(*k as usize, i + 1, "HMD levels must be consecutive from row 0");
                    }
                }
            }
        }
    }

    #[test]
    fn depth_distributions_match_profiles() {
        // CKG must exhibit level-5 HMD and level-3 VMD; WDC must not go
        // beyond level 1 HMD (per §IV-B it was excluded from deep-level
        // experiments for sparsity).
        let ckg = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 400, seed: 3 });
        let stats = ckg.stats();
        assert!(stats.hmd_at_least(5) > 0, "CKG should contain HMD level 5");
        assert!(stats.vmd_at_least(3) > 0, "CKG should contain VMD level 3");

        let wdc = CorpusKind::Wdc.generate(&GeneratorConfig { n_tables: 200, seed: 3 });
        let wstats = wdc.stats();
        assert_eq!(wstats.hmd_at_least(2), 0, "WDC is flat-relational dominated");
    }

    #[test]
    fn saus_and_cius_carry_no_markup() {
        for kind in [CorpusKind::Saus, CorpusKind::Cius] {
            let corpus = kind.generate(&GeneratorConfig { n_tables: 30, seed: 1 });
            assert!(corpus.tables.iter().all(|t| !t.has_markup), "{kind:?} must lack markup");
        }
        let ckg = CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: 60, seed: 1 });
        assert!(ckg.tables.iter().any(|t| t.has_markup), "CKG should have markup");
        assert!(ckg.tables.iter().any(|t| !t.has_markup), "CKG markup is partial");
    }
}
