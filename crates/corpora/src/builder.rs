//! Single-table construction from a [`CorpusProfile`].
//!
//! The generator reproduces the anatomy of Figure 1's tables: a block of
//! hierarchical HMD rows on top (spanning parents with blank continuation
//! cells, per-column attributes at the deepest level), nested VMD columns
//! on the left (values at group starts, blanks below — the "New York"
//! pattern of Fig. 1(a)), an optional CMD section row mid-body, and a
//! numeric-dominated data region. Ground truth is attached to every table;
//! markup is attached probabilistically with tag noise.
// Grid construction walks coordinates; index loops are the clear form here.
#![allow(clippy::needless_range_loop)]

use crate::profiles::CorpusProfile;
use crate::vocab::DomainVocab;
use rand::Rng;
use tabmeta_tabular::cell::{Cell, Markup};
use tabmeta_tabular::table::{GroundTruth, Table};
use tabmeta_tabular::LevelLabel;

/// Builds tables for one corpus profile.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    profile: CorpusProfile,
    vocab: DomainVocab,
}

/// Draw an index from unnormalized weights.
fn weighted_index<R: Rng + ?Sized>(weights: &[f32], rng: &mut R) -> usize {
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index: all weights zero");
    let mut x = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Pick a random element of a non-empty slice.
fn pick<'a, T, R: Rng + ?Sized>(pool: &'a [T], rng: &mut R) -> &'a T {
    &pool[rng.random_range(0..pool.len())]
}

/// Format an integer with thousands separators (`14,373`).
fn group_thousands(mut n: u64) -> String {
    let mut parts = Vec::new();
    loop {
        parts.push(n % 1000);
        n /= 1000;
        if n == 0 {
            break;
        }
    }
    let mut out = parts.pop().map(|p| p.to_string()).unwrap_or_default();
    while let Some(p) = parts.pop() {
        out.push_str(&format!(",{p:03}"));
    }
    out
}

/// Structural conventions of one *source* within a corpus (§I: schemas
/// and formatting vary across the thousands of sources a large corpus is
/// composed from). Styles are a pure function of (profile, source index),
/// so corpora are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceStyle {
    /// Placeholder written into structural blanks ("" = leave blank).
    pub placeholder: &'static str,
    /// Whether hierarchical VMD parents repeat on every row of their
    /// group instead of appearing only at the group start.
    pub repeat_parent: bool,
}

impl SourceStyle {
    /// Derive the style of source `index` under `profile`.
    pub fn for_source(profile: &CorpusProfile, index: usize) -> SourceStyle {
        let h = (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let draw = |shift: u32| ((h >> shift) % 10_000) as f32 / 10_000.0;
        let placeholder = if draw(8) < profile.placeholder_source_frac {
            ["-", "n/a", "."][(h % 3) as usize]
        } else {
            ""
        };
        let repeat_parent = draw(24) < profile.repeat_parent_frac;
        SourceStyle { placeholder, repeat_parent }
    }
}

impl TableBuilder {
    /// New builder for a profile (vocabulary is materialized once).
    pub fn new(profile: CorpusProfile) -> Self {
        let vocab = profile.domain.vocab();
        Self { profile, vocab }
    }

    /// The profile being generated.
    pub fn profile(&self) -> &CorpusProfile {
        &self.profile
    }

    /// Generate one numeric data-cell surface form.
    fn numeric_cell<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        match weighted_index(&[0.3, 0.25, 0.2, 0.15, 0.1], rng) {
            0 => group_thousands(rng.random_range(100..400_000u64)),
            1 => rng.random_range(0..100u32).to_string(),
            2 => format!("{:.1}%", rng.random_range(0.0..100.0f32)),
            3 => format!("{:.1}", rng.random_range(0.0..400.0f32)),
            _ => {
                let lo = rng.random_range(1..40u32);
                let hi = lo + rng.random_range(1..30u32);
                if rng.random::<bool>() {
                    format!("{lo}-{hi}")
                } else {
                    format!("{lo} to {hi}")
                }
            }
        }
    }

    /// One data cell: numeric with `numeric_frac`, else a textual value.
    fn data_cell<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        if rng.random::<f32>() < self.profile.numeric_frac {
            self.numeric_cell(rng)
        } else {
            pick(&self.vocab.values, rng).clone()
        }
    }

    /// A header cell at HMD level `k` (1-based), possibly replaced by an
    /// ambiguous token per `level_noise`.
    fn header_cell<R: Rng + ?Sized>(&self, level: usize, rng: &mut R) -> String {
        let noise = self.profile.level_noise[level - 1];
        if rng.random::<f32>() < noise {
            // Ambiguous: numeric or value-pool token — the cells that trip
            // up every classifier at deep levels (§IV-H error analysis).
            if rng.random::<bool>() {
                self.numeric_cell(rng)
            } else {
                pick(&self.vocab.values, rng).clone()
            }
        } else {
            pick(&self.vocab.hmd_pools[level - 1], rng).clone()
        }
    }

    /// Build one table, deriving the source round-robin from the id.
    pub fn build<R: Rng + ?Sized>(&mut self, id: u64, rng: &mut R) -> Table {
        let source = (id as usize) % self.profile.n_sources.max(1);
        self.build_for_source(id, source, rng)
    }

    /// Build one table belonging to source `source` (styles its
    /// structural conventions; see [`SourceStyle`]).
    pub fn build_for_source<R: Rng + ?Sized>(
        &mut self,
        id: u64,
        source: usize,
        rng: &mut R,
    ) -> Table {
        let p = &self.profile;
        let style = SourceStyle::for_source(p, source);
        let hmd_depth = weighted_index(&p.hmd_depth_weights, rng) + 1;
        let vmd_depth = weighted_index(&p.vmd_depth_weights, rng);
        let n_data_rows = rng.random_range(p.data_rows.0..=p.data_rows.1);
        let n_data_cols = rng.random_range(p.data_cols.0..=p.data_cols.1);
        let has_cmd = rng.random::<f32>() < p.cmd_prob && n_data_rows >= 6;

        let n_cols = vmd_depth + n_data_cols;
        let n_rows = hmd_depth + n_data_rows + usize::from(has_cmd);
        let cmd_row = has_cmd.then(|| hmd_depth + n_data_rows / 2);

        let mut grid: Vec<Vec<Cell>> = vec![vec![Cell::blank(); n_cols]; n_rows];
        let mut row_labels: Vec<LevelLabel> = Vec::with_capacity(n_rows);
        let mut col_labels: Vec<LevelLabel> = Vec::with_capacity(n_cols);

        // --- HMD rows -----------------------------------------------------
        for level in 1..=hmd_depth {
            let row = level - 1;
            if level < hmd_depth {
                // Spanning parent level: a few group titles, blanks within
                // each span (the "Gender" over "Female/Male" pattern).
                let n_groups = rng.random_range(1..=3.min(n_data_cols));
                let span = n_data_cols.div_ceil(n_groups);
                for g in 0..n_groups {
                    let col = vmd_depth + g * span;
                    if col < n_cols {
                        grid[row][col] = Cell::text(self.header_cell(level, rng));
                    }
                }
            } else {
                // Deepest level: one attribute per data column.
                for c in 0..n_data_cols {
                    grid[row][vmd_depth + c] = Cell::text(self.header_cell(level, rng));
                }
                // Corner: the deepest header row sometimes titles the VMD
                // block ("Age categories" in Fig. 5).
                for v in 0..vmd_depth {
                    if rng.random::<f32>() < 0.3 {
                        grid[row][v] = Cell::text(pick(&self.vocab.vmd_pools[0], rng).clone());
                    }
                }
            }
            row_labels.push(LevelLabel::Hmd(level as u8));
        }

        // --- body rows (data + optional CMD) -------------------------------
        // Some data columns are fully textual entity columns — the cells
        // that make VMD detection genuinely hard for surface methods.
        let textual_col: Vec<bool> =
            (0..n_data_cols).map(|_| rng.random::<f32>() < p.textual_col_prob).collect();
        for row in hmd_depth..n_rows {
            if Some(row) == cmd_row {
                grid[row][0] = Cell::text(pick(&self.vocab.sections, rng).clone());
                row_labels.push(LevelLabel::Cmd);
                continue;
            }
            for c in 0..n_data_cols {
                grid[row][vmd_depth + c] = if textual_col[c] {
                    Cell::text(pick(&self.vocab.values, rng).clone())
                } else {
                    Cell::text(self.data_cell(rng))
                };
            }
            row_labels.push(LevelLabel::Data);
        }

        // --- VMD columns ----------------------------------------------------
        // Nested grouping over the data rows: level 1 groups split into
        // level-2 subgroups, and the deepest level carries a value per row.
        let body_rows: Vec<usize> = (hmd_depth..n_rows).filter(|r| Some(*r) != cmd_row).collect();
        if vmd_depth > 0 {
            // Each group carries the text of its hierarchy parent so child
            // values can lexically echo it (Fig. 1(a): "State University of
            // New York" under "New York"). The echo uses the parent's head
            // tokens to keep cell lengths realistic.
            let mut groups: Vec<(Vec<usize>, String)> = vec![(body_rows.clone(), String::new())];
            let echo_prob = p.vmd_hier_echo;
            for level in 1..=vmd_depth {
                let col = level - 1;
                let deepest = level == vmd_depth;
                let mut next_groups: Vec<(Vec<usize>, String)> = Vec::new();
                let noise = p.vmd_noise[level - 1];
                for (group, parent) in &groups {
                    let vmd_value = |rng: &mut R| -> String {
                        if rng.random::<f32>() < noise {
                            // Ambiguous row header: numeric-flavoured value
                            // ("12 to 15", a bare count) that reads as data.
                            return self.numeric_cell(rng);
                        }
                        let base = pick(&self.vocab.vmd_pools[level - 1], rng).clone();
                        if !parent.is_empty() && rng.random::<f32>() < echo_prob {
                            let head: Vec<&str> = parent.split_whitespace().take(2).collect();
                            format!("{base} {}", head.join(" "))
                        } else {
                            base
                        }
                    };
                    if deepest {
                        for &r in group {
                            grid[r][col] = Cell::text(vmd_value(rng));
                        }
                        next_groups.push((group.clone(), parent.clone()));
                    } else {
                        // Value at the group start (or, in repeat-parent
                        // sources, on every row); split the group for the
                        // next level.
                        let value = vmd_value(rng);
                        if style.repeat_parent {
                            for &r in group.iter() {
                                grid[r][col] = Cell::text(value.clone());
                            }
                        } else if let Some(&first) = group.first() {
                            grid[first][col] = Cell::text(value.clone());
                        }
                        let n_sub = rng.random_range(1..=3usize).min(group.len().max(1));
                        let sub_len = group.len().div_ceil(n_sub.max(1)).max(1);
                        for chunk in group.chunks(sub_len) {
                            // Sub-group starts (below the first) get their
                            // parent value run: mark starts at next level.
                            next_groups.push((chunk.to_vec(), value.clone()));
                        }
                    }
                }
                groups = next_groups;
                col_labels.push(LevelLabel::Vmd(level as u8));
            }
        }
        for _ in 0..n_data_cols {
            col_labels.push(LevelLabel::Data);
        }

        // --- source placeholder style ---------------------------------------
        // Structural blanks in the header block and the VMD region get the
        // source's placeholder string ("-", "n/a", …), never the data
        // region or CMD rows.
        if !style.placeholder.is_empty() {
            for (row, label) in row_labels.iter().enumerate() {
                match label {
                    LevelLabel::Hmd(_) => {
                        for col in vmd_depth..n_cols {
                            if grid[row][col].is_blank() {
                                grid[row][col] = Cell::text(style.placeholder);
                            }
                        }
                    }
                    LevelLabel::Data => {
                        for col in 0..vmd_depth {
                            if grid[row][col].is_blank() {
                                grid[row][col] = Cell::text(style.placeholder);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // --- markup -----------------------------------------------------------
        let has_markup = rng.random::<f32>() < p.markup_prob;
        if has_markup {
            let noise = p.markup_noise;
            for (row, label) in row_labels.iter().enumerate() {
                for col in 0..n_cols {
                    let cell = &mut grid[row][col];
                    match label {
                        LevelLabel::Hmd(_) => {
                            if rng.random::<f32>() >= noise {
                                cell.markup = Markup::header();
                            }
                        }
                        LevelLabel::Cmd => {
                            if rng.random::<f32>() >= noise {
                                cell.markup.bold = true;
                            }
                        }
                        _ => {
                            if col < vmd_depth && !cell.is_blank() {
                                if rng.random::<f32>() >= noise {
                                    cell.markup.bold = true;
                                    cell.markup.indent = col as u8;
                                }
                            } else if rng.random::<f32>() < noise * 0.3 {
                                // Stray false-positive header tag on data.
                                cell.markup.th = true;
                            }
                        }
                    }
                }
            }
        }

        let caption = if rng.random::<f32>() < 0.8 {
            pick(&self.vocab.captions, rng).clone()
        } else {
            String::new()
        };

        Table::new(id, caption, grid)
            .with_truth(GroundTruth { rows: row_labels, columns: col_labels })
            .with_markup_flag(has_markup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::CorpusKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabmeta_tabular::Axis;

    fn build_one(kind: CorpusKind, seed: u64) -> Table {
        let mut b = TableBuilder::new(kind.profile());
        let mut rng = StdRng::seed_from_u64(seed);
        b.build(1, &mut rng)
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1_000), "1,000");
        assert_eq!(group_thousands(14_373), "14,373");
        assert_eq!(group_thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let i = weighted_index(&[0.0, 1.0, 0.0], &mut rng);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn built_table_has_consistent_truth() {
        for seed in 0..20 {
            let t = build_one(CorpusKind::Ckg, seed);
            let truth = t.truth.as_ref().unwrap();
            assert_eq!(truth.rows.len(), t.n_rows());
            assert_eq!(truth.columns.len(), t.n_cols());
            let d = truth.hmd_depth() as usize;
            assert!((1..=5).contains(&d));
            // The deepest HMD row has a non-blank cell for every data col.
            let vmd = truth.vmd_depth() as usize;
            for c in vmd..t.n_cols() {
                assert!(!t.cell(d - 1, c).is_blank(), "deepest header row must be full");
            }
        }
    }

    #[test]
    fn vmd_columns_have_blank_runs_above_deepest() {
        // Find a CKG table with VMD depth >= 2 and check the level-1
        // column is mostly blank (spanning parent pattern).
        let profile = CorpusKind::Ckg.profile();
        let mut b = TableBuilder::new(profile.clone());
        let mut rng = StdRng::seed_from_u64(77);
        for id in 0..200 {
            let style = SourceStyle::for_source(&profile, id as usize % profile.n_sources);
            let t = b.build(id, &mut rng);
            // Only plain-style sources leave literal blanks.
            if !style.placeholder.is_empty() || style.repeat_parent {
                continue;
            }
            let truth = t.truth.as_ref().unwrap();
            if truth.vmd_depth() >= 2 {
                let frac = t.blank_fraction(Axis::Column, 0);
                assert!(frac > 0.2, "level-1 VMD column should have blanks, got {frac}");
                // Deepest VMD column is value-dense over data rows.
                let deepest = truth.vmd_depth() as usize - 1;
                let hmd = truth.hmd_depth() as usize;
                let mut filled = 0;
                let mut total = 0;
                for r in hmd..t.n_rows() {
                    if truth.rows[r] == LevelLabel::Data {
                        total += 1;
                        if !t.cell(r, deepest).is_blank() {
                            filled += 1;
                        }
                    }
                }
                assert_eq!(filled, total, "deepest VMD column must be fully valued");
                return;
            }
        }
        panic!("no VMD>=2 table in 200 draws");
    }

    #[test]
    fn cmd_rows_occur_and_are_sparse() {
        let mut b = TableBuilder::new(CorpusKind::Ckg.profile());
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_cmd = false;
        for id in 0..300 {
            let t = b.build(id, &mut rng);
            let truth = t.truth.as_ref().unwrap();
            if let Some(pos) = truth.rows.iter().position(|l| *l == LevelLabel::Cmd) {
                saw_cmd = true;
                assert!(pos > truth.hmd_depth() as usize, "CMD sits in the body");
                assert!(!t.cell(pos, 0).is_blank());
                // All remaining cells of a CMD row are blank.
                for c in 1..t.n_cols() {
                    assert!(t.cell(pos, c).is_blank());
                }
            }
        }
        assert!(saw_cmd, "CKG should generate CMD rows");
    }

    #[test]
    fn markup_cells_follow_truth_when_present() {
        let mut b = TableBuilder::new(CorpusKind::PubTables.profile());
        let mut rng = StdRng::seed_from_u64(9);
        let mut th = 0usize;
        let mut total = 0usize;
        for id in 0..50 {
            let t = b.build(id, &mut rng);
            if !t.has_markup {
                continue;
            }
            let truth = t.truth.as_ref().unwrap();
            let hmd = truth.hmd_depth() as usize;
            for r in 0..hmd {
                for c in 0..t.n_cols() {
                    total += 1;
                    if t.cell(r, c).markup.th {
                        th += 1;
                    }
                }
            }
        }
        assert!(total > 0, "PubTables should generate marked-up tables");
        // Tag noise is 6%; across 50 tables the th rate must be high.
        assert!(th as f32 / total as f32 > 0.8, "most header cells should carry th: {th}/{total}");
    }

    #[test]
    fn numeric_cells_dominate_data_region() {
        let t = build_one(CorpusKind::Cius, 3);
        let truth = t.truth.as_ref().unwrap();
        let vmd = truth.vmd_depth() as usize;
        let hmd = truth.hmd_depth() as usize;
        let mut numeric = 0;
        let mut total = 0;
        for r in hmd..t.n_rows() {
            if truth.rows[r] != LevelLabel::Data {
                continue;
            }
            for c in vmd..t.n_cols() {
                total += 1;
                let txt = &t.cell(r, c).text;
                if tabmeta_text::classify_numeric(txt).is_some() {
                    numeric += 1;
                }
            }
        }
        assert!(
            numeric as f32 / total as f32 > 0.6,
            "CIUS data should be numeric-heavy: {numeric}/{total}"
        );
    }
}
