//! Per-corpus structure profiles.
//!
//! Each profile encodes what §IV-B says about its corpus: depth
//! distributions, markup availability, table sizes, and how noisy deep
//! metadata levels are. The `level_noise` knob is the difficulty dial —
//! the probability that a header cell at level `k` is an ambiguous token
//! (drawn from the value pool or numeric), which is what drives the
//! paper-shaped accuracy decay with depth.

use crate::vocab::Domain;
use serde::{Deserialize, Serialize};

/// The six corpora the paper evaluates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorpusKind {
    /// COVID-19 Open Research Dataset — medical tables, rich in deep
    /// HMD/VMD, JSON-extracted with partial markup.
    Cord19,
    /// COVID Knowledge Graph (PubMed tables) — deepest structures
    /// (HMD to 5, VMD to 3), partial markup.
    Ckg,
    /// Crime In the US — government spreadsheets, **no HTML markup**.
    Cius,
    /// Statistical Abstract of the US — government, **no HTML markup**.
    Saus,
    /// Web Data Commons — dominated by flat relational tables.
    Wdc,
    /// PubTables-1M — scientific tables, header-focused annotations.
    PubTables,
}

impl CorpusKind {
    /// All kinds, in the paper's reporting order.
    pub const ALL: [CorpusKind; 6] = [
        CorpusKind::Cord19,
        CorpusKind::Ckg,
        CorpusKind::Cius,
        CorpusKind::Saus,
        CorpusKind::Wdc,
        CorpusKind::PubTables,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            CorpusKind::Cord19 => "CORD-19",
            CorpusKind::Ckg => "CKG",
            CorpusKind::Cius => "CIUS",
            CorpusKind::Saus => "SAUS",
            CorpusKind::Wdc => "WDC",
            CorpusKind::PubTables => "PubTables",
        }
    }

    /// Seed salt so the same user seed yields different corpora per kind.
    pub(crate) fn seed_salt(self) -> u64 {
        match self {
            CorpusKind::Cord19 => 0x00c0_bd19,
            CorpusKind::Ckg => 0x00c6_0001,
            CorpusKind::Cius => 0x00c1_0505,
            CorpusKind::Saus => 0x005a_0505,
            CorpusKind::Wdc => 0x03dc_0707,
            CorpusKind::PubTables => 0x009b_1111,
        }
    }

    /// The structural profile of this corpus.
    pub fn profile(self) -> CorpusProfile {
        match self {
            CorpusKind::Cord19 => CorpusProfile {
                name: "CORD-19",
                domain: Domain::Biomedical,
                hmd_depth_weights: [0.38, 0.27, 0.20, 0.15, 0.0],
                vmd_depth_weights: [0.15, 0.35, 0.30, 0.20],
                cmd_prob: 0.10,
                markup_prob: 0.55,
                markup_noise: 0.08,
                data_rows: (4, 18),
                data_cols: (3, 7),
                level_noise: [0.04, 0.05, 0.09, 0.11, 0.14],
                numeric_frac: 0.85,
                vmd_hier_echo: 0.55,
                vmd_noise: [0.04, 0.10, 0.16],
                textual_col_prob: 0.12,
                n_sources: 14,
                placeholder_source_frac: 0.3,
                repeat_parent_frac: 0.2,
            },
            CorpusKind::Ckg => CorpusProfile {
                name: "CKG",
                domain: Domain::Biomedical,
                hmd_depth_weights: [0.32, 0.26, 0.20, 0.14, 0.08],
                vmd_depth_weights: [0.12, 0.33, 0.32, 0.23],
                cmd_prob: 0.12,
                markup_prob: 0.60,
                markup_noise: 0.08,
                data_rows: (4, 22),
                data_cols: (3, 8),
                level_noise: [0.04, 0.05, 0.08, 0.09, 0.11],
                numeric_frac: 0.85,
                vmd_hier_echo: 0.55,
                vmd_noise: [0.03, 0.09, 0.15],
                textual_col_prob: 0.12,
                n_sources: 16,
                placeholder_source_frac: 0.3,
                repeat_parent_frac: 0.2,
            },
            CorpusKind::Cius => CorpusProfile {
                name: "CIUS",
                domain: Domain::Crime,
                hmd_depth_weights: [0.55, 0.45, 0.0, 0.0, 0.0],
                vmd_depth_weights: [0.10, 0.30, 0.35, 0.25],
                cmd_prob: 0.08,
                markup_prob: 0.0,
                markup_noise: 0.0,
                data_rows: (6, 25),
                data_cols: (3, 7),
                level_noise: [0.04, 0.08, 0.12, 0.2, 0.25],
                numeric_frac: 0.9,
                vmd_hier_echo: 0.65,
                vmd_noise: [0.05, 0.10, 0.16],
                textual_col_prob: 0.12,
                n_sources: 8,
                placeholder_source_frac: 0.35,
                repeat_parent_frac: 0.25,
            },
            CorpusKind::Saus => CorpusProfile {
                name: "SAUS",
                domain: Domain::Census,
                hmd_depth_weights: [0.45, 0.35, 0.20, 0.0, 0.0],
                vmd_depth_weights: [0.18, 0.40, 0.42, 0.0],
                cmd_prob: 0.10,
                markup_prob: 0.0,
                markup_noise: 0.0,
                data_rows: (6, 25),
                data_cols: (3, 8),
                level_noise: [0.05, 0.08, 0.15, 0.2, 0.25],
                numeric_frac: 0.9,
                vmd_hier_echo: 0.6,
                vmd_noise: [0.06, 0.11, 0.18],
                textual_col_prob: 0.12,
                n_sources: 10,
                placeholder_source_frac: 0.35,
                repeat_parent_frac: 0.25,
            },
            CorpusKind::Wdc => CorpusProfile {
                name: "WDC",
                domain: Domain::Web,
                hmd_depth_weights: [1.0, 0.0, 0.0, 0.0, 0.0],
                vmd_depth_weights: [0.45, 0.55, 0.0, 0.0],
                cmd_prob: 0.02,
                markup_prob: 0.75,
                markup_noise: 0.12,
                data_rows: (3, 15),
                data_cols: (2, 6),
                level_noise: [0.04, 0.1, 0.15, 0.2, 0.25],
                numeric_frac: 0.55,
                vmd_hier_echo: 0.35,
                vmd_noise: [0.06, 0.12, 0.18],
                textual_col_prob: 0.3,
                n_sources: 24,
                placeholder_source_frac: 0.25,
                repeat_parent_frac: 0.15,
            },
            CorpusKind::PubTables => CorpusProfile {
                name: "PubTables",
                domain: Domain::Biomedical,
                hmd_depth_weights: [0.60, 0.25, 0.15, 0.0, 0.0],
                vmd_depth_weights: [0.40, 0.60, 0.0, 0.0],
                cmd_prob: 0.06,
                markup_prob: 0.70,
                markup_noise: 0.06,
                data_rows: (4, 16),
                data_cols: (3, 7),
                level_noise: [0.03, 0.06, 0.12, 0.18, 0.24],
                numeric_frac: 0.8,
                vmd_hier_echo: 0.5,
                vmd_noise: [0.05, 0.10, 0.16],
                textual_col_prob: 0.12,
                n_sources: 14,
                placeholder_source_frac: 0.3,
                repeat_parent_frac: 0.2,
            },
        }
    }
}

/// Structural parameters of one synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusProfile {
    /// Corpus display name.
    pub name: &'static str,
    /// Vocabulary domain.
    pub domain: Domain,
    /// Probability weights for HMD depth 1..=5 (normalized internally).
    pub hmd_depth_weights: [f32; 5],
    /// Probability weights for VMD depth 0..=3.
    pub vmd_depth_weights: [f32; 4],
    /// Probability a table contains a CMD section row.
    pub cmd_prob: f32,
    /// Probability a table carries HTML markup at all.
    pub markup_prob: f32,
    /// Per-cell probability a markup tag is wrong or missing.
    pub markup_noise: f32,
    /// Inclusive range of data-row counts.
    pub data_rows: (usize, usize),
    /// Inclusive range of data-column counts.
    pub data_cols: (usize, usize),
    /// Per-HMD-level probability of an ambiguous header cell.
    pub level_noise: [f32; 5],
    /// Probability a data cell is numeric (vs a textual value).
    pub numeric_frac: f32,
    /// Probability a VMD value at level `k ≥ 2` lexically echoes its
    /// hierarchy parent ("state university of **new york**" under "**new
    /// york**", the Fig. 1(a) pattern). Real hierarchical row headers share
    /// vocabulary across levels; this is what lets embedding-based methods
    /// tie deep VMD levels together.
    pub vmd_hier_echo: f32,
    /// Per-VMD-level probability of an ambiguous value — numeric-flavoured
    /// row headers like "12 to 15 years" or bare counts, which read as data
    /// (the VMD analogue of `level_noise`; §IV-H notes these trip LLMs too).
    pub vmd_noise: [f32; 3],
    /// Probability a *data* column is fully textual (an entity column:
    /// drug names, product names, counties). These columns are what caps
    /// surface-feature methods on VMD — they look exactly like vertical
    /// metadata unless you read the vocabulary.
    pub textual_col_prob: f32,
    /// Number of distinct *sources* the corpus is composed from. Each
    /// source has its own structural conventions (see
    /// [`crate::builder::SourceStyle`]); tables are assigned to sources in
    /// contiguous id blocks so a 70/30 split holds out unseen sources —
    /// the heterogeneity the paper's §I motivates ("an algorithm or model
    /// that fits one source often does not perform that well on other
    /// sources").
    pub n_sources: usize,
    /// Fraction of sources that fill structural blanks with placeholder
    /// strings ("-", "n/a", ".") instead of empty cells.
    pub placeholder_source_frac: f32,
    /// Fraction of sources that repeat hierarchical VMD parents on every
    /// row instead of only at group starts.
    pub repeat_parent_frac: f32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(CorpusKind::Cord19.name(), "CORD-19");
        assert_eq!(CorpusKind::PubTables.name(), "PubTables");
        assert_eq!(CorpusKind::ALL.len(), 6);
    }

    #[test]
    fn profile_weights_are_sane() {
        for kind in CorpusKind::ALL {
            let p = kind.profile();
            let hsum: f32 = p.hmd_depth_weights.iter().sum();
            assert!(hsum > 0.0, "{kind:?} HMD weights must not be all-zero");
            assert!(p.hmd_depth_weights.iter().all(|w| *w >= 0.0));
            assert!(p.vmd_depth_weights.iter().all(|w| *w >= 0.0));
            assert!(p.data_rows.0 >= 2 && p.data_rows.0 <= p.data_rows.1);
            assert!(p.data_cols.0 >= 2 && p.data_cols.0 <= p.data_cols.1);
            assert!((0.0..=1.0).contains(&p.markup_prob));
            assert!((0.0..=1.0).contains(&p.numeric_frac));
        }
    }

    #[test]
    fn ckg_is_the_deepest_corpus() {
        let ckg = CorpusKind::Ckg.profile();
        assert!(ckg.hmd_depth_weights[4] > 0.0, "CKG has HMD level 5");
        assert!(ckg.vmd_depth_weights[3] > 0.0, "CKG has VMD level 3");
        let wdc = CorpusKind::Wdc.profile();
        assert_eq!(wdc.hmd_depth_weights[1..].iter().sum::<f32>(), 0.0);
    }

    #[test]
    fn government_corpora_lack_markup() {
        assert_eq!(CorpusKind::Saus.profile().markup_prob, 0.0);
        assert_eq!(CorpusKind::Cius.profile().markup_prob, 0.0);
        assert!(CorpusKind::Ckg.profile().markup_prob > 0.0);
    }

    #[test]
    fn level_noise_is_monotone_nondecreasing() {
        for kind in CorpusKind::ALL {
            let noise = kind.profile().level_noise;
            for w in noise.windows(2) {
                assert!(w[0] <= w[1], "{kind:?} noise must grow with depth");
            }
        }
    }

    #[test]
    fn seed_salts_are_distinct() {
        let mut salts: Vec<u64> = CorpusKind::ALL.iter().map(|k| k.seed_salt()).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), 6);
    }
}
