//! Domain vocabularies: the lexical material each synthetic corpus draws
//! from.
//!
//! Heterogeneity across sources (§I) is modeled two ways: each corpus has
//! its own [`Domain`] vocabulary, and within a domain the header pools are
//! expanded with qualifier combinations so that two tables "about the same
//! topic" rarely share exact attribute names — the schema-variability
//! problem the paper motivates with the Songs / Vaccine side-effects
//! example.
//!
//! Pool roles:
//! * `hmd_pools[k-1]` — attribute phrases plausible at HMD level `k`;
//!   deeper pools deliberately include short, ambiguous tokens (`total`,
//!   `yes`, `n`) that also occur in data contexts, which is what makes
//!   deep-level classification hard for every method in the paper.
//! * `vmd_pools[k-1]` — category phrases for VMD columns.
//! * `values` — textual data values (entity names).
//! * `sections` — CMD section-header phrases.

use serde::{Deserialize, Serialize};

/// The subject-matter domain of a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Biomedical literature (CORD-19, CKG, PubTables-1M).
    Biomedical,
    /// Crime statistics (CIUS).
    Crime,
    /// Census / statistical abstract (SAUS).
    Census,
    /// Web tables: products, media, misc (WDC).
    Web,
}

/// The word pools of one domain.
#[derive(Debug, Clone)]
pub struct DomainVocab {
    /// Attribute phrases per HMD level (1–5).
    pub hmd_pools: [Vec<String>; 5],
    /// Category phrases per VMD level (1–3).
    pub vmd_pools: [Vec<String>; 3],
    /// Textual data values.
    pub values: Vec<String>,
    /// CMD section headers.
    pub sections: Vec<String>,
    /// Caption fragments.
    pub captions: Vec<String>,
}

/// Cross-product expansion: `"{qualifier} {base}"` for every pair, plus the
/// bare bases.
fn expand(bases: &[&str], qualifiers: &[&str]) -> Vec<String> {
    let mut out: Vec<String> = bases.iter().map(|b| b.to_string()).collect();
    for q in qualifiers {
        for b in bases {
            out.push(format!("{q} {b}"));
        }
    }
    out
}

/// Deterministic synthetic proper names from syllable products, so each
/// domain has hundreds of distinct entity strings without shipping word
/// lists.
fn synth_names(prefixes: &[&str], middles: &[&str], suffixes: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(prefixes.len() * middles.len() * suffixes.len());
    for p in prefixes {
        for m in middles {
            for s in suffixes {
                out.push(format!("{p}{m}{s}"));
            }
        }
    }
    out
}

fn to_strings(words: &[&str]) -> Vec<String> {
    words.iter().map(|w| w.to_string()).collect()
}

impl Domain {
    /// Build this domain's vocabulary (pure function of the variant).
    pub fn vocab(self) -> DomainVocab {
        match self {
            Domain::Biomedical => biomedical(),
            Domain::Crime => crime(),
            Domain::Census => census(),
            Domain::Web => web(),
        }
    }
}

fn biomedical() -> DomainVocab {
    let hmd1 = expand(
        &[
            "patient characteristics",
            "clinical outcomes",
            "hospitalized patients",
            "outpatient cohort",
            "vaccine recipients",
            "study population",
            "control group",
            "treatment group",
            "all patients",
            "clinical syndrome",
            "laboratory findings",
            "demographic profile",
            "gender",
            "exposure history",
        ],
        &["overall", "stratified", "adjusted", "baseline"],
    );
    let hmd2 = expand(
        &[
            "male",
            "female",
            "number of patients",
            "percentage",
            "median iqr",
            "95 ci",
            "p value",
            "mis-c",
            "respiratory syndrome",
            "odds ratio",
            "hazard ratio",
            "severe cases",
            "mild cases",
            "icu admission",
        ],
        &["crude", "weighted"],
    );
    let hmd3 = expand(
        &[
            "number needed to harm",
            "number needed to treat",
            "age categories",
            "count",
            "rate",
            "mean sd",
            "frequency",
            "proportion",
            "cases per 1000",
            "relative risk",
            "confidence interval",
        ],
        &["lower", "upper"],
    );
    let hmd4 = to_strings(&[
        "no", "yes", "total", "baseline", "followup", "missing", "unknown", "positive", "negative",
        "n pct", "subgroup",
    ]);
    let hmd5 = to_strings(&["n", "pct", "subtotal", "no pct", "yes pct", "row total", "col total"]);
    let vmd1 = expand(
        &[
            "age distribution",
            "nature of headache",
            "onset of symptoms",
            "duration of illness",
            "comorbidities",
            "vaccination status",
            "severity grade",
            "pattern of headache",
            "site of pain",
            "clinical presentation",
            "days of symptoms",
        ],
        &["reported", "recorded"],
    );
    let vmd2 = to_strings(&[
        "suddenly",
        "gradually",
        "varies time to time",
        "mild",
        "moderate",
        "severe",
        "less than 2 years",
        "2 to 5 years",
        "5 to 10 years",
        "over 10 years",
        "not applicable",
        "minutes",
        "hours",
        "days",
        "not specific",
        "more during day time",
        "more at the end of day",
    ]);
    let vmd3 = to_strings(&[
        "left side",
        "right side",
        "both sides",
        "frontal",
        "occipital",
        "temporal",
        "first episode",
        "recurrent",
        "persistent",
    ]);
    let values = {
        let mut v = to_strings(&[
            "remdesivir",
            "tocilizumab",
            "dexamethasone",
            "azithromycin",
            "favipiravir",
            "oseltamivir",
            "lopinavir",
            "ritonavir",
            "hydroxychloroquine",
            "ivermectin",
            "pneumonia",
            "bronchitis",
            "myocarditis",
            "anosmia",
            "fatigue",
            "dyspnea",
            "fever",
            "cough",
            "nausea",
            "vomiting",
            "diarrhea",
            "headache",
        ]);
        v.extend(synth_names(
            &["medi", "bio", "vira", "cardi", "neuro", "hemo"],
            &["tal", "gen", "lox", "vax", "cor", "stat"],
            &["in", "ol", "ide", "ase"],
        ));
        v
    };
    let sections = to_strings(&[
        "laboratory findings",
        "imaging results",
        "adverse events",
        "secondary outcomes",
        "sensitivity analysis",
        "subgroup analysis",
    ]);
    let captions = to_strings(&[
        "clinical characteristics of enrolled patients",
        "outcomes by treatment arm",
        "vaccine efficacy by age group",
        "symptom prevalence among cohorts",
        "laboratory parameters at admission",
    ]);
    DomainVocab {
        hmd_pools: [hmd1, hmd2, hmd3, hmd4, hmd5],
        vmd_pools: [vmd1, vmd2, vmd3],
        values,
        sections,
        captions,
    }
}

fn crime() -> DomainVocab {
    let hmd1 = expand(
        &[
            "violent crime",
            "property crime",
            "murder and manslaughter",
            "robbery",
            "burglary",
            "larceny theft",
            "motor vehicle theft",
            "aggravated assault",
            "arson",
            "population",
            "law enforcement employees",
            "total officers",
        ],
        &["reported", "estimated", "cleared"],
    );
    let hmd2 = expand(
        &[
            "rate per 100000",
            "number of offenses",
            "percent change",
            "agencies reporting",
            "total civilians",
            "male officers",
            "female officers",
        ],
        &["annual", "quarterly"],
    );
    let hmd3 = to_strings(&[
        "count",
        "rate",
        "percent",
        "prior year",
        "current year",
        "per capita",
        "weapons involved",
        "firearms",
        "knives",
    ]);
    let hmd4 = to_strings(&["no", "yes", "total", "urban", "rural", "metro", "nonmetro"]);
    let hmd5 = to_strings(&["n", "pct", "subtotal", "row total"]);
    let vmd1 = to_strings(&[
        "new york",
        "indiana",
        "california",
        "texas",
        "florida",
        "ohio",
        "georgia",
        "michigan",
        "virginia",
        "washington",
        "arizona",
        "colorado",
    ]);
    let vmd2 = expand(
        &[
            "state university",
            "metropolitan police",
            "county sheriff",
            "city police",
            "university system",
            "transit authority",
        ],
        &["northern", "southern", "eastern", "western"],
    );
    let vmd3 = synth_names(
        &["Al", "Bing", "Buf", "Cort", "Gen", "Pots", "Fre", "Brock", "Platt", "One"],
        &["ba", "ham", "fa", "lan", "es", "do"],
        &["ny", "ton", "lo", "dale", "burgh", "port"],
    );
    let values = {
        let mut v = vmd3.clone();
        v.extend(synth_names(
            &["Clark", "Madi", "Frank", "Green", "Hamil", "Jeffer"],
            &["s", "son", "er"],
            &["ville", "field", " county", " city"],
        ));
        v
    };
    let sections = to_strings(&[
        "offenses known to law enforcement",
        "arrests by age",
        "clearances",
        "employee counts",
    ]);
    let captions = to_strings(&[
        "crime in the united states by state",
        "offenses reported by agencies",
        "law enforcement employee statistics",
        "arrest trends by offense",
    ]);
    DomainVocab {
        hmd_pools: [hmd1, hmd2, hmd3, hmd4, hmd5],
        vmd_pools: [vmd1, vmd2, vmd3],
        values,
        sections,
        captions,
    }
}

fn census() -> DomainVocab {
    let hmd1 = expand(
        &[
            "resident population",
            "median household income",
            "housing units",
            "employment status",
            "educational attainment",
            "health insurance coverage",
            "poverty rate",
            "student enrollment",
            "labor force",
            "per capita income",
        ],
        &["total", "civilian", "estimated"],
    );
    let hmd2 = expand(
        &[
            "male",
            "female",
            "under 18 years",
            "18 to 64 years",
            "65 years and over",
            "percent of total",
            "margin of error",
            "number",
        ],
        &["weighted"],
    );
    let hmd3 = to_strings(&[
        "count",
        "percent",
        "rank",
        "change",
        "annual average",
        "per 1000 population",
        "dollars",
        "index",
    ]);
    let hmd4 = to_strings(&["no", "yes", "total", "urban", "rural", "owner", "renter"]);
    let hmd5 = to_strings(&["n", "pct", "subtotal"]);
    let vmd1 = to_strings(&[
        "northeast region",
        "midwest region",
        "south region",
        "west region",
        "new england division",
        "pacific division",
        "mountain division",
    ]);
    let vmd2 = to_strings(&[
        "new york",
        "indiana",
        "california",
        "texas",
        "florida",
        "maine",
        "vermont",
        "oregon",
        "nevada",
        "utah",
        "kansas",
        "iowa",
    ]);
    let vmd3 = synth_names(
        &["North", "South", "East", "West", "Lake", "River"],
        &[" Spring", " Oak", " Cedar", " Pine"],
        &["field", "town", " city", " county"],
    );
    let values = {
        let mut v = vmd3.clone();
        v.extend(to_strings(&[
            "agriculture",
            "manufacturing",
            "retail trade",
            "construction",
            "finance and insurance",
            "public administration",
            "transportation",
        ]));
        v
    };
    let sections = to_strings(&[
        "population estimates",
        "income and poverty",
        "housing characteristics",
        "labor force status",
    ]);
    let captions = to_strings(&[
        "statistical abstract of the united states",
        "population by region and state",
        "income distribution by household",
        "enrollment in public institutions",
    ]);
    DomainVocab {
        hmd_pools: [hmd1, hmd2, hmd3, hmd4, hmd5],
        vmd_pools: [vmd1, vmd2, vmd3],
        values,
        sections,
        captions,
    }
}

fn web() -> DomainVocab {
    let hmd1 = expand(
        &[
            "product name",
            "price",
            "rating",
            "artist",
            "album",
            "release year",
            "genre",
            "manufacturer",
            "model",
            "title",
            "director",
            "runtime",
            "author",
            "publisher",
            "isbn",
            "team",
            "wins",
            "losses",
        ],
        &["listed", "average"],
    );
    // WDC is effectively flat; deeper pools exist but are rarely drawn.
    let hmd2 = to_strings(&["new", "used", "min", "max", "count"]);
    let hmd3 = to_strings(&["count", "percent"]);
    let hmd4 = to_strings(&["total", "subtotal"]);
    let hmd5 = to_strings(&["n"]);
    let vmd1 = to_strings(&[
        "electronics",
        "books",
        "music",
        "movies",
        "sports",
        "garden",
        "automotive",
        "toys",
        "grocery",
        "apparel",
    ]);
    let vmd2 = to_strings(&["bestsellers", "new releases", "clearance", "featured"]);
    let vmd3 = to_strings(&["in stock", "preorder", "backorder"]);
    let values = synth_names(
        &["Sono", "Vertex", "Lumen", "Apex", "Nova", "Zen", "Echo", "Pulse"],
        &[" Pro", " Max", " Air", " Mini", " Ultra", " Lite"],
        &[" 2", " 3", " X", " S", " Plus", ""],
    );
    let sections = to_strings(&["top rated", "editors picks", "related items"]);
    let captions = to_strings(&[
        "product comparison chart",
        "best selling albums of the year",
        "team standings",
        "price comparison across retailers",
    ]);
    DomainVocab {
        hmd_pools: [hmd1, hmd2, hmd3, hmd4, hmd5],
        vmd_pools: [vmd1, vmd2, vmd3],
        values,
        sections,
        captions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_build_nonempty_pools() {
        for d in [Domain::Biomedical, Domain::Crime, Domain::Census, Domain::Web] {
            let v = d.vocab();
            for (k, pool) in v.hmd_pools.iter().enumerate() {
                assert!(!pool.is_empty(), "{d:?} hmd pool {k} empty");
            }
            for (k, pool) in v.vmd_pools.iter().enumerate() {
                assert!(!pool.is_empty(), "{d:?} vmd pool {k} empty");
            }
            assert!(v.values.len() > 50, "{d:?} needs a rich value vocabulary");
            assert!(!v.sections.is_empty());
            assert!(!v.captions.is_empty());
        }
    }

    #[test]
    fn expansion_multiplies() {
        let e = expand(&["a", "b"], &["x", "y"]);
        assert_eq!(e.len(), 2 + 4);
        assert!(e.contains(&"x a".to_string()));
    }

    #[test]
    fn synth_names_are_distinct() {
        let names = synth_names(&["A", "B"], &["1", "2"], &["x", "y"]);
        assert_eq!(names.len(), 8);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn domains_have_disjoint_flavour() {
        let bio = Domain::Biomedical.vocab();
        let crime = Domain::Crime.vocab();
        let shared = bio.hmd_pools[0].iter().filter(|p| crime.hmd_pools[0].contains(p)).count();
        assert!(shared < 3, "domains should barely overlap at level 1 ({shared} shared)");
    }

    #[test]
    fn vocab_is_deterministic() {
        let a = Domain::Web.vocab();
        let b = Domain::Web.vocab();
        assert_eq!(a.values, b.values);
        assert_eq!(a.hmd_pools[0], b.hmd_pools[0]);
    }
}
