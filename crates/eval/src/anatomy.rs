//! Error anatomy: *how* a method fails, not just how often.
//!
//! Per-level accuracy (Table V) says who wins; this module decomposes the
//! losses into the failure modes the paper's analysis sections talk about:
//! boundary placed too early (depth underclaimed), too late (data rows
//! swallowed into the header), level missed entirely, CMD confusion, and
//! spurious metadata on plain-relational tables.

use crate::scoring::Labels;
use serde::{Deserialize, Serialize};
use tabmeta_tabular::{LevelLabel, Table};

/// One table's failure mode along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// Exact match — not a failure.
    Correct,
    /// Metadata depth underclaimed (boundary too early).
    DepthUnder,
    /// Metadata depth overclaimed (boundary too late).
    DepthOver,
    /// Depth right but a level's label sits on the wrong line.
    Misaligned,
    /// No metadata found although the table has some.
    MissedEntirely,
    /// Metadata claimed on an axis that has none.
    Spurious,
}

impl FailureMode {
    /// All modes, reporting order.
    pub const ALL: [FailureMode; 6] = [
        FailureMode::Correct,
        FailureMode::DepthUnder,
        FailureMode::DepthOver,
        FailureMode::Misaligned,
        FailureMode::MissedEntirely,
        FailureMode::Spurious,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FailureMode::Correct => "correct",
            FailureMode::DepthUnder => "depth under",
            FailureMode::DepthOver => "depth over",
            FailureMode::Misaligned => "misaligned",
            FailureMode::MissedEntirely => "missed",
            FailureMode::Spurious => "spurious",
        }
    }
}

fn axis_depth(labels: &[LevelLabel], vertical: bool) -> u8 {
    labels
        .iter()
        .filter_map(|l| match (l, vertical) {
            (LevelLabel::Hmd(k), false) | (LevelLabel::Vmd(k), true) => Some(*k),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// Diagnose one axis of one (truth, prediction) pair.
pub fn diagnose_axis(
    truth: &[LevelLabel],
    predicted: &[LevelLabel],
    vertical: bool,
) -> FailureMode {
    let td = axis_depth(truth, vertical);
    let pd = axis_depth(predicted, vertical);
    if td == 0 {
        return if pd == 0 { FailureMode::Correct } else { FailureMode::Spurious };
    }
    if pd == 0 {
        return FailureMode::MissedEntirely;
    }
    match pd.cmp(&td) {
        std::cmp::Ordering::Less => FailureMode::DepthUnder,
        std::cmp::Ordering::Greater => FailureMode::DepthOver,
        std::cmp::Ordering::Equal => {
            // Depth right; do the per-level labels line up?
            let aligned = truth.iter().zip(predicted).all(|(t, p)| {
                let relevant = matches!(
                    (t, vertical),
                    (LevelLabel::Hmd(_), false) | (LevelLabel::Vmd(_), true)
                );
                !relevant || t == p
            });
            if aligned {
                FailureMode::Correct
            } else {
                FailureMode::Misaligned
            }
        }
    }
}

/// Failure-mode histogram over a test set, per axis.
#[derive(Debug, Clone, Default)]
pub struct Anatomy {
    /// Row-axis (HMD) mode counts, index-aligned with [`FailureMode::ALL`].
    pub rows: [usize; 6],
    /// Column-axis (VMD) mode counts.
    pub columns: [usize; 6],
}

impl Anatomy {
    /// Diagnose a full test set.
    pub fn diagnose<F: FnMut(&Table) -> Labels>(tables: &[Table], mut classify: F) -> Self {
        let mut out = Anatomy::default();
        for t in tables {
            let truth = t.truth.as_ref().expect("anatomy requires ground truth");
            let labels = classify(t);
            let r = diagnose_axis(&truth.rows, &labels.rows, false);
            let c = diagnose_axis(&truth.columns, &labels.columns, true);
            out.rows[FailureMode::ALL.iter().position(|m| *m == r).expect("known mode")] += 1;
            out.columns[FailureMode::ALL.iter().position(|m| *m == c).expect("known mode")] += 1;
        }
        out
    }

    /// Count for one mode along one axis.
    pub fn count(&self, mode: FailureMode, vertical: bool) -> usize {
        let i = FailureMode::ALL.iter().position(|m| *m == mode).expect("known mode");
        if vertical {
            self.columns[i]
        } else {
            self.rows[i]
        }
    }

    /// Total tables diagnosed.
    pub fn total(&self) -> usize {
        self.rows.iter().sum()
    }

    /// Render the histogram.
    pub fn render(&self, method: &str) -> String {
        let mut out = format!("Error anatomy — {method} (per-table axis diagnosis):\n");
        out.push_str(&format!("{:<14} {:>8} {:>8}\n", "mode", "HMD", "VMD"));
        for (i, mode) in FailureMode::ALL.iter().enumerate() {
            out.push_str(&format!(
                "{:<14} {:>8} {:>8}\n",
                mode.name(),
                self.rows[i],
                self.columns[i]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabmeta_tabular::table::GroundTruth;

    fn labels(rows: Vec<LevelLabel>, columns: Vec<LevelLabel>) -> Labels {
        Labels { rows, columns }
    }

    #[test]
    fn diagnose_covers_every_mode() {
        use LevelLabel::{Data as D, Hmd};
        let truth = [Hmd(1), Hmd(2), D, D];
        assert_eq!(diagnose_axis(&truth, &[Hmd(1), Hmd(2), D, D], false), FailureMode::Correct);
        assert_eq!(diagnose_axis(&truth, &[Hmd(1), D, D, D], false), FailureMode::DepthUnder);
        assert_eq!(
            diagnose_axis(&truth, &[Hmd(1), Hmd(2), Hmd(3), D], false),
            FailureMode::DepthOver
        );
        assert_eq!(diagnose_axis(&truth, &[D, D, D, D], false), FailureMode::MissedEntirely);
        assert_eq!(diagnose_axis(&[D, D], &[Hmd(1), D], false), FailureMode::Spurious);
        assert_eq!(diagnose_axis(&[D, D], &[D, D], false), FailureMode::Correct);
        // Same depth, shifted placement.
        assert_eq!(diagnose_axis(&[Hmd(1), D, D], &[D, Hmd(1), D], false), FailureMode::Misaligned);
    }

    #[test]
    fn anatomy_accumulates_per_axis() {
        let t = Table::from_strings(1, &[&["h", "h"], &["1", "2"]]).with_truth(GroundTruth {
            rows: vec![LevelLabel::Hmd(1), LevelLabel::Data],
            columns: vec![LevelLabel::Data, LevelLabel::Data],
        });
        let tables = vec![t.clone(), t];
        let a = Anatomy::diagnose(&tables, |_| {
            labels(
                vec![LevelLabel::Data, LevelLabel::Data],   // missed HMD
                vec![LevelLabel::Vmd(1), LevelLabel::Data], // spurious VMD
            )
        });
        assert_eq!(a.total(), 2);
        assert_eq!(a.count(FailureMode::MissedEntirely, false), 2);
        assert_eq!(a.count(FailureMode::Spurious, true), 2);
        assert_eq!(a.count(FailureMode::Correct, false), 0);
        let text = a.render("test");
        assert!(text.contains("missed"));
        assert!(text.contains("spurious"));
    }

    #[test]
    fn end_to_end_anatomy_is_mostly_correct() {
        use crate::harness::{split_corpus, train_all, ExperimentConfig};
        use tabmeta_corpora::CorpusKind;
        let cfg = ExperimentConfig { tables_per_corpus: 200, seed: 61 };
        let split = split_corpus(CorpusKind::Ckg, &cfg);
        let methods = train_all(&split, &cfg);
        let a = Anatomy::diagnose(&split.test, |t| methods.ours.classify(t).into());
        let correct_frac = a.count(FailureMode::Correct, false) as f64 / a.total() as f64;
        assert!(correct_frac > 0.7, "most HMD axes fully correct: {correct_frac}");
        // When we do fail on depth, underclaiming dominates overclaiming
        // (the walk stops at the first non-matching angle).
        let under = a.count(FailureMode::DepthUnder, false);
        let over = a.count(FailureMode::DepthOver, false);
        assert!(under + over < a.total() / 2);
    }
}
