//! Per-level scoring of predictions against ground truth.
//!
//! Every method under evaluation — the contrastive pipeline and all four
//! baselines — reduces to the same shape: one [`LevelLabel`] per row and
//! per column. [`Labels`] is that common shape; scoring walks a test set
//! and accumulates [`BinaryCounts`] per metadata level.

use crate::metrics::BinaryCounts;
use tabmeta_baselines::Prediction;
use tabmeta_core::Verdict;
use tabmeta_tabular::{LevelLabel, Table};

/// Method output in the common per-level shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    /// One label per row.
    pub rows: Vec<LevelLabel>,
    /// One label per column.
    pub columns: Vec<LevelLabel>,
}

impl From<Verdict> for Labels {
    fn from(v: Verdict) -> Self {
        Labels { rows: v.rows, columns: v.columns }
    }
}

impl From<Prediction> for Labels {
    fn from(p: Prediction) -> Self {
        Labels { rows: p.rows, columns: p.columns }
    }
}

/// Which metadata axis/level a score refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKey {
    /// HMD at depth `k` (1–5).
    Hmd(u8),
    /// VMD at depth `k` (1–3).
    Vmd(u8),
    /// CMD rows.
    Cmd,
}

impl std::fmt::Display for LevelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LevelKey::Hmd(k) => write!(f, "HMD{k}"),
            LevelKey::Vmd(k) => write!(f, "VMD{k}"),
            LevelKey::Cmd => write!(f, "CMD"),
        }
    }
}

/// Whether `labels` place metadata level `key` where the table's truth
/// does. For `Hmd(k)`/`Vmd(k)` that is label `k` at position `k−1`; for
/// CMD, that every true CMD row is labeled CMD.
fn level_correct(
    labels: &Labels,
    truth: &tabmeta_tabular::table::GroundTruth,
    key: LevelKey,
) -> bool {
    match key {
        LevelKey::Hmd(k) => labels.rows.get(k as usize - 1) == Some(&LevelLabel::Hmd(k)),
        LevelKey::Vmd(k) => labels.columns.get(k as usize - 1) == Some(&LevelLabel::Vmd(k)),
        LevelKey::Cmd => truth
            .rows
            .iter()
            .zip(&labels.rows)
            .filter(|(t, _)| **t == LevelLabel::Cmd)
            .all(|(_, p)| *p == LevelLabel::Cmd),
    }
}

/// Whether the table truly carries `key`.
fn level_present(truth: &tabmeta_tabular::table::GroundTruth, key: LevelKey) -> bool {
    match key {
        LevelKey::Hmd(k) => truth.hmd_depth() >= k,
        LevelKey::Vmd(k) => truth.vmd_depth() >= k,
        LevelKey::Cmd => truth.has_cmd(),
    }
}

/// Whether the method *claims* `key` (used for FP accounting on tables
/// that lack the level).
fn level_claimed(labels: &Labels, key: LevelKey) -> bool {
    match key {
        LevelKey::Hmd(k) => labels.rows.contains(&LevelLabel::Hmd(k)),
        LevelKey::Vmd(k) => labels.columns.contains(&LevelLabel::Vmd(k)),
        LevelKey::Cmd => labels.rows.contains(&LevelLabel::Cmd),
    }
}

/// Score one (table, prediction) pair into per-level counts.
pub fn score_table(table: &Table, labels: &Labels, keys: &[LevelKey], counts: &mut [BinaryCounts]) {
    assert_eq!(keys.len(), counts.len());
    let truth = table.truth.as_ref().expect("scoring requires ground truth");
    for (key, count) in keys.iter().zip(counts.iter_mut()) {
        let present = level_present(truth, *key);
        let predicted =
            if present { level_correct(labels, truth, *key) } else { level_claimed(labels, *key) };
        count.record(present, predicted);
    }
}

/// The standard level keys the paper reports: HMD 1–5, VMD 1–3.
pub fn standard_keys() -> Vec<LevelKey> {
    let mut keys: Vec<LevelKey> = (1..=5).map(LevelKey::Hmd).collect();
    keys.extend((1..=3).map(LevelKey::Vmd));
    keys
}

/// Per-level scores over a test set for one method.
#[derive(Debug, Clone)]
pub struct LevelScores {
    /// The keys scored, index-aligned with `counts`.
    pub keys: Vec<LevelKey>,
    /// Accumulated counts per key.
    pub counts: Vec<BinaryCounts>,
}

impl LevelScores {
    /// Score a full test set given a per-table classify function.
    pub fn evaluate<F>(tables: &[Table], keys: Vec<LevelKey>, mut classify: F) -> Self
    where
        F: FnMut(&Table) -> Labels,
    {
        let mut counts = vec![BinaryCounts::default(); keys.len()];
        for table in tables {
            let labels = classify(table);
            score_table(table, &labels, &keys, &mut counts);
        }
        LevelScores { keys, counts }
    }

    /// Conditional accuracy (recall) for `key` — the Table V/VI reading.
    pub fn level_accuracy(&self, key: LevelKey) -> Option<f64> {
        let i = self.keys.iter().position(|k| *k == key)?;
        self.counts[i].recall()
    }

    /// Eq. 9 accuracy for `key` (includes true negatives).
    pub fn eq9_accuracy(&self, key: LevelKey) -> Option<f64> {
        let i = self.keys.iter().position(|k| *k == key)?;
        self.counts[i].accuracy()
    }

    /// Number of test tables truly carrying `key`.
    pub fn support(&self, key: LevelKey) -> Option<usize> {
        let i = self.keys.iter().position(|k| *k == key)?;
        Some(self.counts[i].tp + self.counts[i].fn_)
    }
}

/// Monolithic (coarse) metadata accuracy: over the leading `max_level`
/// metadata levels along one axis, the fraction of levels whose
/// metadata/data distinction is right — the number Fang et al. report
/// ("92% for HMD level 1-3 combined", "90.4% for VMD level 1-2 combined").
pub fn combined_accuracy(
    tables: &[Table],
    labels: &[Labels],
    vertical: bool,
    max_level: u8,
) -> Option<f64> {
    assert_eq!(tables.len(), labels.len());
    let mut ok = 0usize;
    let mut n = 0usize;
    for (table, l) in tables.iter().zip(labels) {
        let truth = table.truth.as_ref().expect("scoring requires ground truth");
        let (truth_axis, pred_axis) =
            if vertical { (&truth.columns, &l.columns) } else { (&truth.rows, &l.rows) };
        // Score the boundary region only — the leading `max_level + 1`
        // levels where header detection actually happens (the original
        // evaluates header candidates, not every column of a wide table).
        for (t, p) in truth_axis.iter().zip(pred_axis).take(max_level as usize + 1) {
            let in_scope = match t.level() {
                Some(k) => k <= max_level,
                None => true,
            };
            if !in_scope {
                continue;
            }
            n += 1;
            if t.is_metadata() == p.is_metadata() {
                ok += 1;
            }
        }
    }
    (n > 0).then(|| ok as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabmeta_tabular::table::GroundTruth;

    fn table_2h_1v() -> Table {
        Table::from_strings(
            1,
            &[&["a", "b", "c"], &["d", "e", "f"], &["x", "1", "2"], &["y", "3", "4"]],
        )
        .with_truth(GroundTruth {
            rows: vec![LevelLabel::Hmd(1), LevelLabel::Hmd(2), LevelLabel::Data, LevelLabel::Data],
            columns: vec![LevelLabel::Vmd(1), LevelLabel::Data, LevelLabel::Data],
        })
    }

    fn perfect_labels(t: &Table) -> Labels {
        let truth = t.truth.as_ref().unwrap();
        Labels { rows: truth.rows.clone(), columns: truth.columns.clone() }
    }

    #[test]
    fn perfect_prediction_scores_one_everywhere_present() {
        let t = table_2h_1v();
        let scores =
            LevelScores::evaluate(std::slice::from_ref(&t), standard_keys(), perfect_labels);
        assert_eq!(scores.level_accuracy(LevelKey::Hmd(1)), Some(1.0));
        assert_eq!(scores.level_accuracy(LevelKey::Hmd(2)), Some(1.0));
        assert_eq!(scores.level_accuracy(LevelKey::Vmd(1)), Some(1.0));
        // No table carries HMD3 → no conditional accuracy, but Eq. 9 gives
        // a true negative.
        assert_eq!(scores.level_accuracy(LevelKey::Hmd(3)), None);
        assert_eq!(scores.eq9_accuracy(LevelKey::Hmd(3)), Some(1.0));
        assert_eq!(scores.support(LevelKey::Hmd(2)), Some(1));
    }

    #[test]
    fn shifted_header_fails_level_two() {
        let t = table_2h_1v();
        let labels = Labels {
            rows: vec![LevelLabel::Hmd(1), LevelLabel::Data, LevelLabel::Data, LevelLabel::Data],
            columns: vec![LevelLabel::Vmd(1), LevelLabel::Data, LevelLabel::Data],
        };
        let mut counts = vec![BinaryCounts::default(); 2];
        score_table(&t, &labels, &[LevelKey::Hmd(1), LevelKey::Hmd(2)], &mut counts);
        assert_eq!(counts[0].tp, 1);
        assert_eq!(counts[1].fn_, 1, "missing level 2 is a false negative");
    }

    #[test]
    fn false_positive_on_absent_level() {
        let t = table_2h_1v();
        let labels = Labels {
            rows: vec![
                LevelLabel::Hmd(1),
                LevelLabel::Hmd(2),
                LevelLabel::Hmd(3),
                LevelLabel::Data,
            ],
            columns: vec![LevelLabel::Vmd(1), LevelLabel::Data, LevelLabel::Data],
        };
        let mut counts = vec![BinaryCounts::default()];
        score_table(&t, &labels, &[LevelKey::Hmd(3)], &mut counts);
        assert_eq!(counts[0].fp, 1, "claiming a non-existent level is an FP");
    }

    #[test]
    fn cmd_scoring_requires_all_cmd_rows() {
        let t = Table::from_strings(2, &[&["a", "b"], &["s", ""], &["1", "2"]]).with_truth(
            GroundTruth {
                rows: vec![LevelLabel::Hmd(1), LevelLabel::Cmd, LevelLabel::Data],
                columns: vec![LevelLabel::Data, LevelLabel::Data],
            },
        );
        let good = perfect_labels(&t);
        let mut counts = vec![BinaryCounts::default()];
        score_table(&t, &good, &[LevelKey::Cmd], &mut counts);
        assert_eq!(counts[0].tp, 1);
        let bad = Labels {
            rows: vec![LevelLabel::Hmd(1), LevelLabel::Data, LevelLabel::Data],
            columns: vec![LevelLabel::Data, LevelLabel::Data],
        };
        let mut counts = vec![BinaryCounts::default()];
        score_table(&t, &bad, &[LevelKey::Cmd], &mut counts);
        assert_eq!(counts[0].fn_, 1);
    }

    #[test]
    fn combined_accuracy_is_coarse() {
        let t = table_2h_1v();
        // Monolithic header detection: both HMD rows flagged as metadata
        // but at the wrong level still counts for the combined metric.
        let labels = Labels {
            rows: vec![LevelLabel::Hmd(1), LevelLabel::Hmd(1), LevelLabel::Data, LevelLabel::Data],
            columns: vec![LevelLabel::Vmd(1), LevelLabel::Data, LevelLabel::Data],
        };
        let acc =
            combined_accuracy(std::slice::from_ref(&t), std::slice::from_ref(&labels), false, 3);
        assert_eq!(acc, Some(1.0));
        let vacc =
            combined_accuracy(std::slice::from_ref(&t), std::slice::from_ref(&labels), true, 2);
        assert_eq!(vacc, Some(1.0));
    }

    #[test]
    fn labels_convert_from_both_methods() {
        let v = Verdict {
            rows: vec![LevelLabel::Hmd(1)],
            columns: vec![LevelLabel::Data],
            hmd_depth: 1,
            vmd_depth: 0,
            row_provenance: Default::default(),
            col_provenance: Default::default(),
        };
        let l: Labels = v.into();
        assert_eq!(l.rows, vec![LevelLabel::Hmd(1)]);
        let p = Prediction { rows: vec![LevelLabel::Cmd], columns: vec![] };
        let l2: Labels = p.into();
        assert_eq!(l2.rows, vec![LevelLabel::Cmd]);
    }

    #[test]
    fn display_of_level_keys() {
        assert_eq!(LevelKey::Hmd(4).to_string(), "HMD4");
        assert_eq!(LevelKey::Vmd(2).to_string(), "VMD2");
        assert_eq!(LevelKey::Cmd.to_string(), "CMD");
    }
}
