//! The evaluation metric (Eq. 9) and its building blocks.
//!
//! `Accuracy = (TP + TN) / (TP + TN + FP + FN)` over binary per-table
//! decisions. For "identifying metadata level k" the binary decision is
//! *"does this table carry level `k`, and did the method put it in the
//! right place?"* — we expose both that unconditional form and the
//! conditional form (accuracy among tables that truly have level `k`),
//! which is the per-level reading consistent with the paper's deep-level
//! numbers (HMD₅ exists in a sliver of tables, yet the paper reports 85%,
//! not ~99% of trivially-true negatives).

use serde::{Deserialize, Serialize};

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryCounts {
    /// True positives.
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryCounts {
    /// Record one (truth, prediction) pair.
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.tp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Eq. 9 accuracy; `None` when nothing was recorded.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| (self.tp + self.tn) as f64 / total as f64)
    }

    /// Conditional accuracy among positives (TP / (TP + FN)); the
    /// per-level reading used for Tables V–VI.
    pub fn recall(&self) -> Option<f64> {
        let pos = self.tp + self.fn_;
        (pos > 0).then(|| self.tp as f64 / pos as f64)
    }

    /// Precision (TP / (TP + FP)).
    pub fn precision(&self) -> Option<f64> {
        let claimed = self.tp + self.fp;
        (claimed > 0).then(|| self.tp as f64 / claimed as f64)
    }

    /// Merge another count set into this one.
    pub fn merge(&mut self, other: &BinaryCounts) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// A percentage formatted the way the paper prints it (one decimal,
/// trailing `.0` dropped: `95`, `86.8`).
pub fn paper_pct(x: f64) -> String {
    let v = (x * 1000.0).round() / 10.0;
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_matches_eq9() {
        let mut c = BinaryCounts::default();
        c.record(true, true); // TP
        c.record(true, true);
        c.record(false, false); // TN
        c.record(false, true); // FP
        c.record(true, false); // FN
        assert_eq!(c.total(), 5);
        assert_eq!(c.accuracy(), Some(3.0 / 5.0));
        assert_eq!(c.recall(), Some(2.0 / 3.0));
        assert_eq!(c.precision(), Some(2.0 / 3.0));
    }

    #[test]
    fn empty_counts_have_no_metrics() {
        let c = BinaryCounts::default();
        assert_eq!(c.accuracy(), None);
        assert_eq!(c.recall(), None);
        assert_eq!(c.precision(), None);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = BinaryCounts { tp: 1, tn: 2, fp: 3, fn_: 4 };
        a.merge(&BinaryCounts { tp: 10, tn: 20, fp: 30, fn_: 40 });
        assert_eq!(a, BinaryCounts { tp: 11, tn: 22, fp: 33, fn_: 44 });
    }

    #[test]
    fn paper_formatting() {
        assert_eq!(paper_pct(0.95), "95");
        assert_eq!(paper_pct(0.868), "86.8");
        assert_eq!(paper_pct(1.0), "100");
        assert_eq!(paper_pct(0.904), "90.4");
    }
}
