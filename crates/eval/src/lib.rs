//! Evaluation harness: the accuracy metric (Eq. 9), per-level scoring,
//! and one experiment runner per paper table and figure.
//!
//! The paper's evaluation section defines eight artifacts — Tables I–VI
//! and Figures 6–7 — plus the §IV-G runtime study. Each has a runner in
//! [`experiments`] that returns structured results and renders the same
//! rows the paper prints, so `examples/reproduce_all.rs` and the
//! Criterion benches regenerate everything from one code path.
//!
//! Scores are **conditional per-level accuracies** (among tables truly
//! carrying level `k`, is level `k` placed correctly?) with Eq. 9
//! accuracy also available; see [`metrics`] for the distinction.

#![forbid(unsafe_code)]

pub mod anatomy;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod scoring;

pub use anatomy::{Anatomy, FailureMode};
pub use harness::{split_corpus, train_all, ExperimentConfig, SplitCorpus, TrainedMethods};
pub use metrics::{paper_pct, BinaryCounts};
pub use scoring::{combined_accuracy, standard_keys, Labels, LevelKey, LevelScores};
