//! Shared experiment scaffolding: corpus splits and method training.
//!
//! Every accuracy experiment follows the same protocol: generate a seeded
//! corpus, split it train/test, train each method on the training split
//! (the contrastive pipeline unsupervised, the baselines on annotations),
//! then score the test split. This module owns that protocol so Tables
//! V–VI, Figures 6–7 and the ablations cannot drift apart.

use tabmeta_baselines::{
    ForestConfig, LayoutDetector, LayoutDetectorConfig, Pytheas, PytheasConfig,
    RandomForestDetector, TableClassifier,
};
use tabmeta_core::{Pipeline, PipelineConfig};
use tabmeta_corpora::{CorpusKind, GeneratorConfig};
use tabmeta_tabular::Table;

/// How big an experiment run is.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Tables generated per corpus.
    pub tables_per_corpus: usize,
    /// Master seed (corpora, model training and simulated draws derive
    /// from it deterministically).
    pub seed: u64,
}

impl ExperimentConfig {
    /// Quick runs for tests and examples (~200 tables per corpus).
    pub fn quick(seed: u64) -> Self {
        Self { tables_per_corpus: 200, seed }
    }

    /// Full runs for EXPERIMENTS.md (~600 tables per corpus).
    pub fn full(seed: u64) -> Self {
        Self { tables_per_corpus: 600, seed }
    }
}

/// A train/test split of one generated corpus.
#[derive(Debug, Clone)]
pub struct SplitCorpus {
    /// Which corpus.
    pub kind: CorpusKind,
    /// Training tables (70%).
    pub train: Vec<Table>,
    /// Held-out test tables (30%).
    pub test: Vec<Table>,
}

/// Generate and split one corpus (70/30, deterministic).
pub fn split_corpus(kind: CorpusKind, config: &ExperimentConfig) -> SplitCorpus {
    let corpus =
        kind.generate(&GeneratorConfig { n_tables: config.tables_per_corpus, seed: config.seed });
    let cut = corpus.tables.len() * 7 / 10;
    let mut tables = corpus.tables;
    let test = tables.split_off(cut);
    SplitCorpus { kind, train: tables, test }
}

/// All trained methods for one corpus.
pub struct TrainedMethods {
    /// The contrastive pipeline (ours).
    pub ours: Pipeline,
    /// Pytheas fuzzy-rule line classifier.
    pub pytheas: Pytheas,
    /// Table-Transformer-style layout detector.
    pub layout: LayoutDetector,
    /// Fang et al. Random-Forest header detector.
    pub forest: RandomForestDetector,
}

/// Train every method on the same training split.
///
/// Our pipeline never touches `truth`; the baselines train on it (they
/// are supervised by design, which is the annotation cost §IV-G notes).
pub fn train_all(split: &SplitCorpus, config: &ExperimentConfig) -> TrainedMethods {
    let ours = Pipeline::train(&split.train, &PipelineConfig::fast_seeded(config.seed))
        .expect("pipeline training on a generated corpus succeeds");
    let pytheas = Pytheas::train(&split.train, PytheasConfig::default());
    let layout = LayoutDetector::train(&split.train, LayoutDetectorConfig::default());
    let forest = RandomForestDetector::train(
        &split.train,
        ForestConfig { seed: config.seed ^ 0xf0, ..ForestConfig::default() },
    );
    TrainedMethods { ours, pytheas, layout, forest }
}

/// Classify with any baseline into the scoring shape.
pub fn baseline_labels<C: TableClassifier + ?Sized>(
    method: &C,
    table: &Table,
) -> crate::scoring::Labels {
    method.classify_table(table).into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_seventy_thirty_and_deterministic() {
        let cfg = ExperimentConfig::quick(5);
        let a = split_corpus(CorpusKind::Wdc, &cfg);
        let b = split_corpus(CorpusKind::Wdc, &cfg);
        assert_eq!(a.train.len(), 140);
        assert_eq!(a.test.len(), 60);
        assert_eq!(a.train[0], b.train[0]);
        assert_eq!(a.test.last(), b.test.last());
    }

    #[test]
    fn splits_do_not_overlap() {
        let cfg = ExperimentConfig::quick(9);
        let s = split_corpus(CorpusKind::Ckg, &cfg);
        let train_ids: Vec<u64> = s.train.iter().map(|t| t.id).collect();
        assert!(s.test.iter().all(|t| !train_ids.contains(&t.id)));
    }

    #[test]
    fn all_methods_train_on_one_split() {
        let cfg = ExperimentConfig { tables_per_corpus: 120, seed: 3 };
        let split = split_corpus(CorpusKind::Saus, &cfg);
        let methods = train_all(&split, &cfg);
        let t = &split.test[0];
        let ours: crate::scoring::Labels = methods.ours.classify(t).into();
        assert_eq!(ours.rows.len(), t.n_rows());
        let p = baseline_labels(&methods.pytheas, t);
        assert_eq!(p.rows.len(), t.n_rows());
        let l = baseline_labels(&methods.layout, t);
        assert_eq!(l.columns.len(), t.n_cols());
        let f = baseline_labels(&methods.forest, t);
        assert_eq!(f.rows.len(), t.n_rows());
    }
}
