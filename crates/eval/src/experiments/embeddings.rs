//! Embedding-model comparison: Word2Vec vs CharGram (the BioBERT
//! substitute), §III-A's pairing.
//!
//! The paper pairs Word2Vec (fast, word-level) with BioBERT (domain-robust
//! for rare biomedical terms). Our CharGram model fills BioBERT's role via
//! hashed character n-grams; this experiment verifies the *reason* for the
//! pairing — subword models survive out-of-vocabulary terms — by training
//! on one slice of the corpus and testing on tables whose vocabulary was
//! partially unseen, plus an explicit OOV-rate stress: test tables have a
//! fraction of header terms replaced with unseen morphological variants.

use crate::harness::{split_corpus, ExperimentConfig};
use crate::scoring::{standard_keys, LevelKey, LevelScores};
use tabmeta_core::{Pipeline, PipelineConfig};
use tabmeta_corpora::CorpusKind;
use tabmeta_tabular::Table;

/// One embedding variant's outcome.
#[derive(Debug, Clone)]
pub struct EmbeddingOutcome {
    /// "word2vec" or "chargram".
    pub model: &'static str,
    /// Seconds spent training.
    pub train_secs: f64,
    /// Scores on the unmodified test split.
    pub clean: LevelScores,
    /// Scores on the OOV-stressed test split.
    pub stressed: LevelScores,
}

/// Replace a fraction of header terms with unseen morphological variants
/// ("enrollment" → "enrollmentz") — words no training sentence contained,
/// which word-level models cannot embed but subword models still can.
fn stress_tables(tables: &[Table], frac: f32) -> Vec<Table> {
    tables
        .iter()
        .map(|t| {
            let mut t = t.clone();
            let truth = t.truth.clone().expect("generated tables carry truth");
            let hmd = truth.hmd_depth() as usize;
            for r in 0..hmd {
                for c in 0..t.n_cols() {
                    // Deterministic per-cell draw.
                    let h = (t.id ^ ((r as u64) << 17) ^ ((c as u64) << 3))
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    if ((h >> 16) % 1000) as f32 / 1000.0 < frac {
                        let cell = t.cell_mut(r, c);
                        if !cell.is_blank() && !cell.text.chars().any(|ch| ch.is_ascii_digit()) {
                            cell.text = format!("{}z", cell.text);
                        }
                    }
                }
            }
            t
        })
        .collect()
}

/// Run the comparison on a biomedical corpus (where BioBERT mattered).
pub fn run(config: &ExperimentConfig) -> Vec<EmbeddingOutcome> {
    let split = split_corpus(CorpusKind::Cord19, config);
    let stressed = stress_tables(&split.test, 0.65);
    let mut out = Vec::new();
    for (model, cfg) in [
        ("word2vec", PipelineConfig::fast_seeded(config.seed)),
        ("chargram", PipelineConfig::fast_chargram(config.seed)),
    ] {
        let (pipeline, elapsed) =
            tabmeta_obs::timed(tabmeta_obs::names::SPAN_EVAL_EMBEDDINGS_TRAIN, || {
                Pipeline::train(&split.train, &cfg).expect("trains")
            });
        let train_secs = elapsed.as_secs_f64();
        let clean =
            LevelScores::evaluate(&split.test, standard_keys(), |t| pipeline.classify(t).into());
        let stressed_scores =
            LevelScores::evaluate(&stressed, standard_keys(), |t| pipeline.classify(t).into());
        out.push(EmbeddingOutcome { model, train_secs, clean, stressed: stressed_scores });
    }
    out
}

/// Render the comparison.
pub fn render(outcomes: &[EmbeddingOutcome]) -> String {
    use crate::metrics::paper_pct;
    let mut out = String::from("Embedding models on CORD-19 (clean → OOV-stressed headers):\n");
    out.push_str(&format!(
        "{:<10} {:>8} {:>16} {:>16} {:>16}\n",
        "model", "train_s", "HMD1", "HMD2", "VMD1"
    ));
    for o in outcomes {
        let pair = |k: LevelKey| {
            let a = o.clean.level_accuracy(k).map(paper_pct).unwrap_or_else(|| "·".into());
            let b = o.stressed.level_accuracy(k).map(paper_pct).unwrap_or_else(|| "·".into());
            format!("{a} → {b}")
        };
        out.push_str(&format!(
            "{:<10} {:>8.2} {:>16} {:>16} {:>16}\n",
            o.model,
            o.train_secs,
            pair(LevelKey::Hmd(1)),
            pair(LevelKey::Hmd(2)),
            pair(LevelKey::Vmd(1)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chargram_is_more_oov_robust() {
        let outcomes = run(&ExperimentConfig { tables_per_corpus: 250, seed: 17 });
        let w2v = &outcomes[0];
        let cg = &outcomes[1];
        assert_eq!(w2v.model, "word2vec");
        assert_eq!(cg.model, "chargram");

        let h1 = |s: &LevelScores| s.level_accuracy(LevelKey::Hmd(1)).unwrap();
        // Both are strong on clean tables.
        assert!(h1(&w2v.clean) > 0.9);
        assert!(h1(&cg.clean) > 0.85);
        // Under OOV stress the word model degrades more than the subword
        // model (BioBERT's raison d'être in §III-A).
        let w2v_drop = h1(&w2v.clean) - h1(&w2v.stressed);
        let cg_drop = h1(&cg.clean) - h1(&cg.stressed);
        assert!(
            cg_drop < w2v_drop + 0.01,
            "subword model must degrade no more: chargram {cg_drop:.3} vs word2vec {w2v_drop:.3}"
        );
    }

    #[test]
    fn stress_replaces_header_terms_only() {
        let split =
            split_corpus(CorpusKind::Cord19, &ExperimentConfig { tables_per_corpus: 60, seed: 2 });
        let stressed = stress_tables(&split.test, 1.0);
        let mut changed = 0;
        for (a, b) in split.test.iter().zip(&stressed) {
            let hmd = a.truth.as_ref().unwrap().hmd_depth() as usize;
            for r in 0..a.n_rows() {
                for c in 0..a.n_cols() {
                    let (x, y) = (&a.cell(r, c).text, &b.cell(r, c).text);
                    if x != y {
                        changed += 1;
                        assert!(r < hmd, "only header rows may change");
                        assert_eq!(y, &format!("{x}z"));
                    }
                }
            }
        }
        assert!(changed > 50, "stress must actually change headers: {changed}");
    }

    #[test]
    fn render_shows_transitions() {
        let outcomes = run(&ExperimentConfig { tables_per_corpus: 120, seed: 4 });
        let s = render(&outcomes);
        assert!(s.contains("word2vec"));
        assert!(s.contains("chargram"));
        assert!(s.contains("→"));
    }
}
