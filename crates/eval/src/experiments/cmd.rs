//! CMD (central/mid-table horizontal metadata) detection — the capability
//! the paper's problem statement defines (Def. 4) and the LLM error
//! analysis highlights ("LLM struggles with accurately identifying CMD"),
//! but never tabulates. We tabulate it: CMD recall and precision for our
//! method, Pytheas ("subheader"), the layout detector ("projected row
//! header") and the simulated LLMs.

use crate::harness::{baseline_labels, split_corpus, train_all, ExperimentConfig};
use crate::metrics::{paper_pct, BinaryCounts};
use crate::scoring::{score_table, Labels, LevelKey};
use tabmeta_baselines::{LlmKind, SimulatedLlm, TableClassifier};
use tabmeta_corpora::CorpusKind;
use tabmeta_tabular::Table;

/// One method's CMD performance.
#[derive(Debug, Clone)]
pub struct CmdScore {
    /// Method name.
    pub method: String,
    /// Confusion counts over tables (positive = "table has CMD and every
    /// CMD row was labeled CMD").
    pub counts: BinaryCounts,
}

impl CmdScore {
    /// CMD recall (the number the error analysis is about).
    pub fn recall(&self) -> Option<f64> {
        self.counts.recall()
    }

    /// CMD precision (false claims on CMD-free tables hurt here).
    pub fn precision(&self) -> Option<f64> {
        self.counts.precision()
    }
}

fn score_method<F: FnMut(&Table) -> Labels>(
    name: &str,
    tables: &[Table],
    mut classify: F,
) -> CmdScore {
    let mut counts = vec![BinaryCounts::default()];
    for t in tables {
        let labels = classify(t);
        score_table(t, &labels, &[LevelKey::Cmd], &mut counts);
    }
    CmdScore { method: name.to_string(), counts: counts[0] }
}

/// Run the CMD comparison on one corpus.
pub fn run(kind: CorpusKind, config: &ExperimentConfig) -> Vec<CmdScore> {
    let split = split_corpus(kind, config);
    let methods = train_all(&split, config);
    let gpt4 = SimulatedLlm::new(LlmKind::Gpt4, config.seed);
    vec![
        score_method("Our method", &split.test, |t| methods.ours.classify(t).into()),
        score_method("Pytheas (subheader)", &split.test, |t| baseline_labels(&methods.pytheas, t)),
        score_method("TT (projected row header)", &split.test, |t| {
            baseline_labels(&methods.layout, t)
        }),
        score_method(gpt4.name(), &split.test, |t| gpt4.classify_table(t).into()),
    ]
}

/// Render the CMD block.
pub fn render(kind: CorpusKind, scores: &[CmdScore]) -> String {
    let mut out = format!("CMD detection on {} (Def. 4 capability):\n", kind.name());
    out.push_str(&format!("{:<28} {:>8} {:>10}\n", "method", "recall", "precision"));
    for s in scores {
        let fmt = |v: Option<f64>| v.map(paper_pct).unwrap_or_else(|| "·".into());
        out.push_str(&format!(
            "{:<28} {:>8} {:>10}\n",
            s.method,
            fmt(s.recall()),
            fmt(s.precision())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmd_comparison_shape() {
        let scores = run(CorpusKind::Ckg, &ExperimentConfig { tables_per_corpus: 300, seed: 33 });
        assert_eq!(scores.len(), 4);
        let by = |name: &str| {
            scores
                .iter()
                .find(|s| s.method.starts_with(name))
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let ours = by("Our method").recall().expect("CKG has CMD tables");
        let llm = by("GPT-4").recall().unwrap();
        assert!(ours > 0.5, "our CMD recall: {ours}");
        assert!(llm < 0.6, "LLMs struggle with CMD (§IV-H): {llm}");
        assert!(ours > llm, "{ours} vs {llm}");
        // Rule/layout baselines do detect subheaders (their design goal).
        assert!(by("Pytheas").recall().unwrap() > 0.4);
    }

    #[test]
    fn render_lists_all_methods() {
        let scores = run(CorpusKind::Saus, &ExperimentConfig { tables_per_corpus: 200, seed: 3 });
        let text = render(CorpusKind::Saus, &scores);
        assert!(text.contains("Our method"));
        assert!(text.contains("Pytheas"));
        assert!(text.contains("projected row header"));
    }
}
