//! §IV-G: training and inference runtime.
//!
//! The paper reports three things we reproduce in shape on laptop-scale
//! corpora: (1) training cost ordering (ours > TT > Pytheas in wall time,
//! but the baselines additionally pay for manual annotation), (2)
//! per-table inference latency — ours is the slowest per table because of
//! embedding work, and (3) *linear* scaling of inference time with table
//! size for every method. A hybrid router (simple tables → cheap SOTA,
//! complex tables → ours) is measured as well.

use crate::harness::{split_corpus, train_all, ExperimentConfig, TrainedMethods};
use tabmeta_baselines::TableClassifier;
use tabmeta_corpora::{CorpusKind, GeneratorConfig};
use tabmeta_linalg::{linear_fit, LinearFit};
use tabmeta_obs::{names, timed};
use tabmeta_tabular::Table;

/// Wall-clock training cost per method.
#[derive(Debug, Clone)]
pub struct TrainingCost {
    /// (method name, seconds, needs manual annotation).
    pub entries: Vec<(String, f64, bool)>,
}

/// Measure training cost on one corpus.
pub fn training_cost(kind: CorpusKind, config: &ExperimentConfig) -> TrainingCost {
    use tabmeta_baselines::{
        ForestConfig, LayoutDetector, LayoutDetectorConfig, Pytheas, PytheasConfig,
        RandomForestDetector,
    };
    use tabmeta_core::{Pipeline, PipelineConfig};

    let split = split_corpus(kind, config);
    let mut entries = Vec::new();

    let (_, elapsed) = timed(names::SPAN_EVAL_TRAIN_OURS, || {
        Pipeline::train(&split.train, &PipelineConfig::fast_seeded(config.seed)).unwrap()
    });
    entries.push(("Our method".to_string(), elapsed.as_secs_f64(), false));

    let (_, elapsed) = timed(names::SPAN_EVAL_TRAIN_PYTHEAS, || {
        Pytheas::train(&split.train, PytheasConfig::default())
    });
    entries.push(("Pytheas".to_string(), elapsed.as_secs_f64(), true));

    let (_, elapsed) = timed(names::SPAN_EVAL_TRAIN_LAYOUT, || {
        LayoutDetector::train(&split.train, LayoutDetectorConfig::default())
    });
    entries.push(("TableTransformer(layout)".to_string(), elapsed.as_secs_f64(), true));

    let (_, elapsed) = timed(names::SPAN_EVAL_TRAIN_RF, || {
        RandomForestDetector::train(&split.train, ForestConfig::default())
    });
    entries.push(("RandomForest".to_string(), elapsed.as_secs_f64(), true));

    TrainingCost { entries }
}

/// Training wall time per worker count — the Hogwild scaling experiment.
#[derive(Debug, Clone)]
pub struct ThreadsSweep {
    /// Corpus the sweep trained on.
    pub corpus: CorpusKind,
    /// (threads, seconds) per training run.
    pub entries: Vec<(usize, f64)>,
}

impl ThreadsSweep {
    /// Speedup of the fastest multi-threaded run over the sequential run
    /// (1.0 when only one entry exists).
    pub fn best_speedup(&self) -> f64 {
        let Some(&(_, base)) = self.entries.iter().find(|(t, _)| *t == 1) else {
            return 1.0;
        };
        self.entries
            .iter()
            .filter(|(t, _)| *t > 1)
            .map(|&(_, secs)| base / secs)
            .fold(1.0, f64::max)
    }
}

/// Train the pipeline once per worker count and record wall time. Each
/// run's seconds also land in a `train.threads_sweep.t{n}_secs` gauge so
/// telemetry snapshots carry the sweep.
pub fn training_threads_sweep(
    kind: CorpusKind,
    threads: &[usize],
    config: &ExperimentConfig,
) -> ThreadsSweep {
    use tabmeta_core::{Pipeline, PipelineConfig};
    let split = split_corpus(kind, config);
    let obs = tabmeta_obs::global();
    let entries = threads
        .iter()
        .map(|&n| {
            let cfg = PipelineConfig::fast_seeded(config.seed).with_threads(n);
            let (_, elapsed) = timed(names::SPAN_EVAL_TRAIN_THREADS_SWEEP, || {
                Pipeline::train(&split.train, &cfg).unwrap()
            });
            let secs = elapsed.as_secs_f64();
            obs.gauge(&format!("{}t{n}_secs", names::TRAIN_THREADS_SWEEP_PREFIX)).set(secs);
            (n, secs)
        })
        .collect();
    ThreadsSweep { corpus: kind, entries }
}

/// Render the threads sweep.
pub fn render_threads(sweep: &ThreadsSweep) -> String {
    let mut out = format!("Training threads sweep ({:?}, Hogwild SGNS):\n", sweep.corpus);
    let base = sweep.entries.iter().find(|(t, _)| *t == 1).map(|&(_, s)| s);
    for &(threads, secs) in &sweep.entries {
        match base {
            Some(b) if b > 0.0 => out.push_str(&format!(
                "  threads={threads:<3} {secs:>8.2}s  ({:.2}x vs sequential)\n",
                b / secs
            )),
            _ => out.push_str(&format!("  threads={threads:<3} {secs:>8.2}s\n")),
        }
    }
    out
}

/// Per-method inference latency over a size sweep.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Method name.
    pub method: String,
    /// (cells, mean seconds per table) points.
    pub points: Vec<(usize, f64)>,
    /// Least-squares fit of seconds against cells.
    pub fit: LinearFit,
}

impl ScalingResult {
    /// Whether latency grows (close to) linearly with cell count —
    /// the §IV-G claim for every method.
    pub fn is_linear(&self) -> bool {
        self.fit.r_squared > 0.9
    }
}

/// Build size-sweep tables: same corpus flavour, growing data regions.
fn sweep_tables(sizes: &[(usize, usize)], seed: u64) -> Vec<Vec<Table>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabmeta_corpora::TableBuilder;
    sizes
        .iter()
        .enumerate()
        .map(|(i, &(rows, cols))| {
            let mut profile = CorpusKind::Ckg.profile();
            profile.data_rows = (rows, rows);
            profile.data_cols = (cols, cols);
            let mut builder = TableBuilder::new(profile);
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 8);
            (0..16).map(|id| builder.build(id as u64, &mut rng)).collect()
        })
        .collect()
}

/// Noise-robust per-table latency: best of three passes (the minimum is
/// the standard estimator under scheduler contention).
fn time_per_table<F: FnMut(&Table)>(tables: &[Table], mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (_, elapsed) = timed(names::SPAN_EVAL_INFERENCE_PASS, || {
            for t in tables {
                f(t);
            }
        });
        best = best.min(elapsed.as_secs_f64());
    }
    best / tables.len() as f64
}

/// The inference scaling experiment: per-table seconds vs table size for
/// ours, Pytheas and the layout detector.
pub fn inference_scaling(config: &ExperimentConfig) -> Vec<ScalingResult> {
    let split = split_corpus(CorpusKind::Ckg, config);
    let methods = train_all(&split, config);
    let sizes = [(5, 4), (10, 5), (20, 8), (40, 10), (80, 12)];
    let buckets = sweep_tables(&sizes, config.seed);

    let mut out = Vec::new();
    let mut measure = |name: &str, f: &mut dyn FnMut(&Table)| {
        let mut points = Vec::new();
        for tables in &buckets {
            let cells = tables[0].n_cells();
            points.push((cells, time_per_table(tables, &mut *f)));
        }
        let pairs: Vec<(f64, f64)> = points.iter().map(|(c, s)| (*c as f64, *s)).collect();
        let fit = linear_fit(&pairs).expect("sweep has distinct sizes");
        out.push(ScalingResult { method: name.to_string(), points, fit });
    };
    let TrainedMethods { ours, pytheas, layout, .. } = &methods;
    // Cold per-table cost (fresh scratch per call): the §IV-G claim is
    // about the inherent embedding-based processing of one table. The
    // pooled `Pipeline::classify` amortizes tokenization/vocabulary work
    // across calls and would measure the memo instead of the method (see
    // BENCH_classify.json for that warm batched trajectory).
    measure("Our method", &mut |t| {
        let mut scratch = ours.classify_scratch();
        let _ = ours.classify_with_scratch(t, &mut scratch);
    });
    measure("Pytheas", &mut |t| {
        let _ = pytheas.classify_table(t);
    });
    measure("TableTransformer(layout)", &mut |t| {
        let _ = layout.classify_table(t);
    });
    out
}

/// §IV-G "Hybrid solution": route simple (relational-looking) tables to
/// the cheap baseline and complex tables to the pipeline. Returns
/// (hybrid mean sec/table, ours-only mean sec/table, fraction routed to
/// the baseline).
pub fn hybrid_routing(config: &ExperimentConfig) -> (f64, f64, f64) {
    let split = split_corpus(CorpusKind::Wdc, config);
    let methods = train_all(&split, config);
    let corpus =
        CorpusKind::Wdc.generate(&GeneratorConfig { n_tables: 200, seed: config.seed ^ 0x42 });

    // The router consults surface structure only: multi-row headers or a
    // blank-heavy leading column mean "complex".
    let complex = |t: &Table| -> bool {
        use tabmeta_tabular::Axis;
        t.blank_fraction(Axis::Column, 0) > 0.2 || t.n_cols() > 6
    };

    // Cold per-table costs (fresh scratch per call), as in
    // [`inference_scaling`]: the hybrid's premise — cheap rules for
    // simple tables, expensive embeddings for complex ones — is a claim
    // about the unamortized cost of one table. The pooled warm path
    // (BENCH_classify.json) undercuts Pytheas at this scale, which is a
    // property of our memoization, not of the paper's cost model.
    let ours_only = time_per_table(&corpus.tables, |t| {
        let mut scratch = methods.ours.classify_scratch();
        let _ = methods.ours.classify_with_scratch(t, &mut scratch);
    });
    let routed_cheap = corpus.tables.iter().filter(|t| !complex(t)).count();
    let hybrid = time_per_table(&corpus.tables, |t| {
        if complex(t) {
            let mut scratch = methods.ours.classify_scratch();
            let _ = methods.ours.classify_with_scratch(t, &mut scratch);
        } else {
            let _ = methods.pytheas.classify_table(t);
        }
    });
    (hybrid, ours_only, routed_cheap as f64 / corpus.tables.len() as f64)
}

/// Render the runtime report.
pub fn render(cost: &TrainingCost, scaling: &[ScalingResult]) -> String {
    let mut out = String::from("Runtime (§IV-G reproduction, laptop scale)\n\nTraining:\n");
    for (name, secs, annotated) in &cost.entries {
        out.push_str(&format!(
            "  {:<26} {:>8.2}s{}\n",
            name,
            secs,
            if *annotated { "  (+ manual annotation cost)" } else { "  (unsupervised)" }
        ));
    }
    out.push_str("\nInference scaling (per-table seconds by cell count):\n");
    for s in scaling {
        out.push_str(&format!("  {:<26} ", s.method));
        for (cells, secs) in &s.points {
            out.push_str(&format!("{cells}c:{:.2}ms  ", secs * 1e3));
        }
        out.push_str(&format!(
            "R²={:.3}{}\n",
            s.fit.r_squared,
            if s.is_linear() { " (linear)" } else { "" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_scales_linearly_for_every_method() {
        let results = inference_scaling(&ExperimentConfig { tables_per_corpus: 120, seed: 5 });
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(
                r.is_linear(),
                "{} should scale linearly: R²={} points={:?}",
                r.method,
                r.fit.r_squared,
                r.points
            );
            // Latency strictly grows from smallest to largest tables.
            assert!(r.points.last().unwrap().1 > r.points[0].1);
        }
    }

    #[test]
    fn ours_pays_an_embedding_overhead_over_pytheas() {
        // §IV-G: "our method has additional computational overhead due to
        // embedding-based processing" — the comparison that transfers to
        // our substrate is against the rule-based Pytheas (the TT
        // surrogate's cost profile is an artifact of the stand-in, not of
        // DETR inference).
        let results = inference_scaling(&ExperimentConfig { tables_per_corpus: 120, seed: 7 });
        let mean = |r: &ScalingResult| {
            r.points.iter().map(|(_, s)| *s).sum::<f64>() / r.points.len() as f64
        };
        let ours = results.iter().find(|r| r.method == "Our method").unwrap();
        let pytheas = results.iter().find(|r| r.method == "Pytheas").unwrap();
        assert!(
            mean(ours) > mean(pytheas),
            "embedding work must cost more than fuzzy rules: {} vs {}",
            mean(ours),
            mean(pytheas)
        );
    }

    #[test]
    fn training_cost_reports_annotation_burden() {
        let cost =
            training_cost(CorpusKind::Wdc, &ExperimentConfig { tables_per_corpus: 100, seed: 2 });
        assert_eq!(cost.entries.len(), 4);
        let ours = &cost.entries[0];
        assert!(!ours.2, "our method is unsupervised");
        assert!(cost.entries[1..].iter().all(|e| e.2), "baselines need annotation");
        assert!(ours.1 > 0.0);
    }

    #[test]
    fn hybrid_routing_is_no_slower_and_routes_meaningfully() {
        // At laptop scale both paths cost tens of microseconds, so a
        // strict "hybrid < ours" flakes under scheduler noise; the stable
        // claims are (a) the router sends a meaningful fraction cheap and
        // (b) the hybrid is not materially slower.
        let (hybrid, ours_only, frac) =
            hybrid_routing(&ExperimentConfig { tables_per_corpus: 100, seed: 3 });
        assert!(frac > 0.1, "some tables must route to the cheap path: {frac}");
        assert!(
            hybrid < ours_only * 1.15,
            "hybrid {hybrid} must not be materially slower than ours-only {ours_only}"
        );
    }

    #[test]
    fn threads_sweep_trains_at_every_count() {
        let sweep = training_threads_sweep(
            CorpusKind::Ckg,
            &[1, 2, 4],
            &ExperimentConfig { tables_per_corpus: 60, seed: 9 },
        );
        assert_eq!(sweep.entries.len(), 3);
        assert!(sweep.entries.iter().all(|(_, secs)| *secs > 0.0));
        assert!(sweep.best_speedup() > 0.0);
        let rendered = render_threads(&sweep);
        assert!(rendered.contains("threads=1"));
        assert!(rendered.contains("threads=4"));
    }

    #[test]
    fn render_mentions_linearity() {
        let cfg = ExperimentConfig { tables_per_corpus: 100, seed: 4 };
        let cost = training_cost(CorpusKind::Wdc, &cfg);
        let scaling = inference_scaling(&cfg);
        let s = render(&cost, &scaling);
        assert!(s.contains("unsupervised"));
        assert!(s.contains("R²="));
    }
}
