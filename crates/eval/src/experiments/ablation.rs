//! Ablations beyond the paper's tables, for the design choices DESIGN.md
//! calls out:
//!
//! * **contrastive fine-tuning on/off** — the paper's central mechanism;
//!   without it the deep-level geometry never forms,
//! * **embedding dimensionality** — §IV-C reports "no notable performance
//!   difference" above 300 dims but significant slowdown; we sweep
//!   dimensions and record both accuracy and wall time,
//! * **markup availability** — how much of the bootstrapping signal the
//!   method needs before accuracy degrades (§III-B's "partial markup"),
//! * **hierarchy echo** — how strongly deep-VMD accuracy depends on levels
//!   sharing vocabulary (the Fig. 1(a) "State University of New York"
//!   pattern the corpus generator reproduces).

use crate::harness::ExperimentConfig;
use crate::scoring::{standard_keys, LevelKey, LevelScores};
use tabmeta_core::{Pipeline, PipelineConfig};
use tabmeta_corpora::{CorpusKind, TableBuilder};
use tabmeta_tabular::Table;

/// One ablation variant's outcome.
#[derive(Debug, Clone)]
pub struct AblationOutcome {
    /// Variant label ("finetune=off", "dim=96", …).
    pub variant: String,
    /// Seconds spent training.
    pub train_secs: f64,
    /// Per-level scores on the shared test split.
    pub scores: LevelScores,
}

impl AblationOutcome {
    /// Convenience: accuracy at one level.
    pub fn at(&self, key: LevelKey) -> Option<f64> {
        self.scores.level_accuracy(key)
    }
}

fn train_and_score(
    label: impl Into<String>,
    train: &[Table],
    test: &[Table],
    config: &PipelineConfig,
) -> AblationOutcome {
    let (pipeline, elapsed) =
        tabmeta_obs::timed(tabmeta_obs::names::SPAN_EVAL_ABLATION_TRAIN, || {
            Pipeline::train(train, config).expect("ablation training succeeds")
        });
    let train_secs = elapsed.as_secs_f64();
    let scores = LevelScores::evaluate(test, standard_keys(), |t| pipeline.classify(t).into());
    AblationOutcome { variant: label.into(), train_secs, scores }
}

/// Fine-tuning on vs off.
///
/// Run on a *low-echo* CKG variant: when hierarchy levels share little
/// vocabulary, raw SGNS geometry does not separate deep metadata from
/// data, and the contrastive objective is what builds the gap — the
/// regime where the paper's mechanism is load-bearing. (On the standard
/// high-echo corpus the co-occurrence statistics alone nearly suffice;
/// see [`echo_ablation`].)
pub fn finetune_ablation(config: &ExperimentConfig) -> Vec<AblationOutcome> {
    let tables = corpus_with(config.tables_per_corpus, config.seed, |p| {
        p.vmd_hier_echo = 0.15;
    });
    let cut = tables.len() * 7 / 10;
    vec![
        train_and_score(
            "finetune=on",
            &tables[..cut],
            &tables[cut..],
            &PipelineConfig::fast_seeded(config.seed),
        ),
        train_and_score(
            "finetune=off",
            &tables[..cut],
            &tables[cut..],
            &PipelineConfig::fast_seeded(config.seed).without_finetune(),
        ),
    ]
}

/// Embedding dimensionality sweep (§IV-C).
pub fn dimension_ablation(config: &ExperimentConfig, dims: &[usize]) -> Vec<AblationOutcome> {
    let split = crate::harness::split_corpus(CorpusKind::Ckg, config);
    dims.iter()
        .map(|&dim| {
            let mut cfg = PipelineConfig::fast_seeded(config.seed);
            if let tabmeta_core::EmbeddingChoice::Word2Vec(s) = &mut cfg.embedding {
                s.dim = dim;
            }
            train_and_score(format!("dim={dim}"), &split.train, &split.test, &cfg)
        })
        .collect()
}

/// Generate a CKG-flavoured corpus with one profile field overridden.
fn corpus_with<F: FnOnce(&mut tabmeta_corpora::CorpusProfile)>(
    n: usize,
    seed: u64,
    tweak: F,
) -> Vec<Table> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut profile = CorpusKind::Ckg.profile();
    tweak(&mut profile);
    let mut builder = TableBuilder::new(profile);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64).map(|id| builder.build(id, &mut rng)).collect()
}

/// Markup availability sweep: how much of the weak-label signal the
/// bootstrap needs (markup_prob ∈ {0, 0.3, 0.6, 0.9}).
pub fn markup_ablation(config: &ExperimentConfig) -> Vec<AblationOutcome> {
    [0.0f32, 0.3, 0.6, 0.9]
        .iter()
        .map(|&prob| {
            let tables = corpus_with(config.tables_per_corpus, config.seed, |p| {
                p.markup_prob = prob;
            });
            let cut = tables.len() * 7 / 10;
            train_and_score(
                format!("markup_prob={prob}"),
                &tables[..cut],
                &tables[cut..],
                &PipelineConfig::fast_seeded(config.seed),
            )
        })
        .collect()
}

/// Hierarchy-echo sweep: deep-VMD accuracy as a function of cross-level
/// vocabulary sharing.
pub fn echo_ablation(config: &ExperimentConfig) -> Vec<AblationOutcome> {
    [0.0f32, 0.3, 0.6]
        .iter()
        .map(|&echo| {
            let tables = corpus_with(config.tables_per_corpus, config.seed, |p| {
                p.vmd_hier_echo = echo;
            });
            let cut = tables.len() * 7 / 10;
            train_and_score(
                format!("vmd_hier_echo={echo}"),
                &tables[..cut],
                &tables[cut..],
                &PipelineConfig::fast_seeded(config.seed),
            )
        })
        .collect()
}

/// Algorithm-1 walk vs the naive reference-only labeler: what the
/// pairwise angle walk (the paper's contribution) buys over classifying
/// each level independently against the reference centroids.
pub fn strategy_ablation(config: &ExperimentConfig) -> Vec<AblationOutcome> {
    use tabmeta_core::classifier::WalkStrategy;
    let split = crate::harness::split_corpus(CorpusKind::Ckg, config);
    let mut walk_cfg = PipelineConfig::fast_seeded(config.seed);
    walk_cfg.classifier.strategy = WalkStrategy::AngleWalk;
    let mut ref_cfg = PipelineConfig::fast_seeded(config.seed);
    ref_cfg.classifier.strategy = WalkStrategy::ReferenceOnly;
    vec![
        train_and_score("angle_walk (Alg. 1)", &split.train, &split.test, &walk_cfg),
        train_and_score("reference_only", &split.train, &split.test, &ref_cfg),
    ]
}

/// Render an ablation block.
pub fn render(title: &str, outcomes: &[AblationOutcome]) -> String {
    use crate::metrics::paper_pct;
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<22} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6}\n",
        "variant", "train_s", "HMD1", "HMD3", "VMD1", "VMD2", "VMD3"
    ));
    for o in outcomes {
        let cell = |k: LevelKey| o.at(k).map(paper_pct).unwrap_or_else(|| "·".to_string());
        out.push_str(&format!(
            "{:<22} {:>8.2} {:>6} {:>6} {:>6} {:>6} {:>6}\n",
            o.variant,
            o.train_secs,
            cell(LevelKey::Hmd(1)),
            cell(LevelKey::Hmd(3)),
            cell(LevelKey::Vmd(1)),
            cell(LevelKey::Vmd(2)),
            cell(LevelKey::Vmd(3)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig { tables_per_corpus: 200, seed: 11 }
    }

    #[test]
    fn finetuning_carries_the_deep_levels() {
        let outcomes = finetune_ablation(&cfg());
        let on = &outcomes[0];
        let off = &outcomes[1];
        let v2_on = on.at(LevelKey::Vmd(2)).unwrap();
        let v2_off = off.at(LevelKey::Vmd(2)).unwrap();
        assert!(v2_on > v2_off + 0.05, "fine-tuning must lift deep VMD: on={v2_on} off={v2_off}");
        // Level 1 is robust either way (the ranges alone carry it).
        assert!(off.at(LevelKey::Hmd(1)).unwrap() > 0.9);
    }

    #[test]
    fn dimension_sweep_shows_diminishing_returns() {
        let outcomes = dimension_ablation(&cfg(), &[16, 48, 96]);
        assert_eq!(outcomes.len(), 3);
        let h1 = |o: &AblationOutcome| o.at(LevelKey::Hmd(1)).unwrap();
        // 48 → 96 must not change HMD1 materially (§IV-C's finding).
        // (Wall-clock growth with dimension is real but too noisy to
        // assert in CI; the rendered block reports it.)
        assert!((h1(&outcomes[1]) - h1(&outcomes[2])).abs() < 0.05);
    }

    #[test]
    fn markup_free_bootstrap_still_works() {
        let outcomes = markup_ablation(&cfg());
        // Even markup_prob = 0 (pure positional fallback) keeps level-1
        // HMD strong — SAUS/CIUS in the paper prove exactly this.
        let zero = &outcomes[0];
        assert!(zero.at(LevelKey::Hmd(1)).unwrap() > 0.9);
    }

    #[test]
    fn echo_drives_deep_vmd() {
        let outcomes = echo_ablation(&cfg());
        let v3 = |o: &AblationOutcome| o.at(LevelKey::Vmd(3)).unwrap_or(0.0);
        assert!(
            v3(&outcomes[2]) > v3(&outcomes[0]),
            "vocabulary sharing across levels should lift VMD3: {} vs {}",
            v3(&outcomes[2]),
            v3(&outcomes[0])
        );
    }

    #[test]
    fn angle_walk_holds_up_against_reference_only() {
        // An honest finding of this reproduction: once contrastive
        // fine-tuning has shaped the geometry, the naive reference-only
        // labeler is competitive on within-corpus data — the walk's
        // pairwise transition ranges buy robustness, not a large accuracy
        // margin here. The assertion pins rough parity (±10%; the exact
        // gap moves with the RNG stream the synthetic corpus and SGNS
        // init consume) so a real regression in either path is caught.
        let outcomes = strategy_ablation(&cfg());
        let walk = &outcomes[0];
        let naive = &outcomes[1];
        assert!(naive.at(LevelKey::Hmd(1)).unwrap() > 0.85);
        for key in [LevelKey::Hmd(3), LevelKey::Vmd(2)] {
            let w = walk.at(key).unwrap();
            let n = naive.at(key).unwrap();
            assert!(
                w >= n - 0.10,
                "the angle walk must stay within 10% of reference-only at {key}: {w} vs {n}"
            );
        }
    }

    #[test]
    fn render_lists_variants() {
        let outcomes = finetune_ablation(&cfg());
        let s = render("Ablation: fine-tuning", &outcomes);
        assert!(s.contains("finetune=on"));
        assert!(s.contains("finetune=off"));
    }
}
