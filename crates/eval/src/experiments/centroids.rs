//! Tables I–IV: the centroid ranges and transition angles the trained
//! model records per corpus per level.
//!
//! These tables are *views of the trained [`CentroidModel`]*: Table II/III
//! show the level-1 picture per axis (`Centroid_MDE,DE`, `Centroid_DE,DE`,
//! `Δ_MDE,DE`), Tables I/IV add the level-k rows (`Centroid_MDE,MDE`,
//! `Δ_{(k−1)MDE,kMDE}`, `Δ_{kMDE,DE}`) for HMD levels 2–5 and VMD levels
//! 2–3.

use crate::harness::{split_corpus, train_all, ExperimentConfig};
use tabmeta_core::CentroidModel;
use tabmeta_corpora::CorpusKind;
use tabmeta_linalg::AngleRange;
use tabmeta_tabular::Axis;

/// One row of a centroid table.
#[derive(Debug, Clone)]
pub struct CentroidRow {
    /// Corpus name.
    pub corpus: &'static str,
    /// Metadata level this row describes (1-based).
    pub level: u8,
    /// `Centroid_MDE,DE` — the metadata↔data angle range.
    pub c_mde_de: AngleRange,
    /// `Centroid_DE,DE` — the data↔data angle range.
    pub c_de: AngleRange,
    /// `Centroid_MDE,MDE` — the metadata↔metadata range (levels ≥ 2).
    pub c_mde: Option<AngleRange>,
    /// `Δ_{(k−1)MDE,kMDE}` — mean angle from the previous level (≥ 2).
    pub delta_prev: Option<f32>,
    /// `Δ_{kMDE,DE}` — mean transition angle from this level to data.
    pub delta_to_data: Option<f32>,
    /// Tables contributing to the level statistics.
    pub support: usize,
}

/// Centroid rows for one corpus along one axis.
pub fn centroid_rows(
    corpus: CorpusKind,
    model: &CentroidModel,
    axis: Axis,
    levels: std::ops::RangeInclusive<u8>,
) -> Vec<CentroidRow> {
    let ax = model.axis(axis);
    levels
        .filter_map(|k| {
            let stats = ax.level(k)?;
            Some(CentroidRow {
                corpus: corpus.name(),
                level: k,
                c_mde_de: stats.c_mde_de,
                c_de: stats.c_de,
                c_mde: (k >= 2).then_some(stats.c_mde),
                delta_prev: stats.delta_prev_meta,
                delta_to_data: stats.delta_to_data,
                support: stats.support,
            })
        })
        .collect()
}

/// The four centroid tables for a set of corpora.
#[derive(Debug, Clone, Default)]
pub struct CentroidTables {
    /// Table I — HMD levels 2–5.
    pub table1: Vec<CentroidRow>,
    /// Table II — HMD level 1.
    pub table2: Vec<CentroidRow>,
    /// Table III — VMD level 1.
    pub table3: Vec<CentroidRow>,
    /// Table IV — VMD levels 2–3.
    pub table4: Vec<CentroidRow>,
}

/// Minimum per-level support for a row to be printed.
const MIN_SUPPORT: usize = 5;

/// Train per corpus and collect all four tables.
///
/// Deep-level rows (Tables I and IV) are reported only for levels the
/// corpus actually exhibits — measured against the *annotated* depth
/// distribution of the training split, because weak labels occasionally
/// hallucinate a deeper run on a handful of tables and a centroid row
/// built from those would be noise (the paper, likewise, prints e.g. no
/// WDC row in Table I: "excluded … due to the sparsity of high quality
/// tables with level 2 and deeper-level HMD").
pub fn run(kinds: &[CorpusKind], config: &ExperimentConfig) -> CentroidTables {
    let mut out = CentroidTables::default();
    for &kind in kinds {
        let split = split_corpus(kind, config);
        let methods = train_all(&split, config);
        let model = methods.ours.centroids();
        let truth_hmd = |k: u8| {
            split
                .train
                .iter()
                .filter(|t| t.truth.as_ref().is_some_and(|g| g.hmd_depth() >= k))
                .count()
        };
        let truth_vmd = |k: u8| {
            split
                .train
                .iter()
                .filter(|t| t.truth.as_ref().is_some_and(|g| g.vmd_depth() >= k))
                .count()
        };
        let floor = (split.train.len() / 50).max(MIN_SUPPORT);
        out.table2.extend(centroid_rows(kind, model, Axis::Row, 1..=1));
        out.table1.extend(
            centroid_rows(kind, model, Axis::Row, 2..=5)
                .into_iter()
                .filter(|r| r.support >= MIN_SUPPORT && truth_hmd(r.level) >= floor),
        );
        out.table3.extend(centroid_rows(kind, model, Axis::Column, 1..=1));
        out.table4.extend(
            centroid_rows(kind, model, Axis::Column, 2..=3)
                .into_iter()
                .filter(|r| r.support >= MIN_SUPPORT && truth_vmd(r.level) >= floor),
        );
    }
    out
}

fn fmt_range(r: &AngleRange) -> String {
    if r.is_empty() {
        "-".to_string()
    } else {
        format!("{:.0} to {:.0}", r.lo, r.hi)
    }
}

fn fmt_opt(v: Option<f32>) -> String {
    v.map(|x| format!("{x:.0}")).unwrap_or_else(|| "-".to_string())
}

/// Render one centroid table in the paper's column layout.
pub fn render(title: &str, rows: &[CentroidRow], deep: bool) -> String {
    let mut out = format!("{title}\n");
    if deep {
        out.push_str(&format!(
            "{:<11} {:<7} {:>14} {:>14} {:>16} {:>10} {:>10}\n",
            "Dataset", "MDL", "C_MDE,DE", "C_DE,DE", "C_MDE,MDE", "Δprev,k", "Δk,DE"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:<11} Lev.{:<3} {:>14} {:>14} {:>16} {:>10} {:>10}\n",
                r.corpus,
                r.level,
                fmt_range(&r.c_mde_de),
                fmt_range(&r.c_de),
                r.c_mde.as_ref().map(fmt_range).unwrap_or_else(|| "-".into()),
                fmt_opt(r.delta_prev),
                fmt_opt(r.delta_to_data),
            ));
        }
    } else {
        out.push_str(&format!(
            "{:<11} {:>14} {:>14} {:>10}\n",
            "Dataset", "C_MDE,DE", "C_DE,DE", "Δ_MDE,DE"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:<11} {:>14} {:>14} {:>10}\n",
                r.corpus,
                fmt_range(&r.c_mde_de),
                fmt_range(&r.c_de),
                fmt_opt(r.delta_to_data),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centroid_geometry_matches_paper_shape() {
        let tables = run(&[CorpusKind::Ckg], &ExperimentConfig { tables_per_corpus: 250, seed: 7 });
        assert!(!tables.table2.is_empty(), "HMD level 1 always present");
        assert!(!tables.table1.is_empty(), "CKG has deep HMD");
        assert!(!tables.table3.is_empty());
        assert!(!tables.table4.is_empty(), "CKG has deep VMD");

        for r in tables.table2.iter().chain(&tables.table3) {
            // The load-bearing ordering of the whole method: the
            // metadata↔data range sits clearly above the data↔data range.
            assert!(
                r.c_mde_de.midpoint() > r.c_de.midpoint() + 10.0,
                "C_MDE-DE must sit above C_DE: {r:?}"
            );
            let d = r.delta_to_data.expect("level-1 Δ to data");
            assert!(d > 30.0 && d < 90.0, "transition angle plausible: {d}");
        }
        for r in tables.table1.iter().chain(&tables.table4) {
            let prev = r.delta_prev.expect("deep rows have a previous level");
            let trans = r.delta_to_data.expect("deep rows have a transition");
            // Level-to-level metadata angles are smaller than the
            // metadata→data transition (what the classifier keys on).
            assert!(prev < trans + 15.0, "Δprev {prev} vs Δtrans {trans}");
        }
    }

    #[test]
    fn render_produces_paper_like_rows() {
        let tables =
            run(&[CorpusKind::Saus], &ExperimentConfig { tables_per_corpus: 150, seed: 3 });
        let t2 = render("TABLE II", &tables.table2, false);
        assert!(t2.contains("SAUS"));
        assert!(t2.contains(" to "));
        let t1 = render("TABLE I", &tables.table1, true);
        assert!(t1.contains("Lev."));
    }

    #[test]
    fn markup_free_corpora_still_get_centroids() {
        // SAUS/CIUS have no markup: the positional fallback must still
        // produce usable ranges (the paper's §III-B point).
        let tables =
            run(&[CorpusKind::Cius], &ExperimentConfig { tables_per_corpus: 150, seed: 5 });
        assert!(!tables.table2.is_empty());
        assert!(!tables.table3.is_empty());
    }
}
