//! One module per paper table/figure (plus ablations): each exposes a
//! `run(...)` returning structured results and a `render*` producing the
//! paper-style text block. The Criterion benches in `tabmeta-bench` and
//! `examples/reproduce_all.rs` are thin wrappers over these.
//!
//! | experiment | paper artifact |
//! |---|---|
//! | [`centroids`] | Tables I–IV (centroid ranges & transition angles) |
//! | [`accuracy`] | Table V, Figure 6, Figure 7 (+ §IV-F RF comparison) |
//! | [`llm`] | Table VI (simulated GPT-3.5/4, RAG) |
//! | [`runtime`] | §IV-G training/inference cost, scaling, hybrid routing |
//! | [`ablation`] | DESIGN.md §4 ablations (fine-tuning, dims, markup, echo) |
//! | [`cmd`] | CMD detection comparison (Def. 4 capability, §IV-H error analysis) |
//! | [`embeddings`] | Word2Vec vs CharGram under OOV stress (§III-A pairing) |
//! | [`similarity`] | angle vs euclidean vs jaccard separability (§III-C justification) |
//! | [`transfer`] | cross-corpus generalization (the §I heterogeneity claim, extreme form) |
//! | [`scaling`] | training-size scaling (the title's "scalable" claim) |

pub mod ablation;
pub mod accuracy;
pub mod centroids;
pub mod cmd;
pub mod embeddings;
pub mod llm;
pub mod runtime;
pub mod scaling;
pub mod similarity;
pub mod transfer;
