//! Cross-corpus transfer: the heterogeneity claim at its extreme.
//!
//! §I: *"an algorithm or model that fits one source often does not perform
//! that well on other sources unless the schemas are similar."* Within-
//! corpus experiments hold out unseen sources; this one holds out an
//! entire **corpus**: train on A, classify B with a completely different
//! domain vocabulary. The headline finding mirrors §III-A's reason for
//! pairing Word2Vec with BioBERT: a *word-level* model collapses across
//! domains (nearly every target-domain term is OOV, so level aggregates
//! vanish), while the *subword* CharGram model transfers its geometry
//! through shared character n-grams and keeps level-1 structure intact.
//! The supervised Random Forest transfers through its surface features.

use crate::harness::{split_corpus, ExperimentConfig};
use crate::scoring::{standard_keys, LevelKey, LevelScores};
use tabmeta_baselines::{ForestConfig, RandomForestDetector, TableClassifier};
use tabmeta_core::{Pipeline, PipelineConfig};
use tabmeta_corpora::CorpusKind;

/// One transfer cell: train corpus → test corpus.
#[derive(Debug, Clone)]
pub struct TransferCell {
    /// Training corpus.
    pub train: CorpusKind,
    /// Test corpus (disjoint domain when kinds differ).
    pub test: CorpusKind,
    /// Ours with word-level embeddings (collapses cross-domain).
    pub ours_word2vec: LevelScores,
    /// Ours with subword embeddings (transfers).
    pub ours_chargram: LevelScores,
    /// Random-Forest scores on the test corpus.
    pub forest: LevelScores,
}

/// Run the transfer matrix over `kinds` (train on each, test on each).
pub fn run(kinds: &[CorpusKind], config: &ExperimentConfig) -> Vec<TransferCell> {
    let splits: Vec<_> = kinds.iter().map(|&k| split_corpus(k, config)).collect();
    let mut out = Vec::new();
    for (i, train_split) in splits.iter().enumerate() {
        let word2vec =
            Pipeline::train(&train_split.train, &PipelineConfig::fast_seeded(config.seed))
                .expect("trains");
        let chargram =
            Pipeline::train(&train_split.train, &PipelineConfig::fast_chargram(config.seed))
                .expect("trains");
        let forest = RandomForestDetector::train(
            &train_split.train,
            ForestConfig { seed: config.seed, ..ForestConfig::default() },
        );
        for (j, test_split) in splits.iter().enumerate() {
            if i == j {
                continue; // within-corpus numbers live in Table V
            }
            let keys = standard_keys();
            out.push(TransferCell {
                train: kinds[i],
                test: kinds[j],
                ours_word2vec: LevelScores::evaluate(&test_split.test, keys.clone(), |t| {
                    word2vec.classify(t).into()
                }),
                ours_chargram: LevelScores::evaluate(&test_split.test, keys.clone(), |t| {
                    chargram.classify(t).into()
                }),
                forest: LevelScores::evaluate(&test_split.test, keys, |t| {
                    forest.classify_table(t).into()
                }),
            });
        }
    }
    out
}

/// Render the transfer matrix (HMD1 and VMD1 per cell).
pub fn render(cells: &[TransferCell]) -> String {
    use crate::metrics::paper_pct;
    let mut out =
        String::from("Cross-corpus transfer (train → test, held-out domains; HMD1/VMD1):\n");
    out.push_str(&format!(
        "{:<22} {:>16} {:>16} {:>14}\n",
        "train → test", "ours (word2vec)", "ours (chargram)", "RandomForest"
    ));
    for c in cells {
        let fmt = |s: &LevelScores| {
            let h = s.level_accuracy(LevelKey::Hmd(1)).map(paper_pct).unwrap_or("·".into());
            let v = s.level_accuracy(LevelKey::Vmd(1)).map(paper_pct).unwrap_or("·".into());
            format!("{h}/{v}")
        };
        out.push_str(&format!(
            "{:<22} {:>16} {:>16} {:>14}\n",
            format!("{} → {}", c.train.name(), c.test.name()),
            fmt(&c.ours_word2vec),
            fmt(&c.ours_chargram),
            fmt(&c.forest)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subword_embeddings_rescue_cross_domain_transfer() {
        let cells = run(
            &[CorpusKind::Ckg, CorpusKind::Cius],
            &ExperimentConfig { tables_per_corpus: 200, seed: 71 },
        );
        assert_eq!(cells.len(), 2, "two off-diagonal cells");
        for c in &cells {
            let w2v = c.ours_word2vec.level_accuracy(LevelKey::Hmd(1)).unwrap();
            let cg = c.ours_chargram.level_accuracy(LevelKey::Hmd(1)).unwrap();
            // Word-level embeddings collapse (target vocabulary is OOV) —
            // the §III-A rationale for a subword/domain-robust model.
            assert!(
                w2v < 0.7,
                "{} → {} word2vec should collapse cross-domain: {w2v}",
                c.train.name(),
                c.test.name()
            );
            assert!(
                cg > w2v + 0.2,
                "{} → {} chargram must transfer far better: {cg} vs {w2v}",
                c.train.name(),
                c.test.name()
            );
            assert!(cg > 0.75, "chargram keeps level-1 usable: {cg}");
        }
    }

    #[test]
    fn render_lists_cells() {
        let cells = run(
            &[CorpusKind::Wdc, CorpusKind::Saus],
            &ExperimentConfig { tables_per_corpus: 120, seed: 7 },
        );
        let s = render(&cells);
        assert!(s.contains("WDC → SAUS"));
        assert!(s.contains("SAUS → WDC"));
    }
}
