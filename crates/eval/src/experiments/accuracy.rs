//! Table V, Figure 6 and Figure 7: per-corpus, per-level accuracy of our
//! method against Pytheas and Table Transformer, plus the Fang et al.
//! Random-Forest comparison quoted in §IV-F ("up to 96% … compared to
//! 90.4% maximum of SOTA" on VMD levels 1–2 combined).

use crate::harness::{baseline_labels, split_corpus, train_all, ExperimentConfig};
use crate::metrics::paper_pct;
use crate::scoring::{combined_accuracy, standard_keys, Labels, LevelKey, LevelScores};
use tabmeta_baselines::TableClassifier;
use tabmeta_corpora::CorpusKind;

/// One method's per-level accuracy on one corpus.
#[derive(Debug, Clone)]
pub struct MethodScores {
    /// Display name.
    pub method: String,
    /// Whether the method separates hierarchy levels (Table V prints `-`
    /// beyond level 1 otherwise).
    pub distinguishes_levels: bool,
    /// Whether the method supports VMD at all.
    pub supports_vmd: bool,
    /// Per-level scores.
    pub scores: LevelScores,
}

/// Table V for one corpus.
#[derive(Debug, Clone)]
pub struct CorpusAccuracy {
    /// Which corpus.
    pub kind: CorpusKind,
    /// Ours, Pytheas, TableTransformer — in the paper's column order
    /// (ours last, as printed).
    pub methods: Vec<MethodScores>,
    /// Fang et al. RF combined accuracies: (HMD levels 1–3, VMD levels
    /// 1–2), the §IV-F comparison.
    pub rf_combined: (Option<f64>, Option<f64>),
    /// Our combined accuracies on the same definition.
    pub ours_combined: (Option<f64>, Option<f64>),
}

/// Run the Table V experiment over `kinds`.
pub fn run(kinds: &[CorpusKind], config: &ExperimentConfig) -> Vec<CorpusAccuracy> {
    kinds
        .iter()
        .map(|&kind| {
            let split = split_corpus(kind, config);
            let methods = train_all(&split, config);
            let keys = standard_keys();

            let ours = LevelScores::evaluate(&split.test, keys.clone(), |t| {
                methods.ours.classify(t).into()
            });
            let pytheas = LevelScores::evaluate(&split.test, keys.clone(), |t| {
                baseline_labels(&methods.pytheas, t)
            });
            let layout = LevelScores::evaluate(&split.test, keys.clone(), |t| {
                baseline_labels(&methods.layout, t)
            });

            let ours_labels: Vec<Labels> =
                split.test.iter().map(|t| methods.ours.classify(t).into()).collect();
            let rf_labels: Vec<Labels> =
                split.test.iter().map(|t| baseline_labels(&methods.forest, t)).collect();
            let rf_combined = (
                combined_accuracy(&split.test, &rf_labels, false, 3),
                combined_accuracy(&split.test, &rf_labels, true, 2),
            );
            let ours_combined = (
                combined_accuracy(&split.test, &ours_labels, false, 3),
                combined_accuracy(&split.test, &ours_labels, true, 2),
            );

            CorpusAccuracy {
                kind,
                methods: vec![
                    MethodScores {
                        method: methods.pytheas.name().to_string(),
                        distinguishes_levels: false,
                        supports_vmd: false,
                        scores: pytheas,
                    },
                    MethodScores {
                        method: methods.layout.name().to_string(),
                        distinguishes_levels: false,
                        supports_vmd: false,
                        scores: layout,
                    },
                    MethodScores {
                        method: "Our method".to_string(),
                        distinguishes_levels: true,
                        supports_vmd: true,
                        scores: ours,
                    },
                ],
                rf_combined,
                ours_combined,
            }
        })
        .collect()
}

/// Minimum test-set support below which a cell is suppressed (too few
/// tables carry the level for the number to mean anything).
const MIN_SUPPORT: usize = 5;

fn cell(m: &MethodScores, key: LevelKey) -> String {
    let shallow = matches!(key, LevelKey::Hmd(1) | LevelKey::Vmd(1));
    let vmd = matches!(key, LevelKey::Vmd(_));
    if (vmd && !m.supports_vmd) || (!shallow && !m.distinguishes_levels) {
        return "-".to_string();
    }
    match (m.scores.level_accuracy(key), m.scores.support(key)) {
        (Some(a), Some(s)) if s >= MIN_SUPPORT => paper_pct(a),
        _ => "·".to_string(),
    }
}

/// Render Table V in the paper's layout.
pub fn render_table5(results: &[CorpusAccuracy]) -> String {
    let mut out = String::new();
    out.push_str("TABLE V: Accuracy in % for Identifying Levels 1-5 of HMD / Levels 1-3 of VMD\n");
    out.push_str("('-' = method does not support it; '·' = too few test tables)\n\n");
    out.push_str(&format!(
        "{:<11} {:<12} {:>9} {:>9} {:>12}\n",
        "Dataset", "Level", "Pytheas", "TT", "Our method"
    ));
    for r in results {
        let rows: Vec<(LevelKey, Option<LevelKey>)> = vec![
            (LevelKey::Hmd(1), Some(LevelKey::Vmd(1))),
            (LevelKey::Hmd(2), Some(LevelKey::Vmd(2))),
            (LevelKey::Hmd(3), Some(LevelKey::Vmd(3))),
            (LevelKey::Hmd(4), None),
            (LevelKey::Hmd(5), None),
        ];
        let mut first = true;
        for (hk, vk) in rows {
            let ours = &r.methods[2];
            let h_sup = ours.scores.support(hk).unwrap_or(0);
            let v_sup = vk.and_then(|k| ours.scores.support(k)).unwrap_or(0);
            if h_sup < MIN_SUPPORT && v_sup < MIN_SUPPORT {
                continue;
            }
            let level = match vk {
                Some(vk) if v_sup >= MIN_SUPPORT && h_sup >= MIN_SUPPORT => {
                    format!("{hk}/{vk}")
                }
                Some(vk) if v_sup >= MIN_SUPPORT => format!("{vk}"),
                _ => format!("{hk}"),
            };
            let fuse = |m: &MethodScores| -> String {
                match vk {
                    Some(vk) if v_sup >= MIN_SUPPORT && h_sup >= MIN_SUPPORT => {
                        format!("{}/{}", cell(m, hk), cell(m, vk))
                    }
                    Some(vk) if v_sup >= MIN_SUPPORT => cell(m, vk),
                    _ => cell(m, hk),
                }
            };
            out.push_str(&format!(
                "{:<11} {:<12} {:>9} {:>9} {:>12}\n",
                if first { r.kind.name() } else { "" },
                level,
                fuse(&r.methods[0]),
                fuse(&r.methods[1]),
                fuse(&r.methods[2]),
            ));
            first = false;
        }
    }
    out.push_str("\nSOTA comparison (Fang et al. RF, combined levels):\n");
    for r in results {
        if let ((Some(rh), Some(rv)), (Some(oh), Some(ov))) = (r.rf_combined, r.ours_combined) {
            out.push_str(&format!(
                "  {:<11} RF HMD1-3 {}  VMD1-2 {}   | ours {} / {}\n",
                r.kind.name(),
                paper_pct(rh),
                paper_pct(rv),
                paper_pct(oh),
                paper_pct(ov),
            ));
        }
    }
    out
}

/// One bar-chart series for Figures 6/7: per-level accuracy of our method
/// on one corpus.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Corpus name.
    pub corpus: &'static str,
    /// (level, accuracy) points; levels without support are omitted.
    pub points: Vec<(u8, f64)>,
}

/// Figure 6: HMD detection accuracy, levels 1–5, across corpora.
pub fn fig6(results: &[CorpusAccuracy]) -> Vec<FigureSeries> {
    figure(results, false)
}

/// Figure 7: VMD identification accuracy, levels 1–3, across corpora.
pub fn fig7(results: &[CorpusAccuracy]) -> Vec<FigureSeries> {
    figure(results, true)
}

fn figure(results: &[CorpusAccuracy], vertical: bool) -> Vec<FigureSeries> {
    results
        .iter()
        .map(|r| {
            let ours = &r.methods[2];
            let max = if vertical { 3 } else { 5 };
            let points = (1..=max)
                .filter_map(|k| {
                    let key = if vertical { LevelKey::Vmd(k) } else { LevelKey::Hmd(k) };
                    match (ours.scores.level_accuracy(key), ours.scores.support(key)) {
                        (Some(a), Some(s)) if s >= MIN_SUPPORT => Some((k, a)),
                        _ => None,
                    }
                })
                .collect();
            FigureSeries { corpus: r.kind.name(), points }
        })
        .collect()
}

/// Render a figure as an ASCII bar chart (one row per corpus × level).
pub fn render_figure(title: &str, series: &[FigureSeries]) -> String {
    let mut out = format!("{title}\n");
    for s in series {
        for (level, acc) in &s.points {
            let bar_len = (acc * 40.0).round() as usize;
            out.push_str(&format!(
                "  {:<10} L{} {:>5} |{}\n",
                s.corpus,
                level,
                paper_pct(*acc),
                "#".repeat(bar_len)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_results() -> Vec<CorpusAccuracy> {
        run(&[CorpusKind::Ckg], &ExperimentConfig { tables_per_corpus: 200, seed: 42 })
    }

    #[test]
    fn shape_of_table5_holds_on_ckg() {
        let results = quick_results();
        let r = &results[0];
        let ours = &r.methods[2];
        let pytheas = &r.methods[0];

        // Our VMD is strong at every level (the paper's headline claim).
        for k in 1..=3 {
            if ours.scores.support(LevelKey::Vmd(k)).unwrap_or(0) >= 5 {
                let acc = ours.scores.level_accuracy(LevelKey::Vmd(k)).unwrap();
                assert!(acc > 0.8, "VMD{k} accuracy {acc}");
            }
        }
        // Baselines cannot do VMD or deep levels at all.
        assert_eq!(pytheas.scores.level_accuracy(LevelKey::Vmd(1)), Some(0.0));

        // Ours beats the deep-level void of both baselines trivially, but
        // must also be strong in absolute terms at HMD2-3.
        let h2 = ours.scores.level_accuracy(LevelKey::Hmd(2)).unwrap();
        assert!(h2 > 0.85, "HMD2 {h2}");

        // Pytheas is competitive on HMD1 (within a few % of ours, either
        // side — the paper reports a ≈1-3% Pytheas edge).
        let p1 = pytheas.scores.level_accuracy(LevelKey::Hmd(1)).unwrap();
        let o1 = ours.scores.level_accuracy(LevelKey::Hmd(1)).unwrap();
        assert!(p1 > 0.9, "Pytheas HMD1 {p1}");
        assert!((p1 - o1).abs() < 0.1, "HMD1 gap should be small: {p1} vs {o1}");
    }

    #[test]
    fn rf_combined_comparison_runs() {
        // The paper compares against Fang et al.'s *published* numbers
        // (92 / 90.4) — their code was never released, so no head-to-head
        // exists there. Our head-to-head shows a supervised RF is strong
        // on in-distribution synthetic data; the defensible claims are:
        // (a) our unsupervised method stays within ~5% of the fully
        // supervised RF on the combined metric (the margin absorbs
        // RNG-stream sensitivity in the synthetic corpus draw), and
        // (b) RF produces no hierarchy levels at all, which Table V
        // scores per level.
        let results = quick_results();
        let r = &results[0];
        let (rf_h, rf_v) = r.rf_combined;
        let (ours_h, ours_v) = r.ours_combined;
        assert!(rf_h.unwrap() > 0.85, "RF HMD combined {rf_h:?}");
        assert!(rf_v.unwrap() > 0.8, "RF VMD combined {rf_v:?}");
        assert!(
            ours_v.unwrap() > rf_v.unwrap() - 0.05,
            "unsupervised within 5% of supervised RF: {ours_v:?} vs {rf_v:?}"
        );
        assert!(ours_h.unwrap() > rf_h.unwrap() - 0.05, "{ours_h:?} vs {rf_h:?}");
    }

    #[test]
    fn renders_without_panicking() {
        let results = quick_results();
        let table = render_table5(&results);
        assert!(table.contains("CKG"));
        assert!(table.contains("Our method"));
        let f6 = fig6(&results);
        let f7 = fig7(&results);
        assert!(!f6[0].points.is_empty());
        assert!(!f7[0].points.is_empty());
        let chart = render_figure("Fig 6", &f6);
        assert!(chart.contains("L1"));
    }

    #[test]
    fn figure7_has_no_levels_beyond_three() {
        let results = quick_results();
        for s in fig7(&results) {
            assert!(s.points.iter().all(|(k, _)| *k <= 3));
        }
    }
}
