//! Table VI: simulated GPT-3.5 / GPT-4 / RAG+GPT-4 accuracy on CKG,
//! per HMD level 1–5 and VMD level 1–3 (§IV-H, §IV-I).
//!
//! The paper evaluates LLMs on CKG only ("due to the very high cost …
//! we had to pick a good representative example"); we follow suit. LLMs
//! are not trained — every table goes straight through the prompt
//! protocol — so the whole generated corpus serves as the test set.

use crate::harness::{split_corpus, train_all, ExperimentConfig};
use crate::metrics::paper_pct;
use crate::scoring::{standard_keys, LevelKey, LevelScores};
use tabmeta_baselines::{LlmKind, RagStore, SimulatedLlm, TableClassifier};
use tabmeta_corpora::CorpusKind;

/// Table VI: one scored column per model, plus ours for the delta claims.
#[derive(Debug, Clone)]
pub struct LlmComparison {
    /// GPT-3.5 (simulated) scores.
    pub gpt35: LevelScores,
    /// GPT-4 (simulated) scores.
    pub gpt4: LevelScores,
    /// RAG+GPT-4 (simulated) scores.
    pub rag_gpt4: LevelScores,
    /// Our pipeline on the same test set (for the §IV-H delta claims).
    pub ours: LevelScores,
}

/// Run the Table VI experiment (CKG sample, like the paper).
pub fn run(config: &ExperimentConfig) -> LlmComparison {
    let split = split_corpus(CorpusKind::Ckg, config);
    let methods = train_all(&split, config);
    let keys = standard_keys();

    let gpt35 = SimulatedLlm::new(LlmKind::Gpt35, config.seed);
    let gpt4 = SimulatedLlm::new(LlmKind::Gpt4, config.seed);
    // The RAG database indexes the whole corpus — PubMed holds the
    // articles regardless of our train/test split.
    let all: Vec<_> = split.train.iter().chain(&split.test).cloned().collect();
    let rag = SimulatedLlm::with_rag(LlmKind::Gpt4, config.seed, RagStore::build(&all));

    let score = |m: &SimulatedLlm| {
        LevelScores::evaluate(&split.test, keys.clone(), |t| m.classify_table(t).into())
    };
    LlmComparison {
        gpt35: score(&gpt35),
        gpt4: score(&gpt4),
        rag_gpt4: score(&rag),
        ours: LevelScores::evaluate(&split.test, keys.clone(), |t| methods.ours.classify(t).into()),
    }
}

/// Minimum support for a printable cell.
const MIN_SUPPORT: usize = 5;

fn cell(scores: &LevelScores, key: LevelKey) -> String {
    match (scores.level_accuracy(key), scores.support(key)) {
        (Some(a), Some(s)) if s >= MIN_SUPPORT => paper_pct(a),
        _ => "·".to_string(),
    }
}

/// Render Table VI in the paper's layout (plus our column).
pub fn render_table6(c: &LlmComparison) -> String {
    let mut out = String::from(
        "TABLE VI: Accuracy in % for identifying HMD/VMD on CKG dataset (simulated LLMs)\n\n",
    );
    out.push_str(&format!(
        "{:<14} {:>8} {:>8} {:>10} {:>12}\n",
        "Level", "GPT3.5", "GPT4", "RAG+GPT4", "Our method"
    ));
    let rows: Vec<(String, Vec<LevelKey>)> = vec![
        ("HMD1/VMD1".into(), vec![LevelKey::Hmd(1), LevelKey::Vmd(1)]),
        ("HMD2/VMD2".into(), vec![LevelKey::Hmd(2), LevelKey::Vmd(2)]),
        ("HMD3/VMD3".into(), vec![LevelKey::Hmd(3), LevelKey::Vmd(3)]),
        ("HMD4".into(), vec![LevelKey::Hmd(4)]),
        ("HMD5".into(), vec![LevelKey::Hmd(5)]),
    ];
    for (label, keys) in rows {
        let fuse = |s: &LevelScores| keys.iter().map(|k| cell(s, *k)).collect::<Vec<_>>().join("/");
        out.push_str(&format!(
            "{:<14} {:>8} {:>8} {:>10} {:>12}\n",
            label,
            fuse(&c.gpt35),
            fuse(&c.gpt4),
            fuse(&c.rag_gpt4),
            fuse(&c.ours),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comparison() -> LlmComparison {
        run(&ExperimentConfig { tables_per_corpus: 300, seed: 21 })
    }

    #[test]
    fn table6_shape_holds() {
        let c = comparison();
        let h1 = |s: &LevelScores| s.level_accuracy(LevelKey::Hmd(1)).unwrap();
        let v3 = |s: &LevelScores| s.level_accuracy(LevelKey::Vmd(3)).unwrap();

        // LLMs slightly outperform us on HMD1 (paper: 4-5% delta; we
        // require "at least as good").
        assert!(h1(&c.gpt4) >= h1(&c.ours) - 0.02, "{} vs {}", h1(&c.gpt4), h1(&c.ours));
        assert!(h1(&c.gpt35) > 0.9);

        // VMD3 collapses at 0 without RAG, lifts with RAG, and we beat
        // both by a wide margin.
        assert_eq!(v3(&c.gpt35), 0.0);
        assert_eq!(v3(&c.gpt4), 0.0);
        assert!(v3(&c.rag_gpt4) > 0.02);
        assert!(v3(&c.ours) > v3(&c.rag_gpt4) + 0.3);

        // Deep HMD: we outperform plain LLMs by a wide margin.
        let h3 = |s: &LevelScores| s.level_accuracy(LevelKey::Hmd(3)).unwrap();
        assert!(h3(&c.ours) > h3(&c.gpt35) + 0.1);

        // RAG lifts every level it can retrieve for.
        let h2 = |s: &LevelScores| s.level_accuracy(LevelKey::Hmd(2)).unwrap();
        assert!(h2(&c.rag_gpt4) > h2(&c.gpt4));
    }

    #[test]
    fn render_contains_all_models() {
        let c = comparison();
        let s = render_table6(&c);
        assert!(s.contains("GPT3.5"));
        assert!(s.contains("RAG+GPT4"));
        assert!(s.contains("HMD5"));
        assert!(s.contains("simulated"), "LLM results must be marked simulated");
    }
}
