//! Corpus-size scaling of training — the "scalable" in the title.
//!
//! §IV-G measures inference scaling per table; this experiment sweeps the
//! *training* corpus size and checks that wall time grows (near-)linearly
//! in the number of tables while held-out accuracy saturates — the
//! behaviour that lets the method run at the paper's 200K-table scale by
//! extrapolation.

use crate::harness::ExperimentConfig;
use crate::scoring::{standard_keys, LevelKey, LevelScores};
use tabmeta_core::{Pipeline, PipelineConfig};
use tabmeta_corpora::{CorpusKind, GeneratorConfig};
use tabmeta_linalg::{linear_fit, LinearFit};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Training tables.
    pub n_tables: usize,
    /// Training seconds.
    pub train_secs: f64,
    /// Held-out HMD1 accuracy.
    pub hmd1: f64,
    /// Held-out VMD1 accuracy.
    pub vmd1: Option<f64>,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct TrainingScaling {
    /// Sweep points, ascending size.
    pub points: Vec<ScalePoint>,
    /// Linear fit of seconds vs tables.
    pub fit: LinearFit,
}

impl TrainingScaling {
    /// Whether training time is (near-)linear in corpus size.
    pub fn is_linear(&self) -> bool {
        self.fit.r_squared > 0.9
    }
}

/// Run the sweep on CKG with a fixed held-out set.
pub fn run(sizes: &[usize], config: &ExperimentConfig) -> TrainingScaling {
    let max = sizes.iter().copied().max().unwrap_or(200);
    // One corpus large enough for the biggest point plus a fixed test set.
    let test_n = 150usize;
    let corpus =
        CorpusKind::Ckg.generate(&GeneratorConfig { n_tables: max + test_n, seed: config.seed });
    let (pool, test) = corpus.tables.split_at(max);
    let mut points = Vec::new();
    for &n in sizes {
        let (pipeline, elapsed) =
            tabmeta_obs::timed(tabmeta_obs::names::SPAN_EVAL_SCALING_TRAIN, || {
                Pipeline::train(&pool[..n], &PipelineConfig::fast_seeded(config.seed))
                    .expect("trains")
            });
        let train_secs = elapsed.as_secs_f64();
        let scores = LevelScores::evaluate(test, standard_keys(), |t| pipeline.classify(t).into());
        points.push(ScalePoint {
            n_tables: n,
            train_secs,
            hmd1: scores.level_accuracy(LevelKey::Hmd(1)).unwrap_or(0.0),
            vmd1: scores.level_accuracy(LevelKey::Vmd(1)),
        });
    }
    let pairs: Vec<(f64, f64)> = points.iter().map(|p| (p.n_tables as f64, p.train_secs)).collect();
    let fit = linear_fit(&pairs).expect("distinct sizes");
    TrainingScaling { points, fit }
}

/// Render the sweep.
pub fn render(s: &TrainingScaling) -> String {
    use crate::metrics::paper_pct;
    let mut out = String::from("Training-size scaling on CKG (fixed held-out set):\n");
    out.push_str(&format!("{:>8} {:>10} {:>8} {:>8}\n", "tables", "train_s", "HMD1", "VMD1"));
    for p in &s.points {
        out.push_str(&format!(
            "{:>8} {:>10.2} {:>8} {:>8}\n",
            p.n_tables,
            p.train_secs,
            paper_pct(p.hmd1),
            p.vmd1.map(paper_pct).unwrap_or_else(|| "·".into())
        ));
    }
    out.push_str(&format!(
        "seconds ≈ {:.2e}·tables + {:.2}  (R²={:.3}{})\n",
        s.fit.slope,
        s.fit.intercept,
        s.fit.r_squared,
        if s.is_linear() { ", linear" } else { "" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_scales_linearly_and_accuracy_saturates() {
        let s = run(&[100, 200, 400], &ExperimentConfig { tables_per_corpus: 0, seed: 81 });
        assert_eq!(s.points.len(), 3);
        assert!(
            s.is_linear(),
            "training time must be near-linear in corpus size: R²={} {:?}",
            s.fit.r_squared,
            s.points
        );
        // Accuracy at the largest size is at least as good as the smallest
        // minus noise.
        let first = s.points.first().unwrap().hmd1;
        let last = s.points.last().unwrap().hmd1;
        assert!(last >= first - 0.05, "{first} → {last}");
        assert!(last > 0.9);
    }

    #[test]
    fn render_shows_fit() {
        let s = run(&[80, 160], &ExperimentConfig { tables_per_corpus: 0, seed: 3 });
        let text = render(&s);
        assert!(text.contains("R²="));
        assert!(text.contains("tables"));
    }
}
