//! Similarity-metric justification (§III-C): *why angles?*
//!
//! The paper argues for angular distance over Euclidean distance (magnitude
//! sensitivity: "two rows with very similar content can still exhibit a
//! significant difference in their vectors magnitude") and over Jaccard
//! (set overlap, not semantics). This experiment measures the argument:
//! for each metric, collect the distributions of metadata↔metadata and
//! metadata↔data level-pair distances over a weakly-labeled corpus and
//! report their **separation** — how cleanly a single threshold splits
//! them, which is exactly what Algorithm 1's range test needs.

use crate::harness::{split_corpus, ExperimentConfig};
use tabmeta_core::aggregate::{level_terms, level_vector};
use tabmeta_core::{BootstrapLabeler, Pipeline, PipelineConfig};
use tabmeta_corpora::CorpusKind;
use tabmeta_linalg::{angle_degrees, euclidean};
use tabmeta_tabular::Axis;
use tabmeta_text::Tokenizer;

/// The metrics under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Angle between aggregated level vectors (the paper's choice).
    Angle,
    /// Euclidean distance between (un-normalized) aggregates.
    Euclidean,
    /// One minus Jaccard similarity of the levels' term sets.
    Jaccard,
}

impl Metric {
    /// All metrics, reporting order.
    pub const ALL: [Metric; 3] = [Metric::Angle, Metric::Euclidean, Metric::Jaccard];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Angle => "angle (ours)",
            Metric::Euclidean => "euclidean",
            Metric::Jaccard => "jaccard",
        }
    }
}

/// Distance distributions and their separation for one metric.
#[derive(Debug, Clone)]
pub struct Separation {
    /// Which metric.
    pub metric: Metric,
    /// Metadata↔metadata pair distances.
    pub meta_meta: Vec<f32>,
    /// Metadata↔data pair distances.
    pub meta_data: Vec<f32>,
    /// Best single-threshold classification accuracy separating the two
    /// distributions (0.5 = inseparable, 1.0 = perfectly separable).
    pub threshold_accuracy: f64,
}

/// Best single-threshold accuracy for "meta_data above, meta_meta below".
fn best_threshold_accuracy(meta_meta: &[f32], meta_data: &[f32]) -> f64 {
    let mut labeled: Vec<(f32, bool)> =
        meta_meta.iter().map(|&d| (d, false)).chain(meta_data.iter().map(|&d| (d, true))).collect();
    if labeled.is_empty() {
        return 0.5;
    }
    labeled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
    let total = labeled.len() as f64;
    let total_pos = meta_data.len();
    // Sweep thresholds between consecutive points: below → meta-meta.
    let mut below_pos = 0usize;
    let mut below_neg = 0usize;
    let mut best: f64 = 0.0;
    for (i, (value, is_meta_data)) in labeled.iter().enumerate() {
        if *is_meta_data {
            below_pos += 1;
        } else {
            below_neg += 1;
        }
        // A threshold exists after element i only when the next value is
        // strictly larger (ties cannot be split).
        if labeled.get(i + 1).is_some_and(|(next, _)| next <= value) {
            continue;
        }
        let correct = below_neg + (total_pos - below_pos);
        best = best.max(correct as f64 / total);
    }
    // Degenerate thresholds (everything on one side).
    best = best.max(total_pos as f64 / total);
    best = best.max((labeled.len() - total_pos) as f64 / total);
    best
}

fn jaccard_distance(a: &[String], b: &[String]) -> f32 {
    let sa: std::collections::HashSet<&String> = a.iter().collect();
    let sb: std::collections::HashSet<&String> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count() as f32;
    let union = sa.union(&sb).count() as f32;
    1.0 - inter / union
}

/// Measure separability of all three metrics on one corpus.
pub fn run(kind: CorpusKind, config: &ExperimentConfig) -> Vec<Separation> {
    let split = split_corpus(kind, config);
    let pipeline =
        Pipeline::train(&split.train, &PipelineConfig::fast_seeded(config.seed)).expect("trains");
    let tokenizer: &Tokenizer = pipeline.tokenizer();
    let labeler = BootstrapLabeler::default();

    let mut out: Vec<Separation> = Metric::ALL
        .iter()
        .map(|&metric| Separation {
            metric,
            meta_meta: Vec::new(),
            meta_data: Vec::new(),
            threshold_accuracy: 0.5,
        })
        .collect();

    for table in split.test.iter().take(150) {
        let weak = labeler.label(table);
        for axis in [Axis::Row, Axis::Column] {
            let meta = weak.metadata_indices(axis);
            let data = weak.data_indices(axis);
            let vec_of = |i: usize| level_vector(table, axis, i, pipeline.embedder(), tokenizer);
            let terms_of = |i: usize| level_terms(table, axis, i, tokenizer);
            // Metadata↔metadata pairs.
            for w in meta.windows(2) {
                if let (Some(a), Some(b)) = (vec_of(w[0]), vec_of(w[1])) {
                    out[0].meta_meta.push(angle_degrees(&a, &b));
                    out[1].meta_meta.push(euclidean(&a, &b));
                }
                out[2].meta_meta.push(jaccard_distance(&terms_of(w[0]), &terms_of(w[1])));
            }
            // Metadata↔data pairs (first data level after the run).
            if let (Some(&m), Some(&d)) = (meta.last(), data.first()) {
                if let (Some(a), Some(b)) = (vec_of(m), vec_of(d)) {
                    out[0].meta_data.push(angle_degrees(&a, &b));
                    out[1].meta_data.push(euclidean(&a, &b));
                }
                out[2].meta_data.push(jaccard_distance(&terms_of(m), &terms_of(d)));
            }
        }
    }
    for s in &mut out {
        s.threshold_accuracy = best_threshold_accuracy(&s.meta_meta, &s.meta_data);
    }
    out
}

/// Render the separability block.
pub fn render(kind: CorpusKind, results: &[Separation]) -> String {
    use crate::metrics::paper_pct;
    let mut out = format!(
        "Similarity-metric separability on {} (meta↔meta vs meta↔data pairs):\n",
        kind.name()
    );
    out.push_str(&format!(
        "{:<14} {:>8} {:>8} {:>20}\n",
        "metric", "mm pairs", "md pairs", "threshold accuracy"
    ));
    for s in results {
        out.push_str(&format!(
            "{:<14} {:>8} {:>8} {:>20}\n",
            s.metric.name(),
            s.meta_meta.len(),
            s.meta_data.len(),
            paper_pct(s.threshold_accuracy)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angle_separates_best_or_close() {
        let results = run(CorpusKind::Ckg, &ExperimentConfig { tables_per_corpus: 250, seed: 23 });
        let by = |m: Metric| results.iter().find(|s| s.metric == m).unwrap();
        let angle = by(Metric::Angle).threshold_accuracy;
        let euclid = by(Metric::Euclidean).threshold_accuracy;
        assert!(angle > 0.8, "angles must separate the pair classes: {angle}");
        // §III-C's argument: magnitude sensitivity makes Euclidean worse.
        assert!(angle >= euclid - 0.01, "angle should not lose to euclidean: {angle} vs {euclid}");
        assert!(!by(Metric::Jaccard).meta_meta.is_empty());
    }

    #[test]
    fn threshold_accuracy_bounds() {
        // Perfectly separated.
        assert_eq!(best_threshold_accuracy(&[1.0, 2.0], &[10.0, 11.0]), 1.0);
        // Fully interleaved identical values: best is majority class (0.5
        // here).
        let acc = best_threshold_accuracy(&[5.0, 5.0], &[5.0, 5.0]);
        assert!((0.5..=0.75).contains(&acc), "{acc}");
        // Empty inputs degrade gracefully.
        assert_eq!(best_threshold_accuracy(&[], &[]), 0.5);
    }

    #[test]
    fn jaccard_distance_basics() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "z".to_string()];
        let d = jaccard_distance(&a, &b);
        assert!((d - (1.0 - 1.0 / 3.0)).abs() < 1e-6);
        assert_eq!(jaccard_distance(&a, &a), 0.0);
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
    }

    #[test]
    fn render_lists_metrics() {
        let results = run(CorpusKind::Wdc, &ExperimentConfig { tables_per_corpus: 120, seed: 3 });
        let s = render(CorpusKind::Wdc, &results);
        assert!(s.contains("angle (ours)"));
        assert!(s.contains("euclidean"));
        assert!(s.contains("jaccard"));
    }
}
