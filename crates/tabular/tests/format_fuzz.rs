//! Parser totality under hostile input: the CSV and HTML-lite parsers
//! must never panic, whatever bytes arrive — they either produce a table
//! or return a structured error.

use proptest::prelude::*;
use tabmeta_tabular::{csv, htmlite};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text through the CSV parser: no panics, and any success
    /// yields a rectangular grid.
    #[test]
    fn csv_parser_is_total(input in "\\PC{0,200}") {
        if let Ok(rows) = csv::parse_csv(&input) {
            prop_assert!(!rows.is_empty());
            let width = rows[0].len();
            prop_assert!(rows.iter().all(|r| r.len() == width), "ragged output");
        }
    }

    /// Arbitrary text through the HTML-lite parser: no panics.
    #[test]
    fn htmlite_parser_is_total(input in "\\PC{0,200}") {
        let _ = htmlite::from_htmlite(1, &input);
    }

    /// Tag-soup variants: random nestings of the dialect's own tags must
    /// also never panic.
    #[test]
    fn htmlite_tag_soup_is_total(parts in proptest::collection::vec(0usize..10, 0..40)) {
        let frag = ["<table>", "</table>", "<thead>", "</thead>", "<tr>", "</tr>",
                    "<th>", "</th>", "<td>x</td>", "<b>y</b>"];
        let soup: String = parts.iter().map(|&i| frag[i]).collect();
        let _ = htmlite::from_htmlite(2, &soup);
    }

    /// CSV quoting round-trip at the field level: any field content
    /// survives one serialize/parse cycle inside a guaranteed-nonempty row.
    #[test]
    fn csv_field_roundtrip(field in "\\PC{0,40}") {
        let table = tabmeta_tabular::Table::from_strings(1, &[&[field.as_str(), "anchor"]]);
        let text = csv::to_csv(&table);
        let rows = csv::parse_csv(&text).expect("anchored row parses");
        prop_assert_eq!(rows[0][0].as_str(), field.as_str());
    }

    /// Fields stuffed with embedded quotes, delimiters, and newlines still
    /// round-trip exactly — the quoting layer must contain them all.
    #[test]
    fn csv_hostile_field_roundtrip(field in "[\"',\\n a-z]{0,24}") {
        let table = tabmeta_tabular::Table::from_strings(3, &[&[field.as_str(), "anchor"]]);
        let rows = csv::parse_csv(&csv::to_csv(&table)).expect("anchored row parses");
        prop_assert_eq!(rows[0][0].as_str(), field.as_str());
    }

    /// Adversarial markup — unclosed row/header tags, nested `<b>`, stray
    /// `&nbsp;`, embedded quotes — yields `Err` or a *valid* table (never
    /// a panic, never a degenerate grid).
    #[test]
    fn htmlite_adversarial_markup_is_err_or_valid(
        parts in proptest::collection::vec(0usize..12, 0..30),
    ) {
        let frag = [
            "<table>", "<tr>", "<th>Region", "<td>4,2\"1\"</td>", "</tr>",
            "<b><b>deep</b>", "&nbsp;&nbsp;", "<th></th>", "</table>",
            "<tr><td>", "\"quoted\"", "<thead><tr><th>H</th></tr>",
        ];
        let soup: String = parts.iter().map(|&i| frag[i]).collect();
        if let Ok(table) = htmlite::from_htmlite(7, &soup) {
            prop_assert!(table.n_rows() >= 1, "valid table has rows");
            prop_assert!(table.n_cols() >= 1, "valid table has columns");
            prop_assert!(table.has_markup, "htmlite output carries markup");
        }
    }

    /// Well-formed tables survive a serialize → parse cycle: same shape,
    /// same (trimmed) cell texts, even when the texts contain characters
    /// the markup layer must escape.
    #[test]
    fn htmlite_roundtrip_preserves_valid_tables(
        texts in proptest::collection::vec("[a-zA-Z0-9&<> ]{0,10}", 1..12),
        width in 1usize..4,
    ) {
        let n_rows = texts.len().div_ceil(width);
        let cells: Vec<Vec<tabmeta_tabular::Cell>> = (0..n_rows)
            .map(|r| {
                (0..width)
                    .map(|c| {
                        let text = texts.get(r * width + c).map(String::as_str).unwrap_or("");
                        tabmeta_tabular::Cell::text(text)
                    })
                    .collect()
            })
            .collect();
        let table = tabmeta_tabular::Table::new(9, "", cells);
        let parsed = htmlite::from_htmlite(9, &htmlite::to_htmlite(&table))
            .expect("serializer output parses");
        prop_assert_eq!(parsed.n_rows(), table.n_rows());
        prop_assert_eq!(parsed.n_cols(), table.n_cols());
        for r in 0..table.n_rows() {
            for c in 0..table.n_cols() {
                prop_assert_eq!(
                    parsed.cell(r, c).text.as_str(),
                    table.cell(r, c).text.trim(),
                    "cell ({}, {})", r, c
                );
            }
        }
    }
}

#[test]
fn structured_errors_not_panics() {
    assert!(csv::parse_csv("").is_err());
    assert!(csv::parse_csv("\"never closed").is_err());
    assert!(htmlite::from_htmlite(1, "").is_err());
    assert!(htmlite::from_htmlite(1, "<table></table>").is_err(), "no rows");
    assert!(htmlite::from_htmlite(1, "<table><tr><td>unclosed").is_err());
}
