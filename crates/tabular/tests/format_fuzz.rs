//! Parser totality under hostile input: the CSV and HTML-lite parsers
//! must never panic, whatever bytes arrive — they either produce a table
//! or return a structured error.

use proptest::prelude::*;
use tabmeta_tabular::{csv, htmlite};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text through the CSV parser: no panics, and any success
    /// yields a rectangular grid.
    #[test]
    fn csv_parser_is_total(input in "\\PC{0,200}") {
        if let Ok(rows) = csv::parse_csv(&input) {
            prop_assert!(!rows.is_empty());
            let width = rows[0].len();
            prop_assert!(rows.iter().all(|r| r.len() == width), "ragged output");
        }
    }

    /// Arbitrary text through the HTML-lite parser: no panics.
    #[test]
    fn htmlite_parser_is_total(input in "\\PC{0,200}") {
        let _ = htmlite::from_htmlite(1, &input);
    }

    /// Tag-soup variants: random nestings of the dialect's own tags must
    /// also never panic.
    #[test]
    fn htmlite_tag_soup_is_total(parts in proptest::collection::vec(0usize..10, 0..40)) {
        let frag = ["<table>", "</table>", "<thead>", "</thead>", "<tr>", "</tr>",
                    "<th>", "</th>", "<td>x</td>", "<b>y</b>"];
        let soup: String = parts.iter().map(|&i| frag[i]).collect();
        let _ = htmlite::from_htmlite(2, &soup);
    }

    /// CSV quoting round-trip at the field level: any field content
    /// survives one serialize/parse cycle inside a guaranteed-nonempty row.
    #[test]
    fn csv_field_roundtrip(field in "\\PC{0,40}") {
        let table = tabmeta_tabular::Table::from_strings(1, &[&[field.as_str(), "anchor"]]);
        let text = csv::to_csv(&table);
        let rows = csv::parse_csv(&text).expect("anchored row parses");
        prop_assert_eq!(rows[0][0].as_str(), field.as_str());
    }
}

#[test]
fn structured_errors_not_panics() {
    assert!(csv::parse_csv("").is_err());
    assert!(csv::parse_csv("\"never closed").is_err());
    assert!(htmlite::from_htmlite(1, "").is_err());
    assert!(htmlite::from_htmlite(1, "<table></table>").is_err(), "no rows");
    assert!(htmlite::from_htmlite(1, "<table><tr><td>unclosed").is_err());
}
